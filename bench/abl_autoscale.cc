/**
 * @file
 * Autoscaling ablation: does the reactive cluster controller actually
 * buy anything over static provisioning? Both corners replay the SAME
 * recorded diurnal trace (75% amplitude sinusoid over a Zipf-routed
 * CoE), so they compete on identical traffic:
 *
 *  - static: 4 nodes live for the whole run, the classic
 *    peak-provisioned cluster.
 *
 *  - reactive: the ClusterController scales between 1 and 4 nodes on
 *    windowed queue-depth/shed metrics, parking nodes through the
 *    diurnal trough and re-earning them on the ramp.
 *
 * The claim under test: reactive burns fewer node-hours while holding
 * the p95 tail and shedding no more than static. The process exits
 * non-zero if any axis of that corner flips, making it a CI gate for
 * the control plane (mirroring abl_expert_placement's corner check).
 *
 *   abl_autoscale [--smoke] [--requests N] [--json FILE]
 *
 * Emits BENCH_autoscale.json.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/workload.h"
#include "perf_common.h"
#include "sim/event_queue.h"
#include "util/json.h"
#include "util/table.h"

using namespace sn40l;

namespace {

/**
 * Generate the shared diurnal arrival trace in memory: an open-loop
 * Poisson stream shaped by a sinusoid whose period divides the run
 * into three day/night cycles, recorded exactly as a file trace would
 * be (same model, same RNG draws) but without touching disk.
 */
std::shared_ptr<const std::vector<coe::TraceEntry>>
recordDiurnalTrace(const coe::ServingConfig &gen)
{
    sim::EventQueue eq;
    std::unique_ptr<coe::WorkloadModel> model =
        coe::makeWorkloadModel(gen);
    auto entries = std::make_shared<std::vector<coe::TraceEntry>>();
    model->bind(eq, [&](const coe::TrafficRequest &r) {
        entries->push_back({r, eq.now()});
    });
    model->start();
    eq.run(); // open loop: arrivals self-schedule, no feedback needed
    return entries;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 60'000;
    bool requests_set = false;
    std::string json_path = "BENCH_autoscale.json";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "abl_autoscale: " << arg
                          << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--json") json_path = next();
        else {
            std::cerr << "usage: abl_autoscale [--smoke] [--requests N] "
                      << "[--json FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 12'000;

    const int nodes = 4;
    const double total_rate = 24.0; // mean req/s across the cluster
    // Three diurnal cycles over the run, so the controller sees
    // several troughs to park through and ramps to recover on.
    const double duration = static_cast<double>(requests) / total_rate;
    const double period = duration / 3.0;

    coe::ServingConfig gen;
    gen.mode = coe::ServingMode::EventDriven;
    gen.numExperts = 150;
    gen.batch = 8;
    gen.streamRequests = requests;
    gen.arrivalRatePerSec = total_rate;
    gen.routing = coe::RoutingDistribution::Zipf;
    gen.zipfS = 1.0;
    gen.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    gen.seed = 7;
    gen.workload.shape.diurnalAmplitude = 0.75;
    gen.workload.shape.diurnalPeriodSeconds = period;

    std::cout << "Autoscaling ablation: " << requests
              << " requests over "
              << util::formatDouble(duration, 0)
              << " s, diurnal x1.75 peak / x0.25 trough ("
              << util::formatDouble(period, 0)
              << " s period), 150 experts Zipf(1.0), " << nodes
              << "-node replicate-hot cluster.\n"
              << "Both corners replay the same recorded trace.\n\n";

    std::shared_ptr<const std::vector<coe::TraceEntry>> trace =
        recordDiurnalTrace(gen);

    coe::ClusterConfig base;
    base.nodes = nodes;
    base.placement = coe::PlacementPolicy::ReplicateHotPartitionCold;
    base.hotExperts = 15;
    base.dispatch = coe::DispatchPolicy::LeastOutstanding;
    base.node = gen;
    base.node.workload.shape = coe::RateShape{}; // replay owns timing
    base.node.workload.traceEntries = trace;

    coe::ClusterConfig reactive_cfg = base;
    reactive_cfg.controller.policy =
        coe::ControllerPolicy::ReactiveThreshold;
    // Tuned so the tail holds: scale up as soon as queues form at
    // all (depth 0.5/node) and park nodes only when near-idle, so
    // the savings come from the diurnal trough, not from letting
    // queues sit at the up-threshold.
    reactive_cfg.controller.tickSeconds = 0.25;
    reactive_cfg.controller.minNodes = 1;
    reactive_cfg.controller.scaleUpQueueDepth = 0.5;
    reactive_cfg.controller.scaleDownQueueDepth = 0.05;
    reactive_cfg.controller.cooldownTicks = 8;

    coe::ClusterResult st = coe::ClusterSimulator(base).run();
    coe::ClusterResult re = coe::ClusterSimulator(reactive_cfg).run();
    if (st.oom || re.oom ||
        st.stream.completed + st.stream.shed != requests ||
        re.stream.completed + re.stream.shed != requests) {
        std::cerr << "abl_autoscale: a corner did not complete\n";
        return 1;
    }

    util::Table table({"Provisioning", "Node-hours", "p50", "p95",
                       "p99", "Shed", "Throughput", "Ticks",
                       "Actions"});
    auto addRow = [&table](const char *name,
                           const coe::ClusterResult &r) {
        const coe::StreamMetrics &m = r.stream;
        table.addRow({name, util::formatDouble(r.nodeHours, 3),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      std::to_string(m.shed),
                      util::formatDouble(m.throughputRequestsPerSec, 1) +
                          " req/s",
                      std::to_string(r.controllerTicks),
                      std::to_string(r.controllerActions)});
    };
    addRow("static x4", st);
    addRow("reactive 1..4", re);
    table.print(std::cout);

    double saved_pct = st.nodeHours > 0.0
        ? (1.0 - re.nodeHours / st.nodeHours) * 100.0
        : 0.0;
    double p95_ratio = st.stream.p95LatencySeconds > 0.0
        ? re.stream.p95LatencySeconds / st.stream.p95LatencySeconds
        : 0.0;
    std::cout << "\nReactive used "
              << util::formatDouble(saved_pct, 1)
              << "% fewer node-hours at "
              << util::formatDouble(p95_ratio * 100.0, 1)
              << "% of static's p95.\n";

    // The corner under test: cheaper provisioning, tail and shed no
    // worse (5% p95 tolerance absorbs the scale-up transients).
    bool cheaper = re.nodeHours < st.nodeHours;
    bool tail_ok = re.stream.p95LatencySeconds <=
        1.05 * st.stream.p95LatencySeconds;
    bool shed_ok = re.stream.shed <= st.stream.shed;
    bool wins = cheaper && tail_ok && shed_ok;
    std::cout << (wins
                      ? "reactive dominates the corner: fewer "
                        "node-hours, tail and shed held.\n"
                      : "WARNING: the autoscaling corner flipped "
                        "(cheaper=" + std::to_string(cheaper) +
                            " tail_ok=" + std::to_string(tail_ok) +
                            " shed_ok=" + std::to_string(shed_ok) +
                            ").\n");

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "abl_autoscale")
            .field("commit", bench::gitCommitHash())
            .field("timestamp_utc", bench::isoTimestampUtc())
            .field("mode", smoke ? "smoke" : "full")
            .field("requests", requests)
            .field("arrival_rate", total_rate)
            .field("diurnal_amplitude", 0.75)
            .field("diurnal_period_s", period);
        auto corner = [&w](const char *name,
                           const coe::ClusterResult &r) {
            w.key(name)
                .beginObject()
                .field("node_hours", r.nodeHours)
                .field("p50_s", r.stream.p50LatencySeconds)
                .field("p95_s", r.stream.p95LatencySeconds)
                .field("p99_s", r.stream.p99LatencySeconds)
                .field("shed", r.stream.shed)
                .field("completed", r.stream.completed)
                .field("controller_ticks", r.controllerTicks)
                .field("controller_actions", r.controllerActions)
                .field("events", r.stream.eventsExecuted)
                .endObject();
        };
        corner("static", st);
        corner("reactive", re);
        w.field("node_hours_saved_pct", saved_pct)
            .field("p95_ratio", p95_ratio)
            .field("corner_holds", wins)
            .endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return wins ? 0 : 1;
}
