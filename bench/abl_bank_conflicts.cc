/**
 * @file
 * Ablation A3: PMU bank conflicts and the diagonally striped layout
 * (Sections IV-B and VII). Measures cycles for row-order and
 * column-order (transposed) vector reads of a tile under a linear
 * layout vs the diagonal stripe, across bank counts.
 */

#include <iostream>
#include <vector>

#include "arch/chip_config.h"
#include "arch/pmu.h"
#include "util/table.h"

using namespace sn40l;

namespace {

struct Cycles
{
    int row;
    int col;
};

Cycles
measure(arch::Pmu &pmu, bool striped, int lanes, std::int64_t cols)
{
    std::vector<std::int64_t> row_addrs, col_addrs;
    for (int i = 0; i < lanes; ++i) {
        if (striped) {
            row_addrs.push_back(pmu.diagonalStripeAddr(3, i, cols, 8));
            col_addrs.push_back(pmu.diagonalStripeAddr(i, 3, cols, 8));
        } else {
            row_addrs.push_back(arch::Pmu::linearAddr(3, i, cols, 8));
            col_addrs.push_back(arch::Pmu::linearAddr(i, 3, cols, 8));
        }
    }
    return {pmu.access(row_addrs).cycles, pmu.access(col_addrs).cycles};
}

} // namespace

int
main()
{
    std::cout << "Ablation A3: PMU scratchpad bank conflicts — linear "
              << "vs diagonally striped tile layout\n(vector access of "
              << "one tile row and one tile column = transpose read)\n\n";

    util::Table table({"Banks", "Layout", "Row read (cycles)",
                       "Column read (cycles)", "Transpose slowdown"});

    for (int banks : {4, 8, 16, 32}) {
        arch::ChipConfig cfg = arch::ChipConfig::sn40l();
        cfg.pmuBanks = banks;
        arch::Pmu linear(cfg, "linear"), striped(cfg, "striped");
        int lanes = banks;
        std::int64_t cols = 4 * banks;

        Cycles lin = measure(linear, false, lanes, cols);
        Cycles str = measure(striped, true, lanes, cols);

        table.addRow({std::to_string(banks), "linear",
                      std::to_string(lin.row), std::to_string(lin.col),
                      util::formatDouble(
                          static_cast<double>(lin.col) / lin.row, 0) +
                          "x"});
        table.addRow({std::to_string(banks), "diagonal stripe",
                      std::to_string(str.row), std::to_string(str.col),
                      util::formatDouble(
                          static_cast<double>(str.col) / str.row, 0) +
                          "x"});
    }
    table.print(std::cout);

    std::cout << "\nThe stripe reads the same tensor in regular and "
              << "transposed order at full\nbandwidth — the hardware "
              << "hook behind fusing Transpose as an access pattern.\n";
    return 0;
}
