/**
 * @file
 * Chaos ablation: do the degraded-mode serving policies actually keep
 * work from being silently lost when the cluster misbehaves? Every
 * corner replays the SAME recorded multi-tenant trace (3 priority
 * tiers with SLO deadlines) against the SAME JSONL-shaped fault
 * schedule — a node crash with a later rejoin, a DMA stall window, a
 * straggler window, and a flaky-dispatch window — so the policies
 * compete on identical traffic and identical injected misbehaviour:
 *
 *  - no-policy: faults with every degraded-mode policy off. Displaced
 *    work (crash queues, flaky dispatches) is counted lost.
 *
 *  - retry-only: bounded re-dispatch with exponential backoff under a
 *    cluster-wide retry budget.
 *
 *  - retry+hedge+brownout: retries plus hedged dispatch (duplicate to
 *    the best other node when the queueing estimate threatens the
 *    deadline, cancel the loser) plus priority-tier brown-out (shed
 *    the free tier at the door while queues are in overload).
 *
 * The corner under test, gating CI: with the full policy stack at
 * least 99% of arrivals are completed-or-shed (shed is an accounted,
 * deliberate degradation; lost is the silent failure), retries
 * recover strictly more work than no-policy, and the p99 tail stays
 * within a bounded multiple of the fault-free baseline. The full
 * corner must also be bit-identical between -j 1 and -j 2 — chaos
 * does not get to break determinism. Exits non-zero if any axis
 * flips.
 *
 *   abl_chaos [--smoke] [--requests N] [--json FILE]
 *
 * Emits BENCH_chaos.json.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/faults.h"
#include "coe/workload.h"
#include "perf_common.h"
#include "sim/event_queue.h"
#include "util/json.h"
#include "util/table.h"

using namespace sn40l;

namespace {

/** Record the shared multi-tenant arrival trace in memory (same
 *  model and RNG draws as a --trace-out file, no disk). */
std::shared_ptr<const std::vector<coe::TraceEntry>>
recordTrace(const coe::ServingConfig &gen)
{
    sim::EventQueue eq;
    std::unique_ptr<coe::WorkloadModel> model =
        coe::makeWorkloadModel(gen);
    auto entries = std::make_shared<std::vector<coe::TraceEntry>>();
    model->bind(eq, [&](const coe::TrafficRequest &r) {
        entries->push_back({r, eq.now()});
    });
    model->start();
    eq.run(); // open loop: arrivals self-schedule
    return entries;
}

struct Corner
{
    std::string name;
    coe::ClusterResult r;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 40'000;
    bool requests_set = false;
    std::string json_path = "BENCH_chaos.json";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "abl_chaos: " << arg
                          << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--json") json_path = next();
        else {
            std::cerr << "usage: abl_chaos [--smoke] [--requests N] "
                      << "[--json FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 8'000;

    const int nodes = 4;
    const double total_rate = 24.0;
    const double duration = static_cast<double>(requests) / total_rate;

    coe::ServingConfig gen;
    gen.mode = coe::ServingMode::EventDriven;
    gen.numExperts = 150;
    gen.batch = 8;
    gen.streamRequests = requests;
    gen.arrivalRatePerSec = total_rate;
    gen.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    gen.seed = 13;
    gen.workload.tenants = 3;      // priority tiers 0/1/2
    gen.workload.sloSeconds = 0.4; // deadlines widen with priority

    // The fault schedule, timed as fractions of the run so --smoke
    // exercises the same shape: a crash that rejoins, a DMA stall, a
    // straggler, and a flaky-dispatch window, each on its own node.
    auto faults = std::make_shared<std::vector<coe::FaultEvent>>(
        std::vector<coe::FaultEvent>{
            {0.20 * duration, coe::FaultKind::NodeCrash, 2, 1.0,
             0.20 * duration},
            {0.45 * duration, coe::FaultKind::DmaStall, 0, 4.0,
             0.10 * duration},
            {0.60 * duration, coe::FaultKind::Straggler, 1, 3.0,
             0.10 * duration},
            {0.75 * duration, coe::FaultKind::FlakyNode, 3, 0.4,
             0.10 * duration},
        });

    std::cout << "Chaos ablation: " << requests << " requests over "
              << util::formatDouble(duration, 0)
              << " s, 3 priority tiers, 400 ms base SLO, " << nodes
              << "-node replicate-hot cluster.\n"
              << "Fault schedule: crash node 2 (rejoins), DMA stall "
              << "x4 node 0, straggler x3 node 1,\nflaky 40% node 3. "
              << "Every corner replays the same trace and schedule.\n\n";

    std::shared_ptr<const std::vector<coe::TraceEntry>> trace =
        recordTrace(gen);

    coe::ClusterConfig base;
    base.nodes = nodes;
    base.placement = coe::PlacementPolicy::ReplicateHotPartitionCold;
    base.hotExperts = 15;
    // Round-robin so the -j 2 determinism leg runs the exact same
    // dispatch the -j 1 leg does (least-outstanding is serial-only).
    base.dispatch = coe::DispatchPolicy::RoundRobin;
    base.node = gen;
    base.node.workload.traceEntries = trace; // replay owns arrivals

    coe::ClusterConfig nopol_cfg = base;
    nopol_cfg.faults = faults;

    coe::ClusterConfig retry_cfg = nopol_cfg;
    retry_cfg.faultPolicy.retryMax = 4;
    retry_cfg.faultPolicy.retryBackoffSeconds = 0.025;

    coe::ClusterConfig full_cfg = retry_cfg;
    full_cfg.faultPolicy.hedge = true;
    full_cfg.faultPolicy.hedgeThreshold = 1.0;
    full_cfg.faultPolicy.brownoutDepth = 6.0;
    full_cfg.faultPolicy.brownoutPriorityMax = 0; // shed the free tier
    full_cfg.faultPolicy.policyTickSeconds = 0.05;

    coe::ClusterResult clean = coe::ClusterSimulator(base).run();
    std::vector<Corner> corners;
    corners.push_back({"no-policy",
                       coe::ClusterSimulator(nopol_cfg).run()});
    corners.push_back({"retry-only",
                       coe::ClusterSimulator(retry_cfg).run()});
    corners.push_back({"retry+hedge+brownout",
                       coe::ClusterSimulator(full_cfg).run()});

    // Determinism leg: the full policy stack again on the sharded
    // parallel path. Chaos rides the sync agenda, so -j 2 must be
    // bit-identical to -j 1.
    coe::ClusterConfig par_cfg = full_cfg;
    par_cfg.threads = 2;
    coe::ClusterResult par = coe::ClusterSimulator(par_cfg).run();

    if (clean.oom)
        { std::cerr << "abl_chaos: baseline went OOM\n"; return 1; }
    for (const Corner &c : corners) {
        if (c.r.oom) {
            std::cerr << "abl_chaos: corner " << c.name
                      << " went OOM\n";
            return 1;
        }
        // The library asserts arrivals == completed + shed + lost at
        // drain; re-check the ledger here against the planned count.
        if (c.r.stream.completed + c.r.stream.shed +
                c.r.stream.lost != requests) {
            std::cerr << "abl_chaos: corner " << c.name
                      << " leaked requests\n";
            return 1;
        }
    }

    util::Table table({"Corner", "Completed", "Shed", "Lost",
                       "Retried", "Hedged", "Won", "p50", "p99"});
    auto addRow = [&table](const std::string &name,
                           const coe::ClusterResult &r) {
        const coe::StreamMetrics &m = r.stream;
        table.addRow({name, std::to_string(m.completed),
                      std::to_string(m.shed), std::to_string(m.lost),
                      std::to_string(m.retried),
                      std::to_string(m.hedged),
                      std::to_string(m.hedgeWon),
                      util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds)});
    };
    addRow("fault-free", clean);
    for (const Corner &c : corners)
        addRow(c.name, c.r);
    addRow("  full, -j 2", par);
    table.print(std::cout);

    const coe::StreamMetrics &nopol = corners[0].r.stream;
    const coe::StreamMetrics &retry = corners[1].r.stream;
    const coe::StreamMetrics &full = corners[2].r.stream;

    // The gate. Shed is deliberate, accounted degradation (SLO
    // admission + brown-out); lost is the silent failure the layer
    // exists to bound.
    const double p99_cap = 5.0;
    double served_frac = requests > 0
        ? static_cast<double>(full.completed + full.shed) /
            static_cast<double>(requests)
        : 0.0;
    double p99_ratio = clean.stream.p99LatencySeconds > 0.0
        ? full.p99LatencySeconds / clean.stream.p99LatencySeconds
        : 0.0;
    bool faults_bite = nopol.lost > 0;
    bool served_ok = served_frac >= 0.99;
    bool retry_recovers = retry.lost < nopol.lost;
    bool tail_ok = full.p99LatencySeconds <=
        p99_cap * clean.stream.p99LatencySeconds;
    bool deterministic = par.stream.completed == full.completed &&
        par.stream.shed == full.shed &&
        par.stream.lost == full.lost &&
        par.stream.retried == full.retried &&
        par.stream.hedged == full.hedged &&
        par.stream.hedgeWon == full.hedgeWon &&
        par.crashes == corners[2].r.crashes &&
        par.faultsInjected == corners[2].r.faultsInjected &&
        par.stream.p99LatencySeconds == full.p99LatencySeconds;
    bool wins = faults_bite && served_ok && retry_recovers &&
        tail_ok && deterministic;

    std::cout << "\nFull policy stack served-or-shed "
              << util::formatDouble(served_frac * 100.0, 2)
              << "% of arrivals (lost " << full.lost << " vs "
              << nopol.lost << " with no policy) at "
              << util::formatDouble(p99_ratio, 2)
              << "x the fault-free p99.\n"
              << (wins ? "chaos corner holds: nothing silently lost "
                         "beyond 1%, tail bounded, -j 2 bit-identical.\n"
                       : "WARNING: the chaos corner flipped (bite=" +
                             std::to_string(faults_bite) + " served=" +
                             std::to_string(served_ok) + " retry=" +
                             std::to_string(retry_recovers) +
                             " tail=" + std::to_string(tail_ok) +
                             " det=" + std::to_string(deterministic) +
                             ").\n");

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "abl_chaos")
            .field("commit", bench::gitCommitHash())
            .field("timestamp_utc", bench::isoTimestampUtc())
            .field("mode", smoke ? "smoke" : "full")
            .field("requests", requests)
            .field("arrival_rate", total_rate)
            .field("slo_s", gen.workload.sloSeconds)
            .field("fault_events",
                   static_cast<int>(faults->size()));
        auto corner = [&w](const char *name,
                           const coe::ClusterResult &r) {
            w.key(name)
                .beginObject()
                .field("completed", r.stream.completed)
                .field("shed", r.stream.shed)
                .field("lost", r.stream.lost)
                .field("retried", r.stream.retried)
                .field("hedged", r.stream.hedged)
                .field("hedge_won", r.stream.hedgeWon)
                .field("crashes", r.crashes)
                .field("faults_injected", r.faultsInjected)
                .field("p50_s", r.stream.p50LatencySeconds)
                .field("p99_s", r.stream.p99LatencySeconds)
                .field("events", r.stream.eventsExecuted)
                .endObject();
        };
        corner("fault_free", clean);
        corner("no_policy", corners[0].r);
        corner("retry_only", corners[1].r);
        corner("full_policy", corners[2].r);
        corner("full_policy_j2", par);
        w.field("served_or_shed_frac", served_frac)
            .field("p99_ratio", p99_ratio)
            .field("p99_cap", p99_cap)
            .field("deterministic", deterministic)
            .field("corner_holds", wins)
            .endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return wins ? 0 : 1;
}
