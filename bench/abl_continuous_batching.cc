/**
 * @file
 * Ablation A9: continuous batching under a live request stream.
 * Sweeps the open-loop arrival rate against the scheduler policy
 * (FIFO vs expert-affinity) on an SN40L node serving 150 Llama2-7B
 * experts with Zipf routing, and reports tail latency, sustained
 * throughput, and expert-cache miss rate — the queueing behaviour the
 * closed-form averager of Fig 1 cannot show.
 *
 *   $ ./build/bench/abl_continuous_batching [requests]
 */

#include <cstdlib>
#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

int
main(int argc, char **argv)
{
    int requests = argc > 1 ? std::atoi(argv[1]) : 400;

    std::cout << "Ablation A9: continuous batching (SN40L node, 150 "
              << "experts, Zipf routing,\nmax batch 8, " << requests
              << " requests per cell)\n\n";

    util::Table table({"Arrival req/s", "Scheduler", "p50", "p95", "p99",
                       "Throughput", "Miss rate", "Mean queue"});

    for (double rate : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        for (SchedulerPolicy policy :
             {SchedulerPolicy::Fifo, SchedulerPolicy::ExpertAffinity}) {
            ServingConfig cfg;
            cfg.mode = ServingMode::EventDriven;
            cfg.platform = Platform::Sn40l;
            cfg.numExperts = 150;
            cfg.batch = 8;
            cfg.streamRequests = requests;
            cfg.routing = RoutingDistribution::Zipf;
            cfg.arrivalRatePerSec = rate;
            cfg.scheduler = policy;
            cfg.seed = 11;

            ServingResult r = ServingSimulator(cfg).run();
            const StreamMetrics &m = r.stream;
            table.addRow({util::formatDouble(rate, 0),
                          schedulerPolicyName(policy),
                          util::formatSeconds(m.p50LatencySeconds),
                          util::formatSeconds(m.p95LatencySeconds),
                          util::formatSeconds(m.p99LatencySeconds),
                          util::formatDouble(m.throughputRequestsPerSec, 2)
                              + " req/s",
                          util::formatDouble(r.missRate * 100, 1) + "%",
                          util::formatDouble(m.meanQueueDepth, 1)});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nBelow saturation both schedulers track the arrival "
              << "rate; past it,\nthroughput clamps at the service rate "
              << "and queueing delay dominates the\ntail. Expert-affinity "
              << "batching trades arrival order for fewer expert\n"
              << "switches, cutting the miss rate on skewed routing.\n";
    return 0;
}
