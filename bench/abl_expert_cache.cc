/**
 * @file
 * Ablation A5: expert caching policy and routing locality. Sweeps the
 * HBM expert-region size and routing distribution and reports miss
 * rates and per-request switch time on the SN40L — quantifying the
 * "HBM as software-managed cache between DDR and SRAM" design
 * (Section III-B).
 */

#include <iostream>

#include "coe/coe_runtime.h"
#include "coe/router.h"
#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

double
missRate(int experts, int cache_slots, RoutingDistribution dist)
{
    ExpertZoo zoo =
        ExpertZoo::uniform(experts, models::LlmConfig::llama2_7b());
    double expert_bytes = zoo.expert(0).bytes;
    CoeRuntime runtime(zoo, static_cast<std::int64_t>(
                                cache_slots * expert_bytes * 1.001));
    Router router(experts, dist, 7);

    int misses = 0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i) {
        if (!runtime.activate(router.route()).hit)
            ++misses;
    }
    return static_cast<double>(misses) / trials;
}

} // namespace

int
main()
{
    std::cout << "Ablation A5: expert cache (150 experts in DDR, LRU "
              << "region in HBM)\n\n";

    util::Table table({"HBM slots", "Uniform miss", "Zipf miss",
                       "RoundRobin miss", "Avg switch/req (uniform)"});

    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    double switch_s = ServingSimulator(cfg).phaseCosts().switchSeconds;

    for (int slots : {5, 10, 20, 38, 75, 150}) {
        double uni = missRate(150, slots, RoutingDistribution::Uniform);
        double zipf = missRate(150, slots, RoutingDistribution::Zipf);
        double rr = missRate(150, slots, RoutingDistribution::RoundRobin);
        table.addRow({std::to_string(slots),
                      util::formatDouble(uni * 100, 1) + "%",
                      util::formatDouble(zipf * 100, 1) + "%",
                      util::formatDouble(rr * 100, 1) + "%",
                      util::formatSeconds(uni * switch_s)});
    }
    table.print(std::cout);

    std::cout << "\nLRU exploits the temporal locality the paper relies "
              << "on; round-robin\nrouting defeats any cache smaller "
              << "than the expert count, and Zipf\n(real deployments) "
              << "makes even a small region effective.\n";
    return 0;
}
