/**
 * @file
 * Ablation A5: expert caching policy and routing locality. Sweeps the
 * HBM expert-region size and routing distribution and reports miss
 * rates and per-request switch time on the SN40L — quantifying the
 * "HBM as software-managed cache between DDR and SRAM" design
 * (Section III-B).
 *
 * The first table drives the LRU runtime directly (synchronous
 * protocol); the second serves a live EventDriven stream where each
 * region size bounds the working set the async runtime can pin, and
 * misses are real DMA transfers whose exposed stall is measured.
 */

#include <iostream>

#include "coe/coe_runtime.h"
#include "coe/router.h"
#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

double
missRate(int experts, int cache_slots, RoutingDistribution dist)
{
    ExpertZoo zoo =
        ExpertZoo::uniform(experts, models::LlmConfig::llama2_7b());
    double expert_bytes = zoo.expert(0).bytes;
    CoeRuntime runtime(zoo, static_cast<std::int64_t>(
                                cache_slots * expert_bytes * 1.001));
    Router router(experts, dist, 7);

    int misses = 0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i) {
        if (!runtime.activate(router.route()).hit)
            ++misses;
    }
    return static_cast<double>(misses) / trials;
}

} // namespace

int
main()
{
    std::cout << "Ablation A5: expert cache (150 experts in DDR, LRU "
              << "region in HBM)\n\n";

    util::Table table({"HBM slots", "Uniform miss", "Zipf miss",
                       "RoundRobin miss", "Avg switch/req (uniform)"});

    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    double switch_s = ServingSimulator(cfg).phaseCosts().switchSeconds;

    for (int slots : {5, 10, 20, 38, 75, 150}) {
        double uni = missRate(150, slots, RoutingDistribution::Uniform);
        double zipf = missRate(150, slots, RoutingDistribution::Zipf);
        double rr = missRate(150, slots, RoutingDistribution::RoundRobin);
        table.addRow({std::to_string(slots),
                      util::formatDouble(uni * 100, 1) + "%",
                      util::formatDouble(zipf * 100, 1) + "%",
                      util::formatDouble(rr * 100, 1) + "%",
                      util::formatSeconds(uni * switch_s)});
    }
    table.print(std::cout);

    // --------------------------------------------------------------
    // The same sweep against the event-driven serving path: the
    // region size is applied through ServingConfig::expertRegionBytes
    // and every miss streams through the node's DMA engines.
    std::cout << "\nEvent-driven stream per region size (batch 1, Zipf "
              << "vs uniform routing,\n8 req/s, 250 requests):\n\n";

    double expert_bytes =
        models::LlmConfig::llama2_7b().weightBytes();

    util::Table stream({"HBM slots", "Routing", "p95", "Miss-stall p95",
                        "Miss rate", "DMA loads"});
    for (int slots : {10, 20, 38}) {
        for (RoutingDistribution dist :
             {RoutingDistribution::Zipf, RoutingDistribution::Uniform}) {
            ServingConfig scfg;
            scfg.platform = Platform::Sn40l;
            scfg.mode = ServingMode::EventDriven;
            scfg.numExperts = 150;
            scfg.batch = 1;
            scfg.routing = dist;
            scfg.streamRequests = 250;
            scfg.arrivalRatePerSec = 8.0;
            scfg.seed = 7;
            scfg.expertRegionBytes =
                static_cast<std::int64_t>(slots * expert_bytes * 1.001);

            ServingSimulator sim(scfg);
            ServingResult r = sim.run();
            stream.addRow(
                {std::to_string(slots), routingDistributionName(dist),
                 util::formatSeconds(r.stream.p95LatencySeconds),
                 util::formatSeconds(r.stream.p95SwitchStallSeconds),
                 util::formatDouble(r.missRate * 100, 1) + "%",
                 util::formatDouble(sim.stats().get("dma_loads_issued"),
                                    0)});
        }
    }
    stream.print(std::cout);

    std::cout << "\nLRU exploits the temporal locality the paper relies "
              << "on; round-robin\nrouting defeats any cache smaller "
              << "than the expert count, and Zipf\n(real deployments) "
              << "makes even a small region effective.\n";
    return 0;
}
