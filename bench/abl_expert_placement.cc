/**
 * @file
 * Expert-placement ablation for the multi-node serving cluster (the
 * CoServe trade-off, arXiv:2503.02354): on a Zipf-routed CoE, what
 * does each placement buy?
 *
 *  - full replication: every expert on every node. Best tail latency
 *    (any node serves anything) but the placement demands N copies of
 *    the whole zoo.
 *
 *  - balanced partition: every expert on exactly one node. Minimal
 *    footprint, but the Zipf head funnels through single nodes, which
 *    queue while their siblings idle.
 *
 *  - replicate-hot / partition-cold: the popularity head is
 *    replicated everywhere, the cold tail sharded. At >= 4 nodes on
 *    Zipf(1.0) it beats partition on p95 (hot traffic spreads) while
 *    demanding far less HBM than replication (the tail is not copied
 *    N times).
 *
 * Dispatch is least-outstanding throughout so the differences come
 * from placement eligibility, not the dispatcher.
 *
 *   abl_expert_placement [requests-per-point]   (default 1200)
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "util/table.h"

using namespace sn40l;

int
main(int argc, char **argv)
{
    int requests = 1200;
    if (argc > 1)
        requests = std::stoi(argv[1]);

    std::cout << "Expert placement ablation: 150 experts, Zipf(1.0) "
              << "routing, least-outstanding dispatch,\n"
              << "16 req/s offered per node, " << requests
              << " requests per point. replicate-hot copies the\n"
              << "15 hottest experts to every node and shards the "
              << "135-expert tail.\n\n";

    const std::vector<int> node_counts = {1, 4, 8};
    const std::vector<coe::PlacementPolicy> placements = {
        coe::PlacementPolicy::FullReplication,
        coe::PlacementPolicy::ReplicateHotPartitionCold,
        coe::PlacementPolicy::BalancedPartition,
    };

    util::Table table({"Nodes", "Placement", "Replicas", "Placed HBM",
                       "Peak resident", "p50", "p95", "p99", "Miss rate",
                       "Imbalance"});

    double hot_p95_4 = 0.0, part_p95_4 = 0.0;
    double hot_placed_4 = 0.0, repl_placed_4 = 0.0;

    for (int nodes : node_counts) {
        for (coe::PlacementPolicy placement : placements) {
            coe::ClusterConfig cfg;
            cfg.nodes = nodes;
            cfg.placement = placement;
            cfg.dispatch = coe::DispatchPolicy::LeastOutstanding;
            cfg.hotExperts = 15;
            cfg.node.mode = coe::ServingMode::EventDriven;
            cfg.node.numExperts = 150;
            cfg.node.batch = 8;
            cfg.node.streamRequests = requests;
            cfg.node.arrivalRatePerSec = 16.0 * nodes;
            cfg.node.routing = coe::RoutingDistribution::Zipf;
            cfg.node.zipfS = 1.0;
            cfg.node.scheduler = coe::SchedulerPolicy::ExpertAffinity;
            cfg.node.seed = 3;

            coe::ClusterResult r = coe::ClusterSimulator(cfg).run();
            const coe::StreamMetrics &m = r.stream;
            table.addRow({std::to_string(nodes),
                          coe::placementPolicyName(placement),
                          std::to_string(r.expertReplicas),
                          util::formatBytes(r.placedBytesTotal),
                          util::formatBytes(static_cast<double>(
                              r.peakResidentBytesTotal)),
                          util::formatSeconds(m.p50LatencySeconds),
                          util::formatSeconds(m.p95LatencySeconds),
                          util::formatSeconds(m.p99LatencySeconds),
                          util::formatDouble(r.missRate * 100, 1) + "%",
                          util::formatDouble(r.loadImbalance, 2) + "x"});

            if (nodes == 4) {
                if (placement ==
                    coe::PlacementPolicy::ReplicateHotPartitionCold) {
                    hot_p95_4 = m.p95LatencySeconds;
                    hot_placed_4 = r.placedBytesTotal;
                } else if (placement ==
                           coe::PlacementPolicy::BalancedPartition) {
                    part_p95_4 = m.p95LatencySeconds;
                } else {
                    repl_placed_4 = r.placedBytesTotal;
                }
            }
        }
    }
    table.print(std::cout);

    std::cout << "\nAt 4 nodes: replicate-hot p95 is "
              << util::formatDouble(
                     part_p95_4 > 0.0 ? hot_p95_4 / part_p95_4 * 100.0
                                      : 0.0,
                     1)
              << "% of partition's, with "
              << util::formatDouble(
                     repl_placed_4 > 0.0
                         ? hot_placed_4 / repl_placed_4 * 100.0
                         : 0.0,
                     1)
              << "% of replication's placed HBM.\n";

    bool hot_wins = hot_p95_4 < part_p95_4 && hot_placed_4 < repl_placed_4;
    std::cout << (hot_wins
                      ? "replicate-hot dominates the corner: faster tail "
                        "than partition, smaller footprint than "
                        "replication.\n"
                      : "WARNING: replicate-hot did not win both axes "
                        "at 4 nodes.\n");
    return hot_wins ? 0 : 1;
}
