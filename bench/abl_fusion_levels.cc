/**
 * @file
 * Ablation A4: Table I generalized. Sweeps Monarch FFT decomposition
 * order (2/3/4 radices at 1M sequence) and reports operational
 * intensity and simulated execution time at each fusion level —
 * higher-order decompositions create more, smaller GEMMs and lean
 * harder on fusion (Section III-A).
 */

#include <iostream>

#include "graph/intensity.h"
#include "models/fft_conv.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);

    std::cout << "Ablation A4: Monarch FFT convolution at 1M sequence — "
              << "decomposition order vs fusion level\n\n";

    struct Order
    {
        const char *name;
        std::vector<std::int64_t> radices;
    };
    const Order orders[] = {
        {"order-2 (1024x1024)", {1024, 1024}},
        {"order-3 (128x128x64)", {128, 128, 64}},
        {"order-4 (32x32x32x32)", {32, 32, 32, 32}},
    };

    util::Table table({"Decomposition", "Ops", "OI unfused", "OI fused",
                       "Unfused", "Fused", "Speedup"});

    for (const Order &order : orders) {
        models::FftConvSpec spec;
        spec.radices = order.radices;
        graph::DataflowGraph g = models::buildFftConv(spec);

        auto unfused_oi =
            graph::operationalIntensity(g, graph::singleOpGroups(g));
        auto fused_oi =
            graph::operationalIntensity(g, graph::singleGroup(g));

        double unfused = runtime::runWorkload(
            g, node, 1, runtime::RunConfig::Unfused).seconds();
        double fused = runtime::runWorkload(
            g, node, 1, runtime::RunConfig::FusedHO).seconds();

        table.addRow({order.name, std::to_string(g.numOps()),
                      util::formatDouble(unfused_oi.intensity(), 1),
                      util::formatDouble(fused_oi.intensity(), 1),
                      util::formatSeconds(unfused),
                      util::formatSeconds(fused),
                      util::formatDouble(unfused / fused, 1) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nSmaller radices cut GEMM FLOPs (sum vs product of "
              << "radices) but add\nstages and transposes — worthless "
              << "without fusion, a large win with it.\n";
    return 0;
}
