/**
 * @file
 * Interconnect ablation: does topology-aware dispatch actually route
 * around fabric congestion? Every corner replays the SAME recorded
 * Zipf request stream through an 8-node fully-replicated cluster (so
 * dispatch has full freedom), across a topology x dispatch grid:
 *
 *   {star, mesh, fat-tree} x {round-robin, topo-aware}
 *
 * with the SAME link-degrade fault schedule: node 2's fabric links
 * are stretched 40x for the middle of the run (a flapping NIC). Links
 * are deliberately thin (1 Gb/s) so the degraded link saturates under
 * round-robin's blind 1/8 share — the backlog then head-of-line
 * blocks the shared hub uplink and the whole cluster's tail pays.
 * Topology-aware dispatch reads path congestion off the fabric and
 * steers arrivals away from the sick node.
 *
 * The corner under test, gating CI: on the star topology under the
 * degraded link, topo-aware p95 must beat round-robin p95. Exits
 * non-zero if that flips.
 *
 *   abl_interconnect [--smoke] [--requests N] [--json FILE]
 *
 * Emits BENCH_interconnect.json.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/faults.h"
#include "coe/workload.h"
#include "perf_common.h"
#include "sim/event_queue.h"
#include "util/json.h"
#include "util/table.h"

using namespace sn40l;

namespace {

/** Record the shared arrival trace in memory (same model and RNG
 *  draws as a --trace-out file, no disk). */
std::shared_ptr<const std::vector<coe::TraceEntry>>
recordTrace(const coe::ServingConfig &gen)
{
    sim::EventQueue eq;
    std::unique_ptr<coe::WorkloadModel> model =
        coe::makeWorkloadModel(gen);
    auto entries = std::make_shared<std::vector<coe::TraceEntry>>();
    model->bind(eq, [&](const coe::TrafficRequest &r) {
        entries->push_back({r, eq.now()});
    });
    model->start();
    eq.run(); // open loop: arrivals self-schedule
    return entries;
}

struct Corner
{
    std::string topology;
    std::string dispatch;
    coe::ClusterResult r;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 20'000;
    bool requests_set = false;
    std::string json_path = "BENCH_interconnect.json";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "abl_interconnect: " << arg
                          << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--json") json_path = next();
        else {
            std::cerr << "usage: abl_interconnect [--smoke] "
                      << "[--requests N] [--json FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 4'000;

    const int nodes = 8;
    const double total_rate = 8.0 * nodes;
    const double duration = static_cast<double>(requests) / total_rate;

    coe::ServingConfig gen;
    gen.mode = coe::ServingMode::EventDriven;
    gen.numExperts = 150;
    gen.batch = 8;
    gen.streamRequests = requests;
    gen.arrivalRatePerSec = total_rate;
    gen.routing = coe::RoutingDistribution::Zipf;
    gen.zipfS = 1.0;
    gen.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    gen.seed = 17;

    // Node 2's links flap for the middle half of the run: stretched
    // 40x, which pushes its 1 Gb/s links below round-robin's offered
    // 1/8 share of the dispatch payload stream.
    auto faults = std::make_shared<std::vector<coe::FaultEvent>>(
        std::vector<coe::FaultEvent>{
            {0.20 * duration, coe::FaultKind::LinkDegrade, 2, 40.0,
             0.50 * duration},
        });

    std::cout << "Interconnect ablation: " << requests
              << " requests over " << util::formatDouble(duration, 0)
              << " s, " << nodes << "-node replicated cluster, "
              << "1 Gb/s links.\nFault: node 2 links x40 from "
              << util::formatDouble(0.2 * duration, 0) << " s to "
              << util::formatDouble(0.7 * duration, 0)
              << " s. Every corner replays the same trace.\n\n";

    std::shared_ptr<const std::vector<coe::TraceEntry>> trace =
        recordTrace(gen);

    coe::ClusterConfig base;
    base.nodes = nodes;
    base.placement = coe::PlacementPolicy::FullReplication;
    base.node = gen;
    base.node.workload.traceEntries = trace; // replay owns arrivals
    base.faults = faults;
    base.fabric.enabled = true;
    base.fabric.linkGbps = 1.0;

    const sim::Topology topologies[] = {
        sim::Topology::Star, sim::Topology::Mesh2D,
        sim::Topology::FatTree};
    const coe::DispatchPolicy dispatches[] = {
        coe::DispatchPolicy::RoundRobin,
        coe::DispatchPolicy::TopologyAware};

    util::Table table({"Topology", "Dispatch", "p50", "p95", "p99",
                       "Credit stalls", "Max link util"});
    std::vector<Corner> corners;
    for (sim::Topology topo : topologies) {
        for (coe::DispatchPolicy disp : dispatches) {
            coe::ClusterConfig cfg = base;
            cfg.fabric.topology = topo;
            cfg.dispatch = disp;
            coe::ClusterResult r = coe::ClusterSimulator(cfg).run();
            if (r.oom) {
                std::cerr << "abl_interconnect: "
                          << sim::topologyName(topo) << "/"
                          << coe::dispatchPolicyName(disp)
                          << " went OOM\n";
                return 1;
            }
            if (r.stream.completed + r.stream.shed + r.stream.lost !=
                requests) {
                std::cerr << "abl_interconnect: "
                          << sim::topologyName(topo) << "/"
                          << coe::dispatchPolicyName(disp)
                          << " leaked requests\n";
                return 1;
            }
            table.addRow(
                {sim::topologyName(topo),
                 coe::dispatchPolicyName(disp),
                 util::formatSeconds(r.stream.p50LatencySeconds),
                 util::formatSeconds(r.stream.p95LatencySeconds),
                 util::formatSeconds(r.stream.p99LatencySeconds),
                 std::to_string(r.networkCreditStalls),
                 util::formatDouble(
                     r.networkMaxLinkUtilization * 100.0, 1) +
                     "%"});
            corners.push_back({sim::topologyName(topo),
                               coe::dispatchPolicyName(disp), r});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    // The gate: the star corner, where the degraded spoke saturates
    // and head-of-line blocks the shared hub uplink under blind
    // round-robin. Topology-aware must win on p95.
    const coe::ClusterResult &star_rr = corners[0].r;
    const coe::ClusterResult &star_topo = corners[1].r;
    double rr_p95 = star_rr.stream.p95LatencySeconds;
    double topo_p95 = star_topo.stream.p95LatencySeconds;
    bool congested = star_rr.networkCreditStalls > 0;
    bool wins = topo_p95 < rr_p95;

    std::cout << "\nStar under the degraded link: topo-aware p95 "
              << util::formatSeconds(topo_p95) << " vs round-robin "
              << util::formatSeconds(rr_p95) << " ("
              << util::formatDouble(
                     topo_p95 > 0.0 ? rr_p95 / topo_p95 : 0.0, 2)
              << "x)\n"
              << (wins && congested
                      ? "interconnect corner holds: congestion bites "
                        "and topology-aware routes around it.\n"
                      : "WARNING: the interconnect corner flipped "
                        "(congested=" + std::to_string(congested) +
                            " wins=" + std::to_string(wins) + ").\n");

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "abl_interconnect")
            .field("commit", bench::gitCommitHash())
            .field("timestamp_utc", bench::isoTimestampUtc())
            .field("mode", smoke ? "smoke" : "full")
            .field("requests", requests)
            .field("arrival_rate", total_rate)
            .field("link_gbps", base.fabric.linkGbps)
            .field("degrade_factor", 40.0);
        w.key("corners").beginArray();
        for (const Corner &c : corners) {
            w.beginObject()
                .field("topology", c.topology)
                .field("dispatch", c.dispatch)
                .field("p50_s", c.r.stream.p50LatencySeconds)
                .field("p95_s", c.r.stream.p95LatencySeconds)
                .field("p99_s", c.r.stream.p99LatencySeconds)
                .field("messages", c.r.networkMessages)
                .field("flits", c.r.networkFlits)
                .field("credit_stalls", c.r.networkCreditStalls)
                .field("max_link_utilization",
                       c.r.networkMaxLinkUtilization)
                .field("events", c.r.stream.eventsExecuted)
                .endObject();
        }
        w.endArray()
            .field("star_rr_p95_s", rr_p95)
            .field("star_topo_p95_s", topo_p95)
            .field("congested", congested)
            .field("corner_holds", wins && congested)
            .endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return (wins && congested) ? 0 : 1;
}
