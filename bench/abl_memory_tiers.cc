/**
 * @file
 * Ablation A2: the three-tier memory system. Serves the same
 * 150-expert CoE on (a) the SN40L as built (experts in DDR), (b) a
 * hypothetical SN40L without DDR whose experts spill to host DRAM
 * over PCIe, and (c) DGX baselines — isolating how much of the win
 * comes from the accelerator-local DDR tier (Section III-B).
 *
 * Part one is the closed-form per-batch accounting; part two serves a
 * live request stream in EventDriven mode, where every expert switch
 * is a real DMA transfer on the platform's MemorySystem and the
 * backing-tier bandwidth decides how much of it the router hides.
 */

#include <iostream>

#include "coe/serving.h"
#include "models/llm_config.h"
#include "runtime/machine.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

/** The no-DDR SN40L: expert backing is host DRAM over the host link. */
mem::MemorySystemConfig
hostSpillMemory(const arch::NodeConfig &node, int dma_engines)
{
    mem::MemorySystemConfig m;
    m.dmaEngines = dma_engines;
    m.ddr.channels = 1;
    m.ddr.perChannelBandwidth = node.chip.pcieBandwidth;
    m.ddr.efficiency = 1.0;
    m.hbm.channels = node.sockets;
    m.hbm.perChannelBandwidth = node.chip.hbmBandwidth;
    m.hbm.efficiency = node.chip.hbmEfficiency;
    return m;
}

} // namespace

int
main()
{
    std::cout << "Ablation A2: memory-tier ablation, 150 experts, BS=1, "
              << "20 tokens\n\n";

    ServingConfig cfg;
    cfg.numExperts = 150;
    cfg.requests = 200;

    cfg.platform = Platform::Sn40l;
    ServingSimulator rdu_sim(cfg);
    ServingResult rdu = rdu_sim.run();
    PhaseCosts costs = rdu_sim.phaseCosts();

    // SN40L-without-DDR: identical execution, but misses load over the
    // host PCIe link instead of node DDR.
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    double pcie_switch =
        models::LlmConfig::llama2_7b().weightBytes() /
        (node.chip.pcieBandwidth);
    double no_ddr_total = rdu.perBatch.routerSeconds +
        rdu.perBatch.execSeconds +
        rdu.missRate * pcie_switch; // per batch, BS=1

    cfg.platform = Platform::DgxA100;
    ServingResult a100 = ServingSimulator(cfg).run();
    cfg.platform = Platform::DgxH100;
    ServingResult h100 = ServingSimulator(cfg).run();

    util::Table table({"Configuration", "Switch path", "Per-request",
                       "vs three-tier"});
    double base = rdu.perBatch.total();
    table.addRow({"SN40L three-tier (DDR+HBM+SRAM)",
                  "DDR->HBM @ " + util::formatBandwidth(
                      node.ddrToHbmBandwidth()),
                  util::formatSeconds(base), "1.00x"});
    table.addRow({"SN40L w/o DDR (host spill)",
                  "host->HBM @ " + util::formatBandwidth(
                      node.chip.pcieBandwidth),
                  util::formatSeconds(no_ddr_total),
                  util::formatDouble(no_ddr_total / base, 2) + "x"});
    table.addRow({"DGX A100", "host->GPU @ 32 GB/s",
                  util::formatSeconds(a100.perBatch.total()),
                  util::formatDouble(a100.perBatch.total() / base, 2) +
                      "x"});
    table.addRow({"DGX H100", "host->GPU @ 64 GB/s",
                  util::formatSeconds(h100.perBatch.total()),
                  util::formatDouble(h100.perBatch.total() / base, 2) +
                      "x"});
    table.print(std::cout);

    std::cout << "\nSwitch time per expert: "
              << util::formatSeconds(costs.switchSeconds)
              << " (three-tier) vs "
              << util::formatSeconds(pcie_switch)
              << " (host spill) — the DDR tier is what makes "
              << "switching cheap.\n";

    // --------------------------------------------------------------
    // Live request stream: the same tiers under EventDriven serving,
    // where switches are DMA transfers that the router and decode
    // traffic can (or cannot) hide.
    std::cout << "\nEvent-driven stream (Zipf routing, batch 1, 6 req/s, "
              << "300 requests):\nexpert loads are DMA-scheduled on each "
              << "platform's memory system.\n\n";

    ServingConfig scfg;
    scfg.mode = ServingMode::EventDriven;
    scfg.numExperts = 150;
    scfg.batch = 1;
    scfg.routing = RoutingDistribution::Zipf;
    scfg.streamRequests = 300;
    scfg.arrivalRatePerSec = 6.0;
    scfg.seed = 5;

    struct Variant
    {
        const char *name;
        Platform platform;
        bool hostSpill;
    };
    const Variant variants[] = {
        {"SN40L three-tier", Platform::Sn40l, false},
        {"SN40L w/o DDR (host spill)", Platform::Sn40l, true},
        {"DGX A100", Platform::DgxA100, false},
        {"DGX H100", Platform::DgxH100, false},
    };

    util::Table stream({"Configuration", "p50", "p95", "Throughput",
                        "Miss-stall p95", "Miss rate"});
    for (const Variant &v : variants) {
        ServingConfig vcfg = scfg;
        vcfg.platform = v.platform;
        if (v.hostSpill)
            vcfg.memoryOverride = hostSpillMemory(node, vcfg.dmaEngines);
        ServingSimulator sim(vcfg);
        ServingResult r = sim.run();
        if (r.oom) {
            stream.addRow({v.name, "-", "-", "OUT OF MEMORY", "-", "-"});
            continue;
        }
        const StreamMetrics &m = r.stream;
        stream.addRow(
            {v.name, util::formatSeconds(m.p50LatencySeconds),
             util::formatSeconds(m.p95LatencySeconds),
             util::formatDouble(m.throughputRequestsPerSec, 2) + " req/s",
             util::formatSeconds(m.p95SwitchStallSeconds),
             util::formatDouble(r.missRate * 100, 1) + "%"});
    }
    stream.print(std::cout);

    std::cout << "\nWith node DDR the per-expert copy nearly vanishes "
              << "behind the router; over\nthe host link the same miss "
              << "rate turns into hundreds of milliseconds of\nexposed "
              << "stall per switch.\n";
    return 0;
}
