/**
 * @file
 * Ablation A2: the three-tier memory system. Serves the same
 * 150-expert CoE on (a) the SN40L as built (experts in DDR), (b) a
 * hypothetical SN40L without DDR whose experts spill to host DRAM
 * over PCIe, and (c) DGX baselines — isolating how much of the win
 * comes from the accelerator-local DDR tier (Section III-B).
 */

#include <iostream>

#include "coe/serving.h"
#include "models/llm_config.h"
#include "runtime/machine.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

int
main()
{
    std::cout << "Ablation A2: memory-tier ablation, 150 experts, BS=1, "
              << "20 tokens\n\n";

    ServingConfig cfg;
    cfg.numExperts = 150;
    cfg.requests = 200;

    cfg.platform = Platform::Sn40l;
    ServingSimulator rdu_sim(cfg);
    ServingResult rdu = rdu_sim.run();
    PhaseCosts costs = rdu_sim.phaseCosts();

    // SN40L-without-DDR: identical execution, but misses load over the
    // host PCIe link instead of node DDR.
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    double pcie_switch =
        models::LlmConfig::llama2_7b().weightBytes() /
        (node.chip.pcieBandwidth);
    double no_ddr_total = rdu.perBatch.routerSeconds +
        rdu.perBatch.execSeconds +
        rdu.missRate * pcie_switch; // per batch, BS=1

    cfg.platform = Platform::DgxA100;
    ServingResult a100 = ServingSimulator(cfg).run();
    cfg.platform = Platform::DgxH100;
    ServingResult h100 = ServingSimulator(cfg).run();

    util::Table table({"Configuration", "Switch path", "Per-request",
                       "vs three-tier"});
    double base = rdu.perBatch.total();
    table.addRow({"SN40L three-tier (DDR+HBM+SRAM)",
                  "DDR->HBM @ " + util::formatBandwidth(
                      node.ddrToHbmBandwidth()),
                  util::formatSeconds(base), "1.00x"});
    table.addRow({"SN40L w/o DDR (host spill)",
                  "host->HBM @ " + util::formatBandwidth(
                      node.chip.pcieBandwidth),
                  util::formatSeconds(no_ddr_total),
                  util::formatDouble(no_ddr_total / base, 2) + "x"});
    table.addRow({"DGX A100", "host->GPU @ 32 GB/s",
                  util::formatSeconds(a100.perBatch.total()),
                  util::formatDouble(a100.perBatch.total() / base, 2) +
                      "x"});
    table.addRow({"DGX H100", "host->GPU @ 64 GB/s",
                  util::formatSeconds(h100.perBatch.total()),
                  util::formatDouble(h100.perBatch.total() / base, 2) +
                      "x"});
    table.print(std::cout);

    std::cout << "\nSwitch time per expert: "
              << util::formatSeconds(costs.switchSeconds)
              << " (three-tier) vs "
              << util::formatSeconds(pcie_switch)
              << " (host spill) — the DDR tier is what makes "
              << "switching cheap.\n";
    return 0;
}
