/**
 * @file
 * Ablation A1: kernel-launch orchestration. Sweeps the software
 * launch overhead and reports the hardware-orchestration speedup for
 * a decode and a prefill workload — showing why the AGCU launch
 * sequencer (Section IV-D) matters for short-kernel decode but not
 * for long-kernel prefill.
 */

#include <iostream>

#include "models/transformer_builder.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace sn40l;

namespace {

double
hoSpeedup(const graph::DataflowGraph &g, arch::NodeConfig node,
          double sw_launch_us)
{
    node.chip.swLaunchOverhead = sim::fromUs(sw_launch_us);
    double so = runtime::runWorkload(g, node, 8,
                                     runtime::RunConfig::FusedSO)
                    .seconds();
    double ho = runtime::runWorkload(g, node, 8,
                                     runtime::RunConfig::FusedHO)
                    .seconds();
    return so / ho;
}

} // namespace

int
main()
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);

    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::mistral7b();
    spec.seqLen = 2048;
    spec.tensorParallel = 8;

    spec.phase = models::Phase::Decode;
    graph::DataflowGraph decode = models::buildTransformer(spec);
    spec.phase = models::Phase::Prefill;
    graph::DataflowGraph prefill = models::buildTransformer(spec);

    std::cout << "Ablation A1: HW-orchestration speedup vs software "
              << "launch cost\n(mistral-7B, 2K, TP8)\n\n";

    util::Table table({"SW launch overhead", "Decode HO speedup",
                       "Prefill HO speedup"});
    for (double us : {1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0}) {
        table.addRow({util::formatDouble(us, 0) + " us",
                      util::formatDouble(hoSpeedup(decode, node, us), 2) +
                          "x",
                      util::formatDouble(hoSpeedup(prefill, node, us), 2) +
                          "x"});
    }
    table.print(std::cout);

    std::cout << "\nDecode kernels are weight-load bound and short, so "
              << "launch overheads\ndominate exactly as Section VI-A2 "
              << "describes; prefill amortizes them.\n";
    return 0;
}
