/**
 * @file
 * Ablation A9: full experts vs LoRA adapters (Section VIII-4), now in
 * two parts.
 *
 * Part 1 is the static capacity table: bytes per expert, DDR->HBM
 * switch time, and experts-per-node for full fine-tuned experts vs
 * LoRA adapters at several ranks. The usable-DDR figure subtracts the
 * 256 GB host/OS reservation and is clamped at zero; a node whose DDR
 * cannot even cover the reservation is a configuration error and
 * fails fast instead of printing negative capacities.
 *
 * Part 2 serves a live PEFT expert zoo through the EventDriven
 * engine: thousands of rank-16 adapters share pinned base weights,
 * every adapter miss is a real (tiny) DMA transfer, and the HBM
 * expert region is swept to show the zoo hit rate rising with region
 * size. batch 1 keeps the adapter reference string identical across
 * points, so LRU's stack property makes the ramp deterministic — the
 * process exits non-zero if the hit rate ever falls as the region
 * grows, making this a CI gate for the zoo streaming path.
 *
 *   abl_peft_experts [--smoke] [--requests N] [--json FILE]
 *
 * Emits BENCH_peft_experts.json.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/chip_config.h"
#include "coe/serving.h"
#include "models/llm_config.h"
#include "perf_common.h"
#include "sim/log.h"
#include "util/json.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

struct ZooPoint
{
    int slots = 0;
    double hitRate = 0.0;
    double p95 = 0.0;
    double p95Stall = 0.0;
    double dmaLoads = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 2'000;
    bool requests_set = false;
    std::string json_path = "BENCH_peft_experts.json";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "abl_peft_experts: " << arg
                          << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--json") json_path = next();
        else {
            std::cerr << "usage: abl_peft_experts [--smoke] "
                      << "[--requests N] [--json FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 400;

    // ------------------------------------------------------------
    // Part 1: static capacity table.
    models::LlmConfig base = models::LlmConfig::llama2_7b();
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    double switch_rate = node.ddrToHbmBandwidth();
    const double host_reserve = 256e9;
    double total_ddr = static_cast<double>(node.totalDdrBytes());
    if (host_reserve > total_ddr)
        sim::fatal("abl_peft_experts: the 256 GB host reservation "
                   "exceeds node DDR — no capacity left for experts");
    double usable_ddr = std::max(0.0, total_ddr - host_reserve);

    std::cout << "Ablation A9: full experts vs LoRA adapters "
              << "(one SN40L node)\n\n";

    util::Table table({"Expert granularity", "Bytes/expert",
                       "Switch time", "Experts per node (DDR)",
                       "Quality caveat"});

    double full = base.weightBytes();
    table.addRow({"Full fine-tuned 7B", util::formatBytes(full),
                  util::formatSeconds(full / switch_rate),
                  std::to_string(static_cast<long>(usable_ddr / full)),
                  "reference"});

    for (int rank : {8, 16, 64}) {
        double bytes = loraAdapterBytes(base, rank);
        table.addRow({"LoRA rank-" + std::to_string(rank),
                      util::formatBytes(bytes),
                      util::formatSeconds(bytes / switch_rate),
                      std::to_string(
                          static_cast<long>(usable_ddr / bytes)),
                      "below SFT on several tasks"});
    }
    table.print(std::cout);

    // ------------------------------------------------------------
    // Part 2: live zoo sweep. 2000 rank-16 adapters behind pinned
    // base weights, Zipf-routed, each miss a real DMA transfer.
    const int adapters = 2'000;
    const int rank = 16;
    double adapter_bytes = loraAdapterBytes(base, rank);

    std::cout << "\nLive zoo stream: " << adapters << " rank-" << rank
              << " adapters ("
              << util::formatBytes(adapter_bytes)
              << " each) sharing pinned base\nweights, Zipf(1.0) "
              << "routing, batch 1, " << requests
              << " requests. The HBM region\nbounds how many adapters "
              << "stay resident; misses stream over DMA.\n\n";

    std::vector<int> slot_sweep = {16, 64, 256, 1024, adapters};
    std::vector<ZooPoint> pts;
    util::Table zoo_table({"Adapter slots", "Hit rate", "p95",
                           "Miss-stall p95", "DMA loads"});
    for (int slots : slot_sweep) {
        ServingConfig cfg;
        cfg.platform = Platform::Sn40l;
        cfg.mode = ServingMode::EventDriven;
        cfg.numExperts = adapters;
        cfg.zoo.enabled = true;
        cfg.zoo.rank = rank;
        cfg.batch = 1;
        cfg.routing = RoutingDistribution::Zipf;
        cfg.zipfS = 1.0;
        cfg.streamRequests = requests;
        cfg.arrivalRatePerSec = 16.0;
        cfg.seed = 7;
        // The engine reserves the pinned base trunk out of the
        // region; what is left holds `slots` adapters.
        cfg.expertRegionBytes = static_cast<std::int64_t>(
            base.weightBytes() + slots * adapter_bytes * 1.001);

        ServingSimulator sim(cfg);
        ServingResult r = sim.run();
        if (r.oom || r.stream.completed != requests) {
            std::cerr << "abl_peft_experts: zoo point slots=" << slots
                      << " did not complete\n";
            return 1;
        }
        ZooPoint p;
        p.slots = slots;
        p.hitRate = 1.0 - r.missRate;
        p.p95 = r.stream.p95LatencySeconds;
        p.p95Stall = r.stream.p95SwitchStallSeconds;
        p.dmaLoads = sim.stats().get("dma_loads_issued");
        pts.push_back(p);
        zoo_table.addRow({std::to_string(slots),
                          util::formatDouble(p.hitRate * 100, 1) + "%",
                          util::formatSeconds(p.p95),
                          util::formatSeconds(p.p95Stall),
                          util::formatDouble(p.dmaLoads, 0)});
    }
    zoo_table.print(std::cout);

    // The corner under test: a bigger region never hits less (LRU is
    // a stack algorithm and batch 1 fixes the reference string), and
    // the full-zoo region misses only on cold starts.
    bool monotone = true;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (pts[i].hitRate < pts[i - 1].hitRate)
            monotone = false;
    }
    bool full_region_hot = pts.back().hitRate >= pts.front().hitRate &&
        pts.back().dmaLoads <= static_cast<double>(adapters);
    bool holds = monotone && full_region_hot;

    std::cout << "\n"
              << (holds
                      ? "zoo corner holds: hit rate rises "
                        "monotonically with the adapter region,\nand "
                        "a full-zoo region pays only cold-start "
                        "loads.\n"
                      : "WARNING: the zoo corner flipped (monotone=" +
                            std::to_string(monotone) +
                            " full_region_hot=" +
                            std::to_string(full_region_hot) + ").\n");

    std::cout << "\nThe paper's Section VIII-4: PEFT does not reach "
              << "supervised fine-tuning\nquality in several scenarios, "
              << "which is why Samba-CoE hosts full experts —\nand why "
              << "the DDR tier (not adapter tricks) is what makes that "
              << "affordable.\n";

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "abl_peft_experts")
            .field("commit", bench::gitCommitHash())
            .field("timestamp_utc", bench::isoTimestampUtc())
            .field("mode", smoke ? "smoke" : "full")
            .field("requests", requests)
            .field("adapters", adapters)
            .field("rank", rank)
            .field("adapter_bytes", adapter_bytes)
            .field("full_expert_bytes", full);
        w.key("points").beginArray();
        for (const ZooPoint &p : pts) {
            w.beginObject()
                .field("slots", p.slots)
                .field("hit_rate", p.hitRate)
                .field("p95_s", p.p95)
                .field("p95_stall_s", p.p95Stall)
                .field("dma_loads", p.dmaLoads)
                .endObject();
        }
        w.endArray();
        w.field("monotone", monotone)
            .field("full_region_hot", full_region_hot)
            .field("corner_holds", holds)
            .endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return holds ? 0 : 1;
}
