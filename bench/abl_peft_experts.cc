/**
 * @file
 * Ablation A9: full experts vs LoRA adapters (Section VIII-4). PEFT
 * adapters shrink switching and hosting costs by orders of magnitude
 * but — per the papers the SN40L work cites — often trail full
 * fine-tuning in quality. This bench quantifies the systems side of
 * that trade-off on one SN40L node.
 */

#include <iostream>

#include "arch/chip_config.h"
#include "coe/coe_runtime.h"
#include "coe/router.h"
#include "models/llm_config.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

/** LoRA adapter bytes: rank-r A/B pairs on q/k/v/o, all layers, BF16. */
double
adapterBytes(const models::LlmConfig &cfg, int rank)
{
    double per_layer = 4.0 * (2.0 * rank * cfg.dModel) * 2.0;
    return per_layer * cfg.numLayers;
}

} // namespace

int
main()
{
    models::LlmConfig base = models::LlmConfig::llama2_7b();
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    double switch_rate = node.ddrToHbmBandwidth();
    double usable_ddr = static_cast<double>(node.totalDdrBytes()) - 256e9;

    std::cout << "Ablation A9: full experts vs LoRA adapters "
              << "(one SN40L node)\n\n";

    util::Table table({"Expert granularity", "Bytes/expert",
                       "Switch time", "Experts per node (DDR)",
                       "Quality caveat"});

    double full = base.weightBytes();
    table.addRow({"Full fine-tuned 7B", util::formatBytes(full),
                  util::formatSeconds(full / switch_rate),
                  std::to_string(static_cast<long>(usable_ddr / full)),
                  "reference"});

    for (int rank : {8, 16, 64}) {
        double bytes = adapterBytes(base, rank);
        table.addRow({"LoRA rank-" + std::to_string(rank),
                      util::formatBytes(bytes),
                      util::formatSeconds(bytes / switch_rate),
                      std::to_string(
                          static_cast<long>(usable_ddr / bytes)),
                      "below SFT on several tasks"});
    }
    table.print(std::cout);

    std::cout << "\nThe paper's Section VIII-4: PEFT does not reach "
              << "supervised fine-tuning\nquality in several scenarios, "
              << "which is why Samba-CoE hosts full experts —\nand why "
              << "the DDR tier (not adapter tricks) is what makes that "
              << "affordable.\n";
    return 0;
}
