/**
 * @file
 * Ablation A8: predictive expert prefetching. Two models of the same
 * idea:
 *
 *  - Analytic (LegacyAnalytic mode): the closed-form overlap bound —
 *    once the router picks the batch's experts, their DDR->HBM copies
 *    hide behind the router and earlier prompts' executions, and only
 *    the remainder is charged.
 *
 *  - Event-driven (EventDriven mode): real speculative prefetch. The
 *    router's decision for queued-but-unscheduled requests enqueues
 *    low-priority DDR->HBM DMA that contends with decode traffic on
 *    the live memory system, is promoted to demand priority when the
 *    batch actually needs it, and is cancelled under eviction
 *    pressure. Reported: tail latency, the p95 *exposed* miss stall
 *    (the part of expert streaming the batch waited on beyond the
 *    router), queue depth, and miss rate.
 */

#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ServingResult
serveAnalytic(int experts, int batch, bool prefetch)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = experts;
    cfg.batch = batch;
    cfg.outputTokens = 20;
    cfg.requests = 200;
    cfg.predictivePrefetch = prefetch;
    return ServingSimulator(cfg).run();
}

ServingConfig
streamConfig(bool prefetch)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.mode = ServingMode::EventDriven;
    cfg.numExperts = 150;
    cfg.batch = 1; // per-request batches: the switch is fully exposed
    cfg.outputTokens = 20;
    cfg.routing = RoutingDistribution::Zipf;
    cfg.scheduler = SchedulerPolicy::Fifo;
    cfg.streamRequests = 400;
    cfg.arrivalRatePerSec = 24.0; // past saturation: queue stays deep
    cfg.seed = 3;
    cfg.predictivePrefetch = prefetch;
    return cfg;
}

} // namespace

int
main()
{
    std::cout << "Ablation A8: expert prefetch on the SN40L node "
              << "(20 output tokens)\n\n"
              << "Analytic bound (closed-form overlap with router and "
              << "prior prompts):\n\n";

    util::Table analytic({"Experts", "Batch", "Switch (no prefetch)",
                          "Switch (prefetch)", "Total speedup"});
    for (int experts : {150, 850}) {
        for (int batch : {1, 8}) {
            ServingResult off = serveAnalytic(experts, batch, false);
            ServingResult on = serveAnalytic(experts, batch, true);
            analytic.addRow(
                {std::to_string(experts), std::to_string(batch),
                 util::formatSeconds(off.perBatch.switchSeconds),
                 util::formatSeconds(on.perBatch.switchSeconds),
                 util::formatDouble(off.perBatch.total() /
                                    on.perBatch.total(), 2) + "x"});
        }
    }
    analytic.print(std::cout);

    std::cout << "\nEvent-driven speculative prefetch (150 experts, Zipf "
              << "routing, batch 1,\nopen-loop 24 req/s — real DMA on the "
              << "three-tier memory system):\n\n";

    util::Table stream({"Prefetch", "p50", "p95", "p99", "Miss-stall p95",
                        "Miss-stall mean", "Queue depth", "Miss rate",
                        "Issued/Hit/Cancel"});
    double p95_off = 0.0, p95_on = 0.0;
    for (bool prefetch : {false, true}) {
        ServingSimulator sim(streamConfig(prefetch));
        ServingResult r = sim.run();
        const StreamMetrics &m = r.stream;
        (prefetch ? p95_on : p95_off) = m.p95LatencySeconds;
        stream.addRow(
            {prefetch ? "on" : "off",
             util::formatSeconds(m.p50LatencySeconds),
             util::formatSeconds(m.p95LatencySeconds),
             util::formatSeconds(m.p99LatencySeconds),
             util::formatSeconds(m.p95SwitchStallSeconds),
             util::formatSeconds(m.meanSwitchStallSeconds),
             util::formatDouble(m.meanQueueDepth, 1) + " avg / " +
                 util::formatDouble(m.maxQueueDepth, 0) + " max",
             util::formatDouble(r.missRate * 100, 1) + "%",
             std::to_string(m.prefetchesIssued) + "/" +
                 std::to_string(m.prefetchHits) + "/" +
                 std::to_string(m.prefetchesCancelled)});
    }
    stream.print(std::cout);

    if (p95_on < p95_off) {
        std::cout << "\nSpeculative prefetch cuts p95 latency by "
                  << util::formatDouble((1.0 - p95_on / p95_off) * 100.0,
                                        1)
                  << "%: queued requests' experts stream DDR->HBM behind "
                  << "the executing batch's\ndecode traffic, so by "
                  << "launch time the switch is already hidden.\n";
    } else {
        std::cout << "\nREGRESSION: speculative prefetch did NOT reduce "
                  << "p95 latency ("
                  << util::formatSeconds(p95_on) << " on vs "
                  << util::formatSeconds(p95_off) << " off).\n";
    }
    std::cout << "The analytic rows are the paper-anchor upper bound; "
              << "the event-driven rows\npay for DMA contention and "
              << "imperfect speculation.\n";
    return p95_on < p95_off ? 0 : 1;
}
