/**
 * @file
 * Ablation A8: predictive expert prefetching (extension). Once the
 * router picks the batch's experts, their DDR->HBM copies can overlap
 * the router itself and earlier prompts' executions. Quantifies how
 * much of the (already small) SN40L switching cost this hides.
 */

#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ServingResult
serve(int experts, int batch, bool prefetch)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = experts;
    cfg.batch = batch;
    cfg.outputTokens = 20;
    cfg.requests = 200;
    cfg.predictivePrefetch = prefetch;
    return ServingSimulator(cfg).run();
}

} // namespace

int
main()
{
    std::cout << "Ablation A8: predictive expert prefetch on the SN40L "
              << "node (20 output tokens)\n\n";

    util::Table table({"Experts", "Batch", "Switch (no prefetch)",
                       "Switch (prefetch)", "Total speedup"});

    for (int experts : {50, 150, 400, 850}) {
        for (int batch : {1, 8}) {
            ServingResult off = serve(experts, batch, false);
            ServingResult on = serve(experts, batch, true);
            table.addRow({std::to_string(experts), std::to_string(batch),
                          util::formatSeconds(off.perBatch.switchSeconds),
                          util::formatSeconds(on.perBatch.switchSeconds),
                          util::formatDouble(off.perBatch.total() /
                                             on.perBatch.total(), 2) +
                              "x"});
        }
    }
    table.print(std::cout);

    std::cout << "\nAt BS=8 every copy after the first hides behind the "
              << "previous prompt's\nexecution; at BS=1 only the router "
              << "offers overlap. Prefetching is the\nnatural next step "
              << "the three-tier hierarchy enables.\n";
    return 0;
}
