/**
 * @file
 * Ablation A7: RDN congestion, stream distribution, and packet
 * throttling (Sections III-A and VII). For the hottest fused kernel
 * of representative benchmarks, compares three compiler policies:
 *
 *   naive       — every inter-stage stream funnels through one route
 *   distributed — streams spread across the stages' parallel units
 *                 and the socket's AGCUs (the real placer)
 *   + throttled — distributed, plus programmable packet throttling
 *                 smoothing 2x producer bursts
 *
 * Two dilation columns are reported per policy: the event-driven
 * replay of the kernel's flow set on the link/credit interconnect
 * (arch::simulatedCongestionFactor — the primary estimate, modeling
 * credit backpressure and XY route overlap), and the legacy
 * closed-form max-link ratio kept as a labeled reference.
 */

#include <iostream>

#include "compiler/bandwidth_model.h"
#include "compiler/placer.h"
#include "compiler/traffic_analyzer.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace sn40l;

namespace {

struct Policy
{
    const char *name;
    bool distribute;
    bool throttled;
};

} // namespace

int
main()
{
    arch::ChipConfig chip = arch::ChipConfig::sn40l();

    std::cout << "Ablation A7: RDN hotspots under three bandwidth-"
              << "management policies\n(burst factor 2x; link bandwidth "
              << util::formatBandwidth(chip.rdnLinkBandwidth) << ")\n\n";

    const Policy policies[] = {
        {"naive routes", false, false},
        {"distributed", true, false},
        {"distributed+throttled", true, true},
    };

    util::Table table({"Benchmark", "Policy", "Max link load",
                       "Simulated dilation", "Analytic (ref)"});

    auto suite = models::paperBenchmarks();
    for (std::size_t idx : {0ul, 1ul, 2ul, 16ul}) {
        const auto &bench = suite[idx];
        graph::DataflowGraph g = bench.build();
        compiler::FusionOptions opt;
        opt.tensorParallel = bench.sockets;
        auto kernels = compiler::partitionGraph(g, chip, opt);

        for (const Policy &policy : policies) {
            compiler::TrafficAnalyzer analyzer(chip, 2.0,
                                               policy.distribute);
            double worst_load = 0.0, worst_dilation = 1.0;
            double worst_sim = 1.0;
            for (auto &k : kernels) {
                compiler::placeKernel(g, chip, opt, k);
                // True kernel duration from the cost model (compute-
                // or bandwidth-bound, whichever binds).
                double seconds = std::max(
                    1e-6,
                    compiler::costKernel(chip, opt, k).totalSeconds());
                auto r = analyzer.analyze(g, k, seconds,
                                          opt.tensorParallel);
                worst_load = std::max(worst_load, r.maxLinkLoad);
                worst_dilation = std::max(
                    worst_dilation, policy.throttled
                        ? r.throttledFactor : r.congestionFactor);
                // Throttling smooths bursts to the sustained rate
                // (burst factor 1); unthrottled replay injects the
                // full 2x burst.
                worst_sim = std::max(
                    worst_sim,
                    arch::simulatedCongestionFactor(
                        r.flowList, r.meshCols, r.meshRows,
                        chip.rdnLinkBandwidth,
                        policy.throttled ? 1.0 : 2.0));
            }
            table.addRow({bench.name, policy.name,
                          util::formatBandwidth(worst_load),
                          util::formatDouble(worst_sim, 2) + "x",
                          util::formatDouble(worst_dilation, 2) + "x"});
        }
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\nNaive routing oversubscribes single links by orders "
              << "of magnitude; the\nplacer's stream distribution plus "
              << "throttling brings kernels back to\nroofline — the "
              << "Section VII production experience. The simulated\n"
              << "column replays each flow set on the event-driven "
              << "link/credit mesh;\nthe analytic column is the legacy "
              << "closed-form max-link ratio.\n";
    return 0;
}
