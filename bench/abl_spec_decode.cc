/**
 * @file
 * Speculative-decoding ablation: tokens/s versus draft acceptance
 * rate on the live EventDriven engine. Every point serves the same
 * backlogged request stream (identical arrivals, identical routing);
 * only the per-request draft/verify shape changes, so throughput
 * differences are purely the decode-loop geometry:
 *
 *  - accept 0.0: every draft token is rejected, so each verify step
 *    emits exactly one token and the run pays the full draft-model
 *    overhead (1 + gamma * draft_ratio per token) for nothing —
 *    speculative decoding MUST lose to plain autoregressive here.
 *
 *  - accept >= 0.8: most draft tokens land, several tokens retire per
 *    verify step, and spec-decode MUST beat the autoregressive
 *    baseline (the paper-level claim this gate protects).
 *
 * The common-random-numbers sampler in runtime/spec_decode.h draws
 * exactly gamma uniforms per step, so a higher acceptance rate
 * pointwise dominates a lower one on the same seed: tokens/s must be
 * monotone non-decreasing across the sweep. The process exits
 * non-zero if the monotone ramp or either corner flips, making this a
 * CI gate for the spec-decode serving path.
 *
 *   abl_spec_decode [--smoke] [--requests N] [--json FILE]
 *
 * Emits BENCH_spec_decode.json.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "coe/serving.h"
#include "perf_common.h"
#include "runtime/spec_decode.h"
#include "util/json.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

struct Point
{
    double accept = 0.0; ///< negative marks the autoregressive baseline
    double tokensPerSec = 0.0;
    double p95 = 0.0;
    std::int64_t specSteps = 0;
    double tokensPerStep = 0.0;
    double expectedTokensPerStep = 0.0;
};

ServingConfig
baseConfig(int requests)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.mode = ServingMode::EventDriven;
    // A small, fully-resident expert set: no DMA misses, so the sweep
    // isolates the decode-loop shape rather than cache behaviour.
    cfg.numExperts = 8;
    cfg.batch = 8;
    cfg.promptLen = 128;    // decode-dominated requests
    cfg.outputTokens = 200; // paper's translation-length responses
    cfg.streamRequests = requests;
    // Far beyond service capacity: the engine stays backlogged and
    // tokens/s measures the service rate, not the arrival rate.
    cfg.arrivalRatePerSec = 1000.0;
    cfg.seed = 7;
    return cfg;
}

Point
runPoint(const ServingConfig &cfg, double accept)
{
    Point p;
    p.accept = accept;
    ServingResult r = ServingSimulator(cfg).run();
    if (r.oom || r.stream.completed != cfg.streamRequests) {
        std::cerr << "abl_spec_decode: point accept=" << accept
                  << " did not complete\n";
        std::exit(1);
    }
    p.tokensPerSec = r.stream.throughputTokensPerSec;
    p.p95 = r.stream.p95LatencySeconds;
    p.specSteps = r.stream.specSteps;
    p.tokensPerStep = r.stream.specTokensPerStep;
    if (cfg.specDecode.enabled) {
        runtime::SpecDecodeConfig sd;
        sd.gamma = cfg.specDecode.gamma;
        sd.acceptRate = accept;
        p.expectedTokensPerStep = sd.expectedTokensPerStep();
    }
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 2'000;
    bool requests_set = false;
    std::string json_path = "BENCH_spec_decode.json";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "abl_spec_decode: " << arg
                          << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--json") json_path = next();
        else {
            std::cerr << "usage: abl_spec_decode [--smoke] "
                      << "[--requests N] [--json FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 300;

    const int gamma = 4;
    const double draft_ratio = 0.05;
    const std::vector<double> accepts = {0.0, 0.2, 0.4,
                                         0.6, 0.8, 0.95};

    std::cout << "Speculative-decoding ablation: " << requests
              << " backlogged requests, gamma " << gamma
              << ", draft ratio " << draft_ratio
              << ", 200 output tokens, batch 8.\n"
              << "Same arrivals at every point; only the draft/verify "
              << "shape changes.\n\n";

    ServingConfig base = baseConfig(requests);
    Point ar = runPoint(base, -1.0); // autoregressive baseline

    std::vector<Point> pts;
    for (double a : accepts) {
        ServingConfig cfg = base;
        cfg.specDecode.enabled = true;
        cfg.specDecode.gamma = gamma;
        cfg.specDecode.acceptRate = a;
        cfg.specDecode.draftRatio = draft_ratio;
        pts.push_back(runPoint(cfg, a));
    }

    util::Table table({"Mode", "Tokens/s", "vs AR", "p95",
                       "Verify steps", "Tokens/step", "E[tokens/step]"});
    table.addRow({"autoregressive",
                  util::formatDouble(ar.tokensPerSec, 0), "1.00x",
                  util::formatSeconds(ar.p95), "-", "-", "-"});
    for (const Point &p : pts) {
        table.addRow(
            {"spec accept=" + util::formatDouble(p.accept, 2),
             util::formatDouble(p.tokensPerSec, 0),
             util::formatDouble(p.tokensPerSec / ar.tokensPerSec, 2) +
                 "x",
             util::formatSeconds(p.p95), std::to_string(p.specSteps),
             util::formatDouble(p.tokensPerStep, 2),
             util::formatDouble(p.expectedTokensPerStep, 2)});
    }
    table.print(std::cout);

    // Corner checks. CRN coupling makes the ramp deterministic and
    // pointwise-dominated, so the tolerance only absorbs makespan
    // rounding at the stream edges.
    bool monotone = true;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (pts[i].tokensPerSec < 0.999 * pts[i - 1].tokensPerSec)
            monotone = false;
    }
    bool loses_at_zero = pts.front().tokensPerSec < ar.tokensPerSec;
    bool wins_high = true;
    for (const Point &p : pts) {
        if (p.accept >= 0.8 && p.tokensPerSec <= ar.tokensPerSec)
            wins_high = false;
    }
    bool holds = monotone && loses_at_zero && wins_high;

    std::cout << "\n"
              << (holds
                      ? "spec-decode corner holds: monotone in accept "
                        "rate, pays for its draft\noverhead at accept "
                        "0, beats autoregressive at accept >= 0.8.\n"
                      : "WARNING: the spec-decode corner flipped "
                        "(monotone=" + std::to_string(monotone) +
                            " loses_at_zero=" +
                            std::to_string(loses_at_zero) +
                            " wins_high=" + std::to_string(wins_high) +
                            ").\n");

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "abl_spec_decode")
            .field("commit", bench::gitCommitHash())
            .field("timestamp_utc", bench::isoTimestampUtc())
            .field("mode", smoke ? "smoke" : "full")
            .field("requests", requests)
            .field("gamma", gamma)
            .field("draft_ratio", draft_ratio)
            .field("ar_tokens_per_sec", ar.tokensPerSec)
            .field("ar_p95_s", ar.p95);
        w.key("points").beginArray();
        for (const Point &p : pts) {
            w.beginObject()
                .field("accept", p.accept)
                .field("tokens_per_sec", p.tokensPerSec)
                .field("speedup_vs_ar", p.tokensPerSec / ar.tokensPerSec)
                .field("p95_s", p.p95)
                .field("spec_steps", p.specSteps)
                .field("tokens_per_step", p.tokensPerStep)
                .field("expected_tokens_per_step",
                       p.expectedTokensPerStep)
                .endObject();
        }
        w.endArray();
        w.field("monotone", monotone)
            .field("loses_at_zero_accept", loses_at_zero)
            .field("wins_at_high_accept", wins_high)
            .field("corner_holds", holds)
            .endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";
    return holds ? 0 : 1;
}
