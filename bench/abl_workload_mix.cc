/**
 * @file
 * Ablation A12: workload scenarios against the serving stack. One
 * SN40L node, 150 Llama2-7B experts, expert-affinity batching, fixed
 * offered load — only the *structure* of the traffic changes:
 *
 *   uniform       single tenant, uniform routing (paper's worst case)
 *   zipf          single tenant, Zipf(1.0) routing
 *   bursty        Zipf + 4x flash-crowd windows (1s of every 5s)
 *   tenant mix    4 tenants, rotated hot sets, mixed request shapes
 *   sessions      tenant mix + conversational follow-up turns
 *   mix + SLO     tenant mix under a 2s deadline: overload is shed
 *
 * CoServe's point (arXiv:2503.02354), reproduced on our stack:
 * workload structure moves tail latency and miss rate at a fixed mean
 * rate — session reuse concentrates the expert working set while
 * bursts blow up the tail. The final section replays a recorded trace
 * and exits non-zero if the replay is not bit-identical, keeping the
 * record/replay invariant visible in CI's bench-smoke log.
 *
 *   $ ./build/bench/abl_workload_mix [requests]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "coe/serving.h"
#include "coe/workload.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ServingConfig
baseConfig(int requests)
{
    ServingConfig cfg;
    cfg.mode = ServingMode::EventDriven;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 150;
    cfg.batch = 8;
    cfg.streamRequests = requests;
    cfg.routing = RoutingDistribution::Zipf;
    cfg.zipfS = 1.0;
    cfg.arrivalRatePerSec = 24.0;
    cfg.scheduler = SchedulerPolicy::ExpertAffinity;
    cfg.seed = 11;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    int requests = argc > 1 ? std::atoi(argv[1]) : 600;

    std::cout << "Ablation A12: workload scenarios (SN40L node, 150 "
              << "experts, affinity\nbatching, 24 req/s offered, "
              << requests << " requests per row)\n\n";

    struct Scenario
    {
        const char *name;
        ServingConfig cfg;
    };
    std::vector<Scenario> scenarios;

    {
        ServingConfig cfg = baseConfig(requests);
        cfg.routing = RoutingDistribution::Uniform;
        scenarios.push_back({"uniform", cfg});
    }
    scenarios.push_back({"zipf", baseConfig(requests)});
    {
        ServingConfig cfg = baseConfig(requests);
        cfg.workload.shape.burstFactor = 4.0;
        cfg.workload.shape.burstEverySeconds = 5.0;
        cfg.workload.shape.burstSeconds = 1.0;
        scenarios.push_back({"bursty", cfg});
    }
    {
        ServingConfig cfg = baseConfig(requests);
        cfg.workload.tenants = 4;
        scenarios.push_back({"tenant mix", cfg});
    }
    {
        ServingConfig cfg = baseConfig(requests);
        cfg.workload.tenants = 4;
        cfg.workload.sessionFollowProb = 0.6;
        cfg.workload.sessionThinkSeconds = 0.2;
        scenarios.push_back({"sessions", cfg});
    }
    {
        ServingConfig cfg = baseConfig(requests);
        cfg.workload.tenants = 4;
        cfg.workload.sloSeconds = 2.0;
        scenarios.push_back({"mix + SLO", cfg});
    }

    util::Table table({"Scenario", "p50", "p95", "p99", "Throughput",
                       "Miss rate", "Shed", "Mean queue"});
    for (const Scenario &s : scenarios) {
        ServingResult r = ServingSimulator(s.cfg).run();
        const StreamMetrics &m = r.stream;
        table.addRow({s.name, util::formatSeconds(m.p50LatencySeconds),
                      util::formatSeconds(m.p95LatencySeconds),
                      util::formatSeconds(m.p99LatencySeconds),
                      util::formatDouble(m.throughputRequestsPerSec, 2) +
                          " req/s",
                      util::formatDouble(r.missRate * 100, 1) + "%",
                      util::formatDouble(m.shedRate * 100, 1) + "%",
                      util::formatDouble(m.meanQueueDepth, 1)});
    }
    table.print(std::cout);

    // ---- record/replay invariant --------------------------------
    // Record the sessions scenario (completion-coupled arrivals are
    // the hard case), replay the trace, and require bit-identical
    // stream metrics. A drift here means the trace no longer captures
    // the full arrival process.
    ServingConfig rec = baseConfig(requests);
    rec.workload.tenants = 4;
    rec.workload.sessionFollowProb = 0.6;
    rec.workload.sessionThinkSeconds = 0.2;
    std::string trace = "abl_workload_mix.trace.jsonl";
    rec.workload.traceOut = trace;
    ServingResult recorded = ServingSimulator(rec).run();

    ServingConfig rep = baseConfig(requests);
    rep.workload.traceIn = trace;
    ServingResult replayed = ServingSimulator(rep).run();
    std::remove(trace.c_str());

    bool identical =
        recorded.stream.p50LatencySeconds ==
            replayed.stream.p50LatencySeconds &&
        recorded.stream.p99LatencySeconds ==
            replayed.stream.p99LatencySeconds &&
        recorded.stream.meanLatencySeconds ==
            replayed.stream.meanLatencySeconds &&
        recorded.stream.makespanSeconds ==
            replayed.stream.makespanSeconds &&
        recorded.missRate == replayed.missRate &&
        recorded.stream.batches == replayed.stream.batches;
    std::cout << "\nTrace record/replay (sessions scenario): "
              << (identical ? "bit-identical" : "DIVERGED") << "\n";

    std::cout << "\nAt one fixed mean rate, structure decides the tail: "
              << "bursts overload the\nqueue during flash windows, "
              << "session reuse tightens the expert working\nset, and "
              << "SLO admission trades shed requests for a bounded "
              << "tail.\n";
    return identical ? 0 : 1;
}
