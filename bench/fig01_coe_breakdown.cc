/**
 * @file
 * Fig 1: CoE latency breakdown between model switching and model
 * execution for a 150-expert Samba-CoE generating 20 output tokens
 * from a Llama2-7B expert, at BS=8 (a) and BS=1 (b), TP8.
 */

#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

void
breakdownForBatch(int batch)
{
    std::cout << "Fig 1" << (batch == 8 ? "a" : "b") << ": BS=" << batch
              << ", TP=8, 150 experts, 20 output tokens\n\n";

    util::Table table({"Platform", "Router", "Switch", "Execute",
                       "Total", "Switch share"});
    for (Platform p : {Platform::DgxA100, Platform::DgxH100,
                       Platform::Sn40l}) {
        ServingConfig cfg;
        cfg.platform = p;
        cfg.numExperts = 150;
        cfg.batch = batch;
        cfg.outputTokens = 20;
        cfg.requests = 200;

        ServingResult r = ServingSimulator(cfg).run();
        const LatencyBreakdown &b = r.perBatch;
        table.addRow({platformName(p),
                      util::formatSeconds(b.routerSeconds),
                      util::formatSeconds(b.switchSeconds),
                      util::formatSeconds(b.execSeconds),
                      util::formatSeconds(b.total()),
                      util::formatDouble(b.switchShare() * 100, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Fig 1: CoE latency breakdown (switching vs execution)\n"
              << "Paper: switching dominates DGX latency; the SN40L's\n"
              << "DDR->HBM path makes it a small fraction.\n\n";
    breakdownForBatch(8);
    breakdownForBatch(1);
    return 0;
}
