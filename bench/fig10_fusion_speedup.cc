/**
 * @file
 * Fig 10: speedups of Fused+SO and Fused+HO over the unfused baseline
 * on 8 SN40L sockets (FlashFFTConv on one socket), for the seventeen
 * Table III benchmarks.
 */

#include <iostream>

#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);

    std::cout << "Fig 10: benchmark speedups over the unfused baseline\n"
              << "(paper bands: prefill/train 1.5x-3x, decode 1x-13x,\n"
              << " FlashFFTConv 13x; HO adds 1.4x-8x on decode, <=1.1x "
              << "elsewhere)\n\n";

    util::Table table({"Benchmark", "Unfused", "Fused+SO", "Fused+HO",
                       "SO speedup", "HO speedup", "HO/SO"});

    for (const auto &bench : models::paperBenchmarks()) {
        graph::DataflowGraph g = bench.build();
        double unfused = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::Unfused)
            .seconds();
        double so = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::FusedSO)
            .seconds();
        double ho = runtime::runWorkload(
            g, node, bench.sockets, runtime::RunConfig::FusedHO)
            .seconds();

        table.addRow({bench.name, util::formatSeconds(unfused),
                      util::formatSeconds(so), util::formatSeconds(ho),
                      util::formatDouble(unfused / so, 2) + "x",
                      util::formatDouble(unfused / ho, 2) + "x",
                      util::formatDouble(so / ho, 2) + "x"});
    }
    table.print(std::cout);
    return 0;
}
