/**
 * @file
 * Fig 11: ratio of kernel launches in unfused vs fused configurations
 * for the Table III benchmarks. The paper reports 11x for
 * llama7B-4k-prefill, growing with model size, with sparse and FFT
 * workloads fusing most aggressively.
 */

#include <iostream>

#include "compiler/compiler.h"
#include "models/model_zoo.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    arch::ChipConfig chip = arch::ChipConfig::sn40l();

    std::cout << "Fig 11: unfused / fused kernel launch ratio\n\n";

    util::Table table({"Benchmark", "Graph ops", "Unfused launches",
                       "Fused kernels", "Ratio"});

    for (const auto &bench : models::paperBenchmarks()) {
        graph::DataflowGraph g = bench.build();

        compiler::CompileOptions options;
        options.fusion.tensorParallel = bench.sockets;

        options.fusion.mode = compiler::ExecMode::RduUnfused;
        compiler::Program unfused = compiler::compile(g, chip, options);
        options.fusion.mode = compiler::ExecMode::RduFused;
        compiler::Program fused = compiler::compile(g, chip, options);

        double ratio = static_cast<double>(unfused.totalLaunches) /
                       static_cast<double>(fused.totalLaunches);
        table.addRow({bench.name, std::to_string(g.numOps()),
                      std::to_string(unfused.totalLaunches),
                      std::to_string(fused.totalLaunches),
                      util::formatDouble(ratio, 1) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nStreaming dataflow pipelines commonly contain 20+ "
              << "operators per kernel\n(Section VIII-3); conventional "
              << "fusion reaches 1-5.\n";
    return 0;
}
