/**
 * @file
 * Fig 12: Samba-CoE latency to generate 20 tokens vs expert count
 * (50-200) on the SN40L node, DGX A100, and DGX H100, for BS=8 (a)
 * and BS=1 (b). DGX latency climbs as experts spill past HBM into
 * host DRAM and the machines OOM past ~150 experts.
 */

#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

std::string
point(Platform p, int experts, int batch)
{
    ServingConfig cfg;
    cfg.platform = p;
    cfg.numExperts = experts;
    cfg.batch = batch;
    cfg.outputTokens = 20;
    cfg.requests = 200;
    ServingResult r = ServingSimulator(cfg).run();
    if (r.oom)
        return "OOM";
    return util::formatDouble(r.perBatch.total() * 1e3, 1);
}

void
sweep(int batch)
{
    std::cout << "Fig 12" << (batch == 8 ? "a" : "b") << ": BS="
              << batch << ", TP=8 latency (ms), 20 output tokens\n\n";
    util::Table table({"Experts", "DGX A100 (ms)", "DGX H100 (ms)",
                       "SN40L Node (ms)"});
    for (int experts : {10, 25, 50, 75, 100, 125, 150, 175, 200}) {
        table.addRow({std::to_string(experts),
                      point(Platform::DgxA100, experts, batch),
                      point(Platform::DgxH100, experts, batch),
                      point(Platform::Sn40l, experts, batch)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Fig 12: CoE latency vs number of 7B experts\n\n";
    sweep(8);
    sweep(1);
    return 0;
}
