/**
 * @file
 * Fig 13: system footprint (node count) required to sustain TP8
 * latency with increasing expert counts. DGX must keep every expert
 * HBM-resident; the SN40L holds experts in node DDR (switching cost
 * is part of its TP8 latency). Paper: one SN40L node serves up to
 * 850 experts; matching that with DGX takes 19 nodes.
 */

#include <iostream>

#include "coe/footprint.h"
#include "models/llm_config.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    double expert_bytes = models::LlmConfig::llama2_7b().weightBytes();
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    baseline::DgxConfig dgx = baseline::DgxConfig::dgxA100();

    std::cout << "Fig 13: nodes required to sustain TP8 latency\n\n";

    util::Table table({"Experts", "DGX Nodes", "SN40L Nodes"});
    for (int experts = 10; experts <= 890; experts += 40) {
        auto d = coe::dgxFootprint(experts, expert_bytes, dgx);
        auto s = coe::sn40lFootprint(experts, expert_bytes, node);
        table.addRow({std::to_string(experts), std::to_string(d.nodes),
                      std::to_string(s.nodes)});
    }
    table.print(std::cout);

    auto d850 = coe::dgxFootprint(850, expert_bytes, dgx);
    auto s850 = coe::sn40lFootprint(850, expert_bytes, node);
    std::cout << "\nAt 850 experts: " << d850.nodes << " DGX nodes vs "
              << s850.nodes << " SN40L node(s) — "
              << util::formatDouble(
                     static_cast<double>(d850.nodes) / s850.nodes, 0)
              << "x footprint reduction (paper: up to 19x).\n";
    return 0;
}
