/**
 * @file
 * Ablation A6: google-benchmark microbenchmarks of the simulator's
 * own hot paths: event queue throughput, RDN routing, the free-list
 * allocator, PMU vector access, and end-to-end workload compilation.
 */

#include <benchmark/benchmark.h>

#include "arch/pmu.h"
#include "arch/rdn.h"
#include "compiler/compiler.h"
#include "mem/free_list_allocator.h"
#include "mem/interleaved_memory.h"
#include "models/transformer_builder.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

using namespace sn40l;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue eq;
        long executed = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(i, [&]() { ++executed; });
        eq.run();
        benchmark::DoNotOptimize(executed);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

static void
BM_RdnDimensionOrderRoute(benchmark::State &state)
{
    arch::RdnMesh mesh(26, 10);
    sim::Rng rng(3);
    for (auto _ : state) {
        arch::Coord a{static_cast<int>(rng.uniformInt(26)),
                      static_cast<int>(rng.uniformInt(10))};
        arch::Coord b{static_cast<int>(rng.uniformInt(26)),
                      static_cast<int>(rng.uniformInt(10))};
        benchmark::DoNotOptimize(mesh.routeLinks(a, b));
    }
}
BENCHMARK(BM_RdnDimensionOrderRoute);

static void
BM_FreeListAllocatorChurn(benchmark::State &state)
{
    for (auto _ : state) {
        mem::FreeListAllocator alloc(1 << 22, 64);
        sim::Rng rng(5);
        std::vector<std::int64_t> live;
        for (int i = 0; i < 1000; ++i) {
            if (live.empty() || rng.uniformDouble() < 0.6) {
                auto off = alloc.allocate(
                    static_cast<std::int64_t>(rng.uniformInt(4096) + 1));
                if (off)
                    live.push_back(*off);
            } else {
                std::size_t idx = rng.uniformInt(live.size());
                alloc.free(live[idx]);
                live.erase(live.begin() + static_cast<long>(idx));
            }
        }
        benchmark::DoNotOptimize(alloc.usedBytes());
    }
}
BENCHMARK(BM_FreeListAllocatorChurn);

static void
BM_PmuVectorAccess(benchmark::State &state)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    arch::Pmu pmu(cfg, "pmu");
    std::vector<std::int64_t> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(i * 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(pmu.access(addrs));
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PmuVectorAccess);

static void
BM_CompileLlama7bDecode(benchmark::State &state)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Decode;
    spec.seqLen = 2048;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);
    arch::ChipConfig chip = arch::ChipConfig::sn40l();

    for (auto _ : state) {
        compiler::CompileOptions options;
        options.fusion.tensorParallel = 8;
        benchmark::DoNotOptimize(compiler::compile(g, chip, options));
    }
}
BENCHMARK(BM_CompileLlama7bDecode);

static void
BM_InterleavedHbmAccess(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        mem::InterleavedMemory hbm(eq, "hbm", 8, 225e9, 256);
        int completed = 0;
        for (int i = 0; i < 64; ++i)
            hbm.access(i * 4096, 4096.0, [&]() { ++completed; });
        eq.run();
        benchmark::DoNotOptimize(completed);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_InterleavedHbmAccess);

static void
BM_BuildTransformerGraph(benchmark::State &state)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Prefill;
    spec.seqLen = 4096;
    spec.tensorParallel = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(models::buildTransformer(spec));
}
BENCHMARK(BM_BuildTransformerGraph);
