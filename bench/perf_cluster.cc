/**
 * @file
 * Cluster-simulation performance harness (not a paper figure):
 * measures how fast the multi-node ClusterSimulator runs, mirroring
 * bench/perf_serving for the single-node engine. Cluster runs put N
 * per-node serving stacks on ONE shared EventQueue, so this is the
 * regression gate for the dispatch layer and the shared-queue
 * scalability of the engine.
 *
 * Workload: 4 SN40L nodes, Zipf(1.0) over 150 experts, replicate-hot
 * placement, least-outstanding dispatch, near-saturation open-loop
 * arrivals — the configuration cluster studies sweep.
 *
 * Emits BENCH_cluster.json. With --floor FILE, exits non-zero if
 * cluster events/sec falls below 80% of the checked-in floor — the CI
 * regression gate (see bench/perf_cluster_floor.json).
 *
 *   perf_cluster [--smoke] [--requests N] [--nodes N] [--json FILE]
 *                [--floor FILE]
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "coe/cluster.h"
#include "perf_common.h"
#include "util/json.h"

using namespace sn40l;
using bench::jsonNumber;
using bench::peakRssBytes;
using bench::wallSeconds;

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 400'000;
    bool requests_set = false;
    int nodes = 4;
    std::string json_path = "BENCH_cluster.json";
    std::string floor_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "perf_cluster: " << arg << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--nodes") nodes = std::stoi(next());
        else if (arg == "--json") json_path = next();
        else if (arg == "--floor") floor_path = next();
        else {
            std::cerr << "usage: perf_cluster [--smoke] [--requests N] "
                      << "[--nodes N] [--json FILE] [--floor FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 20'000;

    coe::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.placement = coe::PlacementPolicy::ReplicateHotPartitionCold;
    cfg.dispatch = coe::DispatchPolicy::LeastOutstanding;
    cfg.hotExperts = 15;
    cfg.node.mode = coe::ServingMode::EventDriven;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = requests;
    // Near saturation per node so queues stay live without growing
    // unbounded; Zipf routing exercises LRU + dispatch eligibility.
    cfg.node.arrivalRatePerSec = 16.0 * nodes;
    cfg.node.routing = coe::RoutingDistribution::Zipf;
    cfg.node.zipfS = 1.0;
    cfg.node.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    cfg.node.seed = 1;

    coe::ClusterSimulator sim(cfg);
    auto start = std::chrono::steady_clock::now();
    coe::ClusterResult result = sim.run();
    double wall = wallSeconds(start);

    if (result.oom || result.stream.completed != requests) {
        std::cerr << "perf_cluster: cluster run did not complete\n";
        return 1;
    }

    double events_per_sec = wall > 0.0
        ? static_cast<double>(result.stream.eventsExecuted) / wall
        : 0.0;
    double requests_per_sec =
        wall > 0.0 ? static_cast<double>(requests) / wall : 0.0;
    std::int64_t rss = peakRssBytes();

    std::cout << "cluster: " << nodes << " nodes, " << requests
              << " requests, " << result.stream.eventsExecuted
              << " events in " << wall << " s\n"
              << "  " << static_cast<std::uint64_t>(events_per_sec)
              << " events/s, "
              << static_cast<std::uint64_t>(requests_per_sec)
              << " requests/s, peak RSS " << rss / (1 << 20)
              << " MiB, imbalance " << result.loadImbalance << "\n";

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "perf_cluster")
            .field("mode", smoke ? "smoke" : "full")
            .field("nodes", nodes)
            .field("requests", requests)
            .field("wall_seconds", wall)
            .field("events_executed", result.stream.eventsExecuted)
            .field("events_per_sec", events_per_sec)
            .field("requests_per_sec", requests_per_sec)
            .field("load_imbalance", result.loadImbalance)
            .field("peak_rss_bytes", rss)
            .endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    if (!floor_path.empty()) {
        double floor =
            jsonNumber("perf_cluster", floor_path, "events_per_sec");
        double gate = 0.8 * floor; // fail on >20% regression vs floor
        if (events_per_sec < gate) {
            std::cerr << "perf_cluster: REGRESSION: " << events_per_sec
                      << " events/s < gate " << gate << " (floor " << floor
                      << " from " << floor_path << ")\n";
            return 1;
        }
        std::cout << "floor check passed: " << events_per_sec
                  << " events/s >= gate " << gate << "\n";
    }
    return 0;
}
