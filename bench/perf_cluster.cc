/**
 * @file
 * Cluster-simulation performance harness (not a paper figure):
 * measures how fast the multi-node ClusterSimulator runs, mirroring
 * bench/perf_serving for the single-node engine.
 *
 * Three passes:
 *   1. serial legacy  — least-outstanding dispatch on the shared hub
 *      queue, the historical configuration behind the checked-in
 *      `events_per_sec` floor (unchanged, so the floor stays
 *      comparable across PRs);
 *   2. serial affinity — expert-affinity dispatch at threads=1, the
 *      baseline the speedup is measured against (only with
 *      --threads N > 1);
 *   3. parallel       — the same affinity workload with sharded
 *      per-node event queues on N workers. The harness hard-fails if
 *      the parallel metrics diverge from pass 2: determinism is part
 *      of what this gate protects.
 *
 * Workload: Zipf(1.0) over 150 experts, replicate-hot placement,
 * near-saturation open-loop arrivals — the configuration cluster
 * studies sweep.
 *
 * Emits BENCH_cluster.json, stamped with the git commit and UTC
 * timestamp. With --floor FILE, exits non-zero if serial events/sec
 * (or, when --threads N was given, parallel events/sec) falls below
 * 80% of the checked-in floor — the CI regression gate (see
 * bench/perf_cluster_floor.json).
 *
 *   perf_cluster [--smoke] [--requests N] [--nodes N] [--threads N]
 *                [--json FILE] [--floor FILE]
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "coe/cluster.h"
#include "perf_common.h"
#include "util/json.h"

using namespace sn40l;
using bench::gitCommitHash;
using bench::isoTimestampUtc;
using bench::jsonNumber;
using bench::peakRssBytes;
using bench::wallSeconds;

namespace {

struct PassResult {
    double wall = 0.0;
    coe::ClusterResult result;
};

coe::ClusterConfig
baseConfig(int nodes, int requests)
{
    coe::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.placement = coe::PlacementPolicy::ReplicateHotPartitionCold;
    cfg.hotExperts = 15;
    cfg.node.mode = coe::ServingMode::EventDriven;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = requests;
    // Near saturation per node so queues stay live without growing
    // unbounded; Zipf routing exercises LRU + dispatch eligibility.
    cfg.node.arrivalRatePerSec = 16.0 * nodes;
    cfg.node.routing = coe::RoutingDistribution::Zipf;
    cfg.node.zipfS = 1.0;
    cfg.node.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    cfg.node.seed = 1;
    return cfg;
}

PassResult
runPass(const coe::ClusterConfig &cfg, int requests, const char *label)
{
    coe::ClusterSimulator sim(cfg);
    auto start = std::chrono::steady_clock::now();
    PassResult pr;
    pr.result = sim.run();
    pr.wall = wallSeconds(start);
    if (pr.result.oom || pr.result.stream.completed != requests) {
        std::cerr << "perf_cluster: " << label
                  << " run did not complete\n";
        std::exit(1);
    }
    return pr;
}

double
eventsPerSec(const PassResult &pr)
{
    return pr.wall > 0.0
        ? static_cast<double>(pr.result.stream.eventsExecuted) / pr.wall
        : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 400'000;
    bool requests_set = false;
    int nodes = 4;
    int threads = 1;
    std::string json_path = "BENCH_cluster.json";
    std::string floor_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "perf_cluster: " << arg << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--nodes") nodes = std::stoi(next());
        else if (arg == "--threads") threads = std::stoi(next());
        else if (arg == "--json") json_path = next();
        else if (arg == "--floor") floor_path = next();
        else {
            std::cerr << "usage: perf_cluster [--smoke] [--requests N] "
                      << "[--nodes N] [--threads N] [--json FILE] "
                      << "[--floor FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 20'000;
    if (threads < 1) {
        std::cerr << "perf_cluster: --threads must be at least 1\n";
        return 1;
    }

    // Pass 1: the historical serial configuration (least-outstanding
    // dispatch, shared hub queue) behind the events_per_sec floor.
    coe::ClusterConfig serial_cfg = baseConfig(nodes, requests);
    serial_cfg.dispatch = coe::DispatchPolicy::LeastOutstanding;
    PassResult serial = runPass(serial_cfg, requests, "serial");
    double serial_eps = eventsPerSec(serial);

    std::cout << "cluster serial: " << nodes << " nodes, " << requests
              << " requests, " << serial.result.stream.eventsExecuted
              << " events in " << serial.wall << " s\n"
              << "  " << static_cast<std::uint64_t>(serial_eps)
              << " events/s, "
              << static_cast<std::uint64_t>(
                     serial.wall > 0.0 ? requests / serial.wall : 0.0)
              << " requests/s, imbalance "
              << serial.result.loadImbalance << "\n";

    // Passes 2+3: expert-affinity serial baseline vs the sharded
    // parallel run (least-outstanding needs cross-shard queue state
    // mid-window, so the parallel path rejects it).
    double affinity_wall = 0.0;
    double parallel_wall = 0.0;
    double parallel_eps = 0.0;
    double speedup = 0.0;
    if (threads > 1) {
        coe::ClusterConfig aff_cfg = baseConfig(nodes, requests);
        aff_cfg.dispatch = coe::DispatchPolicy::ExpertAffinity;
        PassResult affinity = runPass(aff_cfg, requests, "affinity");
        affinity_wall = affinity.wall;

        coe::ClusterConfig par_cfg = aff_cfg;
        par_cfg.threads = threads;
        PassResult parallel = runPass(par_cfg, requests, "parallel");
        parallel_wall = parallel.wall;
        parallel_eps = eventsPerSec(parallel);
        speedup = parallel_wall > 0.0 ? affinity_wall / parallel_wall
                                      : 0.0;

        // The parallel run must reproduce the serial metrics (the
        // cluster means can differ in the last ulp from summation
        // order). Cluster-wide quantiles are exact -- and therefore
        // bit-identical across modes -- only while the merged sample
        // count fits sim::Distribution's exact window (64Ki); beyond
        // that both modes degrade to reservoir estimates over
        // different sample subsets, so big runs compare the exact
        // aggregates only.
        const coe::StreamMetrics &a = affinity.result.stream;
        const coe::StreamMetrics &p = parallel.result.stream;
        bool same = a.completed == p.completed &&
            a.makespanSeconds == p.makespanSeconds &&
            std::fabs(a.meanLatencySeconds - p.meanLatencySeconds) <=
                1e-9 * std::fabs(a.meanLatencySeconds);
        if (requests <= (64 << 10))
            same = same && a.p50LatencySeconds == p.p50LatencySeconds &&
                a.p95LatencySeconds == p.p95LatencySeconds &&
                a.p99LatencySeconds == p.p99LatencySeconds;
        if (!same) {
            std::cerr << "perf_cluster: parallel run diverged from the "
                         "serial affinity baseline (determinism "
                         "violation)\n";
            return 1;
        }

        std::cout << "cluster parallel: " << threads << " threads, "
                  << parallel.result.stream.eventsExecuted
                  << " events in " << parallel_wall << " s\n"
                  << "  " << static_cast<std::uint64_t>(parallel_eps)
                  << " events/s, speedup " << speedup << "x over serial "
                  << "affinity (" << affinity_wall << " s)\n";
    }

    std::int64_t rss = peakRssBytes();

    std::ofstream out(json_path);
    {
        util::JsonWriter w(out, /*pretty=*/true);
        w.beginObject()
            .field("bench", "perf_cluster")
            .field("git_commit", gitCommitHash())
            .field("timestamp_utc", isoTimestampUtc())
            .field("mode", smoke ? "smoke" : "full")
            .field("nodes", nodes)
            .field("requests", requests)
            .field("wall_seconds", serial.wall)
            .field("events_executed",
                   serial.result.stream.eventsExecuted)
            .field("events_per_sec", serial_eps)
            .field("requests_per_sec",
                   serial.wall > 0.0 ? requests / serial.wall : 0.0)
            .field("load_imbalance", serial.result.loadImbalance)
            .field("peak_rss_bytes", rss);
        if (threads > 1) {
            w.field("parallel_threads", threads)
                .field("serial_affinity_wall_seconds", affinity_wall)
                .field("parallel_wall_seconds", parallel_wall)
                .field("parallel_events_per_sec", parallel_eps)
                .field(("speedup_" + std::to_string(threads) + "t")
                           .c_str(),
                       speedup);
        }
        w.endObject();
        out << "\n";
    }
    std::cout << "wrote " << json_path << "\n";

    if (!floor_path.empty()) {
        double floor =
            jsonNumber("perf_cluster", floor_path, "events_per_sec");
        double gate = 0.8 * floor; // fail on >20% regression vs floor
        if (serial_eps < gate) {
            std::cerr << "perf_cluster: REGRESSION: " << serial_eps
                      << " events/s < gate " << gate << " (floor " << floor
                      << " from " << floor_path << ")\n";
            return 1;
        }
        std::cout << "floor check passed: " << serial_eps
                  << " events/s >= gate " << gate << "\n";
        if (threads > 1) {
            double pfloor = jsonNumber("perf_cluster", floor_path,
                                       "parallel_events_per_sec");
            double pgate = 0.8 * pfloor;
            if (parallel_eps < pgate) {
                std::cerr << "perf_cluster: PARALLEL REGRESSION: "
                          << parallel_eps << " events/s < gate " << pgate
                          << " (floor " << pfloor << " from "
                          << floor_path << ")\n";
                return 1;
            }
            std::cout << "parallel floor check passed: " << parallel_eps
                      << " events/s >= gate " << pgate << "\n";
        }
    }
    return 0;
}
