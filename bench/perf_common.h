/**
 * @file
 * Helpers shared by the perf harnesses (perf_serving, perf_cluster):
 * wall-clock timing, peak-RSS readout, and the minimal JSON number
 * extraction the CI floor gates use. One copy, so portability fixes
 * (e.g. ru_maxrss units) and parser hardening apply to every gate.
 */

#ifndef SN40L_BENCH_PERF_COMMON_H
#define SN40L_BENCH_PERF_COMMON_H

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace sn40l::bench {

/**
 * Commit hash of the working tree the harness ran from, or "unknown"
 * outside a git checkout. Every BENCH_*.json is stamped with this so
 * an artifact downloaded from CI (or found in a scratch directory)
 * identifies the code that produced its numbers.
 */
inline std::string
gitCommitHash()
{
    FILE *pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[64];
    std::string out;
    if (std::fgets(buf, sizeof buf, pipe))
        out = buf;
    ::pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

/** Current UTC time as ISO-8601 (e.g. "2024-05-01T12:34:56Z"). */
inline std::string
isoTimestampUtc()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

inline double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

inline std::int64_t
peakRssBytes()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return static_cast<std::int64_t>(usage.ru_maxrss) * 1024; // Linux: KiB
}

/** Minimal parse of "key": value out of a small JSON file. */
inline double
jsonNumber(const char *prog, const std::string &path,
           const std::string &key)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << prog << ": cannot read " << path << "\n";
        std::exit(1);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    std::string needle = "\"" + key + "\"";
    auto pos = text.find(needle);
    if (pos == std::string::npos) {
        std::cerr << prog << ": no \"" << key << "\" in " << path << "\n";
        std::exit(1);
    }
    pos = text.find(':', pos);
    return std::stod(text.substr(pos + 1));
}

} // namespace sn40l::bench

#endif // SN40L_BENCH_PERF_COMMON_H
