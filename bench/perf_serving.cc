/**
 * @file
 * Simulation-engine performance harness (not a paper figure): measures
 * how fast the simulator itself runs, so engine regressions are caught
 * the way model regressions are.
 *
 * Two measurements:
 *
 *  - core: a raw EventQueue schedule/fire/cancel loop (no model code),
 *    isolating the slab-pooled event core.
 *
 *  - serving: a full `serve`-equivalent EventDriven run (Zipf routing,
 *    Poisson arrivals, live DMA memory system), reporting simulator
 *    events/sec, requests/sec, and peak RSS.
 *
 * Emits BENCH_serving.json. With --floor FILE, exits non-zero if
 * serving events/sec falls below 80% of the checked-in floor — the CI
 * regression gate (the floor is set far enough below a healthy run to
 * absorb shared-runner noise; see bench/perf_serving_floor.json).
 *
 *   perf_serving [--smoke] [--requests N] [--json FILE] [--floor FILE]
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "coe/serving.h"
#include "perf_common.h"
#include "sim/event_queue.h"

using namespace sn40l;
using bench::jsonNumber;
using bench::peakRssBytes;
using bench::wallSeconds;

namespace {

/**
 * Raw event-core throughput: K concurrent self-rescheduling chains
 * plus one cancelled event per fire, the schedule/fire/cancel mix the
 * serving loop produces.
 */
double
coreEventsPerSec(std::uint64_t events)
{
    sim::EventQueue eq;
    constexpr int kChains = 64;
    std::uint64_t fired = 0;
    std::function<void(int)> chain = [&](int c) {
        ++fired;
        if (eq.executedCount() >= events)
            return;
        auto doomed = eq.scheduleIn(2, []() {}, "perf.cancelled");
        doomed.cancel();
        eq.scheduleIn(1, [&chain, c]() { chain(c); }, "perf.chain");
    };
    auto start = std::chrono::steady_clock::now();
    for (int c = 0; c < kChains; ++c)
        eq.scheduleIn(1, [&chain, c]() { chain(c); }, "perf.chain");
    eq.run();
    double wall = wallSeconds(start);
    return wall > 0.0 ? static_cast<double>(fired) / wall : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 1'000'000;
    bool requests_set = false;
    std::string json_path = "BENCH_serving.json";
    std::string floor_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "perf_serving: " << arg << " expects a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--smoke") smoke = true;
        else if (arg == "--requests") {
            requests = std::stoi(next());
            requests_set = true;
        }
        else if (arg == "--json") json_path = next();
        else if (arg == "--floor") floor_path = next();
        else {
            std::cerr << "usage: perf_serving [--smoke] [--requests N] "
                      << "[--json FILE] [--floor FILE]\n";
            return 1;
        }
    }
    if (smoke && !requests_set)
        requests = 20'000;

    // ---- raw event core -----------------------------------------
    std::uint64_t core_events = smoke ? 500'000 : 5'000'000;
    double core_eps = coreEventsPerSec(core_events);
    std::cout << "event core: "
              << static_cast<std::uint64_t>(core_eps)
              << " events/s (schedule/fire/cancel mix)\n";

    // ---- full serving run ---------------------------------------
    // Arrival rate near saturation keeps a live queue without letting
    // it grow unbounded; Zipf routing exercises the LRU + DMA path.
    coe::ServingConfig cfg;
    cfg.mode = coe::ServingMode::EventDriven;
    cfg.batch = 8;
    cfg.streamRequests = requests;
    cfg.arrivalRatePerSec = 16.0;
    cfg.routing = coe::RoutingDistribution::Zipf;
    cfg.zipfS = 1.0;
    cfg.scheduler = coe::SchedulerPolicy::ExpertAffinity;
    cfg.seed = 1;

    coe::ServingSimulator sim(cfg);
    auto start = std::chrono::steady_clock::now();
    coe::ServingResult result = sim.run();
    double wall = wallSeconds(start);

    if (result.oom || result.stream.completed != requests) {
        std::cerr << "perf_serving: serving run did not complete\n";
        return 1;
    }

    double events_per_sec = wall > 0.0
        ? static_cast<double>(result.stream.eventsExecuted) / wall
        : 0.0;
    double requests_per_sec =
        wall > 0.0 ? static_cast<double>(requests) / wall : 0.0;
    std::int64_t rss = peakRssBytes();

    std::cout << "serving: " << requests << " requests, "
              << result.stream.eventsExecuted << " events in " << wall
              << " s\n"
              << "  " << static_cast<std::uint64_t>(events_per_sec)
              << " events/s, "
              << static_cast<std::uint64_t>(requests_per_sec)
              << " requests/s, peak RSS " << rss / (1 << 20) << " MiB\n";

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"bench\": \"perf_serving\",\n"
        << "  \"git_commit\": \"" << bench::gitCommitHash() << "\",\n"
        << "  \"timestamp_utc\": \"" << bench::isoTimestampUtc()
        << "\",\n"
        << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"wall_seconds\": " << wall << ",\n"
        << "  \"events_executed\": " << result.stream.eventsExecuted
        << ",\n"
        << "  \"events_per_sec\": " << events_per_sec << ",\n"
        << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
        << "  \"core_events_per_sec\": " << core_eps << ",\n"
        << "  \"peak_rss_bytes\": " << rss << "\n"
        << "}\n";
    std::cout << "wrote " << json_path << "\n";

    if (!floor_path.empty()) {
        double floor =
            jsonNumber("perf_serving", floor_path, "events_per_sec");
        double gate = 0.8 * floor; // fail on >20% regression vs floor
        if (events_per_sec < gate) {
            std::cerr << "perf_serving: REGRESSION: " << events_per_sec
                      << " events/s < gate " << gate << " (floor " << floor
                      << " from " << floor_path << ")\n";
            return 1;
        }
        std::cout << "floor check passed: " << events_per_sec
                  << " events/s >= gate " << gate << "\n";
    }
    return 0;
}
