/**
 * @file
 * Table I: operational intensity of the simplified Monarch FFT
 * decomposition (Fig 3) at three fusion levels.
 *
 * Paper values: No Fusion 39.5, Gemm0-Mul-Transpose 102.6, Fully
 * Spatially Fused 410.4 FLOPs/byte. Deltas come from byte-accounting
 * conventions (see EXPERIMENTS.md).
 */

#include <iostream>

#include "graph/intensity.h"
#include "models/fft_conv.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    graph::DataflowGraph g = models::buildFig3Example();

    std::vector<graph::FusionGroup> partial(2);
    partial[0].ops = {0, 1, 2}; // Gemm0, Mul, Transpose
    partial[1].ops = {3};       // Gemm1

    struct Row
    {
        const char *level;
        std::vector<graph::FusionGroup> groups;
        double paper;
    };
    std::vector<Row> rows = {
        {"No Fusion", graph::singleOpGroups(g), 39.5},
        {"Gemm0 - Mul - Transpose", partial, 102.6},
        {"Fully Spatially Fused", graph::singleGroup(g), 410.4},
    };

    std::cout << "Table I: operational intensity vs fusion level "
              << "(Monarch FFT example, Fig 3)\n\n";

    util::Table table({"Fusion Level", "FLOPs", "Off-chip Bytes",
                       "Ops/Byte (ours)", "Ops/Byte (paper)"});
    for (const Row &row : rows) {
        auto r = graph::operationalIntensity(g, row.groups);
        table.addRow({row.level, util::formatDouble(r.flops / 1e6, 1) + "M",
                      util::formatDouble(r.bytes / 1e6, 2) + "MB",
                      util::formatDouble(r.intensity(), 1),
                      util::formatDouble(row.paper, 1)});
    }
    table.print(std::cout);

    std::cout << "\nAn A100-class part needs ~150 FLOPs/byte to leave "
              << "the memory-bound regime;\nonly the fully fused version "
              << "clears it (Section III-A).\n";
    return 0;
}
