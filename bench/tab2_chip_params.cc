/**
 * @file
 * Table II: SN40L chip parameters as configured in the simulator,
 * against the paper's published values.
 */

#include <iostream>

#include "arch/chip_config.h"
#include "arch/tile.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    arch::RduChip chip(cfg);

    std::cout << "Table II: SN40L chip parameters\n\n";

    util::Table table({"Parameter", "Simulator", "Paper"});
    table.addRow({"Compute Capability",
                  util::formatDouble(cfg.peakBf16Flops / 1e12, 0) +
                      " BF16 TFLOPS",
                  "638 BF16 TFLOPs"});
    table.addRow({"SRAM Capacity",
                  util::formatDouble(cfg.sramBytes / double(MiB), 0) +
                      " MiB",
                  "520 MB"});
    table.addRow({"HBM Capacity",
                  util::formatDouble(cfg.hbmBytes / double(GiB), 0) +
                      " GiB",
                  "64 GB"});
    table.addRow({"HBM Bandwidth",
                  util::formatBandwidth(cfg.hbmBandwidth), "1.8 TB/s"});
    table.addRow({"DDR Capacity",
                  util::formatDouble(cfg.ddrBytes / double(TiB), 1) +
                      " TiB",
                  "1.5 TB"});
    table.addRow({"DDR Bandwidth",
                  util::formatBandwidth(cfg.ddrBandwidth), "200 GB/s"});
    table.addRow({"PCU Count", std::to_string(cfg.pcuCount), "1040"});
    table.addRow({"PMU Count", std::to_string(cfg.pmuCount), "1040"});
    table.addRow({"Clock Frequency",
                  util::formatDouble(cfg.clockGhz, 1) + " GHz",
                  "< 2 GHz"});
    table.addRow({"Dies per socket", std::to_string(cfg.diesPerSocket),
                  "2"});
    table.print(std::cout);

    std::cout << "\nDerived microarchitecture:\n";
    util::Table derived({"Quantity", "Value"});
    derived.addRow({"FLOPS per PCU",
                    util::formatDouble(cfg.flopsPerPcu() / 1e9, 1) +
                        " GFLOPS"});
    derived.addRow({"SRAM per PMU",
                    util::formatDouble(cfg.sramPerPmu() / double(KiB), 0) +
                        " KiB"});
    derived.addRow({"Banks per PMU", std::to_string(cfg.pmuBanks)});
    derived.addRow({"Tiles per socket", std::to_string(cfg.tileCount())});
    derived.addRow({"PCUs per tile", std::to_string(cfg.pcusPerTile())});
    derived.addRow({"Placeable PCUs per kernel",
                    std::to_string(chip.placeablePcus())});
    derived.print(std::cout);
    return 0;
}
