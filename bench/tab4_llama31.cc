/**
 * @file
 * Table IV: Llama 3.1 output tokens/second/user on 16 SN40L sockets
 * at 8K sequence length, BF16. The 70B and 405B rows use speculative
 * decoding with the 8B as draft (Section VI-B).
 */

#include <iostream>

#include "models/model_zoo.h"
#include "runtime/runner.h"
#include "runtime/spec_decode.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(16);
    auto specs = models::llama31Specs();

    std::cout << "Table IV: Llama 3.1 decode throughput, 16 sockets, "
              << "8K sequence\n\n";

    double draft_seconds = 0.0;
    std::vector<double> per_token;
    for (const auto &spec : specs) {
        graph::DataflowGraph g = models::buildTransformer(spec);
        double t = runtime::decodeSecondsPerToken(g, node, 16);
        per_token.push_back(t);
        if (spec.model.name == "llama3.1-8b")
            draft_seconds = t;
    }

    runtime::SpecDecodeConfig sd;
    const double paper[] = {1042, 457, 129};

    util::Table table({"Model", "ms/token (AR)", "Speculative",
                       "tokens/s/user (ours)", "tokens/s/user (paper)"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        bool speculative = specs[i].model.name != "llama3.1-8b";
        double tps = speculative
            ? runtime::specDecodeTokensPerSecond(sd, per_token[i],
                                                 draft_seconds)
            : 1.0 / per_token[i];
        table.addRow({specs[i].model.name,
                      util::formatDouble(per_token[i] * 1e3, 3),
                      speculative ? "yes (gamma=5)" : "no",
                      util::formatDouble(tps, 0),
                      util::formatDouble(paper[i], 0)});
    }
    table.print(std::cout);

    std::cout << "\nDataflow fusion streams weights at ~85% of HBM "
              << "bandwidth\n(vs <50% for optimized GPU decoding, "
              << "Section VI-B).\n";
    return 0;
}
