/**
 * @file
 * Table V: Samba-CoE performance comparison between the SN40L node,
 * DGX A100, and DGX H100 at 150 experts — overall and expert-only
 * speedups for BS in {1,8} and {20,200} output tokens, the model
 * switching speedup, and the >150-expert OOM row.
 */

#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ServingResult
serve(Platform p, int batch, int tokens, int experts = 150)
{
    ServingConfig cfg;
    cfg.platform = p;
    cfg.numExperts = experts;
    cfg.batch = batch;
    cfg.outputTokens = tokens;
    cfg.requests = 200;
    return ServingSimulator(cfg).run();
}

} // namespace

int
main()
{
    std::cout << "Table V: Samba-CoE comparison, 150 Llama2-7B experts, "
              << "TP8\n\n";

    util::Table table({"Metric", "vs DGX A100 (ours)",
                       "vs DGX A100 (paper)", "vs DGX H100 (ours)",
                       "vs DGX H100 (paper)"});

    struct Case
    {
        int batch;
        int tokens;
        double paperA, paperH;
    };
    const Case overall[] = {
        {8, 20, 6.6, 3.7},
        {1, 20, 4.8, 2.8},
        {8, 200, 4.2, 2.7},
        {1, 200, 3.9, 2.6},
    };

    for (const Case &c : overall) {
        ServingResult rdu = serve(Platform::Sn40l, c.batch, c.tokens);
        ServingResult a = serve(Platform::DgxA100, c.batch, c.tokens);
        ServingResult h = serve(Platform::DgxH100, c.batch, c.tokens);
        std::string label = "Overall Speedup, BS=" +
            std::to_string(c.batch) + ", " + std::to_string(c.tokens) +
            " tokens";
        table.addRow({label,
                      util::formatDouble(a.perBatch.total() /
                                         rdu.perBatch.total(), 1) + "x",
                      util::formatDouble(c.paperA, 1) + "x",
                      util::formatDouble(h.perBatch.total() /
                                         rdu.perBatch.total(), 1) + "x",
                      util::formatDouble(c.paperH, 1) + "x"});
    }

    const Case expert_cases[] = {
        {1, 20, 2.0, 1.5},
        {1, 200, 3.2, 2.3},
    };
    for (const Case &c : expert_cases) {
        ServingResult rdu = serve(Platform::Sn40l, c.batch, c.tokens);
        ServingResult a = serve(Platform::DgxA100, c.batch, c.tokens);
        ServingResult h = serve(Platform::DgxH100, c.batch, c.tokens);
        std::string label = "Expert Speedup, BS=1, " +
            std::to_string(c.tokens) + " tokens";
        table.addRow({label,
                      util::formatDouble(a.expertSecondsPerPrompt /
                                         rdu.expertSecondsPerPrompt, 1) +
                          "x",
                      util::formatDouble(c.paperA, 1) + "x",
                      util::formatDouble(h.expertSecondsPerPrompt /
                                         rdu.expertSecondsPerPrompt, 1) +
                          "x",
                      util::formatDouble(c.paperH, 1) + "x"});
    }

    // Switching speedup from the platform primitive costs.
    {
        ServingConfig cfg;
        cfg.platform = Platform::Sn40l;
        double rdu = ServingSimulator(cfg).phaseCosts().switchSeconds;
        cfg.platform = Platform::DgxA100;
        double a = ServingSimulator(cfg).phaseCosts().switchSeconds;
        cfg.platform = Platform::DgxH100;
        double h = ServingSimulator(cfg).phaseCosts().switchSeconds;
        table.addRow({"Model Switching Time",
                      util::formatDouble(a / rdu, 0) + "x", "31x",
                      util::formatDouble(h / rdu, 0) + "x", "15x"});
    }

    // OOM row.
    {
        ServingResult a = serve(Platform::DgxA100, 1, 20, 160);
        ServingResult h = serve(Platform::DgxH100, 1, 20, 160);
        ServingResult r = serve(Platform::Sn40l, 1, 20, 160);
        table.addRow({"> 150 Experts",
                      a.oom && !r.oom ? "DGX OOM" : "?", "DGX OOM",
                      h.oom && !r.oom ? "DGX OOM" : "?", "DGX OOM"});
    }

    table.print(std::cout);
    return 0;
}
