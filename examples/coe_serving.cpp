/**
 * @file
 * Serve a trillion-parameter Composition of Experts: 150 Llama2-7B
 * experts with a router, on a simulated SN40L node and on DGX
 * baselines, printing the per-request latency breakdown (the paper's
 * Fig 1 / Fig 9 flow).
 *
 * Ends with the event-driven streaming mode (the `sn40l_run serve`
 * subcommand): an open-loop Poisson request stream through the
 * continuous-batching scheduler, reporting tail latency and
 * sustained throughput under load.
 *
 *   $ ./build/examples/coe_serving [num_experts] [batch] [tokens]
 */

#include <cstdlib>
#include <iostream>

#include "coe/serving.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

int
main(int argc, char **argv)
{
    ServingConfig cfg;
    cfg.numExperts = argc > 1 ? std::atoi(argv[1]) : 150;
    cfg.batch = argc > 2 ? std::atoi(argv[2]) : 8;
    cfg.outputTokens = argc > 3 ? std::atoi(argv[3]) : 20;
    cfg.requests = 200;

    std::cout << "Samba-CoE serving: " << cfg.numExperts
              << " Llama2-7B experts ("
              << util::formatBytes(cfg.numExperts *
                                   cfg.expertBase.weightBytes())
              << " of weights), batch " << cfg.batch << ", "
              << cfg.outputTokens << " output tokens, prompt "
              << cfg.promptLen << "\n\n";

    util::Table table({"Platform", "Router", "Switch", "Execute",
                       "Total/batch", "Miss rate", "HBM-resident"});

    double rdu_total = 0.0;
    for (Platform p : {Platform::Sn40l, Platform::DgxH100,
                       Platform::DgxA100}) {
        cfg.platform = p;
        ServingSimulator sim(cfg);
        ServingResult r = sim.run();
        if (r.oom) {
            table.addRow({platformName(p), "-", "-", "-",
                          "OUT OF MEMORY", "-", "-"});
            continue;
        }
        if (p == Platform::Sn40l)
            rdu_total = r.perBatch.total();
        table.addRow({platformName(p),
                      util::formatSeconds(r.perBatch.routerSeconds),
                      util::formatSeconds(r.perBatch.switchSeconds),
                      util::formatSeconds(r.perBatch.execSeconds),
                      util::formatSeconds(r.perBatch.total()),
                      util::formatDouble(r.missRate * 100, 1) + "%",
                      std::to_string(r.residentCapacityExperts) +
                          " experts"});
    }
    table.print(std::cout);

    if (rdu_total > 0.0) {
        cfg.platform = Platform::DgxA100;
        ServingResult a100 = ServingSimulator(cfg).run();
        if (!a100.oom) {
            std::cout << "\nSN40L node speedup over DGX A100: "
                      << util::formatDouble(
                             a100.perBatch.total() / rdu_total, 1)
                      << "x\n";
        } else {
            std::cout << "\nDGX cannot host this zoo at all; the SN40L "
                      << "node serves it from DDR.\n";
        }
    }

    // Streaming mode: the same zoo under a live request stream (what
    // `sn40l_run serve --arrival-rate=...` exposes on the CLI).
    std::cout << "\nStreaming mode: open-loop Poisson arrivals at 16 "
              << "req/s, Zipf routing,\ncontinuous batching on the "
              << "SN40L node:\n\n";

    util::Table stream({"Scheduler", "p50", "p95", "p99", "Throughput",
                        "Miss rate"});
    for (SchedulerPolicy policy :
         {SchedulerPolicy::Fifo, SchedulerPolicy::ExpertAffinity}) {
        ServingConfig scfg = cfg;
        scfg.platform = Platform::Sn40l;
        scfg.mode = ServingMode::EventDriven;
        scfg.routing = RoutingDistribution::Zipf;
        scfg.arrivalRatePerSec = 16.0;
        scfg.streamRequests = 300;
        scfg.scheduler = policy;

        ServingResult r = ServingSimulator(scfg).run();
        stream.addRow({schedulerPolicyName(policy),
                       util::formatSeconds(r.stream.p50LatencySeconds),
                       util::formatSeconds(r.stream.p95LatencySeconds),
                       util::formatSeconds(r.stream.p99LatencySeconds),
                       util::formatDouble(
                           r.stream.throughputRequestsPerSec, 2) +
                           " req/s",
                       util::formatDouble(r.missRate * 100, 1) + "%"});
    }
    stream.print(std::cout);
    return 0;
}
