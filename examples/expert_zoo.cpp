/**
 * @file
 * Heterogeneous expert zoo: CoEs are not limited to one base model
 * (Section II). This example mixes 7B and 70B experts, routes with a
 * Zipf distribution, and watches the LRU expert cache and the
 * read-only copy-back optimization at work.
 *
 *   $ ./build/examples/expert_zoo
 */

#include <iostream>

#include "arch/chip_config.h"
#include "coe/coe_runtime.h"
#include "coe/router.h"
#include "models/llm_config.h"
#include "util/table.h"

using namespace sn40l;
using namespace sn40l::coe;

int
main()
{
    // ---- Build a mixed zoo: 60 x 7B experts + 4 x 70B heavyweights.
    ExpertZoo zoo;
    for (int i = 0; i < 60; ++i) {
        ExpertModel e;
        e.name = "specialist-7b-" + std::to_string(i);
        e.domain = i % 2 ? "code" : "math";
        e.config = models::LlmConfig::llama2_7b();
        e.bytes = e.config.weightBytes();
        zoo.add(e);
    }
    for (int i = 0; i < 4; ++i) {
        ExpertModel e;
        e.name = "generalist-70b-" + std::to_string(i);
        e.domain = "general";
        e.config = models::LlmConfig::llama2_70b();
        e.bytes = e.config.weightBytes();
        zoo.add(e);
    }

    std::cout << "Zoo: " << zoo.size() << " experts, "
              << util::formatBytes(zoo.totalBytes())
              << " total (largest "
              << util::formatBytes(zoo.maxExpertBytes()) << ")\n\n";

    // ---- An SN40L node's HBM expert region -------------------------
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    std::int64_t region =
        node.totalHbmBytes() - static_cast<std::int64_t>(30e9);
    CoeRuntime runtime(zoo, region);

    // ---- Route 5000 prompts with realistic (Zipf) locality ---------
    Router router(zoo.size(), RoutingDistribution::Zipf, 11, 1.1);
    double bytes_moved = 0.0;
    int misses = 0;
    const int prompts = 5000;
    for (int i = 0; i < prompts; ++i) {
        Activation act = runtime.activate(router.route());
        bytes_moved += act.bytesToLoad + act.bytesToWriteBack;
        if (!act.hit)
            ++misses;
    }

    util::Table table({"Metric", "Value"});
    table.addRow({"HBM expert region", util::formatBytes(
                      static_cast<double>(region))});
    table.addRow({"Prompts served", std::to_string(prompts)});
    table.addRow({"Cache miss rate",
                  util::formatDouble(100.0 * misses / prompts, 1) + "%"});
    table.addRow({"Experts resident at end",
                  std::to_string(runtime.residentCount())});
    table.addRow({"Bytes moved DDR->HBM",
                  util::formatBytes(bytes_moved)});
    table.addRow({"Copy-backs skipped (read-only weights)",
                  util::formatDouble(
                      runtime.stats().get("copyback_skipped"), 0)});
    table.addRow({"Evictions", util::formatDouble(
                      runtime.stats().get("evictions"), 0)});
    table.print(std::cout);

    double switch_rate = node.ddrToHbmBandwidth();
    std::cout << "\nAt " << util::formatBandwidth(switch_rate)
              << " node DDR->HBM, the moved bytes cost "
              << util::formatSeconds(bytes_moved / switch_rate)
              << " of switching across all " << prompts
              << " prompts.\n";
    return 0;
}
