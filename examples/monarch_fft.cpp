/**
 * @file
 * FlashFFTConv on streaming dataflow: build the Monarch FFT
 * convolution for a 1M-token sequence, inspect its operational
 * intensity at every fusion level, and run it fused vs unfused — the
 * paper's motivating example (Fig 3/4, Table I).
 *
 *   $ ./build/examples/monarch_fft [seq_log2]
 */

#include <cstdlib>
#include <iostream>

#include "graph/intensity.h"
#include "models/fft_conv.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace sn40l;

int
main(int argc, char **argv)
{
    int log2n = argc > 1 ? std::atoi(argv[1]) : 20;
    if (log2n < 6 || log2n > 24) {
        std::cerr << "seq_log2 must be in [6, 24]\n";
        return 1;
    }

    // Pick a near-cubic radix split of 2^log2n.
    std::int64_t n = 1LL << log2n;
    int a = log2n / 3, b = (log2n - a) / 2, c = log2n - a - b;
    models::FftConvSpec spec;
    spec.seqLen = n;
    spec.radices = {1LL << c, 1LL << b, 1LL << a};

    graph::DataflowGraph g = models::buildFftConv(spec);
    std::cout << "FlashFFTConv, sequence length " << n << ", radices "
              << spec.radices[0] << "x" << spec.radices[1] << "x"
              << spec.radices[2] << ": " << g.numOps() << " ops, "
              << util::formatDouble(g.totalFlops() / 1e9, 1)
              << " GFLOP\n\n";

    // Intensity at increasing fusion levels: per-op, per-direction,
    // whole graph.
    auto per_op = graph::operationalIntensity(g, graph::singleOpGroups(g));
    auto fused = graph::operationalIntensity(g, graph::singleGroup(g));
    std::cout << "Operational intensity: "
              << util::formatDouble(per_op.intensity(), 1)
              << " FLOPs/byte unfused -> "
              << util::formatDouble(fused.intensity(), 1)
              << " FLOPs/byte fully fused\n\n";

    // Run on one socket (the paper's FlashFFTConv setup).
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    util::Table table({"Config", "Kernel launches", "Time", "Speedup"});
    double baseline = 0.0;
    for (auto config : {runtime::RunConfig::Unfused,
                        runtime::RunConfig::FusedSO,
                        runtime::RunConfig::FusedHO}) {
        runtime::RunOutcome out = runtime::runWorkload(g, node, 1, config);
        if (config == runtime::RunConfig::Unfused)
            baseline = out.seconds();
        table.addRow({runtime::runConfigName(config),
                      std::to_string(out.program.totalLaunches),
                      util::formatSeconds(out.seconds()),
                      util::formatDouble(baseline / out.seconds(), 2) +
                          "x"});
    }
    table.print(std::cout);

    std::cout << "\nThe fused pipeline executes the whole convolution "
              << "as one kernel launch,\nwith transposes folded into "
              << "PMU access patterns (Section IV-B).\n";
    return 0;
}
