/**
 * @file
 * Quickstart: build a small dataflow graph by hand, compile it for
 * the SN40L in fused and unfused modes, and execute it on a simulated
 * 8-socket node.
 *
 *   $ ./build/examples/quickstart
 */

#include <iostream>

#include "compiler/compiler.h"
#include "graph/dataflow_graph.h"
#include "runtime/runner.h"
#include "util/table.h"

using namespace sn40l;

int
main()
{
    // ---- 1. Describe a computation as a dataflow graph ------------
    // A two-layer MLP block: x -> Gemm -> Silu -> Gemm -> out.
    graph::DataflowGraph g("quickstart-mlp");

    auto x = g.addTensor("x", {1024, 4096}, graph::DType::BF16,
                         graph::TensorKind::Input);
    auto w0 = g.addTensor("w0", {4096, 11008}, graph::DType::BF16,
                          graph::TensorKind::Weight);
    auto h = g.addTensor("h", {1024, 11008});
    auto hs = g.addTensor("h_silu", {1024, 11008});
    auto w1 = g.addTensor("w1", {11008, 4096}, graph::DType::BF16,
                          graph::TensorKind::Weight);
    auto y = g.addTensor("y", {1024, 4096}, graph::DType::BF16,
                         graph::TensorKind::Output);

    g.addOp(graph::OpKind::Gemm, "up", {x, w0}, {h});
    g.addOp(graph::OpKind::Silu, "silu", {h}, {hs});
    g.addOp(graph::OpKind::Gemm, "down", {hs, w1}, {y});
    g.validate();

    std::cout << "Graph '" << g.name() << "': " << g.numOps()
              << " ops, " << util::formatDouble(g.totalFlops() / 1e9, 1)
              << " GFLOP, "
              << util::formatBytes(g.weightBytes()) << " of weights\n\n";

    // ---- 2. Compile and run under the three Fig-10 configs --------
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);

    util::Table table({"Config", "Kernels", "Launches", "Time",
                       "Speedup vs unfused"});
    double baseline = 0.0;
    for (auto config : {runtime::RunConfig::Unfused,
                        runtime::RunConfig::FusedSO,
                        runtime::RunConfig::FusedHO}) {
        runtime::RunOutcome out = runtime::runWorkload(g, node, 8, config);
        if (config == runtime::RunConfig::Unfused)
            baseline = out.seconds();
        table.addRow({runtime::runConfigName(config),
                      std::to_string(out.program.kernels.size()),
                      std::to_string(out.program.totalLaunches),
                      util::formatSeconds(out.seconds()),
                      util::formatDouble(baseline / out.seconds(), 2) +
                          "x"});
    }
    table.print(std::cout);

    // ---- 3. Inspect the fused kernel -------------------------------
    runtime::RunOutcome fused =
        runtime::runWorkload(g, node, 8, runtime::RunConfig::FusedHO);
    const compiler::KernelExec &ke = fused.program.kernels.front();
    std::cout << "\nFused kernel '" << ke.kernel.name << "' uses "
              << ke.kernel.pcusUsed << " PCUs across "
              << ke.kernel.stages.size() << " pipeline stages; "
              << "bottleneck: " << ke.cost.bottleneck() << ", intensity "
              << util::formatDouble(ke.kernel.operationalIntensity(), 1)
              << " FLOPs/byte\n";
    return 0;
}
