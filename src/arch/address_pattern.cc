#include "arch/address_pattern.h"

#include "sim/log.h"

namespace sn40l::arch {

AddressPattern::AddressPattern(std::int64_t base, std::vector<PatternDim> dims)
    : base_(base), dims_(std::move(dims))
{
    for (const PatternDim &d : dims_) {
        if (d.extent <= 0)
            sim::panic("AddressPattern: non-positive extent");
    }
}

AddressPattern
AddressPattern::rowMajor(std::int64_t base, std::int64_t rows,
                         std::int64_t cols, std::int64_t elem_bytes)
{
    return AddressPattern(base, {{rows, cols * elem_bytes},
                                 {cols, elem_bytes}});
}

AddressPattern
AddressPattern::colMajor(std::int64_t base, std::int64_t rows,
                         std::int64_t cols, std::int64_t elem_bytes)
{
    return AddressPattern(base, {{cols, elem_bytes},
                                 {rows, cols * elem_bytes}});
}

std::int64_t
AddressPattern::count() const
{
    std::int64_t n = 1;
    for (const PatternDim &d : dims_)
        n *= d.extent;
    return n;
}

std::int64_t
AddressPattern::addressAt(std::int64_t flat) const
{
    if (flat < 0 || flat >= count())
        sim::panic("AddressPattern: index out of range");
    std::int64_t addr = base_;
    for (std::size_t i = dims_.size(); i-- > 0;) {
        const PatternDim &d = dims_[i];
        addr += (flat % d.extent) * d.stride;
        flat /= d.extent;
    }
    return addr;
}

std::vector<std::int64_t>
AddressPattern::generate(std::int64_t max) const
{
    std::int64_t n = count();
    if (max >= 0 && max < n)
        n = max;
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        out.push_back(addressAt(i));
    return out;
}

std::string
AddressPattern::str() const
{
    std::string out = "base=" + std::to_string(base_);
    for (const PatternDim &d : dims_) {
        out += " [" + std::to_string(d.extent) + " x " +
               std::to_string(d.stride) + "B]";
    }
    return out;
}

} // namespace sn40l::arch
