/**
 * @file
 * Affine multi-dimensional address pattern, the abstraction the PMU
 * scalar ALU pipeline and the AGCU address generators execute
 * (Section IV-B/IV-D). A pattern is a nest of counters, each with an
 * extent and a byte stride; the generated address for a given counter
 * state is base + sum(idx_i * stride_i).
 */

#ifndef SN40L_ARCH_ADDRESS_PATTERN_H
#define SN40L_ARCH_ADDRESS_PATTERN_H

#include <cstdint>
#include <string>
#include <vector>

namespace sn40l::arch {

struct PatternDim
{
    std::int64_t extent = 1;  ///< number of iterations
    std::int64_t stride = 0;  ///< byte stride per iteration
};

class AddressPattern
{
  public:
    AddressPattern() = default;
    AddressPattern(std::int64_t base, std::vector<PatternDim> dims);

    /** Row-major traversal of an [rows x cols] tile of @p elem_bytes. */
    static AddressPattern rowMajor(std::int64_t base, std::int64_t rows,
                                   std::int64_t cols,
                                   std::int64_t elem_bytes);

    /** Column-major traversal of the same tile (a transposed access). */
    static AddressPattern colMajor(std::int64_t base, std::int64_t rows,
                                   std::int64_t cols,
                                   std::int64_t elem_bytes);

    std::int64_t base() const { return base_; }
    const std::vector<PatternDim> &dims() const { return dims_; }

    /** Total number of addresses the pattern generates. */
    std::int64_t count() const;

    /** Address at flattened iteration index @p flat (0-based). */
    std::int64_t addressAt(std::int64_t flat) const;

    /** Materialize the first @p max addresses (all if max < 0). */
    std::vector<std::int64_t> generate(std::int64_t max = -1) const;

    std::string str() const;

  private:
    std::int64_t base_ = 0;
    std::vector<PatternDim> dims_;
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_ADDRESS_PATTERN_H
