#include "arch/agcu.h"

#include <algorithm>
#include <set>

#include "sim/log.h"

namespace sn40l::arch {

const char *
orchestrationName(Orchestration mode)
{
    switch (mode) {
      case Orchestration::Software: return "software";
      case Orchestration::Hardware: return "hardware";
    }
    sim::panic("orchestrationName: unknown mode");
}

Agcu::Agcu(const ChipConfig &cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)), stats_(name_)
{
}

sim::Tick
Agcu::launchOverhead(Orchestration mode) const
{
    switch (mode) {
      case Orchestration::Software: return cfg_.swLaunchOverhead;
      case Orchestration::Hardware: return cfg_.hwLaunchOverhead;
    }
    sim::panic("Agcu::launchOverhead: unknown mode");
}

sim::Tick
Agcu::launchGap(Orchestration mode, sim::Tick prev_exec_ticks) const
{
    sim::Tick loads = cfg_.programLoadOverhead +
                      cfg_.argumentLoadOverhead;
    switch (mode) {
      case Orchestration::Software:
        // Host sync, then Program Load, then Argument Load, serial.
        return cfg_.swLaunchOverhead + loads;
      case Orchestration::Hardware: {
        // The sequencer prefetched the loads during the previous
        // kernel; only the un-hidden remainder is exposed.
        sim::Tick exposed = std::max<sim::Tick>(
            0, loads - prev_exec_ticks);
        return cfg_.hwLaunchOverhead + exposed;
      }
    }
    sim::panic("Agcu::launchGap: unknown mode");
}

std::int64_t
Agcu::coalesceRequests(const AddressPattern &pattern,
                       std::int64_t line_bytes, std::int64_t access_bytes)
{
    if (line_bytes <= 0 || access_bytes <= 0)
        sim::panic("Agcu::coalesceRequests: non-positive sizes");

    std::set<std::int64_t> lines;
    std::int64_t n = pattern.count();
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t first = pattern.addressAt(i) / line_bytes;
        std::int64_t last = (pattern.addressAt(i) + access_bytes - 1) /
                            line_bytes;
        for (std::int64_t line = first; line <= last; ++line)
            lines.insert(line);
    }
    stats_.inc("requests", static_cast<double>(lines.size()));
    return static_cast<std::int64_t>(lines.size());
}

double
Agcu::burstEfficiency(const AddressPattern &pattern, std::int64_t line_bytes,
                      std::int64_t access_bytes)
{
    std::int64_t requests = coalesceRequests(pattern, line_bytes,
                                             access_bytes);
    double useful = static_cast<double>(pattern.count()) *
                    static_cast<double>(access_bytes);
    double fetched = static_cast<double>(requests) *
                     static_cast<double>(line_bytes);
    return fetched > 0.0 ? std::min(1.0, useful / fetched) : 0.0;
}

double
Agcu::allReduceTrafficFactor(int sockets)
{
    if (sockets <= 0)
        sim::panic("allReduceTrafficFactor: non-positive socket count");
    if (sockets == 1)
        return 0.0;
    double n = static_cast<double>(sockets);
    return 2.0 * (n - 1.0) / n;
}

} // namespace sn40l::arch
