/**
 * @file
 * Address Generation and Coalescing Unit model (Section IV-D): the
 * dataflow bridge between the tile and the TLN. Provides
 *   - request generation/coalescing for off-chip access patterns,
 *   - the kernel-launch state machine (Program Load / Argument Load /
 *     Kernel Execute) with software- vs hardware-orchestrated
 *     scheduling costs,
 *   - peer-to-peer streaming used to build collectives.
 */

#ifndef SN40L_ARCH_AGCU_H
#define SN40L_ARCH_AGCU_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/address_pattern.h"
#include "arch/chip_config.h"
#include "sim/stats.h"
#include "sim/ticks.h"

namespace sn40l::arch {

/** Who sequences kernel launches (Section IV-D). */
enum class Orchestration { Software, Hardware };

const char *orchestrationName(Orchestration mode);

class Agcu
{
  public:
    Agcu(const ChipConfig &cfg, std::string name);

    /**
     * Per-launch scheduling overhead. Software orchestration pays the
     * host round trip; hardware orchestration runs a pre-loaded
     * schedule out of the AGCU.
     */
    sim::Tick launchOverhead(Orchestration mode) const;

    /**
     * Non-hidden gap before a kernel starts, given the previous
     * kernel's execution time. A launch is three phases — Program
     * Load, Argument Load, Kernel Execute (Section IV-D). Software
     * orchestration serializes host sync + both load phases; the
     * hardware sequencer prefetches the next kernel's loads during
     * the previous kernel's execution, exposing them only when the
     * previous kernel is too short to hide them.
     */
    sim::Tick launchGap(Orchestration mode,
                        sim::Tick prev_exec_ticks) const;

    /**
     * Coalesce an address pattern into DRAM requests: consecutive
     * addresses within @p line_bytes merge into one request.
     * @return number of requests emitted.
     */
    std::int64_t coalesceRequests(const AddressPattern &pattern,
                                  std::int64_t line_bytes,
                                  std::int64_t access_bytes);

    /**
     * Efficiency of an off-chip burst for the pattern: ratio of useful
     * bytes to fetched bytes after coalescing (strided patterns waste
     * line bandwidth).
     */
    double burstEfficiency(const AddressPattern &pattern,
                           std::int64_t line_bytes,
                           std::int64_t access_bytes);

    /** Ring all-reduce byte multiplier: 2(n-1)/n of payload per link. */
    static double allReduceTrafficFactor(int sockets);

    sim::StatSet &stats() { return stats_; }

  private:
    const ChipConfig &cfg_;
    std::string name_;
    sim::StatSet stats_;
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_AGCU_H
