#include "arch/chip_config.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::arch {

void
ChipConfig::validate() const
{
    if (pcuCount <= 0 || pmuCount <= 0)
        sim::fatal("ChipConfig: unit counts must be positive");
    if (peakBf16Flops <= 0 || hbmBandwidth <= 0 || ddrBandwidth <= 0)
        sim::fatal("ChipConfig: rates must be positive");
    if (sramBytes <= 0 || hbmBytes <= 0 || ddrBytes <= 0)
        sim::fatal("ChipConfig: capacities must be positive");
    if (hbmEfficiency <= 0 || hbmEfficiency > 1.0 ||
        ddrEfficiency <= 0 || ddrEfficiency > 1.0) {
        sim::fatal("ChipConfig: efficiencies must be in (0,1]");
    }
    if (placeableFraction <= 0 || placeableFraction > 1.0)
        sim::fatal("ChipConfig: placeableFraction must be in (0,1]");
    if (pcuCount % tileCount() != 0 || pmuCount % tileCount() != 0)
        sim::fatal("ChipConfig: units must divide evenly across tiles");
    if ((pmuBanks & (pmuBanks - 1)) != 0)
        sim::fatal("ChipConfig: pmuBanks must be a power of two");
}

ChipConfig
ChipConfig::sn40l()
{
    ChipConfig cfg;
    cfg.validate();
    return cfg;
}

NodeConfig
NodeConfig::sn40lNode(int sockets)
{
    NodeConfig node;
    node.sockets = sockets;
    node.name = "SN40L-Node-" + std::to_string(sockets) + "s";
    if (sockets <= 0)
        sim::fatal("NodeConfig: sockets must be positive");
    return node;
}

} // namespace sn40l::arch
