/**
 * @file
 * SN40L chip and node parameters (paper Table II) plus the calibration
 * constants the paper does not print. Everything the cost models
 * consume lives here so experiments can sweep or ablate any of it.
 */

#ifndef SN40L_ARCH_CHIP_CONFIG_H
#define SN40L_ARCH_CHIP_CONFIG_H

#include <cstdint>
#include <string>

#include "sim/ticks.h"
#include "util/units.h"

namespace sn40l::arch {

struct ChipConfig
{
    std::string name = "SN40L";

    // ---- Table II parameters -------------------------------------
    double peakBf16Flops = TFLOPS(638);
    std::int64_t sramBytes = 520 * MiB;
    std::int64_t hbmBytes = 64 * GiB;
    double hbmBandwidth = TBps(1.8);
    std::int64_t ddrBytes = static_cast<std::int64_t>(1.5 * TiB);
    double ddrBandwidth = GBps(200);
    int pcuCount = 1040;
    int pmuCount = 1040;
    double clockGhz = 1.6;       // paper: "< 2 GHz"
    int diesPerSocket = 2;

    // ---- Microarchitecture (Section IV) --------------------------
    int pmuBanks = 16;           ///< SRAM banks per PMU scratchpad
    int vectorLanes = 32;        ///< SIMD lanes per PCU
    int simdStages = 6;          ///< pipelined vector stages per PCU
    int tilesPerDie = 2;         ///< Fig 5: four tiles per socket
    int meshCols = 26;           ///< RDN mesh width per tile
    int meshRows = 10;           ///< RDN mesh height per tile
    int agcusPerTile = 8;        ///< AGCUs on each tile edge (Fig 6)

    double d2dBandwidth = TBps(1.0);   ///< die-to-die streaming
    double p2pBandwidth = GBps(100);   ///< per-socket peer links
    double pcieBandwidth = GBps(25);   ///< host interface
    double rdnLinkBandwidth = GBps(128); ///< per RDN vector-fabric link

    // ---- Efficiencies (calibration; see EXPERIMENTS.md) ----------
    /** Fused dataflow saturates close to 85% of HBM (Section VI-B). */
    double hbmEfficiency = 0.85;
    /** Sustained DDR efficiency; 0.65 x 200 GB/s x 8 sockets gives the
     *  paper's ">1 TB/s" node-aggregate DDR-to-HBM copy rate. */
    double ddrEfficiency = 0.65;
    /** Achievable fraction of peak FLOPs for large systolic stages. */
    double systolicEfficiency = 0.85;
    /** SIMD-pipeline throughput relative to systolic peak. */
    double simdRelativeThroughput = 0.25;
    /** Fraction of PCUs/PMUs usable by one fused kernel ("almost 90%
     *  of the PCUs and PMUs", Section VI-C). */
    double placeableFraction = 0.90;

    // ---- Kernel launch (Section IV-D) -----------------------------
    /** Host-driver cost per software-orchestrated launch (driver
     *  call + completion round trip; calibrated so decode-side
     *  fusion/orchestration gains land in the paper's bands). */
    sim::Tick swLaunchOverhead = sim::fromUs(19.0);
    /** AGCU sequencer cost per hardware-orchestrated launch. */
    sim::Tick hwLaunchOverhead = sim::fromNs(250);
    /** Program Load phase: streaming the kernel's configuration
     *  bitstream into the tile (Section IV-D launch sequence). */
    sim::Tick programLoadOverhead = sim::fromUs(5.0);
    /** Argument Load phase: scalar arguments and descriptors. */
    sim::Tick argumentLoadOverhead = sim::fromUs(1.0);
    /** Pipeline fill latency per fused stage. */
    sim::Tick stageFillLatency = sim::fromNs(400);

    // ---- Unfused execution model ---------------------------------
    /** FLOPs one unfused kernel launch can cover before the compiler
     *  splits it (models per-op tiling into multiple grid launches). */
    double maxFlopsPerUnfusedLaunch = 20e12;
    /** FLOPs needed for an isolated op to reach full utilization;
     *  smaller ops run at proportionally lower utilization. */
    double unfusedSaturationFlops = 2e9;
    /** Utilization floor for tiny unfused ops. */
    double unfusedMinUtilization = 0.05;

    // ---- Derived quantities ---------------------------------------
    double flopsPerPcu() const { return peakBf16Flops / pcuCount; }
    std::int64_t sramPerPmu() const { return sramBytes / pmuCount; }
    std::int64_t pmuBankBytes() const { return sramPerPmu() / pmuBanks; }
    int tileCount() const { return diesPerSocket * tilesPerDie; }
    int pcusPerTile() const { return pcuCount / tileCount(); }
    int pmusPerTile() const { return pmuCount / tileCount(); }
    double effectiveHbmBandwidth() const
    {
        return hbmBandwidth * hbmEfficiency;
    }
    double effectiveDdrBandwidth() const
    {
        return ddrBandwidth * ddrEfficiency;
    }

    /** Validate internal consistency; throws FatalError on nonsense. */
    void validate() const;

    /** The SN40L as shipped (Table II). */
    static ChipConfig sn40l();
};

/** An SN40L node: sockets + host (Section VI: 8-socket node). */
struct NodeConfig
{
    std::string name = "SN40L-Node";
    ChipConfig chip = ChipConfig::sn40l();
    int sockets = 8;

    /** Host DRAM capacity (typical 2-socket x86 host). */
    std::int64_t hostDramBytes = 2 * TiB;

    std::int64_t totalHbmBytes() const { return sockets * chip.hbmBytes; }
    std::int64_t totalDdrBytes() const { return sockets * chip.ddrBytes; }
    double totalHbmBandwidth() const { return sockets * chip.hbmBandwidth; }

    /** Node-aggregate DDR->HBM copy bandwidth (all sockets copy their
     *  tensor-parallel shard concurrently). */
    double ddrToHbmBandwidth() const
    {
        return sockets * std::min(chip.effectiveDdrBandwidth(),
                                  chip.effectiveHbmBandwidth());
    }

    static NodeConfig sn40lNode(int sockets = 8);
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_CHIP_CONFIG_H
