#include "arch/numerics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace sn40l::arch {

std::uint32_t
fp32Bits(float value)
{
    std::uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

float
fp32FromBits(std::uint32_t bits)
{
    float value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::uint16_t
fp32ToBf16Rne(float value)
{
    std::uint32_t bits = fp32Bits(value);

    // NaN: preserve a quiet NaN payload.
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu)) {
        return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    }

    // Round to nearest, ties to even, on the low 16 bits.
    std::uint32_t lsb = (bits >> 16) & 1u;
    std::uint32_t rounding = 0x7fffu + lsb;
    return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

std::uint16_t
fp32ToBf16Stochastic(float value, sim::Rng &rng)
{
    std::uint32_t bits = fp32Bits(value);
    if ((bits & 0x7f800000u) == 0x7f800000u) {
        // Inf/NaN: fall back to deterministic conversion.
        return fp32ToBf16Rne(value);
    }

    // Add a uniform 16-bit dither to the truncated fraction: the
    // result rounds up with probability fraction/2^16.
    std::uint32_t dither =
        static_cast<std::uint32_t>(rng.uniformInt(0x10000u));
    return static_cast<std::uint16_t>((bits + dither) >> 16);
}

float
bf16ToFp32(std::uint16_t bits)
{
    return fp32FromBits(static_cast<std::uint32_t>(bits) << 16);
}

float
quantizeBf16(float value)
{
    return bf16ToFp32(fp32ToBf16Rne(value));
}

std::int8_t
quantizeInt8(float value, float scale)
{
    float scaled = value / scale;
    float rounded = std::nearbyint(scaled);
    rounded = std::clamp(rounded, -127.0f, 127.0f);
    return static_cast<std::int8_t>(rounded);
}

float
dequantizeInt8(std::int8_t q, float scale)
{
    return static_cast<float>(q) * scale;
}

} // namespace sn40l::arch
