/**
 * @file
 * PCU tail-unit numerics (Section IV-A): BF16/FP32 format conversion
 * with round-to-nearest-even and stochastic rounding, plus INT8
 * quantization. These are functional models of the tail datapath,
 * used to validate numeric properties (stochastic rounding is
 * unbiased; RNE ties go to even) rather than to run real tensors.
 */

#ifndef SN40L_ARCH_NUMERICS_H
#define SN40L_ARCH_NUMERICS_H

#include <cstdint>

#include "sim/rng.h"

namespace sn40l::arch {

/** Reinterpret an FP32 value's bits. */
std::uint32_t fp32Bits(float value);
float fp32FromBits(std::uint32_t bits);

/** FP32 -> BF16 with round-to-nearest-even (the default tail mode). */
std::uint16_t fp32ToBf16Rne(float value);

/**
 * FP32 -> BF16 with stochastic rounding: rounds up with probability
 * equal to the truncated fraction, making the expected value of the
 * conversion equal to the input (used for training accumulations).
 */
std::uint16_t fp32ToBf16Stochastic(float value, sim::Rng &rng);

/** BF16 -> FP32 (exact: BF16 is a truncated FP32). */
float bf16ToFp32(std::uint16_t bits);

/** Round-trip an FP32 value through BF16 RNE. */
float quantizeBf16(float value);

/**
 * Symmetric INT8 quantization with the given scale:
 * q = clamp(round(value / scale), -127, 127).
 */
std::int8_t quantizeInt8(float value, float scale);
float dequantizeInt8(std::int8_t q, float scale);

/** ULP of BF16 at 1.0 (7 stored mantissa bits -> 2^-7). */
constexpr float kBf16Epsilon = 1.0f / 128.0f;

} // namespace sn40l::arch

#endif // SN40L_ARCH_NUMERICS_H
