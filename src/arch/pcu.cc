#include "arch/pcu.h"

#include <cmath>

#include "sim/log.h"

namespace sn40l::arch {

double
Pcu::throughput(const ChipConfig &cfg, graph::OpClass cls)
{
    switch (cls) {
      case graph::OpClass::Systolic:
        return cfg.flopsPerPcu() * cfg.systolicEfficiency;
      case graph::OpClass::Simd:
        return cfg.flopsPerPcu() * cfg.simdRelativeThroughput;
      case graph::OpClass::Memory:
      case graph::OpClass::Collective:
        return 0.0;
    }
    sim::panic("Pcu::throughput: unknown class");
}

std::int64_t
Pcu::systolicTileCycles(std::int64_t m, std::int64_t n, std::int64_t k) const
{
    if (m <= 0 || n <= 0 || k <= 0)
        sim::panic("Pcu: non-positive tile dims");
    // lanes x stages MAC grid; output-stationary: the [m x n] output
    // tile is produced in ceil(m/lanes)*ceil(n/stages) passes of k
    // cycles each, plus a drain of the accumulators through the tail.
    std::int64_t lanes = cfg_.vectorLanes;
    std::int64_t stages = cfg_.simdStages;
    std::int64_t passes = ((m + lanes - 1) / lanes) *
                          ((n + stages - 1) / stages);
    std::int64_t drain = stages;
    return passes * k + drain;
}

std::int64_t
Pcu::simdCycles(std::int64_t elems) const
{
    if (elems < 0)
        sim::panic("Pcu: negative element count");
    std::int64_t lanes = cfg_.vectorLanes;
    // Fully pipelined: one vector of `lanes` elements per cycle, plus
    // pipeline depth to drain.
    return (elems + lanes - 1) / lanes + cfg_.simdStages;
}

std::int64_t
Pcu::reduceCycles(std::int64_t elems) const
{
    // Lane-wise accumulation followed by a log2(lanes) cross-lane
    // tree (the blue triangle in Fig 7).
    std::int64_t lanes = cfg_.vectorLanes;
    std::int64_t tree = 1;
    while ((1LL << tree) < lanes)
        ++tree;
    return simdCycles(elems) + tree;
}

sim::Tick
Pcu::cyclesToTicks(std::int64_t cycles) const
{
    double ns_per_cycle = 1.0 / cfg_.clockGhz;
    return sim::fromNs(static_cast<double>(cycles) * ns_per_cycle);
}

} // namespace sn40l::arch
