/**
 * @file
 * Pattern Compute Unit model (Section IV-A). A PCU is configurable as
 * an output-stationary systolic array (GEMM) or a pipelined SIMD core
 * (elementwise / reduction / transcendental ops). This model exposes
 * per-PCU throughput for the compiler's placer and cycle-level tile
 * timings for microbenchmarks and tests.
 */

#ifndef SN40L_ARCH_PCU_H
#define SN40L_ARCH_PCU_H

#include <cstdint>

#include "arch/chip_config.h"
#include "graph/operator.h"
#include "sim/ticks.h"

namespace sn40l::arch {

class Pcu
{
  public:
    enum class Mode { Systolic, Simd };

    explicit Pcu(const ChipConfig &cfg) : cfg_(cfg) {}

    /**
     * Sustained FLOP/s of one PCU executing ops of class @p cls.
     * Memory/collective classes consume no PCU compute.
     */
    static double throughput(const ChipConfig &cfg, graph::OpClass cls);

    /**
     * Cycles for one [m x k] x [k x n] tile matmul on the systolic
     * body: the array computes lanes x stages MACs per cycle, output
     * stationary, plus a drain of the output tile.
     */
    std::int64_t systolicTileCycles(std::int64_t m, std::int64_t n,
                                    std::int64_t k) const;

    /** Cycles for an elementwise pass over @p elems elements. */
    std::int64_t simdCycles(std::int64_t elems) const;

    /** Cycles for a cross-lane reduction over @p elems elements. */
    std::int64_t reduceCycles(std::int64_t elems) const;

    sim::Tick cyclesToTicks(std::int64_t cycles) const;

  private:
    const ChipConfig &cfg_;
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_PCU_H
