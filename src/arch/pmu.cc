#include "arch/pmu.h"

#include <algorithm>
#include <limits>

#include "sim/log.h"

namespace sn40l::arch {

namespace {

int
log2i(int value)
{
    int bits = 0;
    while ((1 << bits) < value)
        ++bits;
    return bits;
}

} // namespace

Pmu::Pmu(const ChipConfig &cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)),
      validHi_(std::numeric_limits<std::int64_t>::max()), stats_(name_)
{
    // Default bank bits: low-order bits above the bank word size, so
    // consecutive words interleave across banks.
    int n = log2i(cfg_.pmuBanks);
    int word_bits = 3; // 8-byte bank words
    bankBits_.resize(n);
    for (int i = 0; i < n; ++i)
        bankBits_[i] = word_bits + i;
}

void
Pmu::setBankBits(const std::vector<int> &bits)
{
    if (static_cast<int>(bits.size()) != log2i(cfg_.pmuBanks))
        sim::fatal("Pmu " + name_ + ": need exactly log2(banks) bank bits");
    for (int b : bits) {
        if (b < 0 || b > 62)
            sim::fatal("Pmu " + name_ + ": bank bit out of range");
    }
    bankBits_ = bits;
}

int
Pmu::bankOf(std::int64_t addr) const
{
    int bank = 0;
    for (std::size_t i = 0; i < bankBits_.size(); ++i) {
        if ((addr >> bankBits_[i]) & 1)
            bank |= 1 << i;
    }
    return bank;
}

void
Pmu::setValidRange(std::int64_t lo, std::int64_t hi)
{
    if (lo >= hi)
        sim::fatal("Pmu " + name_ + ": empty valid range");
    validLo_ = lo;
    validHi_ = hi;
}

bool
Pmu::accepts(std::int64_t addr) const
{
    return addr >= validLo_ && addr < validHi_;
}

Pmu::AccessResult
Pmu::access(const std::vector<std::int64_t> &addrs)
{
    std::vector<int> per_bank(cfg_.pmuBanks, 0);
    AccessResult result;
    for (std::int64_t addr : addrs) {
        if (!accepts(addr))
            continue; // predicated off: another PMU owns this address
        ++result.accepted;
        ++per_bank[bankOf(addr)];
    }
    int worst = 0;
    for (int c : per_bank)
        worst = std::max(worst, c);
    result.cycles = std::max(worst, result.accepted > 0 ? 1 : 0);
    result.conflicts = result.cycles > 0 ? result.cycles - 1 : 0;

    stats_.inc("accesses");
    stats_.inc("lanes_accepted", result.accepted);
    stats_.inc("cycles", result.cycles);
    stats_.inc("conflict_cycles", result.conflicts);
    return result;
}

std::int64_t
Pmu::diagonalStripeAddr(std::int64_t row, std::int64_t col,
                        std::int64_t cols, std::int64_t elem_bytes) const
{
    // Rotate the element's column within its row by the row index.
    // With bank = (element index) % banks, row r holds its elements in
    // banks (c + r) mod B, so a column read touches B distinct banks.
    std::int64_t rotated = (col + row) % cols;
    return (row * cols + rotated) * elem_bytes;
}

std::int64_t
Pmu::linearAddr(std::int64_t row, std::int64_t col, std::int64_t cols,
                std::int64_t elem_bytes)
{
    return (row * cols + col) * elem_bytes;
}

} // namespace sn40l::arch
