/**
 * @file
 * Pattern Memory Unit model (Section IV-B): a banked scratchpad with
 * programmable bank-bit selection, address predication for multi-PMU
 * tensor interleaving, and the diagonally striped layout that makes
 * transpose reads conflict-free.
 */

#ifndef SN40L_ARCH_PMU_H
#define SN40L_ARCH_PMU_H

#include <cstdint>
#include <vector>

#include "arch/chip_config.h"
#include "sim/stats.h"

namespace sn40l::arch {

class Pmu
{
  public:
    Pmu(const ChipConfig &cfg, std::string name);

    int numBanks() const { return cfg_.pmuBanks; }
    std::int64_t capacityBytes() const { return cfg_.sramPerPmu(); }

    /**
     * Program which address bits select the bank (Section IV-B,
     * "programmable bank bits"). Bits are positions in the byte
     * address; there must be exactly log2(numBanks()) of them.
     */
    void setBankBits(const std::vector<int> &bits);

    /** Bank index for a byte address under the current bank bits. */
    int bankOf(std::int64_t addr) const;

    /**
     * Program the valid address range for this PMU (address
     * predication): accesses outside [lo, hi) are dropped, which is
     * how one logical tensor interleaves across several PMUs.
     */
    void setValidRange(std::int64_t lo, std::int64_t hi);

    /** @return true if this PMU accepts the address. */
    bool accepts(std::int64_t addr) const;

    struct AccessResult
    {
        int cycles = 0;     ///< serialized cycles for this vector access
        int conflicts = 0;  ///< extra cycles lost to bank conflicts
        int accepted = 0;   ///< lanes that passed predication
    };

    /**
     * Model one vector access (one address per lane). Lanes mapping to
     * the same bank serialize; the access takes as many cycles as the
     * most-subscribed bank.
     */
    AccessResult access(const std::vector<std::int64_t> &addrs);

    /**
     * Byte address of element (row, col) of a [rows x cols] tile under
     * the diagonally striped layout: element columns are rotated by
     * the row index so that both row-order and column-order vector
     * accesses are conflict-free (Section IV-B, Data Alignment Unit).
     */
    std::int64_t diagonalStripeAddr(std::int64_t row, std::int64_t col,
                                    std::int64_t cols,
                                    std::int64_t elem_bytes) const;

    /** Plain row-major address for comparison/ablation. */
    static std::int64_t linearAddr(std::int64_t row, std::int64_t col,
                                   std::int64_t cols,
                                   std::int64_t elem_bytes);

    sim::StatSet &stats() { return stats_; }

  private:
    const ChipConfig &cfg_;
    std::string name_;
    std::vector<int> bankBits_;
    std::int64_t validLo_ = 0;
    std::int64_t validHi_;
    sim::StatSet stats_;
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_PMU_H
