#include "arch/rdn.h"

#include <algorithm>

#include "sim/log.h"
#include "sim/network.h"
#include "sim/ticks.h"

namespace sn40l::arch {

RdnMesh::RdnMesh(int cols, int rows) : cols_(cols), rows_(rows)
{
    if (cols <= 0 || rows <= 0)
        sim::fatal("RdnMesh: non-positive dimensions");
}

bool
RdnMesh::contains(Coord c) const
{
    return c.x >= 0 && c.x < cols_ && c.y >= 0 && c.y < rows_;
}

std::vector<Coord>
RdnMesh::route(Coord src, Coord dst) const
{
    if (!contains(src) || !contains(dst))
        sim::panic("RdnMesh::route: coordinate off mesh");

    std::vector<Coord> path;
    Coord cur = src;
    path.push_back(cur);
    while (cur.x != dst.x) {
        cur.x += cur.x < dst.x ? 1 : -1;
        path.push_back(cur);
    }
    while (cur.y != dst.y) {
        cur.y += cur.y < dst.y ? 1 : -1;
        path.push_back(cur);
    }
    return path;
}

std::vector<Link>
RdnMesh::routeLinks(Coord src, Coord dst) const
{
    std::vector<Coord> path = route(src, dst);
    std::vector<Link> links;
    for (std::size_t i = 1; i < path.size(); ++i)
        links.push_back({path[i - 1], path[i]});
    return links;
}

std::set<Link>
RdnMesh::multicastTree(Coord src, const std::vector<Coord> &dsts) const
{
    std::set<Link> tree;
    for (Coord dst : dsts) {
        for (const Link &link : routeLinks(src, dst))
            tree.insert(link);
    }
    return tree;
}

void
RdnMesh::addFlow(Coord src, Coord dst, double bytes_per_sec)
{
    for (const Link &link : routeLinks(src, dst))
        linkLoad_[link] += bytes_per_sec;
    ++flowCount_;
}

void
RdnMesh::addMulticastFlow(Coord src, const std::vector<Coord> &dsts,
                          double bytes_per_sec)
{
    for (const Link &link : multicastTree(src, dsts))
        linkLoad_[link] += bytes_per_sec;
    ++flowCount_;
}

void
RdnMesh::clearFlows()
{
    linkLoad_.clear();
    flowCount_ = 0;
}

double
RdnMesh::maxLinkLoad() const
{
    double worst = 0.0;
    for (const auto &kv : linkLoad_)
        worst = std::max(worst, kv.second);
    return worst;
}

double
RdnMesh::congestionFactor(double link_bw) const
{
    if (link_bw <= 0.0)
        sim::fatal("RdnMesh: non-positive link bandwidth");
    return std::max(1.0, maxLinkLoad() / link_bw);
}

double
simulatedCongestionFactor(const std::vector<MeshFlow> &flows, int cols,
                          int rows, double link_bw,
                          double burst_factor, double window_seconds)
{
    if (cols <= 0 || rows <= 0)
        sim::fatal("simulatedCongestionFactor: non-positive mesh "
                   "dimensions");
    if (link_bw <= 0.0)
        sim::fatal("simulatedCongestionFactor: non-positive link "
                   "bandwidth");
    if (burst_factor < 1.0)
        sim::fatal("simulatedCongestionFactor: burst factor must be "
                   ">= 1");
    if (window_seconds <= 0.0)
        sim::fatal("simulatedCongestionFactor: non-positive burst "
                   "window");

    sim::EventQueue eq;
    sim::NetworkConfig net;
    net.topology = sim::Topology::Mesh2D;
    net.endpoints = cols * rows;
    net.meshCols = cols; // exact chip geometry, not the sqrt default
    net.linkBytesPerSec = link_bw;
    net.linkLatency = sim::fromUs(0.001); // 1 ns per hop on chip
    net.bufferFlits = 16;
    net.flitBytes = 64.0; // RDN packet granularity
    // Large bursts chunk into many flits; cap serialization quanta,
    // not modeled bytes (chunk size scales up past the cap).
    net.maxFlitsPerMessage = 4096;
    sim::Network mesh(eq, net);

    auto id = [cols](Coord c) { return c.y * cols + c.x; };
    sim::Tick makespan = 0;
    bool sent = false;
    for (const MeshFlow &f : flows) {
        if (f.bytesPerSec <= 0.0 || f.src == f.dst)
            continue;
        double burst = f.bytesPerSec * burst_factor * window_seconds;
        mesh.send(id(f.src), id(f.dst), burst,
                  [&eq, &makespan] {
                      makespan = std::max(makespan, eq.now());
                  });
        sent = true;
    }
    if (!sent)
        return 1.0;
    eq.run();
    return std::max(1.0, sim::toSeconds(makespan) / window_seconds);
}

void
ReorderBuffer::push(std::uint64_t seq)
{
    if (seq < next_ || pending_.count(seq))
        sim::panic("ReorderBuffer: duplicate or stale sequence id " +
                   std::to_string(seq));
    pending_.insert(seq);
    maxOccupancy_ = std::max(maxOccupancy_, pending_.size());
}

std::size_t
ReorderBuffer::drain()
{
    std::size_t released = 0;
    while (!pending_.empty() && *pending_.begin() == next_) {
        pending_.erase(pending_.begin());
        ++next_;
        ++released;
    }
    return released;
}

CreditLink::CreditLink(sim::EventQueue &eq, std::string name, int credits,
                       sim::Tick flit_time, sim::Tick credit_latency)
    : eq_(eq), name_(std::move(name)),
      flitLabel_(name_ + ".flit_delivered"),
      creditLabel_(name_ + ".credit_return"), credits_(credits),
      maxCredits_(credits), flitTime_(flit_time),
      creditLatency_(credit_latency), stats_(name_)
{
    if (credits <= 0)
        sim::fatal("CreditLink " + name_ + ": need at least one credit");
    if (flit_time <= 0)
        sim::fatal("CreditLink " + name_ + ": flit time must be positive");
}

void
CreditLink::send(int flits, Callback on_delivered)
{
    if (flits <= 0)
        sim::panic("CreditLink " + name_ + ": empty message");
    sendQueue_.push({flits, std::move(on_delivered)});
    stats_.inc("messages");
    stats_.inc("flits_requested", flits);
    trySend();
}

void
CreditLink::trySend()
{
    while (!sendQueue_.empty()) {
        if (credits_ == 0) {
            stats_.inc("credit_stalls");
            return; // retry when a credit returns
        }
        Message &msg = sendQueue_.front();
        --credits_;

        // Serialize flits on the wire.
        sim::Tick start = std::max(eq_.now(), linkFreeAt_);
        sim::Tick delivered = start + flitTime_;
        linkFreeAt_ = delivered;
        stats_.inc("flits_sent");

        bool last = --msg.flitsLeft == 0;
        Callback cb;
        if (last) {
            cb = std::move(msg.onDelivered);
            sendQueue_.pop();
        }

        eq_.schedule(delivered, [this, cb = std::move(cb)]() {
            if (cb)
                cb();
            // Credit returns to the sender after the return latency.
            eq_.scheduleIn(creditLatency_, [this]() {
                if (credits_ < maxCredits_)
                    ++credits_;
                trySend();
            }, creditLabel_.c_str());
        }, flitLabel_.c_str());
    }
}

} // namespace sn40l::arch
