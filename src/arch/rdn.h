/**
 * @file
 * Reconfigurable Dataflow Network model (Section IV-C): a 2-D mesh of
 * non-blocking switches with
 *   - dimension-order and static-flow routing,
 *   - multicast route trees for one-to-many streams,
 *   - sequence-ID reordering for many-to-one streams,
 *   - credit-based flow control on links,
 *   - per-link flow accounting for congestion analysis.
 */

#ifndef SN40L_ARCH_RDN_H
#define SN40L_ARCH_RDN_H

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/stats.h"

namespace sn40l::arch {

struct Coord
{
    int x = 0;
    int y = 0;
    bool operator==(const Coord &o) const { return x == o.x && y == o.y; }
    bool operator!=(const Coord &o) const { return !(*this == o); }
    bool operator<(const Coord &o) const
    {
        return x != o.x ? x < o.x : y < o.y;
    }
};

/** Directed link between adjacent switches. */
struct Link
{
    Coord from;
    Coord to;
    bool operator==(const Link &o) const
    {
        return from == o.from && to == o.to;
    }
    bool operator<(const Link &o) const
    {
        return from != o.from ? from < o.from : to < o.to;
    }
};

class RdnMesh
{
  public:
    RdnMesh(int cols, int rows);

    int cols() const { return cols_; }
    int rows() const { return rows_; }
    bool contains(Coord c) const;

    /**
     * Dimension-order (X then Y) route from @p src to @p dst,
     * inclusive of both endpoints. Deadlock-free by construction.
     */
    std::vector<Coord> route(Coord src, Coord dst) const;

    /** The directed links along route(src, dst). */
    std::vector<Link> routeLinks(Coord src, Coord dst) const;

    /**
     * Static-flow multicast tree: the union of dimension-order routes
     * from @p src to each destination. Shared prefixes are traversed
     * once — the switch replicates packets at fan-out points
     * (Section IV-C, static flow routing).
     * @return the set of directed links in the tree.
     */
    std::set<Link> multicastTree(Coord src,
                                 const std::vector<Coord> &dsts) const;

    // ---- Flow-level congestion accounting -------------------------

    /** Add a persistent flow of @p bytes_per_sec along route(src,dst). */
    void addFlow(Coord src, Coord dst, double bytes_per_sec);

    /** Add a multicast flow along the tree (each tree link loaded once). */
    void addMulticastFlow(Coord src, const std::vector<Coord> &dsts,
                          double bytes_per_sec);

    void clearFlows();

    /** Load on the most-loaded link, bytes/sec. */
    double maxLinkLoad() const;

    /**
     * Congestion factor for a link bandwidth of @p link_bw: 1.0 when
     * every link fits, >1 when the hottest link is oversubscribed
     * (time dilation for streams crossing it).
     */
    double congestionFactor(double link_bw) const;

    std::size_t flowCount() const { return flowCount_; }

  private:
    int cols_;
    int rows_;
    std::map<Link, double> linkLoad_;
    std::size_t flowCount_ = 0;
};

/**
 * One steady-state on-chip stream, extracted by the compiler's
 * traffic analyzer for event-driven replay. Multicast trees are
 * expanded per destination (an upper bound: the replay charges shared
 * prefixes once per destination where the switch replicates in place).
 */
struct MeshFlow
{
    Coord src;
    Coord dst;
    double bytesPerSec = 0.0;
};

/**
 * Event-driven congestion estimate: replay one burst window of the
 * flow set on the link/credit interconnect (sim::Network, Mesh2D at
 * on-chip scale — 64-byte flits, nanosecond hop latency) and report
 * the time dilation actually observed instead of the closed-form
 * max-link ratio. Each flow injects bytesPerSec * burst_factor *
 * window_seconds at t = 0; the result is makespan / window, floored
 * at 1.0. Flows with src == dst or a non-positive rate are skipped.
 *
 * This retires the static RdnMesh::congestionFactor formula as the
 * primary estimate: credit backpressure and XY route overlap are
 * modeled, not approximated. The analytic formula stays available as
 * a labeled reference (bench/abl_rdn_congestion).
 */
double simulatedCongestionFactor(const std::vector<MeshFlow> &flows,
                                 int cols, int rows, double link_bw,
                                 double burst_factor = 2.0,
                                 double window_seconds = 1e-6);

/**
 * Sequence-ID reorder buffer (Section IV-C, many-to-one): packets
 * tagged with software-assigned sequence IDs arrive out of order; the
 * consumer drains the in-order prefix.
 */
class ReorderBuffer
{
  public:
    explicit ReorderBuffer(std::uint64_t first_expected = 0)
        : next_(first_expected) {}

    /** Accept a packet with sequence id @p seq. Duplicate ids panic. */
    void push(std::uint64_t seq);

    /**
     * Pop the contiguous in-order prefix starting at the next expected
     * id. @return how many packets were released.
     */
    std::size_t drain();

    std::uint64_t nextExpected() const { return next_; }
    std::size_t pendingOutOfOrder() const { return pending_.size(); }
    std::size_t maxOccupancy() const { return maxOccupancy_; }

  private:
    std::uint64_t next_;
    std::set<std::uint64_t> pending_;
    std::size_t maxOccupancy_ = 0;
};

/**
 * Credit-based flow-controlled link (Section IV-C): the sender may
 * have at most @p credits flits in flight; each flit occupies the link
 * for @p flit_time and its credit returns @p credit_latency after
 * delivery. Senders that exhaust credits stall (counted).
 */
class CreditLink
{
  public:
    using Callback = std::function<void()>;

    CreditLink(sim::EventQueue &eq, std::string name, int credits,
               sim::Tick flit_time, sim::Tick credit_latency);

    /**
     * Send a message of @p flits flits; @p on_delivered fires when the
     * last flit is delivered.
     */
    void send(int flits, Callback on_delivered);

    int availableCredits() const { return credits_; }
    sim::StatSet &stats() { return stats_; }

  private:
    void trySend();

    struct Message
    {
        int flitsLeft;
        Callback onDelivered;
    };

    sim::EventQueue &eq_;
    std::string name_;
    std::string flitLabel_;   ///< precomputed event names: schedule()
    std::string creditLabel_; ///< keeps a pointer, not a copy
    int credits_;
    int maxCredits_;
    sim::Tick flitTime_;
    sim::Tick creditLatency_;
    sim::Tick linkFreeAt_ = 0;
    std::queue<Message> sendQueue_;
    sim::StatSet stats_;
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_RDN_H
