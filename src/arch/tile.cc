#include "arch/tile.h"

#include <cmath>

#include "sim/log.h"

namespace sn40l::arch {

Tile::Tile(const ChipConfig &cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)),
      mesh_(cfg.meshCols, cfg.meshRows), pcuModel_(cfg),
      agcu_(cfg, name_ + ".agcu")
{
    if (cfg.meshCols * cfg.meshRows < cfg.pcusPerTile()) {
        sim::fatal("Tile " + name_ + ": mesh too small for " +
                   std::to_string(cfg.pcusPerTile()) + " PCUs");
    }
}

Coord
Tile::pcuCoord(int index) const
{
    if (index < 0 || index >= numPcus())
        sim::panic("Tile::pcuCoord: index out of range");
    return {index % cfg_.meshCols, index / cfg_.meshCols};
}

Coord
Tile::pmuCoord(int index) const
{
    if (index < 0 || index >= numPmus())
        sim::panic("Tile::pmuCoord: index out of range");
    // PMUs sit in the same rows, offset by one column (checkerboard).
    int x = (index + 1) % cfg_.meshCols;
    int y = index / cfg_.meshCols;
    return {x, y};
}

RduChip::RduChip(const ChipConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    for (int i = 0; i < cfg_.tileCount(); ++i) {
        tiles_.push_back(std::make_unique<Tile>(
            cfg_, cfg_.name + ".tile" + std::to_string(i)));
    }
}

int
RduChip::placeablePcus() const
{
    return static_cast<int>(
        std::floor(cfg_.pcuCount * cfg_.placeableFraction));
}

int
RduChip::placeablePmus() const
{
    return static_cast<int>(
        std::floor(cfg_.pmuCount * cfg_.placeableFraction));
}

std::int64_t
RduChip::placeableSramBytes() const
{
    return static_cast<std::int64_t>(placeablePmus()) * cfg_.sramPerPmu();
}

} // namespace sn40l::arch
