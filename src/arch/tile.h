/**
 * @file
 * RDU tile: the coarse-grained reconfigurable array of PCUs, PMUs and
 * AGCUs connected by the RDN (Fig 6). The tile exposes the resource
 * pools the compiler's placer draws from and owns the structural
 * models used by micro-level simulations.
 */

#ifndef SN40L_ARCH_TILE_H
#define SN40L_ARCH_TILE_H

#include <memory>
#include <string>
#include <vector>

#include "arch/agcu.h"
#include "arch/chip_config.h"
#include "arch/pcu.h"
#include "arch/pmu.h"
#include "arch/rdn.h"

namespace sn40l::arch {

class Tile
{
  public:
    Tile(const ChipConfig &cfg, std::string name);

    const std::string &name() const { return name_; }
    const ChipConfig &config() const { return cfg_; }

    int numPcus() const { return cfg_.pcusPerTile(); }
    int numPmus() const { return cfg_.pmusPerTile(); }
    std::int64_t sramBytes() const
    {
        return static_cast<std::int64_t>(numPmus()) * cfg_.sramPerPmu();
    }

    RdnMesh &mesh() { return mesh_; }
    const RdnMesh &mesh() const { return mesh_; }

    Pcu &pcuModel() { return pcuModel_; }
    Agcu &agcu() { return agcu_; }

    /** Grid coordinate of the i-th PCU (PCU/PMU pairs tile the mesh). */
    Coord pcuCoord(int index) const;
    Coord pmuCoord(int index) const;

  private:
    const ChipConfig &cfg_;
    std::string name_;
    RdnMesh mesh_;
    Pcu pcuModel_;
    Agcu agcu_;
};

/** A full SN40L socket: all tiles plus per-socket resource totals. */
class RduChip
{
  public:
    explicit RduChip(const ChipConfig &cfg);

    const ChipConfig &config() const { return cfg_; }
    int numTiles() const { return static_cast<int>(tiles_.size()); }
    Tile &tile(int i) { return *tiles_.at(i); }

    int totalPcus() const { return cfg_.pcuCount; }
    int totalPmus() const { return cfg_.pmuCount; }

    /** PCUs a single fused kernel may occupy (placeable fraction). */
    int placeablePcus() const;
    int placeablePmus() const;
    std::int64_t placeableSramBytes() const;

  private:
    ChipConfig cfg_;
    std::vector<std::unique_ptr<Tile>> tiles_;
};

} // namespace sn40l::arch

#endif // SN40L_ARCH_TILE_H
