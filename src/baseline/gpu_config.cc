#include "baseline/gpu_config.h"

namespace sn40l::baseline {

GpuConfig
GpuConfig::a100()
{
    GpuConfig cfg;
    cfg.name = "A100-80GB";
    cfg.peakBf16Flops = TFLOPS(312);
    cfg.hbmBandwidth = TBps(2.039);
    cfg.hbmBytes = 80 * static_cast<std::int64_t>(GB);
    cfg.nvlinkBandwidth = GBps(300); // per direction, per GPU
    return cfg;
}

GpuConfig
GpuConfig::h100()
{
    GpuConfig cfg;
    cfg.name = "H100-80GB";
    cfg.peakBf16Flops = TFLOPS(989);
    cfg.hbmBandwidth = TBps(3.35);
    cfg.hbmBytes = 80 * static_cast<std::int64_t>(GB);
    cfg.nvlinkBandwidth = GBps(450);
    cfg.launchOverheadSeconds = 2.5e-6;
    cfg.collectiveLatencySeconds = 8e-6;
    return cfg;
}

DgxConfig
DgxConfig::dgxA100()
{
    DgxConfig cfg;
    cfg.name = "DGX-A100";
    cfg.gpu = GpuConfig::a100();
    cfg.hostToGpuBandwidth = GBps(32); // paper Section VI-C
    return cfg;
}

DgxConfig
DgxConfig::dgxH100()
{
    DgxConfig cfg;
    cfg.name = "DGX-H100";
    cfg.gpu = GpuConfig::h100();
    cfg.hostToGpuBandwidth = GBps(64); // paper Section VI-C
    return cfg;
}

} // namespace sn40l::baseline
