/**
 * @file
 * GPU and DGX-node parameters for the paper's comparison baselines
 * (Section VI-C). Published spec-sheet numbers; effective-bandwidth
 * and utilization derates follow the paper's stated observations
 * ("state-of-the-art optimized GPU implementations rarely exceed 50%
 * HBM bandwidth", Section VI-B).
 */

#ifndef SN40L_BASELINE_GPU_CONFIG_H
#define SN40L_BASELINE_GPU_CONFIG_H

#include <cstdint>
#include <string>

#include "util/units.h"

namespace sn40l::baseline {

struct GpuConfig
{
    std::string name;

    double peakBf16Flops = 0.0;  ///< dense BF16 tensor-core peak
    double hbmBandwidth = 0.0;
    std::int64_t hbmBytes = 0;

    /** Sustained fraction of HBM bandwidth on streaming reads. */
    double hbmEfficiency = 0.5;
    /** Sustained fraction of peak FLOPs for large GEMMs. */
    double peakUtilization = 0.5;
    /** FLOPs per kernel needed to reach peakUtilization. */
    double saturationFlops = 4e9;
    double minUtilization = 0.03;

    /** CUDA kernel launch + driver cost, per kernel. */
    double launchOverheadSeconds = 3e-6;
    /** NCCL collective call latency (on top of wire time). */
    double collectiveLatencySeconds = 10e-6;
    /** Per-GPU NVLink bandwidth for collectives. */
    double nvlinkBandwidth = 0.0;

    static GpuConfig a100();
    static GpuConfig h100();
};

struct DgxConfig
{
    std::string name;
    GpuConfig gpu;
    int gpus = 8;

    /**
     * Node-aggregate host-to-GPU copy bandwidth. The paper's
     * Section VI-C accounting: 32 GB/s on DGX A100, 64 GB/s on
     * DGX H100.
     */
    double hostToGpuBandwidth = 0.0;

    std::int64_t hostDramBytes = 2 * TiB;

    /** Host memory reserved for OS/runtime (sizes the ~150-expert
     *  OOM point). */
    std::int64_t hostReservedBytes = 170 * static_cast<std::int64_t>(GB);

    /** HBM reserved per node for router weights and KV cache. */
    std::int64_t hbmReservedBytes = 27 * static_cast<std::int64_t>(GB);

    std::int64_t totalHbmBytes() const { return gpus * gpu.hbmBytes; }
    std::int64_t usableHbmBytes() const
    {
        return totalHbmBytes() - hbmReservedBytes;
    }
    std::int64_t usableHostBytes() const
    {
        return hostDramBytes - hostReservedBytes;
    }

    /**
     * Total bytes of experts one node can hold. Experts are stored in
     * host DRAM and *copied* into the HBM working region on demand,
     * so host DRAM bounds the expert count (the paper's DGX OOM at
     * >150 Llama2-7B experts).
     */
    std::int64_t expertCapacityBytes() const
    {
        return usableHostBytes();
    }

    static DgxConfig dgxA100();
    static DgxConfig dgxH100();
};

} // namespace sn40l::baseline

#endif // SN40L_BASELINE_GPU_CONFIG_H
