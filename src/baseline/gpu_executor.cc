#include "baseline/gpu_executor.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "arch/agcu.h"
#include "sim/log.h"
#include "util/lru_cache.h"

namespace sn40l::baseline {

namespace {

/** FNV-1a over raw bytes; good enough to memoize deterministic runs. */
class Fnv1a
{
  public:
    void
    mix(const void *data, std::size_t len)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ULL;
        }
    }

    template <typename T>
    void
    mixValue(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        mix(&value, sizeof(value));
    }

    void
    mixString(const std::string &s)
    {
        mixValue(s.size());
        mix(s.data(), s.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

struct Memo
{
    std::mutex mu;
    util::LruCache<std::uint64_t, GpuRunResult> lru{256};
};

Memo &
memo()
{
    static Memo m;
    return m;
}

} // namespace

double
GpuExecutor::kernelSeconds(const compiler::Kernel &kernel) const
{
    const GpuConfig &gpu = cfg_.gpu;
    int tp = cfg_.gpus;

    double work = (kernel.systolicFlops + kernel.simdFlops) / tp;
    double compute = 0.0;
    if (work > 0.0) {
        double util = std::clamp(work / gpu.saturationFlops,
                                 gpu.minUtilization, 1.0) *
                      gpu.peakUtilization;
        compute = work / (gpu.peakBf16Flops * util);
    }

    double bytes = kernel.offChipBytes() / tp;
    double mem = bytes / (gpu.hbmBandwidth * gpu.hbmEfficiency);

    double collective = 0.0;
    if (tp > 1 && kernel.allReduceBytes > 0.0) {
        double factor = arch::Agcu::allReduceTrafficFactor(tp);
        collective = kernel.allReduceBytes * factor / tp /
                     gpu.nvlinkBandwidth;
        collective += kernel.collectiveOps * gpu.collectiveLatencySeconds;
    }
    return std::max(compute, mem) + collective;
}

std::uint64_t
GpuExecutor::fingerprint(const graph::DataflowGraph &graph) const
{
    Fnv1a h;
    // Executor identity: every config field that feeds the cost.
    h.mixString(cfg_.gpu.name);
    h.mixValue(cfg_.gpu.peakBf16Flops);
    h.mixValue(cfg_.gpu.hbmBandwidth);
    h.mixValue(cfg_.gpu.hbmEfficiency);
    h.mixValue(cfg_.gpu.peakUtilization);
    h.mixValue(cfg_.gpu.saturationFlops);
    h.mixValue(cfg_.gpu.minUtilization);
    h.mixValue(cfg_.gpu.launchOverheadSeconds);
    h.mixValue(cfg_.gpu.collectiveLatencySeconds);
    h.mixValue(cfg_.gpu.nvlinkBandwidth);
    h.mixValue(cfg_.gpus);
    h.mixValue(flashAttention_);

    // Graph structure: op kinds, sparsity, wiring, and tensor shapes
    // (bytes fold dtype + dims) pin the partitioning and the cost.
    h.mixString(graph.name());
    h.mixValue(graph.numOps());
    h.mixValue(graph.numTensors());
    for (const graph::Operator &op : graph.ops()) {
        h.mixValue(static_cast<int>(op.kind));
        h.mixValue(op.sparsity);
        h.mixValue(op.inputs.size());
        for (graph::TensorId t : op.inputs)
            h.mixValue(t);
        h.mixValue(op.outputs.size());
        for (graph::TensorId t : op.outputs)
            h.mixValue(t);
    }
    for (const graph::Tensor &t : graph.tensors()) {
        h.mixValue(static_cast<int>(t.kind));
        h.mixValue(static_cast<int>(t.dtype));
        h.mixValue(graph.tensorBytes(t.id));
    }
    return h.value();
}

GpuRunResult
GpuExecutor::runUncached(const graph::DataflowGraph &graph) const
{
    compiler::FusionOptions options;
    options.mode = compiler::ExecMode::GpuConventional;
    options.tensorParallel = cfg_.gpus;
    options.gpuFlashAttention = flashAttention_;

    // GPUs don't need the chip config for conventional partitioning,
    // but the interface is shared.
    arch::ChipConfig dummy = arch::ChipConfig::sn40l();
    std::vector<compiler::Kernel> kernels =
        compiler::partitionGraph(graph, dummy, options);

    GpuRunResult result;
    result.kernels = static_cast<std::int64_t>(kernels.size());
    for (const compiler::Kernel &k : kernels) {
        double s = kernelSeconds(k);
        result.execSeconds += s;
        if (k.collectiveOps > 0) {
            result.collectiveSeconds +=
                k.collectiveOps * cfg_.gpu.collectiveLatencySeconds;
        }
    }
    result.launchSeconds =
        static_cast<double>(result.kernels) *
        cfg_.gpu.launchOverheadSeconds;
    result.seconds = result.execSeconds + result.launchSeconds;
    return result;
}

GpuRunResult
GpuExecutor::run(const graph::DataflowGraph &graph) const
{
    std::uint64_t key = fingerprint(graph);
    {
        std::lock_guard<std::mutex> lock(memo().mu);
        if (const GpuRunResult *hit = memo().lru.find(key))
            return *hit;
    }
    GpuRunResult result = runUncached(graph);
    std::lock_guard<std::mutex> lock(memo().mu);
    memo().lru.insert(key, result);
    return result;
}

std::uint64_t
GpuExecutor::memoHits()
{
    std::lock_guard<std::mutex> lock(memo().mu);
    return memo().lru.hits();
}

std::uint64_t
GpuExecutor::memoMisses()
{
    std::lock_guard<std::mutex> lock(memo().mu);
    return memo().lru.misses();
}

void
GpuExecutor::clearMemo()
{
    std::lock_guard<std::mutex> lock(memo().mu);
    memo().lru.clear();
}

} // namespace sn40l::baseline
