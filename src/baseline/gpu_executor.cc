#include "baseline/gpu_executor.h"

#include <algorithm>

#include "arch/agcu.h"
#include "sim/log.h"

namespace sn40l::baseline {

double
GpuExecutor::kernelSeconds(const compiler::Kernel &kernel) const
{
    const GpuConfig &gpu = cfg_.gpu;
    int tp = cfg_.gpus;

    double work = (kernel.systolicFlops + kernel.simdFlops) / tp;
    double compute = 0.0;
    if (work > 0.0) {
        double util = std::clamp(work / gpu.saturationFlops,
                                 gpu.minUtilization, 1.0) *
                      gpu.peakUtilization;
        compute = work / (gpu.peakBf16Flops * util);
    }

    double bytes = kernel.offChipBytes() / tp;
    double mem = bytes / (gpu.hbmBandwidth * gpu.hbmEfficiency);

    double collective = 0.0;
    if (tp > 1 && kernel.allReduceBytes > 0.0) {
        double factor = arch::Agcu::allReduceTrafficFactor(tp);
        collective = kernel.allReduceBytes * factor / tp /
                     gpu.nvlinkBandwidth;
        collective += kernel.collectiveOps * gpu.collectiveLatencySeconds;
    }
    return std::max(compute, mem) + collective;
}

GpuRunResult
GpuExecutor::run(const graph::DataflowGraph &graph) const
{
    compiler::FusionOptions options;
    options.mode = compiler::ExecMode::GpuConventional;
    options.tensorParallel = cfg_.gpus;
    options.gpuFlashAttention = flashAttention_;

    // GPUs don't need the chip config for conventional partitioning,
    // but the interface is shared.
    arch::ChipConfig dummy = arch::ChipConfig::sn40l();
    std::vector<compiler::Kernel> kernels =
        compiler::partitionGraph(graph, dummy, options);

    GpuRunResult result;
    result.kernels = static_cast<std::int64_t>(kernels.size());
    for (const compiler::Kernel &k : kernels) {
        double s = kernelSeconds(k);
        result.execSeconds += s;
        if (k.collectiveOps > 0) {
            result.collectiveSeconds +=
                k.collectiveOps * cfg_.gpu.collectiveLatencySeconds;
        }
    }
    result.launchSeconds =
        static_cast<double>(result.kernels) *
        cfg_.gpu.launchOverheadSeconds;
    result.seconds = result.execSeconds + result.launchSeconds;
    return result;
}

} // namespace sn40l::baseline
