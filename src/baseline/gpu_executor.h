/**
 * @file
 * GPU baseline executor: runs a dataflow graph under conventional
 * (restricted) fusion with kernel-per-group launches — the execution
 * model the paper compares against (Sections III-A and VI-C).
 */

#ifndef SN40L_BASELINE_GPU_EXECUTOR_H
#define SN40L_BASELINE_GPU_EXECUTOR_H

#include "baseline/gpu_config.h"
#include "compiler/fusion.h"
#include "graph/dataflow_graph.h"

namespace sn40l::baseline {

struct GpuRunResult
{
    double seconds = 0.0;
    double execSeconds = 0.0;
    double launchSeconds = 0.0;
    double collectiveSeconds = 0.0;
    std::int64_t kernels = 0;
};

class GpuExecutor
{
  public:
    explicit GpuExecutor(DgxConfig cfg, bool flash_attention = true)
        : cfg_(std::move(cfg)), flashAttention_(flash_attention) {}

    const DgxConfig &config() const { return cfg_; }

    /**
     * Execute @p graph tensor-parallel across the node's GPUs.
     * Kernels serialize; each pays launch overhead; per-kernel time
     * is the max of compute (utilization-derated) and HBM traffic at
     * the GPU's sustained efficiency.
     */
    GpuRunResult run(const graph::DataflowGraph &graph) const;

    /** Seconds for one kernel's per-GPU work. */
    double kernelSeconds(const compiler::Kernel &kernel) const;

  private:
    DgxConfig cfg_;
    bool flashAttention_;
};

} // namespace sn40l::baseline

#endif // SN40L_BASELINE_GPU_EXECUTOR_H
