/**
 * @file
 * GPU baseline executor: runs a dataflow graph under conventional
 * (restricted) fusion with kernel-per-group launches — the execution
 * model the paper compares against (Sections III-A and VI-C).
 *
 * run() memoizes its result in a process-wide LRU keyed by a
 * structural fingerprint of (config, graph): serving sweeps price the
 * same batch shapes over and over, and partitioning + costing the
 * graph is the expensive part. The memo is thread-safe and exact —
 * the computation is deterministic, so a hit is bit-identical to a
 * recompute.
 */

#ifndef SN40L_BASELINE_GPU_EXECUTOR_H
#define SN40L_BASELINE_GPU_EXECUTOR_H

#include <cstdint>

#include "baseline/gpu_config.h"
#include "compiler/fusion.h"
#include "graph/dataflow_graph.h"

namespace sn40l::baseline {

struct GpuRunResult
{
    double seconds = 0.0;
    double execSeconds = 0.0;
    double launchSeconds = 0.0;
    double collectiveSeconds = 0.0;
    std::int64_t kernels = 0;
};

class GpuExecutor
{
  public:
    explicit GpuExecutor(DgxConfig cfg, bool flash_attention = true)
        : cfg_(std::move(cfg)), flashAttention_(flash_attention) {}

    const DgxConfig &config() const { return cfg_; }

    /**
     * Execute @p graph tensor-parallel across the node's GPUs.
     * Kernels serialize; each pays launch overhead; per-kernel time
     * is the max of compute (utilization-derated) and HBM traffic at
     * the GPU's sustained efficiency. Memoized on the graph's
     * structural fingerprint (see file comment).
     */
    GpuRunResult run(const graph::DataflowGraph &graph) const;

    /** Seconds for one kernel's per-GPU work. */
    double kernelSeconds(const compiler::Kernel &kernel) const;

    /** Memo statistics / reset, exposed for tests and benches. */
    static std::uint64_t memoHits();
    static std::uint64_t memoMisses();
    static void clearMemo();

  private:
    GpuRunResult runUncached(const graph::DataflowGraph &graph) const;

    /** Structural fingerprint of everything run() depends on. */
    std::uint64_t fingerprint(const graph::DataflowGraph &graph) const;

    DgxConfig cfg_;
    bool flashAttention_;
};

} // namespace sn40l::baseline

#endif // SN40L_BASELINE_GPU_EXECUTOR_H
