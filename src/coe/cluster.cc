#include "coe/cluster.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>

#include "coe/serving_engine.h"
#include "coe/workload.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/ticks.h"

namespace sn40l::coe {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin: return "round-robin";
      case DispatchPolicy::LeastOutstanding: return "least-outstanding";
      case DispatchPolicy::ExpertAffinity: return "expert-affinity";
    }
    sim::panic("dispatchPolicyName: unknown policy");
}

DispatchPolicy
dispatchPolicyFromName(const std::string &name)
{
    if (name == "round-robin" || name == "rr")
        return DispatchPolicy::RoundRobin;
    if (name == "least-outstanding" || name == "least")
        return DispatchPolicy::LeastOutstanding;
    if (name == "expert-affinity" || name == "affinity")
        return DispatchPolicy::ExpertAffinity;
    sim::fatal("unknown dispatch policy '" + name +
               "' (expected round-robin, least-outstanding, or "
               "expert-affinity)");
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FullReplication: return "replication";
      case PlacementPolicy::ReplicateHotPartitionCold:
          return "replicate-hot";
      case PlacementPolicy::BalancedPartition: return "partition";
    }
    sim::panic("placementPolicyName: unknown policy");
}

PlacementPolicy
placementPolicyFromName(const std::string &name)
{
    if (name == "replication" || name == "full-replication")
        return PlacementPolicy::FullReplication;
    if (name == "replicate-hot" || name == "hot")
        return PlacementPolicy::ReplicateHotPartitionCold;
    if (name == "partition" || name == "balanced-partition")
        return PlacementPolicy::BalancedPartition;
    sim::fatal("unknown placement policy '" + name +
               "' (expected replication, replicate-hot, or partition)");
}

ExpertPlacement
makePlacement(PlacementPolicy policy, int experts, int nodes,
              int hot_experts)
{
    if (experts <= 0 || nodes <= 0)
        sim::fatal("makePlacement: non-positive expert or node count");
    ExpertPlacement p;
    p.hostsOfExpert.resize(static_cast<std::size_t>(experts));
    p.expertsOfNode.resize(static_cast<std::size_t>(nodes));
    auto place = [&p](int e, int n) {
        p.hostsOfExpert[static_cast<std::size_t>(e)].push_back(n);
        p.expertsOfNode[static_cast<std::size_t>(n)].push_back(e);
        ++p.replicas;
    };
    switch (policy) {
      case PlacementPolicy::FullReplication:
        for (int e = 0; e < experts; ++e)
            for (int n = 0; n < nodes; ++n)
                place(e, n);
        break;
      case PlacementPolicy::BalancedPartition:
        for (int e = 0; e < experts; ++e)
            place(e, e % nodes);
        break;
      case PlacementPolicy::ReplicateHotPartitionCold: {
        int hot = hot_experts > 0 ? std::min(hot_experts, experts)
                                  : std::max(1, experts / 10);
        for (int e = 0; e < hot; ++e)
            for (int n = 0; n < nodes; ++n)
                place(e, n);
        // Cold tail sharded round-robin; id order is popularity order
        // under Zipf routing, so the shards stay load-balanced.
        for (int e = hot; e < experts; ++e)
            place(e, e % nodes);
        break;
      }
    }
    return p;
}

namespace {

using sim::mix64; // the consistent-hash ring's hash

/**
 * Consistent-hash ring over the node set. Every node contributes
 * kVirtualPoints points; an expert hashes to a ring position and
 * walks clockwise to the first eligible node. Because the ring is
 * built once over ALL nodes, removing a node (drain) only moves the
 * experts that lived on it — everyone else keeps their home node.
 */
class HashRing
{
  public:
    explicit HashRing(int nodes)
    {
        constexpr int kVirtualPoints = 16;
        points_.reserve(static_cast<std::size_t>(nodes) * kVirtualPoints);
        for (int n = 0; n < nodes; ++n)
            for (int v = 0; v < kVirtualPoints; ++v)
                points_.emplace_back(
                    mix64((static_cast<std::uint64_t>(n) << 32) |
                          static_cast<std::uint64_t>(v)),
                    n);
        std::sort(points_.begin(), points_.end());
    }

    /** First eligible node clockwise of @p expert's hash, or -1. */
    int
    lookup(int expert, const std::vector<char> &eligible) const
    {
        std::uint64_t h =
            mix64(0xc0e5e4f1ull ^ static_cast<std::uint64_t>(expert));
        auto it = std::lower_bound(
            points_.begin(), points_.end(),
            std::make_pair(h, -1));
        for (std::size_t walked = 0; walked < points_.size(); ++walked) {
            if (it == points_.end())
                it = points_.begin();
            if (eligible[static_cast<std::size_t>(it->second)])
                return it->second;
            ++it;
        }
        return -1;
    }

  private:
    std::vector<std::pair<std::uint64_t, int>> points_;
};

} // namespace

ClusterSimulator::ClusterSimulator(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.node.mode = ServingMode::EventDriven;
    validateServingConfig(cfg_.node);

    if (cfg_.nodes <= 0)
        sim::fatal("ClusterConfig: need at least one node");
    if (cfg_.hotExperts < 0)
        sim::fatal("ClusterConfig: negative hotExperts");
    if (cfg_.hotExperts > cfg_.node.numExperts)
        sim::fatal("ClusterConfig: hotExperts exceeds the expert count");
    if (cfg_.drainAtSeconds < 0.0 || cfg_.rejoinAtSeconds < 0.0)
        sim::fatal("ClusterConfig: negative drain/rejoin time");
    if (cfg_.drainAtSeconds > 0.0) {
        if (cfg_.nodes < 2)
            sim::fatal("ClusterConfig: draining needs at least 2 nodes "
                       "(requests must have somewhere to go)");
        if (cfg_.drainNode < 0 || cfg_.drainNode >= cfg_.nodes)
            sim::fatal("ClusterConfig: drainNode out of range");
        if (cfg_.rejoinAtSeconds > 0.0 &&
            cfg_.rejoinAtSeconds <= cfg_.drainAtSeconds)
            sim::fatal("ClusterConfig: rejoin must come after the drain");
    } else if (cfg_.rejoinAtSeconds > 0.0) {
        sim::fatal("ClusterConfig: rejoin without a drain");
    }
    if (cfg_.diurnalAmplitude < 0.0 || cfg_.diurnalAmplitude >= 1.0)
        sim::fatal("ClusterConfig: diurnal amplitude must be in [0, 1)");
    if (cfg_.diurnalAmplitude > 0.0) {
        if (cfg_.node.arrival != ArrivalProcess::Poisson)
            sim::fatal("ClusterConfig: diurnal ramp modulates the "
                       "open-loop Poisson rate; it cannot be combined "
                       "with a closed loop");
        if (cfg_.diurnalPeriodSeconds <= 0.0)
            sim::fatal("ClusterConfig: non-positive diurnal period");
    }
    for (const ClusterNodeOverride &o : cfg_.overrides) {
        if (o.node < 0 || o.node >= cfg_.nodes)
            sim::fatal("ClusterConfig: override for out-of-range node " +
                       std::to_string(o.node));
        if (o.dmaEngines < 0 || o.expertRegionBytes < 0)
            sim::fatal("ClusterConfig: negative override value");
    }

    costs_ = computePhaseCosts(cfg_.node);
    if (cfg_.node.expertRegionBytes > 0)
        costs_.expertRegionBytes = cfg_.node.expertRegionBytes;
}

ClusterResult
ClusterSimulator::run()
{
    ClusterResult result;
    const ServingConfig &base = cfg_.node;
    const int N = cfg_.nodes;

    ExpertPlacement placement = makePlacement(
        cfg_.placement, base.numExperts, N, cfg_.hotExperts);

    // Per-node configs and costs with heterogeneous overrides applied.
    std::vector<ServingConfig> nodeCfg(static_cast<std::size_t>(N), base);
    std::vector<PhaseCosts> nodeCosts(static_cast<std::size_t>(N), costs_);
    for (const ClusterNodeOverride &o : cfg_.overrides) {
        auto n = static_cast<std::size_t>(o.node);
        if (o.dmaEngines > 0)
            nodeCfg[n].dmaEngines = o.dmaEngines;
        if (o.expertRegionBytes > 0)
            nodeCosts[n].expertRegionBytes = o.expertRegionBytes;
    }

    // Placement feasibility: every node's placed experts must fit its
    // DDR backing tier (the single-node OOM check, per shard).
    ExpertZoo zoo = ExpertZoo::uniform(base.numExperts, base.expertBase);
    std::vector<double> placedBytes(static_cast<std::size_t>(N), 0.0);
    for (int n = 0; n < N; ++n) {
        for (int e : placement.expertsOfNode[static_cast<std::size_t>(n)])
            placedBytes[static_cast<std::size_t>(n)] +=
                zoo.expert(e).bytes;
        if (placedBytes[static_cast<std::size_t>(n)] >
            nodeCosts[static_cast<std::size_t>(n)].capacityBytes) {
            result.oom = true;
            return result;
        }
    }

    latency_.clear();
    stalls_.clear();
    stats_ = sim::StatSet("cluster");

    sim::EventQueue eq;

    // Arrivals and routing live in a pluggable WorkloadModel; the
    // cluster's diurnal ramp is layered onto the model as a RateShape
    // (amplitude 0 keeps the gap arithmetic bit-identical to the
    // single-node Poisson chain).
    RateShape diurnal;
    diurnal.diurnalAmplitude = cfg_.diurnalAmplitude;
    diurnal.diurnalPeriodSeconds = cfg_.diurnalPeriodSeconds;
    std::unique_ptr<WorkloadModel> workload =
        makeWorkloadModel(base, diurnal);
    TraceRecorder recorder(base.workload.traceOut);

    std::vector<std::unique_ptr<ServingEngine>> engines;
    engines.reserve(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) {
        engines.push_back(std::make_unique<ServingEngine>(
            eq, nodeCfg[static_cast<std::size_t>(n)],
            nodeCosts[static_cast<std::size_t>(n)],
            ExpertZoo::uniform(base.numExperts, base.expertBase)));
        engines.back()->setMirrors(&latency_, &stalls_);
    }

    // ---- cluster dispatch ---------------------------------------
    std::vector<char> live(static_cast<std::size_t>(N), 1);
    std::vector<char> isCandidate(static_cast<std::size_t>(N), 0);
    std::vector<std::int64_t> dispatchedTo(static_cast<std::size_t>(N), 0);
    std::vector<std::int64_t> redispatchedFrom(
        static_cast<std::size_t>(N), 0);
    std::int64_t redispatchedTotal = 0;
    bool nodeWasDrained = false;
    HashRing ring(N);
    std::size_t rrCursor = 0;
    std::vector<int> candidates;
    candidates.reserve(static_cast<std::size_t>(N));

    auto pickNode = [&](int expert) -> int {
        candidates.clear();
        for (int n :
             placement.hostsOfExpert[static_cast<std::size_t>(expert)])
            if (live[static_cast<std::size_t>(n)])
                candidates.push_back(n);
        if (candidates.empty()) {
            // Every host of this expert is draining: fall back to any
            // live node, which demand-streams the expert from its own
            // DDR copy of the zoo. Counted so studies can see it.
            stats_.inc("dispatch_fallbacks");
            for (int n = 0; n < N; ++n)
                if (live[static_cast<std::size_t>(n)])
                    candidates.push_back(n);
        }
        if (candidates.empty())
            sim::panic("cluster: no live node to dispatch to");
        switch (cfg_.dispatch) {
          case DispatchPolicy::RoundRobin:
            return candidates[rrCursor++ % candidates.size()];
          case DispatchPolicy::LeastOutstanding: {
            int best = candidates.front();
            std::int64_t best_out =
                engines[static_cast<std::size_t>(best)]->outstanding();
            for (std::size_t i = 1; i < candidates.size(); ++i) {
                int n = candidates[i];
                std::int64_t out =
                    engines[static_cast<std::size_t>(n)]->outstanding();
                if (out < best_out) { // ties keep the lowest node id
                    best = n;
                    best_out = out;
                }
            }
            return best;
          }
          case DispatchPolicy::ExpertAffinity: {
            for (int n : candidates)
                isCandidate[static_cast<std::size_t>(n)] = 1;
            int n = ring.lookup(expert, isCandidate);
            for (int c : candidates)
                isCandidate[static_cast<std::size_t>(c)] = 0;
            sim::simAssert(n >= 0, "cluster: ring lookup failed");
            return n;
          }
        }
        sim::panic("cluster: unknown dispatch policy");
    };

    sim::Tick firstArrival = -1;

    // Closed-loop clients are cluster-wide: whichever node finishes a
    // batch frees that many clients to think and re-issue. Session
    // follow-ups and shed notifications route back the same way.
    for (int n = 0; n < N; ++n) {
        ServingEngine &e = *engines[static_cast<std::size_t>(n)];
        e.setOnBatchComplete(
            [&](int finished) { workload->onBatchComplete(finished); });
        e.setOnRequestComplete([&](const EngineRequest &r) {
            workload->onRequestComplete(toTrafficRequest(r));
        });
        e.setOnRequestShed([&](const EngineRequest &r) {
            workload->onRequestShed(toTrafficRequest(r));
        });
    }

    // ---- drain / rejoin -----------------------------------------
    if (cfg_.drainAtSeconds > 0.0) {
        int d = cfg_.drainNode;
        eq.schedule(
            sim::fromSeconds(cfg_.drainAtSeconds),
            [&, d]() {
                live[static_cast<std::size_t>(d)] = 0;
                nodeWasDrained = true;
                stats_.inc("drain_events");
                // The executing batch finishes on the draining node;
                // everything still queued re-dispatches with its full
                // request state (arrival timestamp, tenant, SLO), so
                // tail latency tells the truth about the disruption.
                std::vector<EngineRequest> moved =
                    engines[static_cast<std::size_t>(d)]->extractQueued();
                redispatchedFrom[static_cast<std::size_t>(d)] +=
                    static_cast<std::int64_t>(moved.size());
                redispatchedTotal +=
                    static_cast<std::int64_t>(moved.size());
                for (EngineRequest &r : moved) {
                    int n = pickNode(r.expert);
                    ++dispatchedTo[static_cast<std::size_t>(n)];
                    engines[static_cast<std::size_t>(n)]->injectAt(
                        std::move(r));
                }
            },
            "cluster.drain");
        if (cfg_.rejoinAtSeconds > 0.0) {
            eq.schedule(
                sim::fromSeconds(cfg_.rejoinAtSeconds),
                [&, d]() {
                    // Cold rejoin: the resident set is flushed and
                    // re-warms from live traffic.
                    engines[static_cast<std::size_t>(d)]->flushResident();
                    live[static_cast<std::size_t>(d)] = 1;
                    stats_.inc("rejoin_events");
                },
                "cluster.rejoin");
        }
    }

    // ---- arrivals -----------------------------------------------
    // The workload model emits routed requests from inside arrival
    // events; the cluster dispatches each to a hosting node.
    workload->bind(eq, [&](const TrafficRequest &r) {
        if (firstArrival < 0)
            firstArrival = eq.now();
        recorder.record(r, eq.now());
        int n = pickNode(r.expert);
        ++dispatchedTo[static_cast<std::size_t>(n)];
        engines[static_cast<std::size_t>(n)]->inject(r);
    });
    workload->start();

    eq.run();
    recorder.write();

    std::int64_t completed = 0, batches = 0, misses = 0, shedTotal = 0;
    double occupancyTotal = 0.0, depthIntegral = 0.0;
    sim::Tick lastCompletion = 0;
    for (int n = 0; n < N; ++n) {
        ServingEngine &e = *engines[static_cast<std::size_t>(n)];
        sim::simAssert(e.queueDepth() == 0 && !e.busy(),
                       "cluster: event stream drained with work pending");
        sim::simAssert(e.memorySystem().queuedLoads() == 0 &&
                           e.memorySystem().loadsInFlight() == 0,
                       "cluster: DMA queue drained with transfers pending");
        completed += e.completedCount();
        batches += e.batchCount();
        misses += e.missCount();
        shedTotal += e.shedCount();
        occupancyTotal += e.occupancyTotal();
        depthIntegral += e.depthIntegral();
        lastCompletion = std::max(lastCompletion, e.lastCompletion());
    }
    sim::simAssert(workload->emitted() == workload->plannedRequests(),
                   "cluster: workload did not emit its full budget");
    sim::simAssert(completed + shedTotal == workload->emitted(),
                   "cluster: arrivals != completions + shed at drain");

    double makespan = sim::toSeconds(
        lastCompletion - std::max<sim::Tick>(firstArrival, 0));

    StreamMetrics &m = result.stream;
    m.p50LatencySeconds = latency_.quantile(0.50);
    m.p95LatencySeconds = latency_.quantile(0.95);
    m.p99LatencySeconds = latency_.quantile(0.99);
    m.meanLatencySeconds = latency_.mean();
    m.maxLatencySeconds = latency_.max();
    m.completed = completed;
    m.batches = batches;
    m.meanBatchOccupancy = batches > 0
        ? occupancyTotal / static_cast<double>(batches)
        : 0.0;
    m.makespanSeconds = makespan;
    if (makespan > 0.0) {
        m.throughputRequestsPerSec =
            static_cast<double>(completed) / makespan;
        m.throughputTokensPerSec = m.throughputRequestsPerSec *
            static_cast<double>(base.outputTokens);
        m.meanQueueDepth = depthIntegral / makespan;
    }
    m.meanSwitchStallSeconds = stalls_.mean();
    m.p95SwitchStallSeconds = stalls_.quantile(0.95);
    m.eventsExecuted = eq.executedCount();
    m.shed = shedTotal;
    m.shedRate = completed + shedTotal > 0
        ? static_cast<double>(shedTotal) /
            static_cast<double>(completed + shedTotal)
        : 0.0;

    result.missRate = completed > 0
        ? static_cast<double>(misses) / static_cast<double>(completed)
        : 0.0;

    std::int64_t maxCompleted = 0;
    result.nodes.resize(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) {
        ServingEngine &e = *engines[static_cast<std::size_t>(n)];
        ClusterNodeMetrics &nm =
            result.nodes[static_cast<std::size_t>(n)];
        nm.node = n;
        nm.drained = cfg_.drainAtSeconds > 0.0 && n == cfg_.drainNode &&
            nodeWasDrained;
        nm.dispatched = dispatchedTo[static_cast<std::size_t>(n)];
        nm.redispatched = redispatchedFrom[static_cast<std::size_t>(n)];
        nm.completed = e.completedCount();
        nm.batches = e.batchCount();
        nm.misses = e.missCount();
        nm.shed = e.shedCount();
        nm.missRate = nm.completed > 0
            ? static_cast<double>(nm.misses) /
                static_cast<double>(nm.completed)
            : 0.0;
        nm.p50LatencySeconds = e.latency().quantile(0.50);
        nm.p95LatencySeconds = e.latency().quantile(0.95);
        nm.meanQueueDepth = makespan > 0.0
            ? e.depthIntegral() / makespan
            : 0.0;
        nm.maxQueueDepth = e.queueDepthMax();
        nm.placedExperts = static_cast<int>(
            placement.expertsOfNode[static_cast<std::size_t>(n)].size());
        nm.placedBytes = placedBytes[static_cast<std::size_t>(n)];
        nm.peakResidentBytes = e.peakResidentBytes();

        m.maxQueueDepth = std::max(m.maxQueueDepth, e.queueDepthMax());
        m.prefetchesIssued += static_cast<std::int64_t>(
            e.stats().get("prefetches_issued"));
        m.prefetchHits += static_cast<std::int64_t>(
            e.stats().get("prefetch_hits"));
        m.prefetchesCancelled += static_cast<std::int64_t>(
            e.stats().get("prefetches_cancelled"));

        maxCompleted = std::max(maxCompleted, nm.completed);
        result.placedBytesTotal += nm.placedBytes;
        result.peakResidentBytesTotal += nm.peakResidentBytes;
    }
    double meanCompleted =
        static_cast<double>(completed) / static_cast<double>(N);
    result.loadImbalance = meanCompleted > 0.0
        ? static_cast<double>(maxCompleted) / meanCompleted
        : 1.0;
    result.expertReplicas = placement.replicas;
    result.redispatched = redispatchedTotal;

    stats_.set("completed", static_cast<double>(completed));
    stats_.set("batches", static_cast<double>(batches));
    stats_.set("misses", static_cast<double>(misses));
    stats_.set("shed", static_cast<double>(shedTotal));
    stats_.set("redispatched", static_cast<double>(redispatchedTotal));
    stats_.set("events_executed",
               static_cast<double>(eq.executedCount()));
    stats_.set("load_imbalance", result.loadImbalance);
    stats_.set("expert_replicas",
               static_cast<double>(placement.replicas));

    return result;
}

} // namespace sn40l::coe
