#include "coe/cluster.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "coe/serving_engine.h"
#include "coe/workload.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/ticks.h"

namespace sn40l::coe {

const char *
dispatchPolicyName(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::RoundRobin: return "round-robin";
      case DispatchPolicy::LeastOutstanding: return "least-outstanding";
      case DispatchPolicy::ExpertAffinity: return "expert-affinity";
      case DispatchPolicy::TopologyAware: return "topo-aware";
    }
    sim::panic("dispatchPolicyName: unknown policy");
}

DispatchPolicy
dispatchPolicyFromName(const std::string &name)
{
    if (name == "round-robin" || name == "rr")
        return DispatchPolicy::RoundRobin;
    if (name == "least-outstanding" || name == "least")
        return DispatchPolicy::LeastOutstanding;
    if (name == "expert-affinity" || name == "affinity")
        return DispatchPolicy::ExpertAffinity;
    if (name == "topo-aware" || name == "topology-aware")
        return DispatchPolicy::TopologyAware;
    sim::fatal("unknown dispatch policy '" + name +
               "' (expected round-robin, least-outstanding, "
               "expert-affinity, or topo-aware)");
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::FullReplication: return "replication";
      case PlacementPolicy::ReplicateHotPartitionCold:
          return "replicate-hot";
      case PlacementPolicy::BalancedPartition: return "partition";
    }
    sim::panic("placementPolicyName: unknown policy");
}

PlacementPolicy
placementPolicyFromName(const std::string &name)
{
    if (name == "replication" || name == "full-replication")
        return PlacementPolicy::FullReplication;
    if (name == "replicate-hot" || name == "hot")
        return PlacementPolicy::ReplicateHotPartitionCold;
    if (name == "partition" || name == "balanced-partition")
        return PlacementPolicy::BalancedPartition;
    sim::fatal("unknown placement policy '" + name +
               "' (expected replication, replicate-hot, or partition)");
}

const char *
actionKindName(ActionKind kind)
{
    switch (kind) {
      case ActionKind::Drain: return "drain";
      case ActionKind::Rejoin: return "rejoin";
      case ActionKind::RateOverride: return "rate";
    }
    sim::panic("actionKindName: unknown kind");
}

ExpertPlacement
makePlacement(PlacementPolicy policy, int experts, int nodes,
              int hot_experts)
{
    if (experts <= 0 || nodes <= 0)
        sim::fatal("makePlacement: non-positive expert or node count");
    ExpertPlacement p;
    p.hostsOfExpert.resize(static_cast<std::size_t>(experts));
    p.expertsOfNode.resize(static_cast<std::size_t>(nodes));
    auto place = [&p](int e, int n) {
        p.hostsOfExpert[static_cast<std::size_t>(e)].push_back(n);
        p.expertsOfNode[static_cast<std::size_t>(n)].push_back(e);
        ++p.replicas;
    };
    switch (policy) {
      case PlacementPolicy::FullReplication:
        for (int e = 0; e < experts; ++e)
            for (int n = 0; n < nodes; ++n)
                place(e, n);
        break;
      case PlacementPolicy::BalancedPartition:
        for (int e = 0; e < experts; ++e)
            place(e, e % nodes);
        break;
      case PlacementPolicy::ReplicateHotPartitionCold: {
        int hot = hot_experts > 0 ? std::min(hot_experts, experts)
                                  : std::max(1, experts / 10);
        for (int e = 0; e < hot; ++e)
            for (int n = 0; n < nodes; ++n)
                place(e, n);
        // Cold tail sharded round-robin; id order is popularity order
        // under Zipf routing, so the shards stay load-balanced.
        for (int e = hot; e < experts; ++e)
            place(e, e % nodes);
        break;
      }
    }
    return p;
}

namespace {

using sim::mix64; // the consistent-hash ring's hash

/**
 * Consistent-hash ring over the node set. Every node contributes
 * kVirtualPoints points; an expert hashes to a ring position and
 * walks clockwise to the first eligible node. Because the ring is
 * built once over ALL nodes, removing a node (drain) only moves the
 * experts that lived on it — everyone else keeps their home node.
 */
class HashRing
{
  public:
    explicit HashRing(int nodes)
    {
        constexpr int kVirtualPoints = 16;
        points_.reserve(static_cast<std::size_t>(nodes) * kVirtualPoints);
        for (int n = 0; n < nodes; ++n)
            for (int v = 0; v < kVirtualPoints; ++v)
                points_.emplace_back(
                    mix64((static_cast<std::uint64_t>(n) << 32) |
                          static_cast<std::uint64_t>(v)),
                    n);
        std::sort(points_.begin(), points_.end());
    }

    /** First eligible node clockwise of @p expert's hash, or -1. */
    int
    lookup(int expert, const std::vector<char> &eligible) const
    {
        std::uint64_t h =
            mix64(0xc0e5e4f1ull ^ static_cast<std::uint64_t>(expert));
        auto it = std::lower_bound(
            points_.begin(), points_.end(),
            std::make_pair(h, -1));
        for (std::size_t walked = 0; walked < points_.size(); ++walked) {
            if (it == points_.end())
                it = points_.begin();
            if (eligible[static_cast<std::size_t>(it->second)])
                return it->second;
            ++it;
        }
        return -1;
    }

  private:
    std::vector<std::pair<std::uint64_t, int>> points_;
};

/**
 * Persistent worker pool for the parallel run: runWindow(limit) wakes
 * every worker, each runs its statically-assigned shards (node n
 * belongs to worker n % threads) up to @p limit; waitWindow() blocks
 * until all workers have parked again. The pool mutex is the
 * synchronization edge in both directions: the hub's writes to shard
 * inboxes before startWindow() happen-before the workers' reads, and
 * the workers' shard mutations happen-before the hub's reads after
 * waitWindow() (snapshot, drain, merge). Between the two calls the
 * hub touches only its own state (hub queue, RNG, staging mailboxes).
 */
class ShardWorkerPool
{
  public:
    ShardWorkerPool(int threads,
                    std::function<void(int, sim::Tick)> run_shards)
        : runShards_(std::move(run_shards))
    {
        workers_.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t)
            workers_.emplace_back([this, t]() { workerLoop(t); });
    }

    ~ShardWorkerPool()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cvStart_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }

    /**
     * Kick one window on all shards and return immediately, so the
     * coordinator can pre-generate the next window's arrivals while
     * the workers execute this one. The mutex hand-off makes every
     * coordinator write before startWindow() visible to the workers,
     * and every worker write visible after waitWindow() returns.
     */
    void
    startWindow(sim::Tick limit)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            limit_ = limit;
            ++generation_;
            remaining_ = static_cast<int>(workers_.size());
        }
        cvStart_.notify_all();
    }

    /** Block until every worker parks again. */
    void
    waitWindow()
    {
        std::unique_lock<std::mutex> lock(m_);
        cvDone_.wait(lock, [this]() { return remaining_ == 0; });
    }

  private:
    void
    workerLoop(int tid)
    {
        std::uint64_t seen = 0;
        for (;;) {
            sim::Tick limit;
            {
                std::unique_lock<std::mutex> lock(m_);
                cvStart_.wait(lock, [this, seen]() {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                limit = limit_;
            }
            runShards_(tid, limit);
            {
                std::lock_guard<std::mutex> lock(m_);
                if (--remaining_ == 0)
                    cvDone_.notify_one();
            }
        }
    }

    std::function<void(int, sim::Tick)> runShards_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0;
    int remaining_ = 0;
    sim::Tick limit_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace

/**
 * Everything a run stands up between begin() and finish(): the event
 * queue, engines, dispatch state, and the observation counters the
 * snapshot window diffs against. One fresh RunState per begin(), so
 * the simulator stays re-runnable.
 */
struct ClusterSimulator::RunState
{
    RunState(int nodes, const std::string &trace_out)
        : recorder(trace_out),
          live(static_cast<std::size_t>(nodes), 1),
          wasDrained(static_cast<std::size_t>(nodes), 0),
          isCandidate(static_cast<std::size_t>(nodes), 0),
          dispatchedTo(static_cast<std::size_t>(nodes), 0),
          redispatchedFrom(static_cast<std::size_t>(nodes), 0),
          ring(nodes), liveCount(nodes),
          baseDispatched(static_cast<std::size_t>(nodes), 0),
          baseCompleted(static_cast<std::size_t>(nodes), 0),
          baseMisses(static_cast<std::size_t>(nodes), 0),
          baseShedNode(static_cast<std::size_t>(nodes), 0)
    {
        candidates.reserve(static_cast<std::size_t>(nodes));
    }

    /**
     * One node's slice of a parallel run: its own event queue (the
     * node's ServingEngine schedules against it instead of the shared
     * hub queue) plus the hub->shard mailbox. The hub routes requests
     * into `staging` — its private half of the mailbox, written while
     * the workers are mid-window so arrival generation pipelines with
     * shard execution — and splices them into `inbox` at the next
     * barrier. The owning worker turns unscheduled `inbox` entries
     * into delivery events on the shard queue at each window start.
     * Entries are consumed by index (`inboxNext`) so the delivery
     * callbacks stay pointer-free and 8 bytes — `inbox` may
     * reallocate while deliveries are pending.
     */
    struct Shard
    {
        struct Pending
        {
            TrafficRequest request;
            sim::Tick tick;
            /**
             * Fabric deliveries arrive as fully-built EngineRequests
             * (the arrival timestamp was stamped hub-side at dispatch,
             * before the network transit): `built` carries the
             * request and the shard injects it with injectAt().
             */
            bool prebuilt = false;
            EngineRequest built;
        };

        sim::EventQueue eq;
        ServingEngine *engine = nullptr;
        std::vector<Pending> staging; ///< hub-owned, spliced at barrier
        std::vector<Pending> inbox;   ///< worker-read during a window
        std::size_t inboxScheduled = 0; ///< delivery events created
        std::size_t inboxNext = 0;      ///< delivery events fired
    };

    /** One control-plane callback on the parallel sync agenda. */
    struct AgendaEntry
    {
        sim::Tick when;
        std::uint64_t seq; ///< FIFO tie-break, mirrors EventQueue
        std::function<void()> cb;
    };

    static bool
    agendaLater(const AgendaEntry &a, const AgendaEntry &b)
    {
        return a.when > b.when || (a.when == b.when && a.seq > b.seq);
    }

    sim::EventQueue eq; ///< hub: arrivals (+ everything at threads==1)
    ExpertPlacement placement;
    std::vector<ServingConfig> nodeCfg;
    std::vector<PhaseCosts> nodeCosts;
    std::vector<double> expertBytes;    ///< per expert id
    std::vector<double> placedBytesNow; ///< per node, actuator-updated
    std::unique_ptr<WorkloadModel> workload;
    TraceRecorder recorder;
    /**
     * Per-node queue shards, empty at threads==1. Deque so Shard
     * addresses stay stable (delivery callbacks capture &shard), and
     * declared before `engines` so the engines (which hold references
     * into the shard queues) are destroyed first.
     */
    std::deque<Shard> shards;
    std::vector<std::unique_ptr<ServingEngine>> engines;

    // ---- dispatch state
    std::vector<char> live;
    std::vector<char> wasDrained;
    std::vector<char> isCandidate;
    std::vector<std::int64_t> dispatchedTo;
    std::vector<std::int64_t> redispatchedFrom;
    std::vector<std::int64_t> expertHits; ///< cumulative, per expert
    std::int64_t redispatchedTotal = 0;
    HashRing ring;
    std::size_t rrCursor = 0;
    std::vector<int> candidates;
    sim::Tick firstArrival = -1;

    // ---- node-hours accounting
    int liveCount;
    sim::Tick liveMark = 0;
    double nodeSecondsLive = 0.0;

    // ---- snapshot window baseline (cumulative values last seen)
    sim::Tick snapTick = 0;
    std::int64_t baseArrivals = 0;
    std::int64_t baseCompletions = 0;
    std::int64_t baseShed = 0;
    std::vector<std::int64_t> baseDispatched;
    std::vector<std::int64_t> baseCompleted;
    std::vector<std::int64_t> baseMisses;
    std::vector<std::int64_t> baseShedNode;
    std::vector<std::int64_t> baseExpertHits;

    // ---- chaos-layer state (coe/faults.h; inert when no schedule
    // ---- and no policy knob is enabled)
    /**
     * Hub-side view of each node's degradation, written only by the
     * chaos actuators (control barriers). The hedge estimate reads
     * these instead of engine state so the estimate is identical
     * across -j 1 / -j N.
     */
    std::vector<double> serviceFactor;
    std::vector<double> dmaFactor;
    std::vector<double> flakyProb;
    /**
     * Per-node completed + shed as of the last policy barrier — the
     * ONLY place the hub refreshes its backlog view, so hedge
     * decisions at dispatch time use barrier-stale data in both
     * execution modes.
     */
    std::vector<std::int64_t> knownDone;
    /** One open hedged request: primary on one node, duplicate on
     *  another; resolved at policy barriers from completion logs. */
    struct HedgePair
    {
        int primaryNode = 0;
        int dupNode = -1; ///< -1: duplicate displaced and dropped
        bool dupDone = false;
        double dupLatency = 0.0;
        /** Primary exhausted its retries; verdict deferred to dup. */
        bool primaryLost = false;
    };
    std::map<int, HedgePair> hedges; ///< by request id
    std::unique_ptr<sim::Rng> faultRng; ///< flaky draws only
    std::int64_t retryBudgetUsed = 0;
    bool brownoutActive = false;
    std::int64_t crashes = 0;
    std::int64_t lost = 0;
    std::int64_t retried = 0;
    std::int64_t hedged = 0;
    std::int64_t hedgeWon = 0;
    /** Completions credited hub-side (hedge wins); the engines never
     *  count a duplicate, so cluster completed = sum(engines) + this. */
    std::int64_t hedgeCredits = 0;
    std::int64_t brownoutShed = 0;
    // chaos snapshot-window baselines
    std::int64_t baseLost = 0;
    std::int64_t baseRetried = 0;
    std::int64_t baseHedged = 0;
    std::int64_t baseHedgeWon = 0;

    // ---- interconnect (null when cfg.fabric.enabled == false)
    /**
     * All network state is hub-owned: every link/credit event runs on
     * the hub queue in both execution modes, so routing decisions and
     * delivery ticks are identical across -j 1 / -j N.
     */
    std::unique_ptr<ClusterFabric> fabric;
    std::vector<sim::Tick> baseLinkBusy; ///< snapshot-window baseline
    std::int64_t migrationsInFlight = 0; ///< payload sent, flip pending

    // ---- parallel-run state (inert at threads==1)
    int threads = 1; ///< effective worker count for this run
    /** Min-heap (agendaLater) of pending control callbacks. */
    std::vector<AgendaEntry> agenda;
    std::uint64_t agendaSeq = 0;
    std::size_t hubBuffered = 0; ///< arrivals routed this window
    /** Last member: workers must park before anything else dies. */
    std::unique_ptr<ShardWorkerPool> pool;
};

ClusterSimulator::ClusterSimulator(ClusterConfig cfg) : cfg_(std::move(cfg))
{
    cfg_.node.mode = ServingMode::EventDriven;
    validateServingConfig(cfg_.node);

    if (cfg_.nodes <= 0)
        sim::fatal("ClusterConfig: need at least one node");
    if (cfg_.hotExperts < 0)
        sim::fatal("ClusterConfig: negative hotExperts");
    if (cfg_.hotExperts > cfg_.node.numExperts)
        sim::fatal("ClusterConfig: hotExperts exceeds the expert count");
    if (cfg_.drainAtSeconds < 0.0 || cfg_.rejoinAtSeconds < 0.0)
        sim::fatal("ClusterConfig: negative drain/rejoin time");
    if (cfg_.drainAtSeconds > 0.0) {
        if (cfg_.nodes < 2)
            sim::fatal("ClusterConfig: draining needs at least 2 nodes "
                       "(requests must have somewhere to go)");
        if (cfg_.drainNode < 0 || cfg_.drainNode >= cfg_.nodes)
            sim::fatal("ClusterConfig: drainNode out of range");
        if (cfg_.rejoinAtSeconds > 0.0 &&
            cfg_.rejoinAtSeconds <= cfg_.drainAtSeconds)
            sim::fatal("ClusterConfig: rejoin must come after the drain");
    } else if (cfg_.rejoinAtSeconds > 0.0) {
        sim::fatal("ClusterConfig: rejoin without a drain");
    }
    if (cfg_.threads < 1)
        sim::fatal("ClusterConfig: threads must be at least 1");
    if (cfg_.threads > 1) {
        // Parallel windows only work when nothing closes a
        // zero-lookahead feedback loop from the shards back into the
        // hub (arrivals/dispatch) mid-window.
        if (cfg_.node.arrival == ArrivalProcess::ClosedLoop)
            sim::fatal("ClusterConfig: threads > 1 cannot drive "
                       "closed-loop arrivals (batch completions on a "
                       "shard re-issue clients instantly, which leaves "
                       "the windows zero lookahead); use threads=1");
        bool sessions = cfg_.node.workload.sessionFollowProb > 0.0;
        for (const TenantSpec &t : cfg_.node.workload.tenantSpecs)
            sessions = sessions || t.sessionFollowProb > 0.0;
        if (sessions && !cfg_.node.workload.replay())
            sim::fatal("ClusterConfig: threads > 1 cannot generate "
                       "conversational sessions (follow-up turns are "
                       "triggered by shard-side completions); replay a "
                       "recorded trace or use threads=1");
        if (cfg_.dispatch == DispatchPolicy::LeastOutstanding)
            sim::fatal("ClusterConfig: threads > 1 cannot use "
                       "least-outstanding dispatch (it reads per-node "
                       "queue state that is stale mid-window); use "
                       "round-robin or expert-affinity");
        if (cfg_.threads > cfg_.nodes) {
            sim::logWarn("cluster",
                         "clamping threads from " +
                             std::to_string(cfg_.threads) + " to the "
                             "node count " + std::to_string(cfg_.nodes) +
                             " (one shard per node)");
            cfg_.threads = cfg_.nodes;
        }
    }
    if (cfg_.diurnalAmplitude < 0.0 || cfg_.diurnalAmplitude >= 1.0)
        sim::fatal("ClusterConfig: diurnal amplitude must be in [0, 1)");
    if (cfg_.diurnalAmplitude > 0.0) {
        if (cfg_.node.arrival != ArrivalProcess::Poisson)
            sim::fatal("ClusterConfig: diurnal ramp modulates the "
                       "open-loop Poisson rate; it cannot be combined "
                       "with a closed loop");
        if (cfg_.diurnalPeriodSeconds <= 0.0)
            sim::fatal("ClusterConfig: non-positive diurnal period");
    }
    for (const ClusterNodeOverride &o : cfg_.overrides) {
        if (o.node < 0 || o.node >= cfg_.nodes)
            sim::fatal("ClusterConfig: override for out-of-range node " +
                       std::to_string(o.node));
        if (o.dmaEngines < 0 || o.expertRegionBytes < 0)
            sim::fatal("ClusterConfig: negative override value");
    }

    // The legacy drain trio desugars onto the general action list,
    // ahead of any explicit actions, preserving the historical event
    // creation order exactly.
    if (cfg_.drainAtSeconds > 0.0) {
        ScheduledAction drain;
        drain.atSeconds = cfg_.drainAtSeconds;
        drain.kind = ActionKind::Drain;
        drain.node = cfg_.drainNode;
        effectiveActions_.push_back(drain);
        if (cfg_.rejoinAtSeconds > 0.0) {
            ScheduledAction rejoin;
            rejoin.atSeconds = cfg_.rejoinAtSeconds;
            rejoin.kind = ActionKind::Rejoin;
            rejoin.node = cfg_.drainNode;
            effectiveActions_.push_back(rejoin);
        }
    }
    for (const ScheduledAction &a : cfg_.actions) {
        if (a.atSeconds < 0.0)
            sim::fatal("ScheduledAction: negative action time");
        switch (a.kind) {
          case ActionKind::Drain:
            if (cfg_.nodes < 2)
                sim::fatal("ScheduledAction: draining needs at least 2 "
                           "nodes (requests must have somewhere to go)");
            [[fallthrough]];
          case ActionKind::Rejoin:
            if (a.node < 0 || a.node >= cfg_.nodes)
                sim::fatal("ScheduledAction: node out of range");
            break;
          case ActionKind::RateOverride:
            if (a.rateFactor <= 0.0)
                sim::fatal("ScheduledAction: rate factor must be "
                           "positive");
            if (cfg_.node.arrival == ArrivalProcess::ClosedLoop)
                sim::fatal("ScheduledAction: rate overrides modulate "
                           "open-loop arrivals; they cannot be combined "
                           "with a closed loop");
            if (cfg_.node.workload.replay())
                sim::fatal("ScheduledAction: rate overrides cannot "
                           "modulate a replayed trace (its timing is "
                           "recorded)");
            break;
        }
        effectiveActions_.push_back(a);
    }

    validateControllerConfig(cfg_.controller, cfg_.nodes);

    validateFabricConfig(cfg_.fabric);
    if (cfg_.dispatch == DispatchPolicy::TopologyAware &&
        !cfg_.fabric.enabled)
        sim::fatal("ClusterConfig: topology-aware dispatch reads path "
                   "congestion off the interconnect; enable the fabric "
                   "(--topology)");

    validateFaultPolicy(cfg_.faultPolicy);
    if (cfg_.faults && !cfg_.faults->empty()) {
        validateFaultSchedule(*cfg_.faults, cfg_.nodes);
        bool displacing = false;
        for (const FaultEvent &e : *cfg_.faults) {
            if (e.kind == FaultKind::NodeCrash && cfg_.nodes < 2)
                sim::fatal("ClusterConfig: crash faults need at least "
                           "2 nodes (displaced requests must have "
                           "somewhere to go)");
            if (e.kind == FaultKind::LinkDegrade &&
                !cfg_.fabric.enabled)
                sim::fatal("ClusterConfig: link-degrade faults act on "
                           "the interconnect; enable the fabric "
                           "(--topology)");
            displacing = displacing ||
                e.kind == FaultKind::NodeCrash ||
                e.kind == FaultKind::FlakyNode;
        }
        if (displacing) {
            // A displaced-then-lost request never completes, which
            // would wedge a client pool and starve session follow-ups
            // of their trigger — the workload could not emit its full
            // budget.
            if (cfg_.node.arrival == ArrivalProcess::ClosedLoop)
                sim::fatal("ClusterConfig: crash/flaky faults cannot "
                           "drive closed-loop arrivals (a lost request "
                           "would never free its client); use open-loop "
                           "arrivals");
            bool sessions = cfg_.node.workload.sessionFollowProb > 0.0;
            for (const TenantSpec &t : cfg_.node.workload.tenantSpecs)
                sessions = sessions || t.sessionFollowProb > 0.0;
            if (sessions && !cfg_.node.workload.replay())
                sim::fatal("ClusterConfig: crash/flaky faults cannot "
                           "generate conversational sessions (a lost "
                           "turn would never trigger its follow-up); "
                           "replay a recorded trace instead");
        }
    }

    costs_ = computePhaseCosts(cfg_.node);
    if (cfg_.node.expertRegionBytes > 0)
        costs_.expertRegionBytes = cfg_.node.expertRegionBytes;
}

ClusterSimulator::~ClusterSimulator() = default;

bool
ClusterSimulator::begin()
{
    const ServingConfig &base = cfg_.node;
    const int N = cfg_.nodes;

    controller_.reset();
    rs_.reset();
    auto rs = std::make_unique<RunState>(N, base.workload.traceOut);

    rs->placement = makePlacement(cfg_.placement, base.numExperts, N,
                                  cfg_.hotExperts);

    // Per-node configs and costs with heterogeneous overrides applied.
    rs->nodeCfg.assign(static_cast<std::size_t>(N), base);
    rs->nodeCosts.assign(static_cast<std::size_t>(N), costs_);
    for (const ClusterNodeOverride &o : cfg_.overrides) {
        auto n = static_cast<std::size_t>(o.node);
        if (o.dmaEngines > 0)
            rs->nodeCfg[n].dmaEngines = o.dmaEngines;
        if (o.expertRegionBytes > 0)
            rs->nodeCosts[n].expertRegionBytes = o.expertRegionBytes;
    }

    // Placement feasibility: every node's placed experts must fit its
    // DDR backing tier (the single-node OOM check, per shard). With
    // the PEFT zoo enabled each node's DDR also carries one copy of
    // the shared base weights the adapters are deltas on.
    ExpertZoo zoo = buildServingZoo(base);
    rs->expertBytes.resize(static_cast<std::size_t>(base.numExperts));
    for (int e = 0; e < base.numExperts; ++e)
        rs->expertBytes[static_cast<std::size_t>(e)] = zoo.expert(e).bytes;
    rs->placedBytesNow.assign(
        static_cast<std::size_t>(N),
        base.zoo.enabled ? base.expertBase.weightBytes() : 0.0);
    rs->expertHits.assign(static_cast<std::size_t>(base.numExperts), 0);
    rs->baseExpertHits.assign(static_cast<std::size_t>(base.numExperts),
                              0);
    for (int n = 0; n < N; ++n) {
        for (int e :
             rs->placement.expertsOfNode[static_cast<std::size_t>(n)])
            rs->placedBytesNow[static_cast<std::size_t>(n)] +=
                rs->expertBytes[static_cast<std::size_t>(e)];
        if (rs->placedBytesNow[static_cast<std::size_t>(n)] >
            rs->nodeCosts[static_cast<std::size_t>(n)].capacityBytes)
            return false;
    }

    latency_.clear();
    stalls_.clear();
    stats_ = sim::StatSet("cluster");

    // Arrivals and routing live in a pluggable WorkloadModel; the
    // cluster's diurnal ramp is layered onto the model as a RateShape
    // (amplitude 0 keeps the gap arithmetic bit-identical to the
    // single-node Poisson chain).
    RateShape diurnal;
    diurnal.diurnalAmplitude = cfg_.diurnalAmplitude;
    diurnal.diurnalPeriodSeconds = cfg_.diurnalPeriodSeconds;
    rs->workload = makeWorkloadModel(base, diurnal);

    const bool parallel = cfg_.threads > 1;
    rs->threads = cfg_.threads;
    if (parallel)
        for (int n = 0; n < N; ++n)
            rs->shards.emplace_back();

    rs->engines.reserve(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) {
        auto ns = static_cast<std::size_t>(n);
        sim::EventQueue &nodeEq =
            parallel ? rs->shards[ns].eq : rs->eq;
        rs->engines.push_back(std::make_unique<ServingEngine>(
            nodeEq, rs->nodeCfg[ns], rs->nodeCosts[ns],
            buildServingZoo(rs->nodeCfg[ns])));
        if (parallel) {
            // No shared latency/stall mirrors: engines record into
            // their per-node distributions only (worker threads may
            // not touch shared state); finish() merges them in node
            // order.
            rs->shards[ns].engine = rs->engines.back().get();
        } else {
            rs->engines.back()->setMirrors(&latency_, &stalls_);
        }
    }

    // The interconnect lives on the hub queue (never on a shard):
    // dispatch, drain re-placement, and migration payloads serialize
    // over its links, and their delivery ticks bound the parallel
    // windows exactly like arrival ticks do.
    if (cfg_.fabric.enabled) {
        rs->fabric =
            std::make_unique<ClusterFabric>(rs->eq, cfg_.fabric, N);
        rs->baseLinkBusy.assign(
            static_cast<std::size_t>(rs->fabric->network().linkCount()),
            0);
    }

    // Closed-loop clients are cluster-wide: whichever node finishes a
    // batch frees that many clients to think and re-issue. Session
    // follow-ups and shed notifications route back the same way. In a
    // parallel run the hooks stay unset: they would call into the
    // hub-owned workload from worker threads mid-window, and the
    // config validation already rejected every workload that needs
    // them (closed loop, generated sessions).
    if (!parallel) {
        for (int n = 0; n < N; ++n) {
            ServingEngine &e = *rs->engines[static_cast<std::size_t>(n)];
            WorkloadModel *workload = rs->workload.get();
            e.setOnBatchComplete([workload](int finished) {
                workload->onBatchComplete(finished);
            });
            e.setOnRequestComplete([workload](const EngineRequest &r) {
                workload->onRequestComplete(toTrafficRequest(r));
            });
            e.setOnRequestShed([workload](const EngineRequest &r) {
                workload->onRequestShed(toTrafficRequest(r));
            });
        }
    }

    // ---- chaos layer (inert without a schedule or policy knob) ----
    rs->serviceFactor.assign(static_cast<std::size_t>(N), 1.0);
    rs->dmaFactor.assign(static_cast<std::size_t>(N), 1.0);
    rs->flakyProb.assign(static_cast<std::size_t>(N), 0.0);
    rs->knownDone.assign(static_cast<std::size_t>(N), 0);
    const bool chaos = (cfg_.faults && !cfg_.faults->empty()) ||
        cfg_.faultPolicy.anyEnabled();
    if (chaos)
        // Dedicated stream for flaky-dispatch draws: drawn only while
        // a flaky window is open, so arming faults never perturbs the
        // workload or routing RNG streams.
        rs->faultRng = std::make_unique<sim::Rng>(
            sim::mix64(base.seed ^ 0xfa017c5ull));
    if (cfg_.faultPolicy.hedge)
        // Hedge resolution drains per-engine completion logs at policy
        // barriers; off by default so the no-chaos path records nothing.
        for (std::unique_ptr<ServingEngine> &e : rs->engines)
            e->setLogCompletions(true);

    // rs_ must be live before the scheduled lambdas (and the workload
    // sink below) can reference the actuators.
    rs_ = std::move(rs);

    // ---- scripted actions (legacy drain/rejoin desugared + explicit)
    // Control callbacks go through scheduleControlAt: straight onto
    // the shared queue at threads==1, onto the sync agenda otherwise.
    for (const ScheduledAction &a : effectiveActions_) {
        sim::Tick at = sim::fromSeconds(a.atSeconds);
        switch (a.kind) {
          case ActionKind::Drain:
            scheduleControlAt(
                at, [this, a]() { drainNode(a.node); }, "cluster.drain");
            break;
          case ActionKind::Rejoin:
            scheduleControlAt(
                at, [this, a]() { rejoinNode(a.node); },
                "cluster.rejoin");
            break;
          case ActionKind::RateOverride:
            scheduleControlAt(
                at, [this, a]() { setRateFactor(a.rateFactor); },
                "cluster.rate_override");
            break;
        }
    }

    // ---- faults --------------------------------------------------
    // The schedule is armed through the same control-plane path the
    // scripted actions just used, so every fault fires at a barrier
    // with all shards squared up to its tick.
    faults_.reset();
    if (cfg_.faults && !cfg_.faults->empty()) {
        faults_ = std::make_unique<FaultInjector>(*this, cfg_.faults);
        faults_->arm();
    }
    armPolicyTick();

    // ---- arrivals -----------------------------------------------
    // The workload model emits routed requests from inside arrival
    // events; the cluster dispatches each to a hosting node —
    // directly at threads==1, via the node's mailbox otherwise (the
    // shard delivers at the same tick, so the engine stamps the same
    // arrival time inject() would have). Dispatch itself lives in
    // dispatchRequest(), where the degraded-mode policies hook in.
    rs_->workload->bind(rs_->eq, [this](const TrafficRequest &r) {
        if (rs_->firstArrival < 0)
            rs_->firstArrival = rs_->eq.now();
        rs_->recorder.record(r, rs_->eq.now());
        dispatchRequest(r);
    });
    rs_->workload->start();
    return true;
}

/**
 * Route one arriving request to a hosting node, applying the
 * degraded-mode policies on the way: brown-out shedding at the door,
 * flaky-dispatch failures into the retry path, and hedged dispatch of
 * a duplicate when the chosen node's backlog estimate blows the SLO.
 * Runs in the hub phase (threads > 1) or inside the arrival event
 * (threads == 1); it touches only hub-owned state plus the mailbox /
 * direct-inject seam the plain dispatch already used, and with every
 * policy disabled it reduces exactly to that plain dispatch.
 */
void
ClusterSimulator::dispatchRequest(const TrafficRequest &request)
{
    RunState &rs = *rs_;
    const FaultPolicyConfig &policy = cfg_.faultPolicy;

    // Brown-out: while the cluster is in overload, low-priority
    // arrivals are shed at the door (counted, and the workload layer
    // is told, exactly like an SLO admission shed).
    if (rs.brownoutActive &&
        request.priority <= policy.brownoutPriorityMax) {
        ++rs.brownoutShed;
        stats_.inc("brownout_shed");
        if (rs.threads == 1)
            rs.workload->onRequestShed(request);
        return;
    }

    int n = pickNode(request.expert);

    // Flaky node: the dispatch itself fails and the request enters
    // the same retry-or-lost path a crash displacement does, with its
    // arrival timestamp preserved. Drawn from the dedicated fault
    // stream only while a flaky window is open.
    if (rs.flakyProb[static_cast<std::size_t>(n)] > 0.0 &&
        rs.faultRng->uniformDouble() <
            rs.flakyProb[static_cast<std::size_t>(n)]) {
        stats_.inc("flaky_failures");
        handleDisplaced(
            rs.engines[static_cast<std::size_t>(n)]->makeEngineRequest(
                request, rs.eq.now()));
        return;
    }

    auto deliver = [this, &rs](int node, const TrafficRequest &r) {
        if (rs.fabric) {
            // The EngineRequest is built at the dispatch tick (its
            // arrival stamp), so measured latency includes the
            // network transit; injection happens when the last flit
            // lands at the node.
            forwardRequest(
                node, rs.engines[static_cast<std::size_t>(node)]
                          ->makeEngineRequest(r, rs.eq.now()));
            return;
        }
        ++rs.dispatchedTo[static_cast<std::size_t>(node)];
        if (rs.threads > 1) {
            RunState::Shard &sh =
                rs.shards[static_cast<std::size_t>(node)];
            RunState::Shard::Pending p;
            p.request = r;
            p.tick = rs.eq.now();
            sh.staging.push_back(std::move(p));
            ++rs.hubBuffered;
        } else {
            rs.engines[static_cast<std::size_t>(node)]->inject(r);
        }
    };
    deliver(n, request);

    // Hedged dispatch: when the chosen node's queueing-delay estimate
    // exceeds the priority-scaled SLO, race a duplicate on the best
    // other live node; the loser is cancelled at a policy barrier.
    if (policy.hedge && request.deadlineSeconds > 0.0 &&
        estimateDelaySeconds(n) >
            policy.hedgeThreshold *
                (1.0 + static_cast<double>(request.priority)) *
                request.deadlineSeconds) {
        int alt = -1;
        double altEst = 0.0;
        auto consider = [&](int c) {
            if (c == n || !rs.live[static_cast<std::size_t>(c)])
                return;
            double est = estimateDelaySeconds(c);
            if (alt < 0 || est < altEst) { // ties keep the lowest id
                alt = c;
                altEst = est;
            }
        };
        // Prefer the expert's other hosts; any live node can still
        // serve it by demand-streaming from its DDR zoo copy.
        for (int c : rs.placement.hostsOfExpert[static_cast<std::size_t>(
                 request.expert)])
            consider(c);
        if (alt < 0)
            for (int c = 0; c < cfg_.nodes; ++c)
                consider(c);
        if (alt >= 0) {
            TrafficRequest dup = request;
            dup.hedgeDuplicate = true;
            deliver(alt, dup);
            rs.hedges.emplace(request.id,
                              RunState::HedgePair{n, alt});
            ++rs.hedged;
            stats_.inc("hedged");
        }
    }
}

/**
 * Ship one request (initial dispatch, retry, or hedge duplicate) from
 * the hub to @p node over the fabric. The wire size is the modeled
 * prompt-handoff payload plus the per-message overhead — NOT the
 * request's trafficBytes, which counts node-local HBM streaming;
 * delivery goes through deliverViaFabric() when the last flit lands.
 */
void
ClusterSimulator::forwardRequest(int node, EngineRequest request)
{
    RunState &rs = *rs_;
    ++rs.dispatchedTo[static_cast<std::size_t>(node)];
    rs.fabric->sendRequest(
        node, cfg_.fabric.requestPayloadBytes,
        [this, node, r = std::move(request)]() mutable {
            deliverViaFabric(node, std::move(r));
        });
}

/**
 * A request's last flit landed at @p node. Runs inside a network
 * event on the hub queue: at threads == 1 the engine takes it
 * directly; at threads > 1 it is staged into the node's mailbox (the
 * current tick is at or past the committed window end, so the shard
 * has not run past it). A node that went down while the message was
 * in flight displaces the request into the retry-or-lost path —
 * conservation holds, nothing vanishes on the wire.
 */
void
ClusterSimulator::deliverViaFabric(int node, EngineRequest request)
{
    RunState &rs = *rs_;
    auto ns = static_cast<std::size_t>(node);
    if (!rs.live[ns]) {
        stats_.inc("network_displaced");
        handleDisplaced(std::move(request));
        return;
    }
    if (rs.threads > 1) {
        RunState::Shard &sh = rs.shards[ns];
        RunState::Shard::Pending p;
        p.tick = rs.eq.now();
        p.prebuilt = true;
        p.built = std::move(request);
        sh.staging.push_back(std::move(p));
        ++rs.hubBuffered;
    } else {
        rs.engines[ns]->injectAt(std::move(request));
    }
}

void
ClusterSimulator::scheduleControlAt(sim::Tick when,
                                    std::function<void()> cb,
                                    const char *name)
{
    RunState &rs = *rs_;
    if (rs.threads == 1) {
        rs.eq.schedule(when, std::move(cb), name);
        return;
    }
    rs.agenda.push_back(
        RunState::AgendaEntry{when, rs.agendaSeq++, std::move(cb)});
    std::push_heap(rs.agenda.begin(), rs.agenda.end(),
                   RunState::agendaLater);
}

void
ClusterSimulator::scheduleControlIn(sim::Tick delta,
                                    std::function<void()> cb,
                                    const char *name)
{
    if (!rs_)
        sim::panic("cluster: scheduleControlIn outside an active run");
    if (delta < 0)
        sim::panic("cluster: negative control delay");
    scheduleControlAt(rs_->eq.now() + delta, std::move(cb), name);
}

int
ClusterSimulator::pickNode(int expert)
{
    RunState &rs = *rs_;
    ++rs.expertHits[static_cast<std::size_t>(expert)];
    rs.candidates.clear();
    for (int n :
         rs.placement.hostsOfExpert[static_cast<std::size_t>(expert)])
        if (rs.live[static_cast<std::size_t>(n)])
            rs.candidates.push_back(n);
    if (rs.candidates.empty()) {
        // Every host of this expert is draining: fall back to any
        // live node, which demand-streams the expert from its own
        // DDR copy of the zoo. Counted so studies can see it.
        stats_.inc("dispatch_fallbacks");
        for (int n = 0; n < cfg_.nodes; ++n)
            if (rs.live[static_cast<std::size_t>(n)])
                rs.candidates.push_back(n);
    }
    if (rs.candidates.empty())
        sim::panic("cluster: no live node to dispatch to");
    switch (cfg_.dispatch) {
      case DispatchPolicy::RoundRobin:
        return rs.candidates[rs.rrCursor++ % rs.candidates.size()];
      case DispatchPolicy::LeastOutstanding: {
        int best = rs.candidates.front();
        std::int64_t best_out =
            rs.engines[static_cast<std::size_t>(best)]->outstanding();
        for (std::size_t i = 1; i < rs.candidates.size(); ++i) {
            int n = rs.candidates[i];
            std::int64_t out =
                rs.engines[static_cast<std::size_t>(n)]->outstanding();
            if (out < best_out) { // ties keep the lowest node id
                best = n;
                best_out = out;
            }
        }
        return best;
      }
      case DispatchPolicy::ExpertAffinity: {
        for (int n : rs.candidates)
            rs.isCandidate[static_cast<std::size_t>(n)] = 1;
        int n = rs.ring.lookup(expert, rs.isCandidate);
        for (int c : rs.candidates)
            rs.isCandidate[static_cast<std::size_t>(c)] = 0;
        sim::simAssert(n >= 0, "cluster: ring lookup failed");
        return n;
      }
      case DispatchPolicy::TopologyAware: {
        // Least-congested hub -> node path; the congestion signal is
        // hub-owned network state, so the choice is identical across
        // -j 1 / -j N (unlike least-outstanding, which reads shard
        // state). First tie-break: fewest requests sent so far, so an
        // idle fabric degenerates to an even spread.
        int best = rs.candidates.front();
        double bestCong = rs.fabric->hubCongestion(best);
        for (std::size_t i = 1; i < rs.candidates.size(); ++i) {
            int n = rs.candidates[i];
            double cong = rs.fabric->hubCongestion(n);
            auto nsz = static_cast<std::size_t>(n);
            auto bsz = static_cast<std::size_t>(best);
            if (cong < bestCong ||
                (cong == bestCong &&
                 rs.dispatchedTo[nsz] < rs.dispatchedTo[bsz])) {
                best = n;
                bestCong = cong;
            }
        }
        return best;
      }
    }
    sim::panic("cluster: unknown dispatch policy");
}

void
ClusterSimulator::accrueNodeSeconds()
{
    RunState &rs = *rs_;
    sim::Tick now = rs.eq.now();
    if (now > rs.liveMark)
        rs.nodeSecondsLive += sim::toSeconds(now - rs.liveMark) *
            static_cast<double>(rs.liveCount);
    rs.liveMark = now;
}

bool
ClusterSimulator::drainNode(int node)
{
    if (!rs_)
        sim::panic("cluster: drainNode outside an active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: drainNode out of range");
    RunState &rs = *rs_;
    auto d = static_cast<std::size_t>(node);
    if (!rs.live[d])
        return false; // idempotent: already drained
    if (rs.liveCount <= 1)
        return false; // requests must have somewhere to go
    accrueNodeSeconds();
    rs.live[d] = 0;
    rs.wasDrained[d] = 1;
    --rs.liveCount;
    stats_.inc("drain_events");
    // The executing batch finishes on the draining node; everything
    // still queued re-dispatches with its full request state (arrival
    // timestamp, tenant, SLO), so tail latency tells the truth about
    // the disruption.
    std::vector<EngineRequest> moved = rs.engines[d]->extractQueued();
    rs.redispatchedFrom[d] += static_cast<std::int64_t>(moved.size());
    rs.redispatchedTotal += static_cast<std::int64_t>(moved.size());
    for (EngineRequest &r : moved) {
        int n = pickNode(r.expert);
        if (rs.fabric) {
            // Re-placement pays a node -> node transfer of the
            // request's wire size before the target takes it.
            ++rs.dispatchedTo[static_cast<std::size_t>(n)];
            rs.fabric->sendTransfer(
                node, n, rs.fabric->requestBytes(),
                [this, n, rq = std::move(r)]() mutable {
                    deliverViaFabric(n, std::move(rq));
                });
            continue;
        }
        ++rs.dispatchedTo[static_cast<std::size_t>(n)];
        rs.engines[static_cast<std::size_t>(n)]->injectAt(std::move(r));
    }
    return true;
}

bool
ClusterSimulator::rejoinNode(int node)
{
    if (!rs_)
        sim::panic("cluster: rejoinNode outside an active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: rejoinNode out of range");
    RunState &rs = *rs_;
    auto d = static_cast<std::size_t>(node);
    if (rs.live[d])
        return false; // idempotent: already live
    accrueNodeSeconds();
    // Cold rejoin: the resident set is flushed and re-warms from live
    // traffic.
    rs.engines[d]->flushResident();
    rs.live[d] = 1;
    ++rs.liveCount;
    stats_.inc("rejoin_events");
    return true;
}

bool
ClusterSimulator::crashNode(int node)
{
    if (!rs_)
        sim::panic("cluster: crashNode outside an active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: crashNode out of range");
    RunState &rs = *rs_;
    auto d = static_cast<std::size_t>(node);
    if (!rs.live[d])
        return false; // already down
    if (rs.liveCount <= 1)
        return false; // displaced requests must have somewhere to go
    accrueNodeSeconds();
    rs.live[d] = 0;
    rs.wasDrained[d] = 1;
    --rs.liveCount;
    ++rs.crashes;
    stats_.inc("crash_events");
    // Unlike a clean drain, the in-flight batch dies with the node:
    // crashExtract() hands back queued AND executing requests (the
    // abandoned batch resolves as a ghost that completes nothing) and
    // every one of them goes through the retry-or-lost policy.
    std::vector<EngineRequest> displaced = rs.engines[d]->crashExtract();
    for (EngineRequest &r : displaced)
        handleDisplaced(std::move(r));
    return true;
}

void
ClusterSimulator::setNodeDmaFactor(int node, double factor)
{
    if (!rs_)
        sim::panic("cluster: setNodeDmaFactor outside an active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: setNodeDmaFactor out of range");
    if (factor < 1.0)
        sim::fatal("cluster: DMA stall factor must be at least 1");
    auto d = static_cast<std::size_t>(node);
    rs_->engines[d]->memorySystem().setDmaRateFactor(factor);
    rs_->dmaFactor[d] = factor;
    stats_.inc(factor == 1.0 ? "dma_heals" : "dma_stalls");
}

void
ClusterSimulator::setNodeServiceFactor(int node, double factor)
{
    if (!rs_)
        sim::panic("cluster: setNodeServiceFactor outside an active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: setNodeServiceFactor out of range");
    auto d = static_cast<std::size_t>(node);
    rs_->engines[d]->setServiceFactor(factor);
    rs_->serviceFactor[d] = factor;
    stats_.inc(factor == 1.0 ? "straggler_heals" : "stragglers");
}

void
ClusterSimulator::setNodeFlakyProbability(int node, double p)
{
    if (!rs_)
        sim::panic("cluster: setNodeFlakyProbability outside an "
                   "active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: setNodeFlakyProbability out of range");
    if (p < 0.0 || p > 1.0)
        sim::fatal("cluster: flaky probability must be in [0, 1]");
    rs_->flakyProb[static_cast<std::size_t>(node)] = p;
    stats_.inc(p == 0.0 ? "flaky_heals" : "flaky_windows");
}

void
ClusterSimulator::setNodeLinkFactor(int node, double factor)
{
    if (!rs_)
        sim::panic("cluster: setNodeLinkFactor outside an active run");
    if (node < 0 || node >= cfg_.nodes)
        sim::fatal("cluster: setNodeLinkFactor out of range");
    if (!rs_->fabric)
        sim::fatal("cluster: setNodeLinkFactor without the fabric");
    rs_->fabric->degradeNode(node, factor);
    stats_.inc(factor == 1.0 ? "link_heals" : "link_degrades");
}

/**
 * One displaced request (crash extraction or flaky dispatch failure)
 * meets the retry policy: duplicates are dropped (their primary is
 * still being served), primaries re-dispatch after exponential
 * backoff while attempts and the cluster-wide budget allow, and
 * everything else is counted lost — unless its hedge duplicate
 * already finished, in which case the request was in fact served and
 * the completion is credited.
 */
void
ClusterSimulator::handleDisplaced(EngineRequest request)
{
    RunState &rs = *rs_;
    if (request.hedgeDuplicate) {
        auto it = rs.hedges.find(request.id);
        if (it != rs.hedges.end()) {
            it->second.dupNode = -1; // duplicate gone
            if (it->second.primaryLost) {
                // Both copies are now dead: the loss is final.
                ++rs.lost;
                rs.hedges.erase(it);
            }
        }
        stats_.inc("hedge_duplicates_dropped");
        return;
    }
    const FaultPolicyConfig &policy = cfg_.faultPolicy;
    bool budgetOk = policy.retryBudget < 0 ||
        rs.retryBudgetUsed < policy.retryBudget;
    if (policy.retriesEnabled() && request.attempt < policy.retryMax &&
        budgetOk) {
        ++request.attempt;
        ++rs.retryBudgetUsed;
        ++rs.retried;
        // Exponential backoff: base * 2^(attempt-1). ldexp keeps the
        // doubling exact.
        double backoff = std::ldexp(policy.retryBackoffSeconds,
                                    request.attempt - 1);
        scheduleControlIn(
            sim::fromSeconds(backoff),
            [this, request]() { redispatch(request); },
            "cluster.retry");
        return;
    }
    auto it = rs.hedges.find(request.id);
    if (it != rs.hedges.end()) {
        RunState::HedgePair &h = it->second;
        if (h.dupDone) {
            // The duplicate already served it: a hedge win, not a loss.
            ++rs.hedgeWon;
            ++rs.hedgeCredits;
            latency_.record(h.dupLatency);
            stats_.inc("hedge_wins");
            rs.hedges.erase(it);
            return;
        }
        if (h.dupNode >= 0) {
            // The duplicate is still in flight; defer the verdict.
            h.primaryLost = true;
            return;
        }
        rs.hedges.erase(it);
    }
    ++rs.lost;
    return;
}

/** A retry lands: re-dispatch with the original arrival timestamp. */
void
ClusterSimulator::redispatch(EngineRequest request)
{
    RunState &rs = *rs_;
    int n = pickNode(request.expert);
    auto ns = static_cast<std::size_t>(n);
    // The retry target can be flaky too — the request cycles back
    // into the displaced path and burns another attempt.
    if (rs.flakyProb[ns] > 0.0 &&
        rs.faultRng->uniformDouble() < rs.flakyProb[ns]) {
        stats_.inc("flaky_failures");
        handleDisplaced(std::move(request));
        return;
    }
    if (rs.fabric) {
        // The retry crosses the fabric again from the hub, with its
        // original arrival timestamp intact.
        forwardRequest(n, std::move(request));
        return;
    }
    ++rs.dispatchedTo[ns];
    // Retries fire at control barriers (threads > 1 workers are
    // parked), so direct injection is safe in both modes — the
    // drainNode() re-dispatch precedent.
    rs.engines[ns]->injectAt(std::move(request));
}

/**
 * Hub-side queueing-delay estimate for hedging: backlog (dispatched
 * minus the last policy-barrier view of completed + shed) priced at
 * router + a full batch of default prompts, stretched by the node's
 * known degradation. Deliberately refreshed only at barriers so the
 * estimate — and therefore every hedge decision — is identical across
 * -j 1 / -j N.
 */
double
ClusterSimulator::estimateDelaySeconds(int node) const
{
    const RunState &rs = *rs_;
    auto ns = static_cast<std::size_t>(node);
    std::int64_t backlog =
        rs.dispatchedTo[ns] - rs.knownDone[ns];
    if (backlog <= 0)
        return 0.0;
    const PhaseCosts &c = rs.nodeCosts[ns];
    const ServingConfig &ncfg = rs.nodeCfg[ns];
    int batch = std::max(1, ncfg.batch);
    double perPrompt = c.prefillSeconds +
        c.decodeSecondsPerToken * static_cast<double>(ncfg.outputTokens);
    double batches = static_cast<double>(backlog) /
        static_cast<double>(batch);
    return batches *
        (c.routerSeconds + perPrompt * static_cast<double>(batch)) *
        rs.serviceFactor[ns] * rs.dmaFactor[ns];
}

/** Re-arm the recurring policy barrier (hedge / brown-out only). */
void
ClusterSimulator::armPolicyTick()
{
    const FaultPolicyConfig &policy = cfg_.faultPolicy;
    if (!policy.hedge && policy.brownoutDepth <= 0.0)
        return;
    scheduleControlIn(sim::fromSeconds(policy.policyTickSeconds),
                      [this]() { policyTick(); },
                      "cluster.policy_tick");
}

/**
 * The recurring policy barrier: refresh the hub's backlog view,
 * resolve hedge winners from the engines' completion logs, and
 * re-evaluate brown-out with hysteresis. Stops re-arming once the
 * run is idle so the event queue can dry.
 */
void
ClusterSimulator::policyTick()
{
    RunState &rs = *rs_;
    const FaultPolicyConfig &policy = cfg_.faultPolicy;
    for (int n = 0; n < cfg_.nodes; ++n) {
        auto ns = static_cast<std::size_t>(n);
        rs.knownDone[ns] = rs.engines[ns]->completedCount() +
            rs.engines[ns]->shedCount();
    }
    resolveHedges();
    if (policy.brownoutDepth > 0.0) {
        std::int64_t depth = 0;
        int live = 0;
        for (int n = 0; n < cfg_.nodes; ++n) {
            auto ns = static_cast<std::size_t>(n);
            if (!rs.live[ns])
                continue;
            depth += static_cast<std::int64_t>(
                rs.engines[ns]->queueDepth());
            ++live;
        }
        double mean = live > 0
            ? static_cast<double>(depth) / static_cast<double>(live)
            : 0.0;
        // Hysteresis: enter above the threshold, exit below half of
        // it, so the shed decision doesn't flap every tick.
        if (rs.brownoutActive) {
            if (mean <= 0.5 * policy.brownoutDepth) {
                rs.brownoutActive = false;
                stats_.inc("brownout_exits");
            }
        } else if (mean > policy.brownoutDepth) {
            rs.brownoutActive = true;
            stats_.inc("brownout_entries");
        }
    }
    if (!idle())
        armPolicyTick();
}

/**
 * Drain the engines' completion logs (node order — deterministic in
 * both modes) into the open hedge ledger, then settle every pair
 * whose duplicate finished first: cancel the still-queued primary and
 * credit the completion hub-side. Exactly one completion is ever
 * counted per hedged request: the engines count primaries only, the
 * hub credits a duplicate's completion only after the primary is
 * confirmed cancelled (or lost).
 */
void
ClusterSimulator::resolveHedges()
{
    RunState &rs = *rs_;
    if (!cfg_.faultPolicy.hedge)
        return;
    for (int n = 0; n < cfg_.nodes; ++n) {
        std::vector<ServingEngine::CompletionRecord> &log =
            rs.engines[static_cast<std::size_t>(n)]->completionLog();
        for (const ServingEngine::CompletionRecord &c : log) {
            auto it = rs.hedges.find(c.id);
            if (it == rs.hedges.end())
                continue;
            RunState::HedgePair &h = it->second;
            if (c.hedgeDuplicate) {
                h.dupDone = true;
                h.dupLatency = c.latencySeconds;
            } else {
                // The primary completed (and the engine counted it):
                // cancel the duplicate if it still queues, close the
                // pair. A duplicate already executing just finishes as
                // an uncounted ghost.
                if (h.dupNode >= 0)
                    rs.engines[static_cast<std::size_t>(h.dupNode)]
                        ->cancelQueued(c.id);
                rs.hedges.erase(it);
            }
        }
        log.clear();
    }
    for (auto it = rs.hedges.begin(); it != rs.hedges.end();) {
        RunState::HedgePair &h = it->second;
        bool win = h.dupDone &&
            (h.primaryLost ||
             rs.engines[static_cast<std::size_t>(h.primaryNode)]
                 ->cancelQueued(it->first));
        if (win) {
            ++rs.hedgeWon;
            ++rs.hedgeCredits;
            latency_.record(h.dupLatency);
            stats_.inc("hedge_wins");
            it = rs.hedges.erase(it);
        } else {
            ++it;
        }
    }
}

bool
ClusterSimulator::migrateExpert(int expert, int from, int to)
{
    if (!rs_)
        sim::panic("cluster: migrateExpert outside an active run");
    if (expert < 0 || expert >= cfg_.node.numExperts)
        sim::fatal("cluster: migrateExpert expert out of range");
    if (from < 0 || from >= cfg_.nodes || to < 0 || to >= cfg_.nodes)
        sim::fatal("cluster: migrateExpert node out of range");
    if (from == to)
        return false;
    RunState &rs = *rs_;
    auto e = static_cast<std::size_t>(expert);
    std::vector<int> &hosts = rs.placement.hostsOfExpert[e];
    auto hostIt = std::find(hosts.begin(), hosts.end(), from);
    if (hostIt == hosts.end())
        return false; // not hosted where we'd take it from
    if (std::find(hosts.begin(), hosts.end(), to) != hosts.end())
        return false; // already hosted at the target
    double bytes = rs.expertBytes[e];
    auto t = static_cast<std::size_t>(to);
    if (rs.placedBytesNow[t] + bytes >
        rs.nodeCosts[t].capacityBytes)
        return false; // target DDR cannot take the expert

    if (rs.fabric) {
        // The payload crosses the fabric, then pays the target's
        // DDR-write time (the DmaEngine idle estimate, stretched by
        // any open dma-stall fault) before the placement flips. The
        // target's bytes are reserved up front so concurrent
        // migrations cannot oversubscribe it; an infeasible flip
        // (placement changed mid-flight) refunds the reservation.
        rs.placedBytesNow[t] += bytes;
        ++rs.migrationsInFlight;
        rs.fabric->sendTransfer(
            from, to, bytes, [this, expert, from, to, bytes]() {
                RunState &rsc = *rs_;
                auto tc = static_cast<std::size_t>(to);
                sim::Tick ddr = static_cast<sim::Tick>(
                    static_cast<double>(
                        rsc.engines[tc]->memorySystem().estimateLoad(
                            bytes)) *
                    rsc.dmaFactor[tc]);
                scheduleControlAt(
                    rsc.eq.now() + ddr,
                    [this, expert, from, to, bytes]() {
                        RunState &rsf = *rs_;
                        auto ef = static_cast<std::size_t>(expert);
                        auto ff = static_cast<std::size_t>(from);
                        auto tf = static_cast<std::size_t>(to);
                        --rsf.migrationsInFlight;
                        std::vector<int> &hosts =
                            rsf.placement.hostsOfExpert[ef];
                        auto hIt = std::find(hosts.begin(),
                                             hosts.end(), from);
                        bool already =
                            std::find(hosts.begin(), hosts.end(),
                                      to) != hosts.end();
                        if (hIt == hosts.end() || already) {
                            // The placement moved under the transfer
                            // (a replication change raced it): drop
                            // the copy and refund the reservation.
                            rsf.placedBytesNow[tf] -= bytes;
                            stats_.inc("migration_aborts");
                            return;
                        }
                        *hIt = to;
                        std::vector<int> &fx =
                            rsf.placement.expertsOfNode[ff];
                        fx.erase(std::find(fx.begin(), fx.end(),
                                           expert));
                        rsf.placement.expertsOfNode[tf].push_back(
                            expert);
                        rsf.placedBytesNow[ff] -= bytes;
                        stats_.inc("expert_migrations");
                    },
                    "cluster.migrate_commit");
            });
        return true;
    }

    *hostIt = to;
    auto f = static_cast<std::size_t>(from);
    std::vector<int> &fromExperts = rs.placement.expertsOfNode[f];
    fromExperts.erase(
        std::find(fromExperts.begin(), fromExperts.end(), expert));
    rs.placement.expertsOfNode[t].push_back(expert);
    rs.placedBytesNow[f] -= bytes;
    rs.placedBytesNow[t] += bytes;
    stats_.inc("expert_migrations");
    return true;
}

bool
ClusterSimulator::setReplication(int expert, int replicas)
{
    if (!rs_)
        sim::panic("cluster: setReplication outside an active run");
    if (expert < 0 || expert >= cfg_.node.numExperts)
        sim::fatal("cluster: setReplication expert out of range");
    RunState &rs = *rs_;
    int want = std::max(1, std::min(replicas, cfg_.nodes));
    auto e = static_cast<std::size_t>(expert);
    std::vector<int> &hosts = rs.placement.hostsOfExpert[e];
    double bytes = rs.expertBytes[e];
    bool changed = false;

    auto hosted = [&hosts](int n) {
        return std::find(hosts.begin(), hosts.end(), n) != hosts.end();
    };

    while (static_cast<int>(hosts.size()) < want) {
        // Grow: prefer live nodes, then the emptiest, then lowest id —
        // a deterministic order so seeded runs replay exactly.
        int pick = -1;
        for (int n = 0; n < cfg_.nodes; ++n) {
            auto ns = static_cast<std::size_t>(n);
            if (hosted(n))
                continue;
            if (rs.placedBytesNow[ns] + bytes >
                rs.nodeCosts[ns].capacityBytes)
                continue;
            if (pick < 0) {
                pick = n;
                continue;
            }
            auto ps = static_cast<std::size_t>(pick);
            if (rs.live[ns] != rs.live[ps]) {
                if (rs.live[ns])
                    pick = n;
                continue;
            }
            if (rs.placement.expertsOfNode[ns].size() <
                rs.placement.expertsOfNode[ps].size())
                pick = n;
        }
        if (pick < 0)
            break; // nowhere feasible to grow
        auto ps = static_cast<std::size_t>(pick);
        hosts.push_back(pick);
        rs.placement.expertsOfNode[ps].push_back(expert);
        rs.placedBytesNow[ps] += bytes;
        ++rs.placement.replicas;
        changed = true;
    }
    while (static_cast<int>(hosts.size()) > want && hosts.size() > 1) {
        // Shrink: prefer drained nodes, then the fullest, then
        // highest id.
        int pick = hosts.front();
        for (int n : hosts) {
            auto ns = static_cast<std::size_t>(n);
            auto ps = static_cast<std::size_t>(pick);
            if (rs.live[ns] != rs.live[ps]) {
                if (!rs.live[ns])
                    pick = n;
                continue;
            }
            if (rs.placement.expertsOfNode[ns].size() >
                    rs.placement.expertsOfNode[ps].size() ||
                (rs.placement.expertsOfNode[ns].size() ==
                     rs.placement.expertsOfNode[ps].size() &&
                 n > pick))
                pick = n;
        }
        auto ps = static_cast<std::size_t>(pick);
        hosts.erase(std::find(hosts.begin(), hosts.end(), pick));
        std::vector<int> &ex = rs.placement.expertsOfNode[ps];
        ex.erase(std::find(ex.begin(), ex.end(), expert));
        rs.placedBytesNow[ps] -= bytes;
        --rs.placement.replicas;
        changed = true;
    }
    if (changed)
        stats_.inc("replication_changes");
    return changed;
}

void
ClusterSimulator::setRateFactor(double factor)
{
    if (!rs_)
        sim::panic("cluster: setRateFactor outside an active run");
    if (factor <= 0.0)
        sim::fatal("cluster: rate factor must be positive");
    rs_->workload->setRateFactor(factor);
    stats_.inc("rate_overrides");
}

int
ClusterSimulator::liveNodes() const
{
    if (!rs_)
        sim::panic("cluster: liveNodes outside an active run");
    return rs_->liveCount;
}

bool
ClusterSimulator::idle() const
{
    if (!rs_)
        sim::panic("cluster: idle outside an active run");
    const RunState &rs = *rs_;
    if (rs.workload->emitted() != rs.workload->plannedRequests())
        return false;
    if (rs.fabric &&
        (rs.fabric->inFlight() > 0 || rs.migrationsInFlight > 0))
        return false;
    for (const std::unique_ptr<ServingEngine> &e : rs.engines) {
        if (e->queueDepth() != 0 || e->busy())
            return false;
        if (e->memorySystem().queuedLoads() != 0 ||
            e->memorySystem().loadsInFlight() != 0)
            return false;
    }
    return true;
}

sim::EventQueue &
ClusterSimulator::eventQueue()
{
    if (!rs_)
        sim::panic("cluster: eventQueue outside an active run");
    return rs_->eq;
}

const ExpertPlacement &
ClusterSimulator::placement() const
{
    if (!rs_)
        sim::panic("cluster: placement outside an active run");
    return rs_->placement;
}

MetricsSnapshot
ClusterSimulator::snapshot()
{
    if (!rs_)
        sim::panic("cluster: snapshot outside an active run");
    RunState &rs = *rs_;
    accrueNodeSeconds();

    MetricsSnapshot s;
    s.atSeconds = sim::toSeconds(rs.eq.now());
    s.windowSeconds = sim::toSeconds(rs.eq.now() - rs.snapTick);
    s.nodeSecondsLive = rs.nodeSecondsLive;

    std::int64_t arrivals = rs.workload->emitted();
    std::int64_t completions = 0, shed = 0;
    std::int64_t liveDepth = 0;
    s.nodes.resize(static_cast<std::size_t>(cfg_.nodes));
    for (int n = 0; n < cfg_.nodes; ++n) {
        auto ns = static_cast<std::size_t>(n);
        ServingEngine &e = *rs.engines[ns];
        NodeSnapshot &node = s.nodes[ns];
        node.node = n;
        node.live = rs.live[ns] != 0;
        node.wasDrained = rs.wasDrained[ns] != 0;
        node.queueDepth = e.queueDepth();
        node.outstanding = e.outstanding();
        node.dispatched = rs.dispatchedTo[ns] - rs.baseDispatched[ns];
        node.completed = e.completedCount() - rs.baseCompleted[ns];
        node.misses = e.missCount() - rs.baseMisses[ns];
        node.shed = e.shedCount() - rs.baseShedNode[ns];
        completions += e.completedCount();
        shed += e.shedCount();
        if (node.live) {
            ++s.liveNodes;
            liveDepth += node.queueDepth;
        }
        rs.baseDispatched[ns] = rs.dispatchedTo[ns];
        rs.baseCompleted[ns] = e.completedCount();
        rs.baseMisses[ns] = e.missCount();
        rs.baseShedNode[ns] = e.shedCount();
    }
    // Hub-side chaos accounting folds into the cluster totals: hedge
    // wins are completions credited at the hub (never counted by an
    // engine), brown-out sheds never reached an engine.
    completions += rs.hedgeCredits;
    shed += rs.brownoutShed;
    s.arrivals = arrivals - rs.baseArrivals;
    s.completions = completions - rs.baseCompletions;
    s.shed = shed - rs.baseShed;
    s.lost = rs.lost - rs.baseLost;
    s.retried = rs.retried - rs.baseRetried;
    s.hedged = rs.hedged - rs.baseHedged;
    s.hedgeWon = rs.hedgeWon - rs.baseHedgeWon;
    rs.baseLost = rs.lost;
    rs.baseRetried = rs.retried;
    rs.baseHedged = rs.hedged;
    rs.baseHedgeWon = rs.hedgeWon;
    if (s.windowSeconds > 0.0) {
        s.arrivalRatePerSec =
            static_cast<double>(s.arrivals) / s.windowSeconds;
        s.completionRatePerSec =
            static_cast<double>(s.completions) / s.windowSeconds;
    }
    if (s.liveNodes > 0)
        s.meanQueueDepthPerLiveNode = static_cast<double>(liveDepth) /
            static_cast<double>(s.liveNodes);

    s.expertHits.resize(rs.expertHits.size());
    for (std::size_t e = 0; e < rs.expertHits.size(); ++e) {
        s.expertHits[e] = rs.expertHits[e] - rs.baseExpertHits[e];
        rs.baseExpertHits[e] = rs.expertHits[e];
    }

    if (rs.fabric) {
        const sim::Network &net = rs.fabric->network();
        sim::Tick window = rs.eq.now() - rs.snapTick;
        s.links.resize(static_cast<std::size_t>(net.linkCount()));
        for (int l = 0; l < net.linkCount(); ++l) {
            auto ls = static_cast<std::size_t>(l);
            s.links[ls].from = net.nodeLabel(net.linkFrom(l));
            s.links[ls].to = net.nodeLabel(net.linkTo(l));
            sim::Tick busy = net.linkBusyTicks(l) - rs.baseLinkBusy[ls];
            // Busy time books at transmit start, so a flit spanning
            // the window edge can push the ratio past 1; clamp.
            s.links[ls].utilization = window > 0
                ? std::min(1.0, static_cast<double>(busy) /
                                    static_cast<double>(window))
                : 0.0;
            rs.baseLinkBusy[ls] = net.linkBusyTicks(l);
        }
    }

    rs.baseArrivals = arrivals;
    rs.baseCompletions = completions;
    rs.baseShed = shed;
    rs.snapTick = rs.eq.now();
    return s;
}

ClusterResult
ClusterSimulator::run()
{
    if (!begin()) {
        ClusterResult result;
        result.oom = true;
        return result;
    }
    if (cfg_.controller.policy != ControllerPolicy::Static) {
        controller_ =
            std::make_unique<ClusterController>(*this, cfg_.controller);
        controller_->start();
    }
    if (rs_->threads > 1)
        runParallel();
    else
        rs_->eq.run();
    return finish();
}

/**
 * Conservative time-window execution. Per iteration:
 *
 *  1. The next sync-agenda time syncT bounds the lookahead: nothing
 *     on a shard may interact with the cluster before it (dispatch is
 *     decided at the hub, engines never message each other, and all
 *     control actuations are agenda entries).
 *  2. Hub phase (this thread): run arrival events strictly before
 *     syncT, routing each request into its node's staging mailbox.
 *     Capped per window so mailbox memory stays bounded on
 *     uncontrolled runs. Staged entries are spliced into the
 *     worker-visible inboxes while the workers are parked.
 *  3. Worker phase: each worker schedules its shards' new mailbox
 *     entries as delivery events, then runs the shard up to (but not
 *     including) windowEnd = min(syncT, next hub arrival). Every
 *     delivery tick is below windowEnd, so arrivals interleave with
 *     the shard's own batch events in exact tick order. Meanwhile the
 *     hub pre-routes the NEXT window's arrivals into the staging
 *     halves — the serial routing cost pipelines behind shard
 *     execution instead of adding to the critical path.
 *  4. Barrier; when the window actually reached syncT, advance every
 *     clock to syncT and fire the due agenda entries in FIFO order
 *     (snapshots, drains, controller ticks — they may re-arm).
 *
 * Determinism: every routing, RNG, and control decision happens on
 * this thread at a barrier or in the hub phase; workers only execute
 * per-shard event streams whose content is independent of the worker
 * count. Results are therefore identical for any threads >= 2, and
 * run-to-run. (threads == 1 bypasses all of this for the bit-exact
 * shared-queue path.)
 */
void
ClusterSimulator::runParallel()
{
    RunState &rs = *rs_;
    const int N = cfg_.nodes;
    const int T = rs.threads;

    /**
     * Arrivals routed per window before the hub yields to the
     * workers. Bounds mailbox memory (~64 B/entry); at the default
     * rates a window still spans thousands of batches per shard, so
     * barrier overhead stays well under a percent.
     */
    constexpr std::size_t kWindowArrivalCap = 8192;

    rs.pool = std::make_unique<ShardWorkerPool>(
        T, [&rs, N, T](int tid, sim::Tick limit) {
            for (int n = tid; n < N; n += T) {
                RunState::Shard &sh =
                    rs.shards[static_cast<std::size_t>(n)];
                while (sh.inboxScheduled < sh.inbox.size()) {
                    const RunState::Shard::Pending &p =
                        sh.inbox[sh.inboxScheduled++];
                    sh.eq.schedule(
                        p.tick,
                        [&sh]() {
                            RunState::Shard::Pending &q =
                                sh.inbox[sh.inboxNext++];
                            if (q.prebuilt)
                                sh.engine->injectAt(std::move(q.built));
                            else
                                sh.engine->inject(q.request);
                        },
                        "cluster.deliver");
                }
                sh.eq.run(limit);
            }
        });

    // The arrival path can create control work mid-window: a flaky
    // displacement under the retry policy schedules its re-dispatch
    // at arrival + backoff (handleDisplaced), and that retry must
    // fire at a barrier exactly where the serial path would run it.
    // The top-up loop therefore re-reads the agenda after every hub
    // step (the new entry may shrink the window), and the overlap
    // stops short of arrivals whose retry could land inside the
    // already-committed window.
    const bool hubMayRetry = cfg_.faultPolicy.retriesEnabled();
    const sim::Tick firstBackoff =
        sim::fromSeconds(cfg_.faultPolicy.retryBackoffSeconds);
    auto agendaFront = [&rs]() {
        return rs.agenda.empty() ? sim::kMaxTick
                                 : rs.agenda.front().when;
    };

    for (;;) {
        sim::Tick syncT = agendaFront();

        // Top up this window's arrivals (strictly below the next
        // control barrier, bounded by the mailbox cap). After the
        // first window most arrivals were already staged during the
        // previous window's overlap, so this usually no-ops.
        rs.hubBuffered = 0;
        while (rs.eq.peekNextTick() < syncT &&
               rs.hubBuffered < kWindowArrivalCap) {
            rs.eq.step();
            syncT = agendaFront();
        }

        sim::Tick windowEnd = std::min(syncT, rs.eq.peekNextTick());

        // Workers are parked here, so the hub owns both mailbox
        // halves: recycle fully-consumed inboxes, then splice the
        // staged arrivals in. A mailbox with a pending delivery — an
        // arrival at exactly a windowEnd — keeps accumulating until
        // it drains.
        for (RunState::Shard &sh : rs.shards) {
            if (sh.inboxNext == sh.inbox.size() &&
                sh.inboxScheduled == sh.inbox.size()) {
                sh.inbox.clear();
                sh.inboxScheduled = 0;
                sh.inboxNext = 0;
            }
            sh.inbox.insert(
                sh.inbox.end(),
                std::make_move_iterator(sh.staging.begin()),
                std::make_move_iterator(sh.staging.end()));
            sh.staging.clear();
        }

        if (windowEnd > 0) {
            // While a flaky window is open and retries are on, an
            // arrival stepped during the overlap could schedule its
            // retry at arrival + backoff, inside the window the
            // workers are already committed to. Stop the overlap at
            // the first such arrival; the next top-up (with the
            // workers parked and the window still shrinkable) handles
            // it.
            bool flakyOpen = false;
            if (hubMayRetry)
                for (double p : rs.flakyProb)
                    flakyOpen = flakyOpen || p > 0.0;
            rs.pool->startWindow(windowEnd - 1); // run() is inclusive
            // Pipeline: pre-route the next window's arrivals into the
            // hub-private staging halves while the workers execute
            // this one. Everything the arrival path touches — the
            // workload generator, its RNG, dispatch-policy state, the
            // hub queue, the fabric, the expert placement it reads —
            // is either hub-owned or frozen until the next control
            // barrier, so the overlap cannot race the shards; it just
            // hides the serial routing cost behind shard execution.
            // The agenda front is re-read every step: a hub event can
            // create a control entry (displaced-retry backoff, a
            // migration commit behind a fabric transfer), and hub
            // events past that entry's tick must wait for its barrier
            // to keep hub-side ordering identical to the serial path.
            rs.hubBuffered = 0;
            while (rs.eq.peekNextTick() < agendaFront() &&
                   rs.hubBuffered < kWindowArrivalCap) {
                if (flakyOpen &&
                    rs.eq.peekNextTick() + firstBackoff < windowEnd)
                    break;
                rs.eq.step();
            }
            rs.pool->waitWindow();
        }

        if (windowEnd != syncT)
            continue; // capped or arrival-bounded window; same syncT
        if (syncT == sim::kMaxTick)
            break; // hub drained, shards drained, no control pending

        // True barrier at syncT: square up every clock so the agenda
        // callbacks observe the timestamps a shared queue would have
        // (snapshot windows, drain re-dispatch injectAt, node-seconds
        // accrual all read now()).
        for (RunState::Shard &sh : rs.shards)
            sh.eq.advanceTo(syncT);
        rs.eq.advanceTo(syncT);
        while (!rs.agenda.empty() && rs.agenda.front().when == syncT) {
            std::pop_heap(rs.agenda.begin(), rs.agenda.end(),
                          RunState::agendaLater);
            RunState::AgendaEntry entry = std::move(rs.agenda.back());
            rs.agenda.pop_back();
            entry.cb();
        }
    }

    // Land the hub clock on the run's true end time (the serial path's
    // final event tick) so finish()'s node-seconds accrual matches.
    sim::Tick endTick = rs.eq.now();
    for (RunState::Shard &sh : rs.shards)
        endTick = std::max(endTick, sh.eq.now());
    rs.eq.advanceTo(endTick);

    rs.pool.reset(); // park and join the workers
}

ClusterResult
ClusterSimulator::finish()
{
    if (!rs_)
        sim::panic("cluster: finish without begin");
    RunState &rs = *rs_;
    const ServingConfig &base = cfg_.node;
    const int N = cfg_.nodes;
    ClusterResult result;

    rs.recorder.write();
    accrueNodeSeconds();

    // A parallel run recorded latencies per engine only (no shared
    // mirrors); merge them cluster-wide in node order. Exact-mode
    // quantiles come out bit-identical to the serial interleaved
    // recording (same sample multiset, lazily sorted); running means
    // can differ in the last ulp from the different summation order.
    if (rs.threads > 1) {
        for (const std::unique_ptr<ServingEngine> &e : rs.engines) {
            latency_.merge(e->latency());
            stalls_.merge(e->stalls());
        }
    }

    // Settle the hedge ledger's tail: completions that landed after
    // the last policy barrier, then any pair whose primary was lost
    // and whose duplicate silently died (shed at admission) — that
    // loss is final and counted, nothing leaves the run unaccounted.
    resolveHedges();
    for (const auto &kv : rs.hedges)
        if (kv.second.primaryLost)
            ++rs.lost;
    rs.hedges.clear();

    std::int64_t completed = 0, batches = 0, misses = 0, shedTotal = 0;
    std::int64_t specSteps = 0;
    double occupancyTotal = 0.0, depthIntegral = 0.0;
    sim::Tick lastCompletion = 0;
    for (int n = 0; n < N; ++n) {
        ServingEngine &e = *rs.engines[static_cast<std::size_t>(n)];
        sim::simAssert(e.queueDepth() == 0 && !e.busy(),
                       "cluster: event stream drained with work pending");
        sim::simAssert(e.memorySystem().queuedLoads() == 0 &&
                           e.memorySystem().loadsInFlight() == 0,
                       "cluster: DMA queue drained with transfers pending");
        completed += e.completedCount();
        batches += e.batchCount();
        misses += e.missCount();
        shedTotal += e.shedCount();
        specSteps += e.specStepsTotal();
        occupancyTotal += e.occupancyTotal();
        depthIntegral += e.depthIntegral();
        lastCompletion = std::max(lastCompletion, e.lastCompletion());
    }
    // Hub-side ledger: hedge wins are completions the engines never
    // counted; brown-out sheds never reached an engine; lost requests
    // are the only sanctioned leak and they are counted, not silent.
    completed += rs.hedgeCredits;
    shedTotal += rs.brownoutShed;
    sim::simAssert(rs.workload->emitted() ==
                       rs.workload->plannedRequests(),
                   "cluster: workload did not emit its full budget");
    sim::simAssert(completed + shedTotal + rs.lost ==
                       rs.workload->emitted(),
                   "cluster: arrivals != completions + shed + lost "
                   "at drain");

    double makespan = sim::toSeconds(
        lastCompletion - std::max<sim::Tick>(rs.firstArrival, 0));

    StreamMetrics &m = result.stream;
    m.p50LatencySeconds = latency_.quantile(0.50);
    m.p95LatencySeconds = latency_.quantile(0.95);
    m.p99LatencySeconds = latency_.quantile(0.99);
    m.meanLatencySeconds = latency_.mean();
    m.maxLatencySeconds = latency_.max();
    m.completed = completed;
    m.batches = batches;
    m.meanBatchOccupancy = batches > 0
        ? occupancyTotal / static_cast<double>(batches)
        : 0.0;
    m.makespanSeconds = makespan;
    if (makespan > 0.0) {
        m.throughputRequestsPerSec =
            static_cast<double>(completed) / makespan;
        m.throughputTokensPerSec = m.throughputRequestsPerSec *
            static_cast<double>(base.outputTokens);
        m.meanQueueDepth = depthIntegral / makespan;
    }
    m.meanSwitchStallSeconds = stalls_.mean();
    m.p95SwitchStallSeconds = stalls_.quantile(0.95);
    if (base.specDecode.enabled) {
        m.specSteps = specSteps;
        m.specTokensPerStep = specSteps > 0
            ? static_cast<double>(completed) *
                static_cast<double>(base.outputTokens) /
                static_cast<double>(specSteps)
            : 0.0;
    }
    m.eventsExecuted = rs.eq.executedCount();
    // Shard events (including the mailbox delivery events, which have
    // no serial counterpart) count toward the run's event total.
    for (const RunState::Shard &sh : rs.shards)
        m.eventsExecuted += sh.eq.executedCount();
    m.shed = shedTotal;
    m.shedRate = completed + shedTotal > 0
        ? static_cast<double>(shedTotal) /
            static_cast<double>(completed + shedTotal)
        : 0.0;
    m.lost = rs.lost;
    m.retried = rs.retried;
    m.hedged = rs.hedged;
    m.hedgeWon = rs.hedgeWon;

    result.missRate = completed > 0
        ? static_cast<double>(misses) / static_cast<double>(completed)
        : 0.0;

    std::int64_t maxCompleted = 0;
    result.nodes.resize(static_cast<std::size_t>(N));
    for (int n = 0; n < N; ++n) {
        auto ns = static_cast<std::size_t>(n);
        ServingEngine &e = *rs.engines[ns];
        ClusterNodeMetrics &nm = result.nodes[ns];
        nm.node = n;
        nm.drained = rs.wasDrained[ns] != 0;
        nm.dispatched = rs.dispatchedTo[ns];
        nm.redispatched = rs.redispatchedFrom[ns];
        nm.completed = e.completedCount();
        nm.batches = e.batchCount();
        nm.misses = e.missCount();
        nm.shed = e.shedCount();
        nm.missRate = nm.completed > 0
            ? static_cast<double>(nm.misses) /
                static_cast<double>(nm.completed)
            : 0.0;
        nm.p50LatencySeconds = e.latency().quantile(0.50);
        nm.p95LatencySeconds = e.latency().quantile(0.95);
        nm.meanQueueDepth = makespan > 0.0
            ? e.depthIntegral() / makespan
            : 0.0;
        nm.maxQueueDepth = e.queueDepthMax();
        nm.placedExperts = static_cast<int>(
            rs.placement.expertsOfNode[ns].size());
        // Recomputed from the FINAL placement (migrations and
        // replication changes move bytes); untouched placements sum
        // the same doubles in the same order as the begin()-time
        // feasibility pass, so the value is bit-identical.
        nm.placedBytes = 0.0;
        for (int ex : rs.placement.expertsOfNode[ns])
            nm.placedBytes +=
                rs.expertBytes[static_cast<std::size_t>(ex)];
        nm.peakResidentBytes = e.peakResidentBytes();

        m.maxQueueDepth = std::max(m.maxQueueDepth, e.queueDepthMax());
        m.prefetchesIssued += static_cast<std::int64_t>(
            e.stats().get("prefetches_issued"));
        m.prefetchHits += static_cast<std::int64_t>(
            e.stats().get("prefetch_hits"));
        m.prefetchesCancelled += static_cast<std::int64_t>(
            e.stats().get("prefetches_cancelled"));

        maxCompleted = std::max(maxCompleted, nm.completed);
        result.placedBytesTotal += nm.placedBytes;
        result.peakResidentBytesTotal += nm.peakResidentBytes;
    }
    double meanCompleted =
        static_cast<double>(completed) / static_cast<double>(N);
    result.loadImbalance = meanCompleted > 0.0
        ? static_cast<double>(maxCompleted) / meanCompleted
        : 1.0;
    result.expertReplicas = rs.placement.replicas;
    result.redispatched = rs.redispatchedTotal;
    result.nodeSecondsLive = rs.nodeSecondsLive;
    result.nodeHours = rs.nodeSecondsLive / 3600.0;
    if (controller_) {
        controller_->finish();
        result.controllerTicks = controller_->ticks();
        result.controllerActions = controller_->actions();
    }
    result.faultsInjected = faults_ ? faults_->injectedCount() : 0;
    result.crashes = rs.crashes;

    if (rs.fabric) {
        sim::simAssert(rs.fabric->inFlight() == 0,
                       "cluster: event stream drained with network "
                       "messages in flight");
        sim::simAssert(rs.migrationsInFlight == 0,
                       "cluster: event stream drained with migrations "
                       "in flight");
        const sim::Network &net = rs.fabric->network();
        result.networkMessages = net.messagesDelivered();
        result.networkFlits = net.flitsDelivered();
        result.networkCreditStalls = net.creditStalls();
        sim::Tick span =
            lastCompletion - std::max<sim::Tick>(rs.firstArrival, 0);
        if (span > 0 && net.linkCount() > 0) {
            double maxU = 0.0, sumU = 0.0;
            for (int l = 0; l < net.linkCount(); ++l) {
                double u = static_cast<double>(net.linkBusyTicks(l)) /
                    static_cast<double>(span);
                maxU = std::max(maxU, u);
                sumU += u;
            }
            result.networkMaxLinkUtilization = maxU;
            result.networkMeanLinkUtilization =
                sumU / static_cast<double>(net.linkCount());
        }
        stats_.set("network_messages",
                   static_cast<double>(result.networkMessages));
        stats_.set("network_flits",
                   static_cast<double>(result.networkFlits));
        stats_.set("network_credit_stalls",
                   static_cast<double>(result.networkCreditStalls));
        stats_.set("network_max_link_utilization",
                   result.networkMaxLinkUtilization);
    }

    stats_.set("completed", static_cast<double>(completed));
    stats_.set("batches", static_cast<double>(batches));
    stats_.set("misses", static_cast<double>(misses));
    stats_.set("shed", static_cast<double>(shedTotal));
    stats_.set("redispatched",
               static_cast<double>(rs.redispatchedTotal));
    stats_.set("events_executed",
               static_cast<double>(m.eventsExecuted));
    stats_.set("load_imbalance", result.loadImbalance);
    stats_.set("expert_replicas",
               static_cast<double>(rs.placement.replicas));
    stats_.set("node_seconds_live", rs.nodeSecondsLive);
    stats_.set("controller_ticks",
               static_cast<double>(result.controllerTicks));
    stats_.set("controller_actions",
               static_cast<double>(result.controllerActions));
    stats_.set("lost", static_cast<double>(rs.lost));
    stats_.set("retried", static_cast<double>(rs.retried));
    stats_.set("retry_budget_used",
               static_cast<double>(rs.retryBudgetUsed));
    stats_.set("hedge_won", static_cast<double>(rs.hedgeWon));
    stats_.set("brownout_shed_total",
               static_cast<double>(rs.brownoutShed));
    stats_.set("faults_injected",
               static_cast<double>(result.faultsInjected));
    stats_.set("crashes", static_cast<double>(rs.crashes));

    controller_.reset();
    faults_.reset();
    rs_.reset();
    return result;
}

} // namespace sn40l::coe
