/**
 * @file
 * Multi-node CoE serving cluster: N per-node serving stacks (each a
 * ServingEngine with its own CoeRuntime and mem::MemorySystem),
 * fronted by a cluster router. With threads == 1 every stack shares
 * one sim::EventQueue; with threads > 1 each node runs on its own
 * queue shard under conservative time-window synchronization (see
 * runParallel() in cluster.cc for the execution model).
 *
 * The paper serves 150 experts from one 8-socket SN40L node; scaling
 * to "millions of users" means sharding the expert pool across many
 * nodes, which splits the serving problem into two pluggable
 * decisions, the regime CoServe (arXiv:2503.02354) studies:
 *
 *  - expert *placement*: which nodes may serve which experts. Full
 *    replication burns HBM on every node but lets any node serve any
 *    prompt; balanced partition minimizes footprint but funnels each
 *    expert's traffic to a single node; Zipf-aware replicate-hot /
 *    partition-cold replicates the head of the popularity curve and
 *    shards the tail.
 *
 *  - request *dispatch*: which hosting node a prompt goes to.
 *    Round-robin, least-outstanding, or expert-affinity via
 *    consistent hashing (an expert sticks to its "home" node until
 *    the node set changes).
 *
 * The simulator is observable and actuable mid-run, not just
 * configure-then-run-to-completion: begin() stands the cluster up on
 * its event queue, MetricsSnapshot exposes windowed rates / per-node
 * queue state / per-expert hit counts at any point, and the runtime
 * actuators drainNode() / rejoinNode() / migrateExpert() /
 * setReplication() / setRateFactor() generalize the old one-shot
 * drain scenario. ScheduledAction scripts those actuators at fixed
 * times (the legacy drainAtSeconds flags desugar onto it), and
 * coe::ClusterController (controller.h) closes the loop with a
 * policy. run() still does the whole dance in one call.
 *
 * A 1-node cluster with full replication reproduces the single-node
 * ServingSimulator EventDriven metrics bit-identically — the cluster
 * is the same engine behind a dispatch layer, not a second simulator.
 */

#ifndef SN40L_COE_CLUSTER_H
#define SN40L_COE_CLUSTER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coe/controller.h"
#include "coe/fabric.h"
#include "coe/faults.h"
#include "coe/serving.h"
#include "sim/event_queue.h"

namespace sn40l::coe {

struct EngineRequest; // serving_engine.h

/** How the cluster router picks a hosting node for a prompt. */
enum class DispatchPolicy {
    RoundRobin,       ///< cycle through the expert's eligible hosts
    LeastOutstanding, ///< eligible host with fewest in-flight requests
    ExpertAffinity,   ///< consistent hashing: stable expert -> node map
    TopologyAware,    ///< eligible host with the least-congested path
                      ///< from the hub (requires the fabric)
};

const char *dispatchPolicyName(DispatchPolicy policy);
DispatchPolicy dispatchPolicyFromName(const std::string &name);

/** Which nodes hold (and may serve) each expert. */
enum class PlacementPolicy {
    FullReplication,          ///< every expert on every node
    ReplicateHotPartitionCold, ///< hot head replicated, cold tail sharded
    BalancedPartition,        ///< every expert on exactly one node
};

const char *placementPolicyName(PlacementPolicy policy);
PlacementPolicy placementPolicyFromName(const std::string &name);

/** Per-node overrides for heterogeneous clusters (0 keeps the base). */
struct ClusterNodeOverride
{
    int node = -1;
    int dmaEngines = 0;
    std::int64_t expertRegionBytes = 0;
};

/** What a ScheduledAction does when its time arrives. */
enum class ActionKind {
    Drain,        ///< node stops accepting; queued work re-dispatches
    Rejoin,       ///< node returns cold (resident set flushed)
    RateOverride, ///< multiply the open-loop arrival rate by a factor
};

const char *actionKindName(ActionKind kind);

/**
 * One scripted actuation at a fixed time: the general form of the
 * old drainAtSeconds / rejoinAtSeconds pair. Actions fire in list
 * order when times tie; each maps onto the same runtime actuator the
 * controller uses, so scripted and closed-loop runs share one
 * mechanism.
 */
struct ScheduledAction
{
    double atSeconds = 0.0;
    ActionKind kind = ActionKind::Drain;
    int node = 0;            ///< Drain / Rejoin target
    double rateFactor = 1.0; ///< RateOverride multiplier (> 0)
};

struct ClusterConfig
{
    /**
     * The per-node serving stack (platform, experts, batch, scheduler,
     * prefetch, arrivals). mode is forced to EventDriven; streamRequests,
     * routing, and the arrival process are cluster-wide.
     */
    ServingConfig node;

    int nodes = 1;
    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    PlacementPolicy placement = PlacementPolicy::FullReplication;

    /**
     * Worker threads for the run. 1 (the default) is the classic
     * single-queue path, bit-identical to every existing golden.
     * N > 1 shards the event queue per node and runs shards on a
     * worker pool with conservative time-window sync; results are
     * deterministic for a fixed config (independent of N), but the
     * mode rejects zero-lookahead feedback loops: closed-loop
     * arrivals, conversational sessions (unless replayed from a
     * trace), and least-outstanding dispatch. Values above the node
     * count are clamped with a warning (spare shards would idle).
     */
    int threads = 1;

    /**
     * Experts replicated on every node under ReplicateHotPartitionCold
     * (the head of the popularity order); 0 derives numExperts / 10
     * (at least 1).
     */
    int hotExperts = 0;

    /**
     * Legacy drain scenario, kept as sugar: when drainAtSeconds > 0
     * the trio desugars to a Drain (and optional Rejoin) entry
     * prepended to `actions`, bit-identical to the historical
     * hard-coded scenario. Requires nodes >= 2.
     */
    double drainAtSeconds = 0.0;
    double rejoinAtSeconds = 0.0;
    int drainNode = 0;

    /** Scripted actuations, applied in time (then list) order. */
    std::vector<ScheduledAction> actions;

    /** Closed-loop control plane; Static leaves the run untouched. */
    ControllerConfig controller;

    /**
     * Diurnal ramp (Poisson arrivals only): the instantaneous rate is
     * arrivalRatePerSec * (1 + amplitude * sin(2*pi*t / period)).
     * amplitude in [0, 1); 0 disables.
     */
    double diurnalAmplitude = 0.0;
    double diurnalPeriodSeconds = 86400.0;

    std::vector<ClusterNodeOverride> overrides;

    /**
     * Chaos layer (coe/faults.h): a scripted fault schedule (null or
     * empty arms nothing — the fault-free path is bit-identical to a
     * cluster without the chaos layer) and the degraded-mode policy
     * knobs, all disabled by default. Shared pointer for the same
     * reason as traceEntries: a sweep parses the schedule once and
     * shares it across points.
     */
    std::shared_ptr<const std::vector<FaultEvent>> faults;
    FaultPolicyConfig faultPolicy;

    /**
     * Interconnect model (coe/fabric.h). Disabled by default: the
     * zero-network cluster moves requests and expert payloads
     * instantaneously and stays byte-identical to pre-fabric runs.
     * When enabled, dispatch, drain re-placement, and migration
     * traffic pay link serialization, latency, and credit
     * backpressure on the configured topology.
     */
    FabricConfig fabric;
};

/** Static expert-to-node placement map. */
struct ExpertPlacement
{
    std::vector<std::vector<int>> hostsOfExpert; ///< expert -> node ids
    std::vector<std::vector<int>> expertsOfNode; ///< node -> expert ids
    int replicas = 0; ///< total (expert, node) pairs
};

/**
 * Build the placement for @p experts experts over @p nodes nodes.
 * Expert ids are popularity order (Zipf routing makes id 0 hottest);
 * @p hot_experts only matters for ReplicateHotPartitionCold.
 */
ExpertPlacement makePlacement(PlacementPolicy policy, int experts,
                              int nodes, int hot_experts);

/** One node's slice of a MetricsSnapshot. */
struct NodeSnapshot
{
    int node = 0;
    bool live = true;
    bool wasDrained = false;        ///< drained at some point so far
    std::int64_t queueDepth = 0;    ///< instantaneous admission queue
    std::int64_t outstanding = 0;   ///< injected - completed
    std::int64_t dispatched = 0;    ///< in the window
    std::int64_t completed = 0;     ///< in the window
    std::int64_t misses = 0;        ///< in the window
    std::int64_t shed = 0;          ///< in the window
};

/**
 * Windowed mid-run observation of the cluster, pollable between
 * events (ClusterSimulator::snapshot()). Rates cover the window since
 * the previous snapshot; queue depths are instantaneous. This one
 * struct feeds the controller, the --json reporters, and the
 * controller's JSONL log.
 */
struct MetricsSnapshot
{
    double atSeconds = 0.0;     ///< sim time of this snapshot
    double windowSeconds = 0.0; ///< since the previous snapshot

    std::int64_t arrivals = 0;  ///< emitted in the window
    std::int64_t completions = 0;
    std::int64_t shed = 0;
    double arrivalRatePerSec = 0.0;
    double completionRatePerSec = 0.0;

    /**
     * Chaos-layer counters in the window (coe/faults.h), so the
     * controller can react to failure, not just load. All zero on
     * fault-free runs.
     */
    std::int64_t lost = 0;
    std::int64_t retried = 0;
    std::int64_t hedged = 0;
    std::int64_t hedgeWon = 0;

    int liveNodes = 0;
    double meanQueueDepthPerLiveNode = 0.0; ///< instantaneous
    double nodeSecondsLive = 0.0; ///< cumulative live node-seconds

    std::vector<NodeSnapshot> nodes;
    /** Windowed dispatch hits per expert id (popularity signal). */
    std::vector<std::int64_t> expertHits;

    /**
     * Per-link windowed utilization when the fabric is enabled
     * (empty otherwise): busy ticks in the window / window ticks.
     */
    struct LinkSnapshot
    {
        std::string from; ///< node label ("ep3" / "sw0")
        std::string to;
        double utilization = 0.0;
    };
    std::vector<LinkSnapshot> links;
};

struct ClusterNodeMetrics
{
    int node = 0;
    bool drained = false;       ///< was drained at some point
    std::int64_t dispatched = 0; ///< requests routed to this node
    std::int64_t redispatched = 0; ///< drained away before forming
    std::int64_t completed = 0;
    std::int64_t batches = 0;
    std::int64_t misses = 0;
    std::int64_t shed = 0; ///< refused by this node's SLO admission
    double missRate = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    double meanQueueDepth = 0.0;
    double maxQueueDepth = 0.0;
    int placedExperts = 0;
    double placedBytes = 0.0;       ///< expert bytes placed on the node
    std::int64_t peakResidentBytes = 0; ///< HBM high-water mark
};

struct ClusterResult
{
    bool oom = false; ///< some node's placed experts exceed its DDR
    StreamMetrics stream; ///< cluster-wide (exact merged distributions)
    double missRate = 0.0;
    std::vector<ClusterNodeMetrics> nodes;

    /** max / mean completed requests per node (1.0 = perfectly even). */
    double loadImbalance = 1.0;

    int expertReplicas = 0;       ///< total placed (expert, node) pairs
    double placedBytesTotal = 0.0; ///< HBM the placement asks for
    std::int64_t peakResidentBytesTotal = 0; ///< measured HBM high-water
    std::int64_t redispatched = 0; ///< requests moved by drains

    /**
     * Provisioning cost: the time-integral of the live node count
     * over the run (what an autoscaler is minimizing). Without
     * drains every node is live for the whole makespan.
     */
    double nodeSecondsLive = 0.0;
    double nodeHours = 0.0;

    /** Control-plane accounting (0 under ControllerPolicy::Static). */
    std::int64_t controllerTicks = 0;
    std::int64_t controllerActions = 0;

    /** Chaos-layer accounting (0 without a fault schedule). */
    std::int64_t faultsInjected = 0;
    std::int64_t crashes = 0;

    /** Interconnect accounting (all 0 without the fabric). */
    std::int64_t networkMessages = 0;
    std::int64_t networkFlits = 0;
    std::int64_t networkCreditStalls = 0;
    double networkMaxLinkUtilization = 0.0;  ///< busy / makespan
    double networkMeanLinkUtilization = 0.0;
};

class ClusterSimulator
{
  public:
    /** Validates the config (FatalError on contradictions). */
    explicit ClusterSimulator(ClusterConfig cfg);
    ~ClusterSimulator();

    /**
     * The one-call form: begin(), start the controller when the
     * config asks for one, run the queue dry, finish(). Re-runnable;
     * each call stands up a fresh run.
     */
    ClusterResult run();

    // ---- mid-run surface (what the controller and tests drive) ----

    /**
     * Stand the cluster up without running it: placement, engines,
     * scripted actions, and the workload are live on eventQueue().
     * @return false when the placement is infeasible (OOM) — the run
     * is not active and finish() must not be called.
     */
    bool begin();

    /** Drain the event queue and assemble the ClusterResult. */
    ClusterResult finish();

    /** The active run's queue (begin() first). Tests step this. */
    sim::EventQueue &eventQueue();

    /**
     * Schedule a control-plane callback @p delta ticks from now. With
     * threads == 1 this is exactly eventQueue().scheduleIn(); with
     * threads > 1 the callback goes onto the run's sync agenda, whose
     * entries define the parallel window barriers and fire with every
     * shard advanced to the same tick — the only context where a
     * callback may safely observe or actuate cluster state. The
     * controller's tick re-arm goes through here.
     */
    void scheduleControlIn(sim::Tick delta, std::function<void()> cb,
                           const char *name = "");

    /** Windowed observation; advances the snapshot window. */
    MetricsSnapshot snapshot();

    /**
     * Runtime actuators. Each returns true when it changed state and
     * false for a no-op (already drained, already at that replica
     * count, infeasible target); out-of-range ids are FatalErrors.
     * drainNode() refuses to drain the last live node; migrate /
     * setReplication refuse targets whose DDR the move would exceed.
     */
    bool drainNode(int node);
    bool rejoinNode(int node);
    bool migrateExpert(int expert, int from, int to);
    bool setReplication(int expert, int replicas);

    /** Multiply the open-loop arrival rate from now on (> 0). */
    void setRateFactor(double factor);

    // ---- chaos actuators (driven by coe::FaultInjector) -----------
    // Each must run at a control barrier (threads > 1) or inside an
    // event (threads == 1), exactly like the actuators above.

    /**
     * Crash @p node mid-batch: unlike drainNode() the in-flight batch
     * is abandoned too, and displaced requests go through the retry
     * policy (re-dispatched with original arrival timestamps under
     * the budget) or are counted lost — nothing is silently dropped.
     * Refuses the last live node and already-down nodes.
     */
    bool crashNode(int node);
    /** Stretch @p node's DMA completions by @p factor (1.0 heals). */
    void setNodeDmaFactor(int node, double factor);
    /** Straggler: multiply @p node's prompt execution (1.0 heals). */
    void setNodeServiceFactor(int node, double factor);
    /** Dispatches to @p node fail with probability @p p (0 heals). */
    void setNodeFlakyProbability(int node, double p);
    /**
     * Stretch the serialization time of every fabric link adjacent
     * to @p node by @p factor >= 1 (1.0 heals). Requires the fabric;
     * the constructor rejects link-degrade schedules without it.
     */
    void setNodeLinkFactor(int node, double factor);

    /** Live nodes in the active run. */
    int liveNodes() const;

    /** True once the budget is emitted and every engine is drained. */
    bool idle() const;

    const ClusterConfig &config() const { return cfg_; }

    /** Current placement of the active run (mutated by actuators). */
    const ExpertPlacement &placement() const;

    const PhaseCosts &phaseCosts() const { return costs_; }

    /** Cluster-wide per-request latency samples from the last run. */
    const sim::Distribution &latencySamples() const { return latency_; }

    /** Cluster-wide counters from the last run. */
    const sim::StatSet &stats() const { return stats_; }

  private:
    struct RunState;
    friend class FaultInjector; // arms faults via scheduleControlAt

    int pickNode(int expert);
    void accrueNodeSeconds();
    void scheduleControlAt(sim::Tick when, std::function<void()> cb,
                           const char *name);
    void runParallel();

    // ---- degraded-mode policy internals (cluster.cc) -------------
    void dispatchRequest(const TrafficRequest &request);
    void handleDisplaced(EngineRequest request);
    void redispatch(EngineRequest request);
    void forwardRequest(int node, EngineRequest request);
    void deliverViaFabric(int node, EngineRequest request);
    double estimateDelaySeconds(int node) const;
    void policyTick();
    void armPolicyTick();
    void resolveHedges();

    ClusterConfig cfg_;
    /** Legacy drain sugar desugared + cfg.actions, in firing order. */
    std::vector<ScheduledAction> effectiveActions_;
    PhaseCosts costs_;
    sim::Distribution latency_{"cluster_latency"};
    sim::Distribution stalls_{"cluster_stall"};
    sim::StatSet stats_{"cluster"};
    std::unique_ptr<RunState> rs_; ///< non-null between begin/finish
    std::unique_ptr<ClusterController> controller_;
    std::unique_ptr<FaultInjector> faults_;
};

} // namespace sn40l::coe

#endif // SN40L_COE_CLUSTER_H
