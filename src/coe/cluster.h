/**
 * @file
 * Multi-node CoE serving cluster: N per-node serving stacks (each a
 * ServingEngine with its own CoeRuntime and mem::MemorySystem) on one
 * shared sim::EventQueue, fronted by a cluster router.
 *
 * The paper serves 150 experts from one 8-socket SN40L node; scaling
 * to "millions of users" means sharding the expert pool across many
 * nodes, which splits the serving problem into two pluggable
 * decisions, the regime CoServe (arXiv:2503.02354) studies:
 *
 *  - expert *placement*: which nodes may serve which experts. Full
 *    replication burns HBM on every node but lets any node serve any
 *    prompt; balanced partition minimizes footprint but funnels each
 *    expert's traffic to a single node; Zipf-aware replicate-hot /
 *    partition-cold replicates the head of the popularity curve and
 *    shards the tail.
 *
 *  - request *dispatch*: which hosting node a prompt goes to.
 *    Round-robin, least-outstanding, or expert-affinity via
 *    consistent hashing (an expert sticks to its "home" node until
 *    the node set changes).
 *
 * Scenario diversity on top: a node can drain mid-run (its queued
 * requests re-dispatch to surviving nodes, losing nothing) and rejoin
 * cold (its resident set flushed, re-warmed from live traffic),
 * per-node heterogeneous configs, and a diurnal sinusoidal ramp on
 * the open-loop arrival rate.
 *
 * A 1-node cluster with full replication reproduces the single-node
 * ServingSimulator EventDriven metrics bit-identically — the cluster
 * is the same engine behind a dispatch layer, not a second simulator.
 */

#ifndef SN40L_COE_CLUSTER_H
#define SN40L_COE_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "coe/serving.h"

namespace sn40l::coe {

/** How the cluster router picks a hosting node for a prompt. */
enum class DispatchPolicy {
    RoundRobin,       ///< cycle through the expert's eligible hosts
    LeastOutstanding, ///< eligible host with fewest in-flight requests
    ExpertAffinity,   ///< consistent hashing: stable expert -> node map
};

const char *dispatchPolicyName(DispatchPolicy policy);
DispatchPolicy dispatchPolicyFromName(const std::string &name);

/** Which nodes hold (and may serve) each expert. */
enum class PlacementPolicy {
    FullReplication,          ///< every expert on every node
    ReplicateHotPartitionCold, ///< hot head replicated, cold tail sharded
    BalancedPartition,        ///< every expert on exactly one node
};

const char *placementPolicyName(PlacementPolicy policy);
PlacementPolicy placementPolicyFromName(const std::string &name);

/** Per-node overrides for heterogeneous clusters (0 keeps the base). */
struct ClusterNodeOverride
{
    int node = -1;
    int dmaEngines = 0;
    std::int64_t expertRegionBytes = 0;
};

struct ClusterConfig
{
    /**
     * The per-node serving stack (platform, experts, batch, scheduler,
     * prefetch, arrivals). mode is forced to EventDriven; streamRequests,
     * routing, and the arrival process are cluster-wide.
     */
    ServingConfig node;

    int nodes = 1;
    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    PlacementPolicy placement = PlacementPolicy::FullReplication;

    /**
     * Experts replicated on every node under ReplicateHotPartitionCold
     * (the head of the popularity order); 0 derives numExperts / 10
     * (at least 1).
     */
    int hotExperts = 0;

    /**
     * Drain scenario: at drainAtSeconds (> 0 enables) drainNode stops
     * accepting dispatches and its queued requests re-dispatch to the
     * surviving nodes; at rejoinAtSeconds (> drainAt, 0 = never) it
     * rejoins cold (resident set flushed). Requires nodes >= 2.
     */
    double drainAtSeconds = 0.0;
    double rejoinAtSeconds = 0.0;
    int drainNode = 0;

    /**
     * Diurnal ramp (Poisson arrivals only): the instantaneous rate is
     * arrivalRatePerSec * (1 + amplitude * sin(2*pi*t / period)).
     * amplitude in [0, 1); 0 disables.
     */
    double diurnalAmplitude = 0.0;
    double diurnalPeriodSeconds = 86400.0;

    std::vector<ClusterNodeOverride> overrides;
};

/** Static expert-to-node placement map. */
struct ExpertPlacement
{
    std::vector<std::vector<int>> hostsOfExpert; ///< expert -> node ids
    std::vector<std::vector<int>> expertsOfNode; ///< node -> expert ids
    int replicas = 0; ///< total (expert, node) pairs
};

/**
 * Build the placement for @p experts experts over @p nodes nodes.
 * Expert ids are popularity order (Zipf routing makes id 0 hottest);
 * @p hot_experts only matters for ReplicateHotPartitionCold.
 */
ExpertPlacement makePlacement(PlacementPolicy policy, int experts,
                              int nodes, int hot_experts);

struct ClusterNodeMetrics
{
    int node = 0;
    bool drained = false;       ///< was drained at some point
    std::int64_t dispatched = 0; ///< requests routed to this node
    std::int64_t redispatched = 0; ///< drained away before forming
    std::int64_t completed = 0;
    std::int64_t batches = 0;
    std::int64_t misses = 0;
    std::int64_t shed = 0; ///< refused by this node's SLO admission
    double missRate = 0.0;
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    double meanQueueDepth = 0.0;
    double maxQueueDepth = 0.0;
    int placedExperts = 0;
    double placedBytes = 0.0;       ///< expert bytes placed on the node
    std::int64_t peakResidentBytes = 0; ///< HBM high-water mark
};

struct ClusterResult
{
    bool oom = false; ///< some node's placed experts exceed its DDR
    StreamMetrics stream; ///< cluster-wide (exact merged distributions)
    double missRate = 0.0;
    std::vector<ClusterNodeMetrics> nodes;

    /** max / mean completed requests per node (1.0 = perfectly even). */
    double loadImbalance = 1.0;

    int expertReplicas = 0;       ///< total placed (expert, node) pairs
    double placedBytesTotal = 0.0; ///< HBM the placement asks for
    std::int64_t peakResidentBytesTotal = 0; ///< measured HBM high-water
    std::int64_t redispatched = 0; ///< requests moved by the drain
};

class ClusterSimulator
{
  public:
    /** Validates the config (FatalError on contradictions). */
    explicit ClusterSimulator(ClusterConfig cfg);

    ClusterResult run();

    const PhaseCosts &phaseCosts() const { return costs_; }

    /** Cluster-wide per-request latency samples from the last run. */
    const sim::Distribution &latencySamples() const { return latency_; }

    /** Cluster-wide counters from the last run. */
    const sim::StatSet &stats() const { return stats_; }

  private:
    ClusterConfig cfg_;
    PhaseCosts costs_;
    sim::Distribution latency_{"cluster_latency"};
    sim::Distribution stalls_{"cluster_stall"};
    sim::StatSet stats_{"cluster"};
};

} // namespace sn40l::coe

#endif // SN40L_COE_CLUSTER_H
