#include "coe/coe_runtime.h"

#include "sim/log.h"

namespace sn40l::coe {

CoeRuntime::CoeRuntime(const ExpertZoo &zoo, std::int64_t hbm_region_bytes)
    : zoo_(zoo), region_(hbm_region_bytes, /*alignment=*/1),
      stats_("coe_runtime")
{
    if (static_cast<double>(hbm_region_bytes) < zoo.maxExpertBytes())
        sim::fatal("CoeRuntime: HBM region smaller than largest expert");
}

bool
CoeRuntime::resident(int expert_id) const
{
    return residentOffsets_.count(expert_id) > 0;
}

void
CoeRuntime::evictLru(Activation &activation)
{
    if (lru_.empty())
        sim::panic("CoeRuntime: nothing left to evict");
    int victim = lru_.back();
    lru_.pop_back();

    auto it = residentOffsets_.find(victim);
    region_.free(it->second.second);
    residentOffsets_.erase(it);

    const ExpertModel &e = zoo_.expert(victim);
    ++activation.evictions;
    stats_.inc("evictions");
    if (e.mutableBytes > 0.0) {
        activation.bytesToWriteBack += e.mutableBytes;
        stats_.inc("writeback_bytes", e.mutableBytes);
    } else {
        // Read-only weights: skip the copy-back (Section V-B).
        stats_.inc("copyback_skipped");
    }
}

Activation
CoeRuntime::activate(int expert_id)
{
    Activation activation;
    const ExpertModel &expert = zoo_.expert(expert_id);

    auto it = residentOffsets_.find(expert_id);
    if (it != residentOffsets_.end()) {
        // Hit: refresh LRU position.
        lru_.splice(lru_.begin(), lru_, it->second.first);
        activation.hit = true;
        stats_.inc("hits");
        return activation;
    }

    stats_.inc("misses");
    std::int64_t need = static_cast<std::int64_t>(expert.bytes);

    std::optional<std::int64_t> offset;
    for (;;) {
        offset = region_.allocate(need);
        if (offset)
            break;
        evictLru(activation);
    }

    lru_.push_front(expert_id);
    residentOffsets_[expert_id] = {lru_.begin(), *offset};
    activation.bytesToLoad = expert.bytes;
    stats_.inc("load_bytes", expert.bytes);
    return activation;
}

} // namespace sn40l::coe
