#include "coe/coe_runtime.h"

#include "sim/log.h"

namespace sn40l::coe {

CoeRuntime::CoeRuntime(const ExpertZoo &zoo, std::int64_t hbm_region_bytes)
    : zoo_(zoo), region_(hbm_region_bytes, /*alignment=*/1),
      stats_("coe_runtime")
{
    if (static_cast<double>(hbm_region_bytes) < zoo.maxExpertBytes())
        sim::fatal("CoeRuntime: HBM region smaller than largest expert");
}

bool
CoeRuntime::resident(int expert_id) const
{
    return resident_.count(expert_id) > 0;
}

bool
CoeRuntime::loaded(int expert_id) const
{
    auto it = resident_.find(expert_id);
    return it != resident_.end() && it->second.state == ExpertState::Loaded;
}

bool
CoeRuntime::inFlight(int expert_id) const
{
    auto it = resident_.find(expert_id);
    return it != resident_.end() && it->second.state != ExpertState::Loaded;
}

CoeRuntime::Resident &
CoeRuntime::entry(int expert_id, const char *why)
{
    auto it = resident_.find(expert_id);
    if (it == resident_.end())
        sim::panic(std::string("CoeRuntime: ") + why +
                   " on non-resident expert " + std::to_string(expert_id));
    return it->second;
}

ExpertState
CoeRuntime::state(int expert_id) const
{
    return const_cast<CoeRuntime *>(this)->entry(expert_id, "state").state;
}

int
CoeRuntime::pinCount(int expert_id) const
{
    return const_cast<CoeRuntime *>(this)->entry(expert_id, "pinCount").pins;
}

void
CoeRuntime::pin(int expert_id)
{
    ++entry(expert_id, "pin").pins;
}

void
CoeRuntime::unpin(int expert_id)
{
    Resident &r = entry(expert_id, "unpin");
    if (r.pins <= 0)
        sim::panic("CoeRuntime: unpin of unpinned expert " +
                   std::to_string(expert_id));
    --r.pins;
}

void
CoeRuntime::dropEntry(std::map<int, Resident>::iterator it)
{
    region_.free(it->second.offset);
    lru_.erase(it->second.lruIt);
    resident_.erase(it);
}

std::int64_t
CoeRuntime::allocateEvicting(std::int64_t need, int &evictions,
                             double &bytes_to_write_back)
{
    for (;;) {
        if (auto offset = region_.allocate(need))
            return *offset;

        // Walk victims least-recently-used first. Pinned and Loading
        // experts are untouchable; prefetch reservations are asked to
        // cancel; Loaded experts evict.
        bool freed = false;
        for (auto lru_it = lru_.rbegin(); lru_it != lru_.rend(); ++lru_it) {
            auto it = resident_.find(*lru_it);
            Resident &r = it->second;
            if (r.pins > 0 || r.state == ExpertState::Loading)
                continue;
            if (r.state == ExpertState::PrefetchReserved) {
                if (prefetchCancelHook_ && !prefetchCancelHook_(it->first)) {
                    // The speculation already left the DMA queue; it
                    // will land, so it is as untouchable as a demand
                    // load.
                    r.state = ExpertState::Loading;
                    continue;
                }
                stats_.inc("prefetch_cancels");
                dropEntry(it);
                freed = true;
                break;
            }
            const ExpertModel &e = zoo_.expert(it->first);
            ++evictions;
            stats_.inc("evictions");
            if (e.mutableBytes > 0.0) {
                bytes_to_write_back += e.mutableBytes;
                stats_.inc("writeback_bytes", e.mutableBytes);
            } else {
                // Read-only weights: skip the copy-back (Section V-B).
                stats_.inc("copyback_skipped");
            }
            if (evictionHook_)
                evictionHook_(it->first);
            dropEntry(it);
            freed = true;
            break;
        }
        if (!freed)
            sim::fatal("CoeRuntime: expert region exhausted by pinned and "
                       "in-flight experts (region too small for the "
                       "concurrent working set)");
    }
}

Activation
CoeRuntime::activate(int expert_id)
{
    Activation activation;
    const ExpertModel &expert = zoo_.expert(expert_id);

    auto it = resident_.find(expert_id);
    if (it != resident_.end()) {
        if (it->second.state != ExpertState::Loaded)
            sim::panic("CoeRuntime: synchronous activate() on expert " +
                       std::to_string(expert_id) +
                       " with a transfer in flight (mixing the sync and "
                       "async protocols)");
        // Hit: refresh LRU position.
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        activation.hit = true;
        stats_.inc("hits");
        return activation;
    }

    stats_.inc("misses");
    std::int64_t need = static_cast<std::int64_t>(expert.bytes);
    std::int64_t offset = allocateEvicting(need, activation.evictions,
                                           activation.bytesToWriteBack);

    lru_.push_front(expert_id);
    Resident r;
    r.lruIt = lru_.begin();
    r.offset = offset;
    r.state = ExpertState::Loaded;
    resident_[expert_id] = r;
    activation.bytesToLoad = expert.bytes;
    stats_.inc("load_bytes", expert.bytes);
    return activation;
}

AsyncActivation
CoeRuntime::activateAsync(int expert_id)
{
    AsyncActivation activation;
    const ExpertModel &expert = zoo_.expert(expert_id);

    auto it = resident_.find(expert_id);
    if (it != resident_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        activation.hbmOffset = it->second.offset;
        if (it->second.state == ExpertState::Loaded) {
            activation.hit = true;
            stats_.inc("hits");
        } else {
            // A demand load or speculation already owns the slot; the
            // caller waits on (and may promote) that transfer.
            activation.pending = true;
            stats_.inc("pending_hits");
        }
        return activation;
    }

    stats_.inc("misses");
    std::int64_t need = static_cast<std::int64_t>(expert.bytes);
    std::int64_t offset = allocateEvicting(need, activation.evictions,
                                           activation.bytesToWriteBack);

    lru_.push_front(expert_id);
    Resident r;
    r.lruIt = lru_.begin();
    r.offset = offset;
    r.state = ExpertState::Loading;
    resident_[expert_id] = r;
    activation.bytesToLoad = expert.bytes;
    activation.hbmOffset = offset;
    stats_.inc("load_bytes", expert.bytes);
    return activation;
}

std::optional<AsyncActivation>
CoeRuntime::beginPrefetch(int expert_id)
{
    if (resident(expert_id))
        return std::nullopt;

    const ExpertModel &expert = zoo_.expert(expert_id);
    std::int64_t need = static_cast<std::int64_t>(expert.bytes);
    // Opportunistic: free space only, no eviction on speculation.
    auto offset = region_.allocate(need);
    if (!offset)
        return std::nullopt;

    // Speculations enter at the cold end of the LRU so they are the
    // first reclaimed under pressure until a batch actually uses them.
    lru_.push_back(expert_id);
    Resident r;
    r.lruIt = std::prev(lru_.end());
    r.offset = *offset;
    r.state = ExpertState::PrefetchReserved;
    resident_[expert_id] = r;

    AsyncActivation activation;
    activation.pending = true;
    activation.bytesToLoad = expert.bytes;
    activation.hbmOffset = *offset;
    stats_.inc("prefetch_reservations");
    stats_.inc("prefetch_bytes", expert.bytes);
    return activation;
}

void
CoeRuntime::completeLoad(int expert_id)
{
    Resident &r = entry(expert_id, "completeLoad");
    if (r.state == ExpertState::Loaded)
        sim::panic("CoeRuntime: completeLoad on already-loaded expert " +
                   std::to_string(expert_id));
    r.state = ExpertState::Loaded;
    stats_.inc("loads_completed");
}

int
CoeRuntime::flushUnpinned()
{
    int dropped = 0;
    for (auto it = resident_.begin(); it != resident_.end();) {
        auto cur = it++;
        if (cur->second.state != ExpertState::Loaded ||
            cur->second.pins > 0)
            continue;
        if (evictionHook_)
            evictionHook_(cur->first);
        stats_.inc("flushes");
        dropEntry(cur);
        ++dropped;
    }
    return dropped;
}

void
CoeRuntime::cancelPrefetch(int expert_id)
{
    auto it = resident_.find(expert_id);
    if (it == resident_.end())
        sim::panic("CoeRuntime: cancelPrefetch on non-resident expert " +
                   std::to_string(expert_id));
    if (it->second.state != ExpertState::PrefetchReserved ||
        it->second.pins > 0)
        sim::panic("CoeRuntime: cancelPrefetch on pinned or non-speculative "
                   "expert " + std::to_string(expert_id));
    stats_.inc("prefetch_cancels");
    dropEntry(it);
}

} // namespace sn40l::coe
