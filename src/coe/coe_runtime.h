/**
 * @file
 * The CoE runtime (Section V-B): a dynamic-linker-style manager that
 * keeps as many experts resident in HBM as fit, activates experts on
 * demand by copying their memory segments from the backing tier, and
 * evicts with LRU. Read-only weight segments skip the copy-back on
 * eviction.
 */

#ifndef SN40L_COE_COE_RUNTIME_H
#define SN40L_COE_COE_RUNTIME_H

#include <functional>
#include <list>
#include <map>

#include "coe/expert.h"
#include "mem/free_list_allocator.h"
#include "sim/stats.h"

namespace sn40l::coe {

/**
 * Result of an activation decision (the transfer itself is charged by
 * the caller through its platform's copy channel).
 */
struct Activation
{
    bool hit = false;
    double bytesToLoad = 0.0;    ///< backing-tier -> HBM
    double bytesToWriteBack = 0.0; ///< evicted mutable state
    int evictions = 0;
};

class CoeRuntime
{
  public:
    /**
     * @param hbm_region_bytes HBM set aside for expert segments
     *        (the "Expert Region" of Fig 9).
     */
    CoeRuntime(const ExpertZoo &zoo, std::int64_t hbm_region_bytes);

    /**
     * Request @p expert_id. On a hit the expert is refreshed in LRU
     * order and nothing moves. On a miss, LRU experts are evicted
     * until the new expert's segments fit, and the expert loads from
     * the backing tier.
     *
     * Throws FatalError if the expert can never fit (larger than the
     * whole region).
     */
    Activation activate(int expert_id);

    bool resident(int expert_id) const;
    int residentCount() const
    {
        return static_cast<int>(lru_.size());
    }

    std::int64_t regionBytes() const { return region_.capacity(); }

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    void evictLru(Activation &activation);

    const ExpertZoo &zoo_;
    mem::FreeListAllocator region_;
    /** Most-recently-used at front. */
    std::list<int> lru_;
    std::map<int, std::pair<std::list<int>::iterator, std::int64_t>>
        residentOffsets_; ///< expert -> (lru iterator, region offset)
    sim::StatSet stats_;
};

} // namespace sn40l::coe

#endif // SN40L_COE_COE_RUNTIME_H
