/**
 * @file
 * The CoE runtime (Section V-B): a dynamic-linker-style manager that
 * keeps as many experts resident in HBM as fit, activates experts on
 * demand by copying their memory segments from the backing tier, and
 * evicts with LRU. Read-only weight segments skip the copy-back on
 * eviction.
 *
 * Two protocols share the LRU state:
 *
 *  - Synchronous activate(): the legacy closed-form path. The caller
 *    charges the returned byte counts through its own copy estimate.
 *
 *  - Asynchronous activateAsync() / beginPrefetch() / completeLoad():
 *    the event-driven path. An activation reserves region space and
 *    hands back the destination offset; the caller streams the bytes
 *    through mem::MemorySystem and reports completion. Experts that
 *    are loading or pinned by an executing batch are never evicted;
 *    speculative prefetch reservations are cancelled under eviction
 *    pressure (via the cancel hook) before any loaded expert is
 *    dropped.
 */

#ifndef SN40L_COE_COE_RUNTIME_H
#define SN40L_COE_COE_RUNTIME_H

#include <functional>
#include <list>
#include <map>
#include <optional>

#include "coe/expert.h"
#include "mem/free_list_allocator.h"
#include "sim/stats.h"

namespace sn40l::coe {

/**
 * Result of a synchronous activation decision (the transfer itself is
 * charged by the caller through its platform's copy channel).
 */
struct Activation
{
    bool hit = false;
    double bytesToLoad = 0.0;    ///< backing-tier -> HBM
    double bytesToWriteBack = 0.0; ///< evicted mutable state
    int evictions = 0;
};

/** Lifecycle of a resident expert on the async protocol. */
enum class ExpertState {
    Loaded,           ///< segments fully in HBM, runnable
    Loading,          ///< demand DMA in flight; pinned against eviction
    PrefetchReserved, ///< speculative reservation; cancellable
};

/** Result of an asynchronous activation or prefetch reservation. */
struct AsyncActivation
{
    bool hit = false;     ///< already Loaded; nothing to stream
    bool pending = false; ///< a transfer is already reserved/in flight
    double bytesToLoad = 0.0;
    double bytesToWriteBack = 0.0; ///< evicted mutable state
    int evictions = 0;
    std::int64_t hbmOffset = -1; ///< destination in the expert region
};

class CoeRuntime
{
  public:
    /**
     * @param hbm_region_bytes HBM set aside for expert segments
     *        (the "Expert Region" of Fig 9).
     */
    CoeRuntime(const ExpertZoo &zoo, std::int64_t hbm_region_bytes);

    // ----------------------------------------- synchronous protocol

    /**
     * Request @p expert_id. On a hit the expert is refreshed in LRU
     * order and nothing moves. On a miss, LRU experts are evicted
     * until the new expert's segments fit, and the expert loads from
     * the backing tier.
     *
     * Throws FatalError if the expert can never fit (larger than the
     * whole region).
     */
    Activation activate(int expert_id);

    // ---------------------------------------- asynchronous protocol

    /**
     * Demand-activate @p expert_id without blocking. Outcomes:
     *  - hit: Loaded already; refresh LRU and run.
     *  - pending: a transfer (demand or speculative) already owns the
     *    region slot; wait for its completion (promote it if queued).
     *  - otherwise: space was reserved (evicting unpinned experts,
     *    cancelling prefetch reservations under pressure) and the
     *    expert is now Loading. Stream bytesToLoad + bytesToWriteBack
     *    and call completeLoad() when the DMA finishes.
     *
     * Throws FatalError if space cannot be freed because everything
     * else is pinned or loading.
     */
    AsyncActivation activateAsync(int expert_id);

    /**
     * Reserve space for a speculative DDR->HBM prefetch. Prefetch is
     * opportunistic: it never evicts, so this returns std::nullopt
     * when the expert is already resident or no free block fits.
     */
    std::optional<AsyncActivation> beginPrefetch(int expert_id);

    /** The DMA for @p expert_id landed: mark it runnable. */
    void completeLoad(int expert_id);

    /**
     * Drop an unissued prefetch reservation and free its bytes.
     * Panics unless the expert is PrefetchReserved and unpinned.
     */
    void cancelPrefetch(int expert_id);

    /**
     * Drop every Loaded, unpinned expert (a cold restart: a cluster
     * node rejoining after a drain re-warms from live traffic).
     * Loading and PrefetchReserved entries survive — their DMA will
     * land — as do pinned experts. Fires the eviction hook per drop.
     * @return the number of experts flushed.
     */
    int flushUnpinned();

    /**
     * Pin @p expert_id for an executing batch: pinned experts are
     * never evicted, whatever their LRU position. Pins nest.
     */
    void pin(int expert_id);
    void unpin(int expert_id);

    /**
     * Called when eviction pressure wants to reclaim a prefetch
     * reservation: must try to cancel the underlying transfer and
     * return true on success (the reservation is then dropped) or
     * false if the DMA already issued (the expert transitions to
     * Loading and survives). Without a hook, reservations are
     * reclaimed unconditionally.
     */
    void setPrefetchCancelHook(std::function<bool(int)> hook)
    {
        prefetchCancelHook_ = std::move(hook);
    }

    /** Observe LRU evictions of Loaded experts (bookkeeping hook). */
    void setEvictionHook(std::function<void(int)> hook)
    {
        evictionHook_ = std::move(hook);
    }

    bool resident(int expert_id) const;
    /** Resident and fully loaded (state Loaded). */
    bool loaded(int expert_id) const;
    /** Resident with a transfer reserved or in flight. */
    bool inFlight(int expert_id) const;
    ExpertState state(int expert_id) const; ///< panics if not resident
    int pinCount(int expert_id) const;

    int residentCount() const
    {
        return static_cast<int>(lru_.size());
    }

    std::int64_t regionBytes() const { return region_.capacity(); }
    std::int64_t freeRegionBytes() const { return region_.freeBytes(); }

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    struct Resident
    {
        std::list<int>::iterator lruIt;
        std::int64_t offset = 0;
        ExpertState state = ExpertState::Loaded;
        int pins = 0;
    };

    /** Evict (or cancel) entries until @p need bytes allocate. */
    std::int64_t allocateEvicting(std::int64_t need, int &evictions,
                                  double &bytes_to_write_back);
    void dropEntry(std::map<int, Resident>::iterator it);
    Resident &entry(int expert_id, const char *why);

    const ExpertZoo &zoo_;
    mem::FreeListAllocator region_;
    /** Most-recently-used at front. */
    std::list<int> lru_;
    std::map<int, Resident> resident_;
    std::function<bool(int)> prefetchCancelHook_;
    std::function<void(int)> evictionHook_;
    sim::StatSet stats_;
};

} // namespace sn40l::coe

#endif // SN40L_COE_COE_RUNTIME_H
