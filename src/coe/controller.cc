#include "coe/controller.h"

#include <algorithm>
#include <fstream>
#include <utility>
#include <vector>

#include "coe/cluster.h"
#include "coe/metrics_io.h"
#include "sim/log.h"
#include "sim/ticks.h"
#include "util/json.h"

namespace sn40l::coe {

const char *
controllerPolicyName(ControllerPolicy policy)
{
    switch (policy) {
      case ControllerPolicy::Static: return "static";
      case ControllerPolicy::ReactiveThreshold: return "reactive";
      case ControllerPolicy::TargetUtilization: return "target-util";
    }
    sim::panic("controllerPolicyName: unknown policy");
}

ControllerPolicy
controllerPolicyFromName(const std::string &name)
{
    if (name == "static" || name == "none")
        return ControllerPolicy::Static;
    if (name == "reactive" || name == "reactive-threshold")
        return ControllerPolicy::ReactiveThreshold;
    if (name == "target-util" || name == "target-utilization")
        return ControllerPolicy::TargetUtilization;
    sim::fatal("unknown controller policy '" + name +
               "' (expected static, reactive, or target-util)");
}

void
validateControllerConfig(const ControllerConfig &cfg, int nodes)
{
    if (cfg.policy == ControllerPolicy::Static)
        return; // the remaining knobs are inert
    if (cfg.tickSeconds <= 0.0)
        sim::fatal("ControllerConfig: non-positive tick");
    if (cfg.minNodes < 1 || cfg.minNodes > nodes)
        sim::fatal("ControllerConfig: minNodes outside [1, nodes]");
    if (cfg.maxNodes != 0 &&
        (cfg.maxNodes < cfg.minNodes || cfg.maxNodes > nodes))
        sim::fatal("ControllerConfig: maxNodes outside [minNodes, "
                   "nodes]");
    if (cfg.scaleDownQueueDepth < 0.0 ||
        cfg.scaleUpQueueDepth <= cfg.scaleDownQueueDepth)
        sim::fatal("ControllerConfig: scale-up depth must exceed the "
                   "non-negative scale-down depth");
    if (cfg.targetUtilization <= 0.0 || cfg.targetUtilization > 1.0)
        sim::fatal("ControllerConfig: target utilization outside "
                   "(0, 1]");
    if (cfg.cooldownTicks < 0)
        sim::fatal("ControllerConfig: negative cooldown");
    if (cfg.hotExpertTrack < 0)
        sim::fatal("ControllerConfig: negative hot-expert track count");
}

ClusterController::ClusterController(ClusterSimulator &cluster,
                                     ControllerConfig cfg)
    : cluster_(cluster), cfg_(std::move(cfg))
{
    const ClusterConfig &cc = cluster_.config();
    maxNodes_ = cfg_.maxNodes > 0 ? cfg_.maxNodes : cc.nodes;

    // Model-based capacity estimate for TargetUtilization: a batch
    // occupies the node for roughly router + batch * per-request
    // execution, so the sustainable per-node rate is batch over that
    // (switch stalls make the real rate lower; targetUtilization < 1
    // is the headroom for them).
    const PhaseCosts &costs = cluster_.phaseCosts();
    double perRequest = costs.prefillSeconds +
        static_cast<double>(cc.node.outputTokens) *
            costs.decodeSecondsPerToken;
    double batchSeconds = costs.routerSeconds +
        static_cast<double>(cc.node.batch) * perRequest;
    serviceRatePerNode_ = batchSeconds > 0.0
        ? static_cast<double>(cc.node.batch) / batchSeconds
        : 0.0;
}

void
ClusterController::start()
{
    const ClusterConfig &cc = cluster_.config();
    if (cfg_.hotExpertTrack > 0) {
        const ExpertPlacement &p = cluster_.placement();
        baselineReplicas_.resize(p.hostsOfExpert.size());
        for (std::size_t e = 0; e < p.hostsOfExpert.size(); ++e)
            baselineReplicas_[e] =
                static_cast<int>(p.hostsOfExpert[e].size());
    }
    // Start at the floor and earn capacity from the metrics: park the
    // highest-id nodes down to minNodes before any traffic arrives.
    for (int n = cc.nodes - 1;
         n >= 0 && cluster_.liveNodes() > cfg_.minNodes; --n)
        cluster_.drainNode(n);
    scheduleTick();
}

void
ClusterController::scheduleTick()
{
    // scheduleControlIn lands on the shared queue at threads==1
    // (bit-identical to the historical direct scheduleIn) and on the
    // parallel run's sync agenda otherwise, so a tick always fires at
    // a window barrier where snapshot/actuate are safe.
    cluster_.scheduleControlIn(
        sim::fromSeconds(cfg_.tickSeconds), [this]() { tick(); },
        "cluster.controller_tick");
}

void
ClusterController::tick()
{
    ++ticks_;
    MetricsSnapshot snap = cluster_.snapshot();

    std::string action = "none";
    if (scalePerSnapshot(snap))
        action = cluster_.liveNodes() > snap.liveNodes ? "scale_up"
                                                       : "scale_down";
    int hot = trackHotExperts(snap);
    if (hot > 0 && action == "none")
        action = "re_replicate";
    if (!cfg_.logPath.empty())
        logTick(snap, action);

    // Keep ticking until the cluster is fully drained; the tick event
    // is what keeps the queue alive past the workload, so stopping
    // here is what lets the run end.
    if (!cluster_.idle())
        scheduleTick();
}

bool
ClusterController::scalePerSnapshot(const MetricsSnapshot &snap)
{
    int live = snap.liveNodes;
    bool wantUp = false;
    bool wantDown = false;
    if (cfg_.policy == ControllerPolicy::ReactiveThreshold) {
        // Scale up on queue pressure, any shed in the window, or any
        // chaos-layer distress (lost or retried requests mean a node
        // failed — add capacity, don't wait for the queues to show
        // it); scale down only once the queues are near-empty. The
        // chaos counters are zero on fault-free runs, so this changes
        // nothing for them.
        wantUp = snap.meanQueueDepthPerLiveNode >
                cfg_.scaleUpQueueDepth ||
            snap.shed > 0 || snap.lost > 0 || snap.retried > 0;
        wantDown = !wantUp &&
            snap.meanQueueDepthPerLiveNode < cfg_.scaleDownQueueDepth;
    } else { // TargetUtilization
        double capacity =
            serviceRatePerNode_ * static_cast<double>(live);
        double util = capacity > 0.0
            ? snap.arrivalRatePerSec / capacity
            : 0.0;
        wantUp = util > cfg_.targetUtilization || snap.shed > 0 ||
            snap.lost > 0 || snap.retried > 0;
        if (!wantUp && live > 1) {
            // Drop a node only if the survivors would still run with
            // 10% headroom under the target and queues are calm.
            double shrunk = snap.arrivalRatePerSec /
                (serviceRatePerNode_ * static_cast<double>(live - 1));
            wantDown = shrunk < cfg_.targetUtilization * 0.9 &&
                snap.meanQueueDepthPerLiveNode <
                    cfg_.scaleUpQueueDepth;
        }
    }

    const int nodes = cluster_.config().nodes;
    if (wantUp && live < maxNodes_) {
        // Scale-up is never cooldown-gated: under-provisioning hurts
        // the SLO now. Rejoin the lowest-id parked node.
        for (int n = 0; n < nodes; ++n) {
            if (cluster_.rejoinNode(n)) {
                ++actions_;
                lastScaleTick_ = ticks_;
                return true;
            }
        }
        return false;
    }
    if (wantDown && live > cfg_.minNodes &&
        ticks_ - lastScaleTick_ >= cfg_.cooldownTicks) {
        // Park the highest-id live node; its queued work (usually
        // none, the queues are calm) re-dispatches losslessly.
        for (int n = nodes - 1; n >= 0; --n) {
            if (cluster_.drainNode(n)) {
                ++actions_;
                lastScaleTick_ = ticks_;
                return true;
            }
        }
    }
    return false;
}

int
ClusterController::trackHotExperts(const MetricsSnapshot &snap)
{
    if (cfg_.hotExpertTrack <= 0)
        return 0;

    // Top-K experts by windowed dispatch hits (hits required: an
    // idle window boosts nothing new).
    std::vector<int> order;
    order.reserve(snap.expertHits.size());
    for (std::size_t e = 0; e < snap.expertHits.size(); ++e)
        if (snap.expertHits[e] > 0)
            order.push_back(static_cast<int>(e));
    std::size_t k = std::min<std::size_t>(
        static_cast<std::size_t>(cfg_.hotExpertTrack), order.size());
    std::partial_sort(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
        order.end(), [&snap](int a, int b) {
            auto ha = snap.expertHits[static_cast<std::size_t>(a)];
            auto hb = snap.expertHits[static_cast<std::size_t>(b)];
            return ha != hb ? ha > hb : a < b; // deterministic ties
        });
    order.resize(k);

    int applied = 0;
    std::set<int> hot(order.begin(), order.end());
    // Boost the newly hot onto every live node.
    for (int e : order) {
        if (boosted_.count(e))
            continue;
        if (cluster_.setReplication(e, cluster_.liveNodes()))
            ++applied;
        boosted_.insert(e);
    }
    // Revert boosts for experts that cooled off.
    for (auto it = boosted_.begin(); it != boosted_.end();) {
        if (hot.count(*it)) {
            ++it;
            continue;
        }
        if (cluster_.setReplication(
                *it,
                baselineReplicas_[static_cast<std::size_t>(*it)]))
            ++applied;
        it = boosted_.erase(it);
    }
    actions_ += applied;
    return applied;
}

void
ClusterController::logTick(const MetricsSnapshot &snap,
                           const std::string &action)
{
    util::JsonWriter w(log_);
    w.beginObject();
    snapshotJsonFields(w, snap);
    w.field("action", action).endObject();
    log_ << '\n';
}

void
ClusterController::finish()
{
    if (cfg_.logPath.empty())
        return;
    std::ofstream out(cfg_.logPath);
    if (!out)
        sim::fatal("controller: cannot write log " + cfg_.logPath);
    out << log_.str();
    if (!out)
        sim::fatal("controller: write to " + cfg_.logPath + " failed");
}

} // namespace sn40l::coe
