/**
 * @file
 * Autoscaling control plane for the CoE serving cluster.
 *
 * PR 4/5 built all the mechanisms — drain/rejoin with zero request
 * loss, diurnal and flash-crowd RateShapes, rotated-Zipf popularity
 * drift, per-tenant shed metrics — but no policy that closes the
 * loop. ClusterController is that loop: an event on the shared
 * sim::EventQueue that fires every tickSeconds, polls the cluster's
 * windowed MetricsSnapshot, and actuates through the redesigned
 * ClusterSimulator surface (drainNode / rejoinNode / migrateExpert /
 * setReplication / setRateFactor).
 *
 *   ┌────────────── every tickSeconds ──────────────┐
 *   │  snapshot() ──► policy decides ──► actuators  │
 *   │  (windowed rates, queue depth,    (scale up/  │
 *   │   shed, per-expert hits)           down, re-  │
 *   │                                    replicate) │
 *   └───────────────────────────────────────────────┘
 *
 * Policies, pluggable like dispatch/placement already are:
 *
 *  - Static: no controller event at all. A Static "controller" adds
 *    zero events and zero state, so every pre-existing cluster golden
 *    stays bit-identical.
 *
 *  - ReactiveThreshold: scale up one node per tick while the mean
 *    queue depth per live node exceeds scaleUpQueueDepth (or anything
 *    shed in the window); scale down one node per tick — after a
 *    cooldown — while it sits below scaleDownQueueDepth. "AI and
 *    Memory Wall" (arXiv:2403.14123) motivates the objective:
 *    node-hours of HBM are the scarce resource, so park nodes the
 *    diurnal trough does not need.
 *
 *  - TargetUtilization: model-based. The per-node service rate is
 *    derived from the priced PhaseCosts (batch / batch-seconds); the
 *    controller keeps the windowed arrival rate near
 *    targetUtilization of aggregate capacity, scaling in whichever
 *    direction the estimate demands (same cooldown on scale-down).
 *
 * Either active policy can additionally track the hot expert set
 * (hotExpertTrack > 0): the top-K experts by windowed dispatch hits
 * are re-replicated onto every live node, and boosts revert when an
 * expert drops out of the set — CoServe's (arXiv:2503.02354)
 * popularity-driven placement, continuously.
 */

#ifndef SN40L_COE_CONTROLLER_H
#define SN40L_COE_CONTROLLER_H

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace sn40l::coe {

class ClusterSimulator;
struct MetricsSnapshot;

/** How (whether) the controller reacts to the snapshot stream. */
enum class ControllerPolicy {
    Static,            ///< no control loop; provisioning is fixed
    ReactiveThreshold, ///< queue-depth / shed thresholds, ±1 node per tick
    TargetUtilization, ///< model-based: hold arrival/capacity near target
};

const char *controllerPolicyName(ControllerPolicy policy);
ControllerPolicy controllerPolicyFromName(const std::string &name);

struct ControllerConfig
{
    ControllerPolicy policy = ControllerPolicy::Static;

    /** Control-loop period (seconds between snapshots). */
    double tickSeconds = 0.5;

    /**
     * Live-node bounds. An active controller parks nodes above
     * minNodes at t = 0 (so the run starts at the floor and earns
     * its way up); maxNodes 0 means every configured node.
     */
    int minNodes = 1;
    int maxNodes = 0;

    /** ReactiveThreshold: mean queue depth per live node bounds. */
    double scaleUpQueueDepth = 4.0;
    double scaleDownQueueDepth = 0.5;

    /** TargetUtilization: desired arrival-rate / capacity ratio. */
    double targetUtilization = 0.7;

    /** Ticks a scale-down must wait after any scale action. */
    int cooldownTicks = 4;

    /**
     * Re-replicate the top-K experts by windowed dispatch hits onto
     * every live node (reverting when they cool). 0 disables.
     */
    int hotExpertTrack = 0;

    /** JSONL decision log (one object per tick); empty = no log. */
    std::string logPath;
};

/** Reject contradictory controller knobs (FatalError). */
void validateControllerConfig(const ControllerConfig &cfg, int nodes);

/**
 * The control loop. Owned by ClusterSimulator::run() when the config
 * asks for an active policy; tests can also drive one by hand against
 * a begun simulator. start() parks the cluster down to minNodes and
 * schedules the first tick; the loop re-arms itself until the cluster
 * reports idle (budget emitted and every engine drained).
 */
class ClusterController
{
  public:
    ClusterController(ClusterSimulator &cluster, ControllerConfig cfg);

    /** Park to minNodes and schedule the first tick. Call once,
     *  after ClusterSimulator::begin() and before the queue runs. */
    void start();

    /** Flush the JSONL decision log (no-op without a logPath). */
    void finish();

    std::int64_t ticks() const { return ticks_; }
    /** Scale + replication actions actually applied. */
    std::int64_t actions() const { return actions_; }

  private:
    void tick();
    void scheduleTick();
    /** ±1 node against the snapshot; true when a node moved. */
    bool scalePerSnapshot(const MetricsSnapshot &snap);
    /** Re-replicate the windowed hot set; returns actions applied. */
    int trackHotExperts(const MetricsSnapshot &snap);
    void logTick(const MetricsSnapshot &snap, const std::string &action);

    ClusterSimulator &cluster_;
    ControllerConfig cfg_;
    int maxNodes_;              ///< resolved (cfg.maxNodes or all)
    double serviceRatePerNode_; ///< requests/s, from PhaseCosts
    std::int64_t ticks_ = 0;
    std::int64_t actions_ = 0;
    std::int64_t lastScaleTick_ = -1; ///< cooldown anchor
    std::set<int> boosted_;     ///< experts currently re-replicated
    std::vector<int> baselineReplicas_; ///< pre-boost replica counts
    std::ostringstream log_;
};

} // namespace sn40l::coe

#endif // SN40L_COE_CONTROLLER_H
