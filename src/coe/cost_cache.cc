#include "coe/cost_cache.h"

#include <cstdio>
#include <cstring>

namespace sn40l::coe {

namespace {

/**
 * Exact textual encoding of a double: std::to_string truncates to six
 * decimals, which would collide distinct sparsities onto one key.
 */
std::string
exactDouble(double value)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

} // namespace

CostModelCache &
CostModelCache::instance()
{
    static CostModelCache cache;
    return cache;
}

double
CostModelCache::seconds(const std::string &key,
                        const std::function<double()> &compute)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (const double *hit = lru_.find(key))
            return *hit;
    }
    // Compute outside the lock: pricing a shape can take milliseconds
    // and must not serialize sweep workers pricing different shapes.
    double value = compute();
    std::lock_guard<std::mutex> lock(mu_);
    lru_.insert(key, value);
    return value;
}

std::uint64_t
CostModelCache::hits() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.hits();
}

std::uint64_t
CostModelCache::misses() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.misses();
}

void
CostModelCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
}

std::string
workloadCostKey(const std::string &context, const models::WorkloadSpec &spec)
{
    const models::LlmConfig &m = spec.model;
    std::string key = context;
    key += '|';
    key += spec.str(); // model name, seq, phase, batch
    // The name alone does not pin the architecture (ablations mutate
    // configs in place); append every dimension the graphs depend on.
    key += "|tp" + std::to_string(spec.tensorParallel);
    key += "|L" + std::to_string(m.numLayers);
    key += "|d" + std::to_string(m.dModel);
    key += "|h" + std::to_string(m.numHeads);
    key += "|kv" + std::to_string(m.numKvHeads);
    key += "|f" + std::to_string(m.dFfn);
    key += "|v" + std::to_string(m.vocabSize);
    key += "|ffn" + std::to_string(static_cast<int>(m.ffn));
    key += "|n" + std::to_string(static_cast<int>(m.norm));
    key += "|t" + std::to_string(m.tiedEmbeddings ? 1 : 0);
    key += "|p" + std::to_string(m.parallelBlocks ? 1 : 0);
    key += "|s" + exactDouble(m.weightSparsity);
    key += "|dt" + std::to_string(static_cast<int>(m.dtype));
    if (m.vision) {
        const models::VisionTowerConfig &v = *m.vision;
        key += "|visL" + std::to_string(v.numLayers);
        key += "|visd" + std::to_string(v.dModel);
        key += "|vish" + std::to_string(v.numHeads);
        key += "|visf" + std::to_string(v.dFfn);
        key += "|visp" + std::to_string(v.numPatches);
        key += "|visc" + std::to_string(v.patchDim);
    }
    return key;
}

} // namespace sn40l::coe
