/**
 * @file
 * Process-wide memo for batch-shape pricing.
 *
 * Serving sweeps price the same handful of dataflow-graph shapes
 * (expert prefill, per-token decode, router at each batch size) for
 * every (seed, arrival rate, expert count) point, and each pricing
 * walks graph construction, compilation, and the event-driven machine
 * model — milliseconds per point that dwarf the actual request-stream
 * simulation of small points. The cache keys on everything the price
 * depends on (platform, tensor parallelism, full model architecture,
 * phase, batch, sequence length) and returns the previously computed
 * seconds.
 *
 * Thread-safe: sweep workers share the cache across threads. A miss
 * computes outside the lock, so two threads racing on the same fresh
 * key may both compute — the computation is deterministic, so they
 * insert the same value and the cache stays consistent.
 */

#ifndef SN40L_COE_COST_CACHE_H
#define SN40L_COE_COST_CACHE_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "models/transformer_builder.h"
#include "util/lru_cache.h"

namespace sn40l::coe {

class CostModelCache
{
  public:
    static constexpr std::size_t kCapacity = 1024;

    static CostModelCache &instance();

    /**
     * @return the seconds memoized under @p key, calling @p compute
     * (and caching its result) on a miss.
     */
    double seconds(const std::string &key,
                   const std::function<double()> &compute);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    void clear();

  private:
    CostModelCache() : lru_(kCapacity) {}

    mutable std::mutex mu_;
    util::LruCache<std::string, double> lru_;
};

/**
 * Cache key covering every architectural parameter a workload's price
 * depends on. @p context distinguishes the executor (platform name,
 * sockets/TP, run config) and is prepended verbatim.
 */
std::string workloadCostKey(const std::string &context,
                            const models::WorkloadSpec &spec);

} // namespace sn40l::coe

#endif // SN40L_COE_COST_CACHE_H
