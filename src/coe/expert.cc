#include "coe/expert.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::coe {

ExpertZoo
ExpertZoo::uniform(int count, const models::LlmConfig &base)
{
    if (count <= 0)
        sim::fatal("ExpertZoo: need at least one expert");
    static const char *kDomains[] = {"math", "code", "law", "chinese",
                                     "german", "physics", "politics",
                                     "econ"};
    ExpertZoo zoo;
    for (int i = 0; i < count; ++i) {
        ExpertModel e;
        e.name = base.name + "-expert-" + std::to_string(i);
        e.domain = kDomains[i % (sizeof(kDomains) / sizeof(kDomains[0]))];
        e.config = base;
        e.bytes = base.weightBytes();
        zoo.add(std::move(e));
    }
    return zoo;
}

void
ExpertZoo::add(ExpertModel expert)
{
    expert.id = static_cast<int>(experts_.size());
    experts_.push_back(std::move(expert));
}

const ExpertModel &
ExpertZoo::expert(int id) const
{
    if (id < 0 || id >= size())
        sim::panic("ExpertZoo: bad expert id " + std::to_string(id));
    return experts_[id];
}

double
ExpertZoo::totalBytes() const
{
    double total = 0.0;
    for (const ExpertModel &e : experts_)
        total += e.bytes;
    return total;
}

double
ExpertZoo::maxExpertBytes() const
{
    double best = 0.0;
    for (const ExpertModel &e : experts_)
        best = std::max(best, e.bytes);
    return best;
}

} // namespace sn40l::coe
