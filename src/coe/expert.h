/**
 * @file
 * Expert models and the expert zoo. Samba-CoE (Section II) composes
 * 150 independently trained Llama2-7B experts plus a router; the zoo
 * abstracts that into parameter-accurate descriptors that the CoE
 * runtime moves between memory tiers.
 */

#ifndef SN40L_COE_EXPERT_H
#define SN40L_COE_EXPERT_H

#include <string>
#include <vector>

#include "models/llm_config.h"

namespace sn40l::coe {

struct ExpertModel
{
    int id = -1;
    std::string name;
    std::string domain; ///< e.g. "math", "code", "law" (Fig 2)
    models::LlmConfig config;

    /** Weight bytes to host/move for this expert. */
    double bytes = 0.0;

    /** Bytes of mutable state that would need copy-back on eviction
     *  (0 for inference-only experts: read-only weights skip the
     *  copy-back, Section V-B). */
    double mutableBytes = 0.0;
};

class ExpertZoo
{
  public:
    /** @return a zoo of @p count identical experts (Samba-CoE). */
    static ExpertZoo uniform(int count, const models::LlmConfig &base);

    void add(ExpertModel expert);

    int size() const { return static_cast<int>(experts_.size()); }
    const ExpertModel &expert(int id) const;
    const std::vector<ExpertModel> &experts() const { return experts_; }

    double totalBytes() const;
    double maxExpertBytes() const;

  private:
    std::vector<ExpertModel> experts_;
};

} // namespace sn40l::coe

#endif // SN40L_COE_EXPERT_H
