#include "coe/fabric.h"

#include "sim/log.h"

namespace sn40l::coe {

void
validateFabricConfig(const FabricConfig &cfg)
{
    if (!cfg.enabled)
        return;
    if (cfg.linkGbps <= 0.0)
        sim::fatal("fabric: non-positive link bandwidth");
    if (cfg.linkLatencyUs < 0.0)
        sim::fatal("fabric: negative link latency");
    if (cfg.linkBufferFlits < 1)
        sim::fatal("fabric: need at least one link buffer flit");
    if (cfg.flitBytes <= 0.0)
        sim::fatal("fabric: non-positive flit size");
    if (cfg.maxFlitsPerMessage < 1)
        sim::fatal("fabric: need at least one flit per message");
    if (cfg.requestOverheadBytes < 0.0)
        sim::fatal("fabric: negative request overhead");
    if (cfg.requestPayloadBytes < 0.0)
        sim::fatal("fabric: negative request payload");
}

sim::NetworkConfig
toNetworkConfig(const FabricConfig &cfg, int nodes)
{
    sim::NetworkConfig net;
    net.topology = cfg.topology;
    net.endpoints = nodes + 1; // + the dispatch hub
    net.linkBytesPerSec = cfg.linkGbps * 1e9 / 8.0;
    net.linkLatency = sim::fromUs(cfg.linkLatencyUs);
    net.bufferFlits = cfg.linkBufferFlits;
    net.flitBytes = cfg.flitBytes;
    net.maxFlitsPerMessage = cfg.maxFlitsPerMessage;
    return net;
}

ClusterFabric::ClusterFabric(sim::EventQueue &eq,
                             const FabricConfig &cfg, int nodes)
    : cfg_(cfg), nodes_(nodes), net_(eq, toNetworkConfig(cfg, nodes))
{
}

void
ClusterFabric::sendRequest(int node, double bytes,
                           Callback on_delivered)
{
    net_.send(nodes_, node, bytes + cfg_.requestOverheadBytes,
              std::move(on_delivered));
}

void
ClusterFabric::sendTransfer(int from, int to, double bytes,
                            Callback on_delivered)
{
    net_.send(from, to, bytes, std::move(on_delivered));
}

double
ClusterFabric::hubCongestion(int node)
{
    return net_.pathCongestion(nodes_, node);
}

void
ClusterFabric::degradeNode(int node, double factor)
{
    net_.setEndpointLinkFactor(node, factor);
}

} // namespace sn40l::coe
