/**
 * @file
 * Cluster-facing wrapper around sim::Network.
 *
 * The fabric presents the cluster's view of the interconnect: node i
 * is endpoint i, and the dispatch hub is one extra endpoint (id ==
 * node count). With `enabled == false` (the default) the cluster
 * never constructs a fabric and all traffic moves instantaneously —
 * byte-identical to the pre-network behavior; the knobs below are
 * inert until the topology is switched on.
 *
 * Three traffic classes ride the fabric when it is enabled:
 *
 *   - request dispatch and retries (hub -> node), sized by the
 *     modeled prompt-handoff payload plus a fixed per-message
 *     overhead (NOT the request's trafficBytes, which counts the
 *     node-local HBM working-set streaming, gigabytes that never
 *     cross the wire),
 *   - drain/rejoin re-placement transfers (node -> node),
 *   - expert migration payloads (node -> node), whose completion then
 *     pays the target node's DDR-write time before the placement
 *     flips.
 */

#ifndef SN40L_COE_FABRIC_H
#define SN40L_COE_FABRIC_H

#include <cstdint>
#include <memory>

#include "sim/network.h"

namespace sn40l::coe {

struct FabricConfig
{
    /** Off by default: zero-network runs bypass the fabric wholly. */
    bool enabled = false;

    sim::Topology topology = sim::Topology::Star;

    /** Per-link bandwidth in gigabits per second
     *  (bytes/s = linkGbps * 1e9 / 8). */
    double linkGbps = 200.0;

    /** Per-hop propagation latency (also the credit-return delay). */
    double linkLatencyUs = 2.0;

    /** Downstream input-buffer depth per link, in flits. */
    int linkBufferFlits = 64;

    /** Serialization quantum and the per-message flit cap. */
    double flitBytes = 4096.0;
    int maxFlitsPerMessage = 256;

    /** Header/metadata bytes added to every request dispatch. */
    double requestOverheadBytes = 2048.0;

    /**
     * Wire payload shipped with every dispatched request: the
     * tokenized prompt plus the hub-side router state handed to the
     * node (the expert weights themselves never move at dispatch —
     * each node streams its own copies). Default 1 MB: a long prompt's
     * token embeddings at serving precision.
     */
    double requestPayloadBytes = 1.0e6;
};

/** FatalError when enabled with non-positive knobs. */
void validateFabricConfig(const FabricConfig &cfg);

class ClusterFabric
{
  public:
    using Callback = sim::Network::Callback;

    /** Endpoints are nodes 0..nodes-1 plus the hub at id nodes. */
    ClusterFabric(sim::EventQueue &eq, const FabricConfig &cfg,
                  int nodes);

    /** Dispatch a request (or retry/hedge) from the hub to a node. */
    void sendRequest(int node, double bytes, Callback on_delivered);

    /** Wire size of one dispatched request (payload + overhead). */
    double requestBytes() const
    {
        return cfg_.requestPayloadBytes + cfg_.requestOverheadBytes;
    }

    /** Node-to-node payload (drain re-placement, migration). */
    void sendTransfer(int from, int to, double bytes,
                      Callback on_delivered);

    /** Congestion estimate of the hub -> node route right now. */
    double hubCongestion(int node);

    /** Stretch (factor > 1) or heal (1.0) a node's adjacent links. */
    void degradeNode(int node, double factor);

    std::int64_t inFlight() const { return net_.messagesInFlight(); }
    std::int64_t messagesDelivered() const
    {
        return net_.messagesDelivered();
    }
    std::int64_t flitsDelivered() const
    {
        return net_.flitsDelivered();
    }
    std::int64_t creditStalls() const { return net_.creditStalls(); }

    const sim::Network &network() const { return net_; }
    sim::Network &network() { return net_; }

  private:
    FabricConfig cfg_;
    int nodes_;
    sim::Network net_;
};

/** Resolve a FabricConfig into the sim-layer NetworkConfig. */
sim::NetworkConfig toNetworkConfig(const FabricConfig &cfg, int nodes);

} // namespace sn40l::coe

#endif // SN40L_COE_FABRIC_H
