#include "coe/faults.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "coe/cluster.h"
#include "sim/log.h"
#include "sim/ticks.h"

namespace sn40l::coe {

// ----------------------------------------------------- name tables

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::NodeCrash:
        return "crash";
    case FaultKind::DmaStall:
        return "dma-stall";
    case FaultKind::Straggler:
        return "straggler";
    case FaultKind::FlakyNode:
        return "flaky";
    case FaultKind::LinkDegrade:
        return "link-degrade";
    }
    return "?";
}

FaultKind
faultKindFromName(const std::string &name)
{
    if (name == "crash")
        return FaultKind::NodeCrash;
    if (name == "dma-stall")
        return FaultKind::DmaStall;
    if (name == "straggler")
        return FaultKind::Straggler;
    if (name == "flaky")
        return FaultKind::FlakyNode;
    if (name == "link-degrade")
        return FaultKind::LinkDegrade;
    sim::fatal("unknown fault kind '" + name +
               "' (crash, dma-stall, straggler, flaky, link-degrade)");
}

// ------------------------------------------------------ validation

void
validateFaultSchedule(const std::vector<FaultEvent> &schedule, int nodes)
{
    double prev = 0.0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const FaultEvent &e = schedule[i];
        std::string tag =
            "fault schedule event " + std::to_string(i) + ": ";
        if (e.atSeconds < 0.0)
            sim::fatal(tag + "negative fire time");
        if (e.atSeconds < prev)
            sim::fatal(tag + "fire times must be non-decreasing");
        if (e.node < 0 || (nodes > 0 && e.node >= nodes))
            sim::fatal(tag + "node " + std::to_string(e.node) +
                       " outside the cluster");
        if (e.durationSeconds < 0.0)
            sim::fatal(tag + "negative duration");
        switch (e.kind) {
        case FaultKind::NodeCrash:
            break;
        case FaultKind::DmaStall:
        case FaultKind::Straggler:
        case FaultKind::LinkDegrade:
            if (e.factor < 1.0)
                sim::fatal(tag + "stretch factor must be >= 1");
            break;
        case FaultKind::FlakyNode:
            if (e.factor < 0.0 || e.factor > 1.0)
                sim::fatal(tag +
                           "failure probability outside [0, 1]");
            break;
        }
        prev = e.atSeconds;
    }
}

void
validateFaultPolicy(const FaultPolicyConfig &policy)
{
    if (policy.retryMax < 0)
        sim::fatal("FaultPolicyConfig: negative retry budget");
    if (policy.retryBackoffSeconds < 0.0)
        sim::fatal("FaultPolicyConfig: negative retry backoff");
    if (policy.retryBudget < -1)
        sim::fatal("FaultPolicyConfig: retry budget must be >= -1");
    if (policy.hedgeThreshold <= 0.0)
        sim::fatal("FaultPolicyConfig: hedge threshold must be "
                   "positive");
    if (policy.brownoutDepth < 0.0)
        sim::fatal("FaultPolicyConfig: negative brown-out depth");
    if (policy.brownoutPriorityMax < 0)
        sim::fatal("FaultPolicyConfig: negative brown-out priority");
    if ((policy.hedge || policy.brownoutDepth > 0.0) &&
        policy.policyTickSeconds <= 0.0)
        sim::fatal("FaultPolicyConfig: hedge/brown-out need a "
                   "positive policy tick");
}

// -------------------------------------------------------- JSONL IO

namespace {

/**
 * Strict field-by-field JSONL parser, the exact discipline of the
 * request-trace loader (workload.cc): the format is fixed-order and
 * machine-written, so any deviation is corruption and dies with a
 * FatalError naming the file, line, and expectation.
 */
struct FaultLineParser
{
    const std::string &path;
    std::size_t lineNo;
    const std::string &line;
    std::size_t pos = 0;

    [[noreturn]] void
    die(const std::string &why) const
    {
        sim::fatal("faults " + path + " line " +
                   std::to_string(lineNo) + ": " + why +
                   " (corrupt or truncated fault schedule?)");
    }

    void
    lit(const char *text)
    {
        std::size_t n = std::string(text).size();
        if (line.compare(pos, n, text) != 0)
            die("expected '" + std::string(text) + "' at column " +
                std::to_string(pos + 1));
        pos += n;
    }

    long long
    integer(const char *key)
    {
        lit("\"");
        lit(key);
        lit("\":");
        const char *begin = line.c_str() + pos;
        char *end = nullptr;
        long long v = std::strtoll(begin, &end, 10);
        if (end == begin)
            die(std::string("malformed integer for key '") + key +
                "'");
        pos += static_cast<std::size_t>(end - begin);
        return v;
    }

    double
    number(const char *key)
    {
        lit("\"");
        lit(key);
        lit("\":");
        const char *begin = line.c_str() + pos;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            die(std::string("malformed number for key '") + key +
                "'");
        pos += static_cast<std::size_t>(end - begin);
        return v;
    }

    std::string
    word(const char *key)
    {
        lit("\"");
        lit(key);
        lit("\":\"");
        std::size_t close = line.find('"', pos);
        if (close == std::string::npos)
            die(std::string("unterminated string for key '") + key +
                "'");
        std::string v = line.substr(pos, close - pos);
        pos = close + 1;
        return v;
    }

    void
    finish()
    {
        lit("}");
        if (pos != line.size())
            die("trailing characters after '}'");
    }
};

} // namespace

void
writeFaultSchedule(const std::string &path,
                   const std::vector<FaultEvent> &schedule)
{
    validateFaultSchedule(schedule, 0);
    std::ofstream out(path);
    if (!out)
        sim::fatal("faults: cannot write " + path);
    out << "{\"sn40l_faults\":1,\"events\":" << schedule.size()
        << "}\n";
    for (const FaultEvent &e : schedule) {
        std::ostringstream nums;
        nums.precision(17);
        nums << "\"at\":" << e.atSeconds << ",\"kind\":\""
             << faultKindName(e.kind) << "\",\"node\":" << e.node
             << ",\"factor\":" << e.factor
             << ",\"duration\":" << e.durationSeconds;
        out << "{" << nums.str() << "}\n";
    }
    if (!out)
        sim::fatal("faults: write to " + path + " failed");
}

std::vector<FaultEvent>
loadFaultSchedule(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("faults: cannot open " + path);

    std::string line;
    if (!std::getline(in, line))
        sim::fatal("faults " + path + ": empty file (expected a "
                   "{\"sn40l_faults\":1,...} header)");
    FaultLineParser header{path, 1, line};
    header.lit("{");
    long long version = header.integer("sn40l_faults");
    if (version != 1)
        header.die("unsupported fault-schedule version " +
                   std::to_string(version));
    header.lit(",");
    long long events = header.integer("events");
    header.finish();
    if (events < 0)
        header.die("negative event count");

    std::vector<FaultEvent> schedule;
    schedule.reserve(static_cast<std::size_t>(events));
    double prev = 0.0;
    for (long long i = 0; i < events; ++i) {
        if (!std::getline(in, line))
            sim::fatal("faults " + path + ": truncated after " +
                       std::to_string(i) + " of " +
                       std::to_string(events) + " events");
        FaultLineParser p{path, static_cast<std::size_t>(i + 2),
                          line};
        FaultEvent e;
        p.lit("{");
        e.atSeconds = p.number("at");
        p.lit(",");
        e.kind = [&p] {
            std::string kind = p.word("kind");
            if (kind != "crash" && kind != "dma-stall" &&
                kind != "straggler" && kind != "flaky" &&
                kind != "link-degrade")
                p.die("unknown fault kind '" + kind + "'");
            return faultKindFromName(kind);
        }();
        p.lit(",");
        e.node = static_cast<int>(p.integer("node"));
        p.lit(",");
        e.factor = p.number("factor");
        p.lit(",");
        e.durationSeconds = p.number("duration");
        p.finish();

        if (e.atSeconds < 0.0 || e.atSeconds < prev)
            p.die("fire times must be non-negative and "
                  "non-decreasing");
        if (e.node < 0 || e.durationSeconds < 0.0)
            p.die("negative field value");
        if ((e.kind == FaultKind::DmaStall ||
             e.kind == FaultKind::Straggler ||
             e.kind == FaultKind::LinkDegrade) &&
            e.factor < 1.0)
            p.die("stretch factor must be >= 1");
        if (e.kind == FaultKind::FlakyNode &&
            (e.factor < 0.0 || e.factor > 1.0))
            p.die("failure probability outside [0, 1]");
        prev = e.atSeconds;
        schedule.push_back(e);
    }
    // Anything after the promised events is corruption; scan every
    // remaining line (tolerating pure trailing newlines) so garbage
    // cannot hide behind a blank line.
    while (std::getline(in, line)) {
        if (!line.empty())
            sim::fatal("faults " + path + ": trailing garbage after " +
                       std::to_string(events) + " events");
    }
    return schedule;
}

// ---------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(
    ClusterSimulator &cluster,
    std::shared_ptr<const std::vector<FaultEvent>> schedule)
    : cluster_(cluster), schedule_(std::move(schedule))
{
}

void
FaultInjector::arm()
{
    if (!schedule_)
        return;
    for (const FaultEvent &e : *schedule_) {
        cluster_.scheduleControlAt(
            sim::fromSeconds(e.atSeconds),
            [this, e] { fire(e); }, "faults.fire");
        if (e.durationSeconds > 0.0)
            cluster_.scheduleControlAt(
                sim::fromSeconds(e.atSeconds + e.durationSeconds),
                [this, e] { heal(e); }, "faults.heal");
    }
}

void
FaultInjector::fire(const FaultEvent &event)
{
    ++injected_;
    switch (event.kind) {
    case FaultKind::NodeCrash:
        cluster_.crashNode(event.node);
        break;
    case FaultKind::DmaStall:
        cluster_.setNodeDmaFactor(event.node, event.factor);
        break;
    case FaultKind::Straggler:
        cluster_.setNodeServiceFactor(event.node, event.factor);
        break;
    case FaultKind::FlakyNode:
        cluster_.setNodeFlakyProbability(event.node, event.factor);
        break;
    case FaultKind::LinkDegrade:
        cluster_.setNodeLinkFactor(event.node, event.factor);
        break;
    }
}

void
FaultInjector::heal(const FaultEvent &event)
{
    switch (event.kind) {
    case FaultKind::NodeCrash:
        cluster_.rejoinNode(event.node);
        break;
    case FaultKind::DmaStall:
        cluster_.setNodeDmaFactor(event.node, 1.0);
        break;
    case FaultKind::Straggler:
        cluster_.setNodeServiceFactor(event.node, 1.0);
        break;
    case FaultKind::FlakyNode:
        cluster_.setNodeFlakyProbability(event.node, 0.0);
        break;
    case FaultKind::LinkDegrade:
        cluster_.setNodeLinkFactor(event.node, 1.0);
        break;
    }
}

} // namespace sn40l::coe
