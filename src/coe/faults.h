/**
 * @file
 * Chaos-engineering layer for the CoE serving cluster: scheduled
 * fault injection plus the degraded-mode policy knobs the cluster
 * uses to serve through those faults.
 *
 * Faults are scripted, not sampled at fire time: a FaultEvent list
 * (hand-built, or loaded from a JSONL fault schedule symmetric with
 * the PR 5 request traces) is armed in ClusterSimulator::begin() and
 * every event fires as a first-class control-plane callback through
 * scheduleControlAt() — the same sync-agenda path ScheduledAction and
 * the controller use. With threads == 1 that is an ordinary event on
 * the shared queue; with threads > 1 it is an agenda barrier with
 * every shard advanced to the fault's tick. Injection is therefore
 * deterministic and bit-identical across -j 1 / -j N, and an empty
 * schedule arms nothing at all (the no-fault path pays zero cost).
 *
 * Fault kinds:
 *  - crash:     the node dies mid-batch; queued AND in-flight
 *               requests are displaced and either retried under the
 *               policy budget (original arrival timestamps preserved)
 *               or counted lost. duration > 0 schedules a rejoin.
 *  - dma-stall: multiply the node's DMA completion times by `factor`
 *               (mem::DmaEngine rate-factor hook); duration restores.
 *  - straggler: persistent per-node service-time multiplier `factor`
 *               on prompt execution; duration restores.
 *  - flaky:     transient request-level failures: dispatches to the
 *               node fail with probability `factor` for `duration`
 *               seconds and fall into the same retry/lost path.
 *  - link-degrade: stretch the serialization time of every fabric
 *               link adjacent to the node by `factor` (congested or
 *               flapping NIC); requires the interconnect
 *               (ClusterConfig::fabric.enabled); duration restores.
 */

#ifndef SN40L_COE_FAULTS_H
#define SN40L_COE_FAULTS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sn40l::coe {

class ClusterSimulator;

/** What a scheduled fault does to its node when its time arrives. */
enum class FaultKind {
    NodeCrash,   ///< node dies; displaced work retried or lost
    DmaStall,    ///< DMA completions stretched by `factor`
    Straggler,   ///< prompt execution stretched by `factor`
    FlakyNode,   ///< dispatches fail with probability `factor`
    LinkDegrade, ///< node's fabric links stretched by `factor`
};

const char *faultKindName(FaultKind kind);
FaultKind faultKindFromName(const std::string &name);

/** One scripted fault at a fixed simulation time. */
struct FaultEvent
{
    double atSeconds = 0.0;
    FaultKind kind = FaultKind::NodeCrash;
    int node = 0;
    /**
     * Kind-specific magnitude: DMA/straggler stretch factor (>= 1),
     * flaky failure probability in [0, 1]. Ignored by crash.
     */
    double factor = 1.0;
    /**
     * Seconds until the fault heals (crash rejoins, factors restore
     * to 1.0, flaky probability drops to 0). 0 = permanent.
     */
    double durationSeconds = 0.0;
};

/**
 * Degraded-mode serving policies, all disabled by default so a
 * default-constructed config is bit-identical to the pre-chaos
 * cluster. The cluster consults these hub-side: retry decisions fire
 * at control barriers, hedge/brownout decisions at dispatch using
 * only hub-visible state refreshed at barriers, so policy behaviour
 * is identical across -j 1 / -j N.
 */
struct FaultPolicyConfig
{
    /**
     * Bounded retry: a crashed or transiently failed request is
     * re-dispatched (original arrival timestamp preserved) up to this
     * many times before it is counted lost. 0 disables retries — every
     * displaced request is lost.
     */
    int retryMax = 0;
    /** Base backoff before the first retry; doubles per attempt. */
    double retryBackoffSeconds = 0.05;
    /** Cluster-wide cap on total retries; -1 = unbounded. */
    std::int64_t retryBudget = -1;

    /**
     * Hedged dispatch: when the chosen node's hub-side queueing-delay
     * estimate exceeds hedgeThreshold * (1 + priority) * deadline, a
     * duplicate is dispatched to the best other eligible node and the
     * loser is cancelled. Requests without a deadline never hedge.
     */
    bool hedge = false;
    double hedgeThreshold = 1.0;

    /**
     * Priority-tier brown-out: when the mean admission-queue depth
     * per live node (sampled at policy barriers) exceeds this, the
     * cluster sheds arriving requests with priority <=
     * brownoutPriorityMax until the depth recovers. 0 disables.
     */
    double brownoutDepth = 0.0;
    int brownoutPriorityMax = 0;

    /**
     * Cadence of the policy barrier that refreshes hedge estimates,
     * resolves hedge winners, and re-evaluates brown-out. Armed only
     * when hedging or brown-out is enabled.
     */
    double policyTickSeconds = 0.05;

    bool retriesEnabled() const { return retryMax > 0; }
    bool anyEnabled() const
    {
        return retriesEnabled() || hedge || brownoutDepth > 0.0;
    }
};

/**
 * FatalError on a malformed schedule: negative or decreasing times,
 * node ids outside [0, nodes), stretch factors below 1, flaky
 * probabilities outside [0, 1], or negative durations. @p nodes <= 0
 * skips the node-range check (schedule validated before a cluster
 * exists).
 */
void validateFaultSchedule(const std::vector<FaultEvent> &schedule,
                           int nodes);

/** FatalError on contradictory policy knobs. */
void validateFaultPolicy(const FaultPolicyConfig &policy);

/**
 * Fault-schedule JSONL, record/replay symmetric with the request
 * traces: a {"sn40l_faults":1,"events":N} header line followed by
 * exactly N fixed-field-order event lines
 *
 *   {"at":S,"kind":"crash","node":I,"factor":F,"duration":D}
 *
 * Any deviation — wrong field order, truncation, out-of-order times,
 * trailing garbage — dies with a FatalError naming file and line.
 */
void writeFaultSchedule(const std::string &path,
                        const std::vector<FaultEvent> &schedule);
std::vector<FaultEvent> loadFaultSchedule(const std::string &path);

/**
 * Arms a validated fault schedule on a cluster run: begin() calls
 * arm() once, which schedules every event (and its heal, when
 * durationSeconds > 0) through the cluster's control-plane agenda.
 * The injector owns no simulation state beyond counters — faults
 * actuate the same public/friend surface the controller uses.
 */
class FaultInjector
{
  public:
    FaultInjector(ClusterSimulator &cluster,
                  std::shared_ptr<const std::vector<FaultEvent>> schedule);

    /** Schedule every fault of the active run. begin()-time only. */
    void arm();

    std::int64_t injectedCount() const { return injected_; }

  private:
    void fire(const FaultEvent &event);
    void heal(const FaultEvent &event);

    ClusterSimulator &cluster_;
    std::shared_ptr<const std::vector<FaultEvent>> schedule_;
    std::int64_t injected_ = 0;
};

} // namespace sn40l::coe

#endif // SN40L_COE_FAULTS_H
