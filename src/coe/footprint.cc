#include "coe/footprint.h"

#include <cmath>

#include "sim/log.h"

namespace sn40l::coe {

namespace {

FootprintPlan
plan(int num_experts, double expert_bytes, double usable_per_node)
{
    if (num_experts <= 0 || expert_bytes <= 0.0)
        sim::fatal("footprint: non-positive experts/bytes");
    if (usable_per_node < expert_bytes)
        sim::fatal("footprint: node cannot hold even one expert");

    FootprintPlan p;
    p.bytesPerNode = usable_per_node;
    p.expertsPerNode =
        static_cast<int>(std::floor(usable_per_node / expert_bytes));
    p.nodes = static_cast<int>(std::ceil(
        static_cast<double>(num_experts) / p.expertsPerNode));
    return p;
}

} // namespace

FootprintPlan
sn40lFootprint(int num_experts, double expert_bytes,
               const arch::NodeConfig &node, double ddr_reserve_bytes)
{
    double usable =
        static_cast<double>(node.totalDdrBytes()) - ddr_reserve_bytes;
    return plan(num_experts, expert_bytes, usable);
}

FootprintPlan
dgxFootprint(int num_experts, double expert_bytes,
             const baseline::DgxConfig &dgx)
{
    double usable = static_cast<double>(dgx.usableHbmBytes());
    return plan(num_experts, expert_bytes, usable);
}

} // namespace sn40l::coe
