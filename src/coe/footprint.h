/**
 * @file
 * System-footprint planner (Fig 13): how many nodes each platform
 * needs to serve N experts at the TP8 latency. Sustaining that
 * latency on a DGX requires every expert resident in HBM; the SN40L
 * includes the DDR->HBM switch in its latency, so experts need only
 * fit in node DDR.
 */

#ifndef SN40L_COE_FOOTPRINT_H
#define SN40L_COE_FOOTPRINT_H

#include "arch/chip_config.h"
#include "baseline/gpu_config.h"

namespace sn40l::coe {

struct FootprintPlan
{
    int nodes = 0;
    double bytesPerNode = 0.0;   ///< usable capacity per node
    int expertsPerNode = 0;
};

/** SN40L: experts live in DDR; a reserve covers the runtime. */
FootprintPlan sn40lFootprint(int num_experts, double expert_bytes,
                             const arch::NodeConfig &node,
                             double ddr_reserve_bytes = 256e9);

/** DGX: experts must all be HBM-resident to sustain TP8 latency. */
FootprintPlan dgxFootprint(int num_experts, double expert_bytes,
                           const baseline::DgxConfig &dgx);

} // namespace sn40l::coe

#endif // SN40L_COE_FOOTPRINT_H
