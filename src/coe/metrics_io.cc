#include "coe/metrics_io.h"

#include <ostream>

namespace sn40l::coe {

void
streamMetricsJsonFields(util::JsonWriter &w, const StreamMetrics &m)
{
    w.field("p50_s", m.p50LatencySeconds)
        .field("p95_s", m.p95LatencySeconds)
        .field("p99_s", m.p99LatencySeconds)
        .field("mean_s", m.meanLatencySeconds)
        .field("throughput_rps", m.throughputRequestsPerSec);
}

void
snapshotJsonFields(util::JsonWriter &w, const MetricsSnapshot &snap)
{
    w.field("t", snap.atSeconds)
        .field("window_s", snap.windowSeconds)
        .field("live_nodes", snap.liveNodes)
        .field("arrival_rate", snap.arrivalRatePerSec)
        .field("completion_rate", snap.completionRatePerSec)
        .field("queue_depth_per_node", snap.meanQueueDepthPerLiveNode)
        .field("shed", snap.shed)
        .field("lost", snap.lost)
        .field("retried", snap.retried)
        .field("hedged", snap.hedged)
        .field("hedge_won", snap.hedgeWon)
        .field("node_seconds_live", snap.nodeSecondsLive);
    // Only fabric-enabled runs carry link state; omitting the array
    // otherwise keeps pre-fabric decision-log files byte-identical.
    if (!snap.links.empty()) {
        w.key("links").beginArray();
        for (const MetricsSnapshot::LinkSnapshot &l : snap.links)
            w.beginObject()
                .field("from", l.from)
                .field("to", l.to)
                .field("util", l.utilization)
                .endObject();
        w.endArray();
    }
}

void
sweepPointJson(util::JsonWriter &w, const SweepPointResult &r)
{
    const ServingConfig &cfg = r.point.cfg;
    const StreamMetrics &m = r.result.stream;
    w.beginObject()
        .field("experts", cfg.numExperts)
        .field("arrival_rate_per_node", r.point.ratePerNode)
        .field("arrival_rate", cfg.arrivalRatePerSec)
        .field("batch", cfg.batch)
        .field("scheduler", schedulerPolicyName(cfg.scheduler))
        .field("seed", cfg.seed)
        .field("nodes", r.point.nodes)
        .field("placement", placementPolicyName(r.point.placement))
        .field("oom", r.result.oom);
    streamMetricsJsonFields(w, m);
    w.field("miss_rate", r.result.missRate)
        .field("load_imbalance", r.loadImbalance)
        .field("placed_bytes", r.placedBytesTotal)
        .field("events", r.eventsExecuted)
        .field("wall_s", r.wallSeconds)
        .endObject();
}

void
writeSweepJson(std::ostream &os,
               const std::vector<SweepPointResult> &results, int jobs,
               double wall_seconds)
{
    // One compact object per line inside the points array, so large
    // sweeps stay grep/diff-friendly; the envelope stays pretty.
    os << "{\n  \"points\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        os << "    ";
        util::JsonWriter w(os);
        sweepPointJson(w, results[i]);
        os << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    {
        os << "  \"jobs\": ";
        util::JsonWriter w(os);
        w.value(jobs);
        os << ",\n  \"wall_s\": ";
        w.value(wall_seconds);
    }
    os << "\n}\n";
}

void
clusterNodeJson(util::JsonWriter &w, const ClusterNodeMetrics &nm)
{
    w.beginObject()
        .field("node", nm.node)
        .field("drained", nm.drained)
        .field("placed_experts", nm.placedExperts)
        .field("placed_bytes", nm.placedBytes)
        .field("dispatched", nm.dispatched)
        .field("redispatched", nm.redispatched)
        .field("completed", nm.completed)
        .field("shed", nm.shed)
        .field("batches", nm.batches)
        .field("miss_rate", nm.missRate)
        .field("p50_s", nm.p50LatencySeconds)
        .field("p95_s", nm.p95LatencySeconds)
        .field("mean_queue_depth", nm.meanQueueDepth)
        .field("max_queue_depth", nm.maxQueueDepth)
        .field("peak_resident_bytes", nm.peakResidentBytes)
        .endObject();
}

void
writeClusterJson(std::ostream &os, const ClusterConfig &cfg,
                 const ClusterResult &r)
{
    util::JsonWriter w(os, /*pretty=*/true);
    w.beginObject()
        .field("nodes", cfg.nodes)
        .field("placement", placementPolicyName(cfg.placement))
        .field("dispatch", dispatchPolicyName(cfg.dispatch))
        .field("controller",
               controllerPolicyName(cfg.controller.policy))
        .field("requests", cfg.node.streamRequests)
        .field("oom", r.oom);
    streamMetricsJsonFields(w, r.stream);
    w.field("shed", r.stream.shed)
        .field("shed_rate", r.stream.shedRate)
        .field("lost", r.stream.lost)
        .field("retried", r.stream.retried)
        .field("hedged", r.stream.hedged)
        .field("hedge_won", r.stream.hedgeWon)
        .field("faults_injected", r.faultsInjected)
        .field("crashes", r.crashes)
        .field("miss_rate", r.missRate)
        .field("load_imbalance", r.loadImbalance)
        .field("expert_replicas", r.expertReplicas)
        .field("placed_bytes", r.placedBytesTotal)
        .field("peak_resident_bytes", r.peakResidentBytesTotal)
        .field("redispatched", r.redispatched)
        .field("node_seconds_live", r.nodeSecondsLive)
        .field("node_hours", r.nodeHours)
        .field("controller_ticks", r.controllerTicks)
        .field("controller_actions", r.controllerActions)
        .field("events", r.stream.eventsExecuted);
    // Interconnect block only when the fabric ran, so zero-network
    // reports stay byte-identical to pre-fabric goldens.
    if (cfg.fabric.enabled) {
        w.key("network")
            .beginObject()
            .field("topology", sim::topologyName(cfg.fabric.topology))
            .field("link_gbps", cfg.fabric.linkGbps)
            .field("messages", r.networkMessages)
            .field("flits", r.networkFlits)
            .field("credit_stalls", r.networkCreditStalls)
            .field("max_link_utilization",
                   r.networkMaxLinkUtilization)
            .field("mean_link_utilization",
                   r.networkMeanLinkUtilization)
            .endObject();
    }
    w.key("node_metrics").beginArray();
    for (const ClusterNodeMetrics &nm : r.nodes)
        clusterNodeJson(w, nm);
    w.endArray().endObject();
    os << "\n";
}

} // namespace sn40l::coe
