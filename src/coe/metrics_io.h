/**
 * @file
 * Unified JSON emission for serving/cluster metrics. Every consumer
 * that used to hand-roll `out << "{\"key\": ..."` — `sn40l_run sweep
 * --json`, the new `sn40l_run cluster --json`, bench/perf_cluster,
 * and the cluster controller's JSONL decision log — now funnels
 * through these emitters on top of util::JsonWriter, so field names
 * and number formatting cannot drift between reporters again.
 *
 * The field emitters (`*Fields`) write key/value pairs into an object
 * the caller has already opened, so envelopes compose: a sweep point
 * embeds streamMetricsJsonFields between its grid coordinates and its
 * per-point extras, the controller log pairs snapshotJsonFields with
 * an `action` tag, and `cluster --json` nests node objects inside the
 * result.
 */

#ifndef SN40L_COE_METRICS_IO_H
#define SN40L_COE_METRICS_IO_H

#include <iosfwd>
#include <vector>

#include "coe/cluster.h"
#include "coe/sweep.h"
#include "util/json.h"

namespace sn40l::coe {

/**
 * Core latency/throughput fields of a StreamMetrics, into an open
 * object: p50_s, p95_s, p99_s, mean_s, throughput_rps.
 */
void streamMetricsJsonFields(util::JsonWriter &w, const StreamMetrics &m);

/**
 * One windowed MetricsSnapshot, into an open object — the controller
 * log's line body (the controller appends its `action` tag).
 */
void snapshotJsonFields(util::JsonWriter &w, const MetricsSnapshot &snap);

/** One sweep point as a complete object (the sweep --json element). */
void sweepPointJson(util::JsonWriter &w, const SweepPointResult &r);

/**
 * The whole sweep --json document: a `points` array of
 * sweepPointJson objects (one per line, compact) plus the run
 * envelope (jobs, wall_s).
 */
void writeSweepJson(std::ostream &os,
                    const std::vector<SweepPointResult> &results, int jobs,
                    double wall_seconds);

/** One node's metrics as a complete object (cluster --json element). */
void clusterNodeJson(util::JsonWriter &w, const ClusterNodeMetrics &nm);

/**
 * The whole `cluster --json` document: config echo, cluster-wide
 * stream metrics, placement/provisioning totals, controller
 * accounting, and the per-node array.
 */
void writeClusterJson(std::ostream &os, const ClusterConfig &cfg,
                      const ClusterResult &r);

} // namespace sn40l::coe

#endif // SN40L_COE_METRICS_IO_H
