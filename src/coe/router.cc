#include "coe/router.h"

#include <cmath>

#include "sim/log.h"

namespace sn40l::coe {

const char *
routingDistributionName(RoutingDistribution dist)
{
    switch (dist) {
      case RoutingDistribution::Uniform: return "uniform";
      case RoutingDistribution::Zipf: return "zipf";
      case RoutingDistribution::RoundRobin: return "round-robin";
    }
    sim::panic("routingDistributionName: unknown distribution");
}

RoutingDistribution
routingDistributionFromName(const std::string &name)
{
    if (name == "uniform")
        return RoutingDistribution::Uniform;
    if (name == "zipf")
        return RoutingDistribution::Zipf;
    if (name == "round-robin" || name == "roundrobin")
        return RoutingDistribution::RoundRobin;
    sim::fatal("unknown routing distribution '" + name +
               "' (expected uniform, zipf, or round-robin)");
}

Router::Router(int num_experts, RoutingDistribution dist,
               std::uint64_t seed, double zipf_s)
    : numExperts_(num_experts), dist_(dist), rng_(seed),
      model_(models::LlmConfig::llama2_7b())
{
    if (num_experts <= 0)
        sim::fatal("Router: need at least one expert");
    model_.name = "samba-coe-router";

    if (dist_ == RoutingDistribution::Zipf) {
        cdf_.resize(numExperts_);
        double sum = 0.0;
        for (int i = 0; i < numExperts_; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
            cdf_[i] = sum;
        }
        for (double &v : cdf_)
            v /= sum;
    }
}

int
Router::route()
{
    switch (dist_) {
      case RoutingDistribution::Uniform:
        return static_cast<int>(rng_.uniformInt(numExperts_));
      case RoutingDistribution::RoundRobin:
        return next_++ % numExperts_;
      case RoutingDistribution::Zipf: {
        double u = rng_.uniformDouble();
        for (int i = 0; i < numExperts_; ++i) {
            if (u <= cdf_[i])
                return i;
        }
        return numExperts_ - 1;
      }
    }
    sim::panic("Router::route: unknown distribution");
}

} // namespace sn40l::coe
