/**
 * @file
 * The Samba-CoE router (Section II, Fig 2): a specialist model that
 * assigns each prompt to an expert. The routing *decision* here is a
 * synthetic distribution (the accuracy of the real router is
 * irrelevant to systems behaviour); the routing *cost* is the real
 * router-model execution, charged by the serving simulator.
 */

#ifndef SN40L_COE_ROUTER_H
#define SN40L_COE_ROUTER_H

#include <string>
#include <vector>

#include "models/llm_config.h"
#include "sim/rng.h"

namespace sn40l::coe {

enum class RoutingDistribution {
    Uniform,    ///< every expert equally likely (paper's worst case)
    Zipf,       ///< few hot experts (deployment locality)
    RoundRobin, ///< adversarial for caching: maximal working set
};

const char *routingDistributionName(RoutingDistribution dist);

/**
 * Parse a distribution name ("uniform", "zipf", "round-robin") as
 * printed by routingDistributionName(). Throws FatalError on unknown
 * names, listing the accepted spellings.
 */
RoutingDistribution routingDistributionFromName(const std::string &name);

class Router
{
  public:
    Router(int num_experts, RoutingDistribution dist,
           std::uint64_t seed = 1, double zipf_s = 1.0);

    /** Route the next prompt; returns an expert id. */
    int route();

    int numExperts() const { return numExperts_; }
    const models::LlmConfig &model() const { return model_; }

  private:
    int numExperts_;
    RoutingDistribution dist_;
    sim::Rng rng_;
    int next_ = 0;                 ///< round-robin cursor
    std::vector<double> cdf_;      ///< Zipf cumulative distribution
    models::LlmConfig model_;      ///< the router is itself a 7B model
};

} // namespace sn40l::coe

#endif // SN40L_COE_ROUTER_H
