#include "coe/serving.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "baseline/gpu_executor.h"
#include "coe/cost_cache.h"
#include "coe/serving_engine.h"
#include "coe/workload.h"
#include "runtime/runner.h"
#include "runtime/spec_decode.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/ticks.h"

namespace sn40l::coe {

const char *
platformName(Platform platform)
{
    switch (platform) {
      case Platform::Sn40l: return "SN40L-Node";
      case Platform::DgxA100: return "DGX-A100";
      case Platform::DgxH100: return "DGX-H100";
    }
    sim::panic("platformName: unknown platform");
}

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Fifo: return "fifo";
      case SchedulerPolicy::ExpertAffinity: return "affinity";
    }
    sim::panic("schedulerPolicyName: unknown policy");
}

SchedulerPolicy
schedulerPolicyFromName(const std::string &name)
{
    if (name == "fifo")
        return SchedulerPolicy::Fifo;
    if (name == "affinity" || name == "expert-affinity")
        return SchedulerPolicy::ExpertAffinity;
    sim::fatal("unknown scheduler policy '" + name +
               "' (expected fifo or affinity)");
}

void
validateServingConfig(const ServingConfig &cfg)
{
    if (cfg.numExperts <= 0 || cfg.batch <= 0 || cfg.requests <= 0)
        sim::fatal("ServingConfig: non-positive counts");
    if (cfg.mode == ServingMode::EventDriven) {
        if (cfg.streamRequests <= 0)
            sim::fatal("ServingConfig: non-positive streamRequests");
        if (cfg.arrival == ArrivalProcess::Poisson &&
            cfg.arrivalRatePerSec <= 0.0)
            sim::fatal("ServingConfig: non-positive arrival rate");
        if (cfg.arrival == ArrivalProcess::ClosedLoop && cfg.clients <= 0)
            sim::fatal("ServingConfig: non-positive client count");
        if (cfg.thinkSeconds < 0.0)
            sim::fatal("ServingConfig: negative think time");
        if (cfg.dmaEngines <= 0)
            sim::fatal("ServingConfig: need at least one DMA engine");
        if (cfg.prefetchDepth < 0)
            sim::fatal("ServingConfig: negative prefetch depth");
        if (cfg.prefetchWindow < 0)
            sim::fatal("ServingConfig: negative prefetch window");
    }
    if (cfg.expertRegionBytes < 0)
        sim::fatal("ServingConfig: negative expert region size");
    if (cfg.specDecode.enabled) {
        if (cfg.specDecode.gamma < 0)
            sim::fatal("ServingConfig: negative spec-decode gamma");
        if (cfg.specDecode.acceptRate < 0.0 ||
            cfg.specDecode.acceptRate > 1.0)
            sim::fatal("ServingConfig: spec-decode acceptRate outside "
                       "[0, 1]");
        if (cfg.specDecode.draftRatio <= 0.0 ||
            cfg.specDecode.draftRatio >= 1.0)
            sim::fatal("ServingConfig: spec-decode draftRatio outside "
                       "(0, 1)");
    }
    if (cfg.zoo.enabled) {
        if (cfg.zoo.rank <= 0)
            sim::fatal("ServingConfig: non-positive zoo LoRA rank");
        if (cfg.zoo.churnEverySeconds < 0.0)
            sim::fatal("ServingConfig: negative zoo churn period");
        if (cfg.zoo.dmaSetupSeconds < 0.0)
            sim::fatal("ServingConfig: negative zoo DMA setup time");
    }
    validateWorkloadConfig(cfg);
}

double
loraAdapterBytes(const models::LlmConfig &base, int rank)
{
    if (rank <= 0)
        sim::fatal("loraAdapterBytes: non-positive rank");
    // Per layer: LoRA A/B pairs on the four attention projections
    // (q, k, v, o), each d_model x rank, at 2 bytes/param (BF16).
    double per_layer = 4.0 * (2.0 * rank * base.dModel) * 2.0;
    return per_layer * base.numLayers;
}

ExpertZoo
buildServingZoo(const ServingConfig &cfg)
{
    if (!cfg.zoo.enabled)
        return ExpertZoo::uniform(cfg.numExperts, cfg.expertBase);
    double adapter = loraAdapterBytes(cfg.expertBase, cfg.zoo.rank);
    ExpertZoo zoo;
    for (int i = 0; i < cfg.numExperts; ++i) {
        ExpertModel m;
        m.id = i;
        m.name = "lora_" + std::to_string(i);
        m.domain = "peft";
        m.config = cfg.expertBase;
        m.bytes = adapter;
        m.mutableBytes = 0.0;
        zoo.add(m);
    }
    return zoo;
}

ServingSimulator::ServingSimulator(ServingConfig cfg) : cfg_(std::move(cfg))
{
    validateServingConfig(cfg_);
    computeCosts();
    if (cfg_.expertRegionBytes > 0)
        costs_.expertRegionBytes = cfg_.expertRegionBytes;
}

PhaseCosts
computePhaseCosts(const ServingConfig &cfg)
{
    using models::Phase;
    using models::WorkloadSpec;

    PhaseCosts costs;

    WorkloadSpec prefill;
    prefill.model = cfg.expertBase;
    prefill.phase = Phase::Prefill;
    prefill.batch = 1;
    prefill.seqLen = cfg.promptLen;
    prefill.tensorParallel = cfg.tensorParallel;

    WorkloadSpec decode = prefill;
    decode.phase = Phase::Decode;

    // The router is a 7B specialist: one batched prefill plus one
    // decode step to emit the expert choice.
    WorkloadSpec router_prefill = prefill;
    router_prefill.batch = cfg.batch;
    WorkloadSpec router_decode = decode;
    router_decode.batch = cfg.batch;

    double expert_bytes = cfg.expertBase.weightBytes();

    if (cfg.platform == Platform::Sn40l) {
        arch::NodeConfig node =
            arch::NodeConfig::sn40lNode(cfg.tensorParallel);

        // Priced through the process-wide memo: a sweep re-prices the
        // same four graph shapes for every (seed, rate, experts)
        // point, and graph build + compile + machine walk is the
        // expensive part. Cache misses build the graph lazily.
        auto seconds = [&](const WorkloadSpec &spec) {
            return CostModelCache::instance().seconds(
                workloadCostKey("sn40l", spec), [&]() {
                    graph::DataflowGraph g = buildTransformer(spec);
                    return runtime::runWorkload(g, node,
                                                cfg.tensorParallel,
                                                runtime::RunConfig::FusedHO)
                        .seconds();
                });
        };
        costs.prefillSeconds = seconds(prefill);
        costs.decodeSecondsPerToken = seconds(decode);
        costs.routerSeconds =
            seconds(router_prefill) + seconds(router_decode);

        sim::EventQueue eq;
        runtime::RduNode machine(eq, node);
        costs.switchSeconds =
            sim::toSeconds(machine.estimateDdrToHbm(expert_bytes));

        // HBM region for experts: node HBM minus the router's weights
        // and a KV/activation reserve (Fig 9's "Router Region").
        double reserve = cfg.expertBase.weightBytes() + 16e9;
        costs.expertRegionBytes = static_cast<std::int64_t>(
            static_cast<double>(node.totalHbmBytes()) - reserve);

        // Backing capacity: node DDR minus a runtime reserve.
        costs.capacityBytes =
            static_cast<double>(node.totalDdrBytes()) - 256e9;
        return costs;
    }

    baseline::DgxConfig dgx = cfg.platform == Platform::DgxA100
        ? baseline::DgxConfig::dgxA100()
        : baseline::DgxConfig::dgxH100();
    baseline::GpuExecutor executor(dgx);

    // GpuExecutor::run memoizes on the graph fingerprint; the outer
    // memo additionally skips rebuilding the graph on repeat shapes.
    auto seconds = [&](const WorkloadSpec &spec) {
        return CostModelCache::instance().seconds(
            workloadCostKey(platformName(cfg.platform), spec), [&]() {
                return executor.run(buildTransformer(spec)).seconds;
            });
    };
    costs.prefillSeconds = seconds(prefill);
    costs.decodeSecondsPerToken = seconds(decode);
    costs.routerSeconds = seconds(router_prefill) + seconds(router_decode);

    // Expert switch: host DRAM -> GPU HBM over the host link.
    costs.switchSeconds = expert_bytes / dgx.hostToGpuBandwidth;
    costs.expertRegionBytes = dgx.usableHbmBytes();
    costs.capacityBytes =
        static_cast<double>(dgx.expertCapacityBytes());
    return costs;
}

void
ServingSimulator::computeCosts()
{
    costs_ = computePhaseCosts(cfg_);
}

mem::MemorySystemConfig
platformMemoryConfig(const ServingConfig &cfg)
{
    if (cfg.memoryOverride) {
        mem::MemorySystemConfig m = *cfg.memoryOverride;
        if (cfg.zoo.enabled && m.dmaSetupSeconds == 0.0)
            m.dmaSetupSeconds = cfg.zoo.dmaSetupSeconds;
        return m;
    }

    mem::MemorySystemConfig m;
    m.dmaEngines = cfg.dmaEngines;
    if (cfg.zoo.enabled)
        m.dmaSetupSeconds = cfg.zoo.dmaSetupSeconds;
    if (cfg.platform == Platform::Sn40l) {
        arch::NodeConfig node =
            arch::NodeConfig::sn40lNode(cfg.tensorParallel);
        m.ddr.channels = node.sockets;
        m.ddr.perChannelBandwidth = node.chip.ddrBandwidth;
        m.ddr.efficiency = node.chip.ddrEfficiency;
        m.hbm.channels = node.sockets;
        m.hbm.perChannelBandwidth = node.chip.hbmBandwidth;
        m.hbm.efficiency = node.chip.hbmEfficiency;
    } else {
        baseline::DgxConfig dgx = cfg.platform == Platform::DgxA100
            ? baseline::DgxConfig::dgxA100()
            : baseline::DgxConfig::dgxH100();
        m.ddr.channels = 1; // the host link serializes every copy
        m.ddr.perChannelBandwidth = dgx.hostToGpuBandwidth;
        m.ddr.efficiency = 1.0;
        m.hbm.channels = dgx.gpus;
        m.hbm.perChannelBandwidth = dgx.gpu.hbmBandwidth;
        m.hbm.efficiency = dgx.gpu.hbmEfficiency;
    }
    return m;
}

ServingResult
ServingSimulator::run()
{
    return cfg_.mode == ServingMode::EventDriven ? runEventDriven()
                                                 : runAnalytic();
}

ServingResult
ServingSimulator::runAnalytic()
{
    ServingResult result;

    ExpertZoo zoo = buildServingZoo(cfg_);
    std::int64_t region =
        ServingEngine::effectiveExpertRegionBytes(cfg_, costs_);
    result.residentCapacityExperts = static_cast<int>(
        static_cast<double>(region) / zoo.maxExpertBytes());

    double backing = zoo.totalBytes();
    if (cfg_.zoo.enabled)
        backing += cfg_.expertBase.weightBytes();
    if (backing > costs_.capacityBytes) {
        result.oom = true;
        return result;
    }

    CoeRuntime runtime(zoo, region);
    Router router(cfg_.numExperts, cfg_.routing, cfg_.seed, cfg_.zipfS);

    double router_total = 0.0, switch_total = 0.0, exec_total = 0.0;
    std::int64_t prompts = 0, misses = 0;

    double per_prompt_exec =
        costs_.prefillSeconds +
        cfg_.outputTokens * costs_.decodeSecondsPerToken;
    if (cfg_.specDecode.enabled) {
        // Closed-form counterpart of the event-driven per-request
        // sampler: expected steps at the configured acceptance rate,
        // each step paying one target verification plus gamma draft
        // tokens at draftRatio of the target's decode cost.
        runtime::SpecDecodeConfig sd;
        sd.gamma = cfg_.specDecode.gamma;
        sd.acceptRate = cfg_.specDecode.acceptRate;
        double steps = cfg_.outputTokens / sd.expectedTokensPerStep();
        double step_seconds = costs_.decodeSecondsPerToken *
            (1.0 + sd.gamma * cfg_.specDecode.draftRatio);
        per_prompt_exec = costs_.prefillSeconds + steps * step_seconds;
    }

    for (int r = 0; r < cfg_.requests; ++r) {
        router_total += costs_.routerSeconds;
        for (int b = 0; b < cfg_.batch; ++b) {
            ++prompts;
            int expert = router.route();
            Activation act = runtime.activate(expert);
            if (!act.hit) {
                ++misses;
                double bytes = act.bytesToLoad + act.bytesToWriteBack;
                double copy = costs_.switchSeconds *
                    (bytes / zoo.expert(expert).bytes);
                if (cfg_.predictivePrefetch) {
                    // The copy overlaps the router (first prompt) or
                    // the previous prompt's execution (later prompts);
                    // only the remainder is exposed.
                    double hide = b == 0 ? costs_.routerSeconds
                                         : per_prompt_exec;
                    copy = std::max(0.0, copy - hide);
                }
                switch_total += copy;
            }
            exec_total += per_prompt_exec;
        }
    }

    double batches = static_cast<double>(cfg_.requests);
    result.perBatch.routerSeconds = router_total / batches;
    result.perBatch.switchSeconds = switch_total / batches;
    result.perBatch.execSeconds = exec_total / batches;
    result.missRate =
        static_cast<double>(misses) / static_cast<double>(prompts);
    result.expertSecondsPerPrompt = per_prompt_exec;
    return result;
}

ServingResult
ServingSimulator::runEventDriven()
{
    ServingResult result;

    ExpertZoo zoo = buildServingZoo(cfg_);
    result.residentCapacityExperts = static_cast<int>(
        static_cast<double>(
            ServingEngine::effectiveExpertRegionBytes(cfg_, costs_)) /
        zoo.maxExpertBytes());

    double backing = zoo.totalBytes();
    if (cfg_.zoo.enabled)
        backing += cfg_.expertBase.weightBytes();
    if (backing > costs_.capacityBytes) {
        result.oom = true;
        return result;
    }

    sim::EventQueue eq;

    // The node serving stack itself (admission queue, continuous
    // batching, expert DMA, speculative prefetch) lives in
    // ServingEngine so a cluster can run many of them on one queue;
    // the arrival process and routing decisions live in a pluggable
    // WorkloadModel (coe/workload.h). The legacy Poisson/closed-loop
    // modes are expressed as models that reproduce the historical
    // event-creation order bit-identically.
    ServingEngine engine(eq, cfg_, costs_, std::move(zoo));
    std::unique_ptr<WorkloadModel> workload = makeWorkloadModel(cfg_);
    TraceRecorder recorder(cfg_.workload.traceOut);

    engine.setOnBatchComplete(
        [&](int finished) { workload->onBatchComplete(finished); });
    engine.setOnRequestComplete([&](const EngineRequest &r) {
        workload->onRequestComplete(toTrafficRequest(r));
    });
    engine.setOnRequestShed([&](const EngineRequest &r) {
        workload->onRequestShed(toTrafficRequest(r));
    });
    workload->bind(eq, [&](const TrafficRequest &r) {
        recorder.record(r, eq.now());
        engine.inject(r);
    });
    workload->start();

    eq.run();
    sim::simAssert(engine.queueDepth() == 0 && !engine.busy(),
                   "serving: event stream drained with work pending");
    sim::simAssert(workload->emitted() == workload->plannedRequests(),
                   "serving: workload did not emit its full budget");
    sim::simAssert(engine.completedCount() + engine.shedCount() ==
                       workload->emitted(),
                   "serving: arrivals != completions + shed at drain");
    sim::simAssert(engine.memorySystem().queuedLoads() == 0 &&
                       engine.memorySystem().loadsInFlight() == 0,
                   "serving: DMA queue drained with transfers pending");
    recorder.write();

    latency_ = engine.latency();
    stalls_ = engine.stalls();
    stats_ = engine.stats();

    std::int64_t completed = engine.completedCount();
    std::int64_t batches = engine.batchCount();
    std::int64_t misses = engine.missCount();
    double makespan = sim::toSeconds(
        engine.lastCompletion() -
        std::max<sim::Tick>(engine.firstArrival(), 0));

    StreamMetrics &m = result.stream;
    m.p50LatencySeconds = latency_.quantile(0.50);
    m.p95LatencySeconds = latency_.quantile(0.95);
    m.p99LatencySeconds = latency_.quantile(0.99);
    m.meanLatencySeconds = latency_.mean();
    m.maxLatencySeconds = latency_.max();
    m.completed = completed;
    m.batches = batches;
    m.meanBatchOccupancy = batches > 0
        ? engine.occupancyTotal() / static_cast<double>(batches)
        : 0.0;
    m.makespanSeconds = makespan;
    if (makespan > 0.0) {
        m.throughputRequestsPerSec =
            static_cast<double>(completed) / makespan;
        m.throughputTokensPerSec = m.throughputRequestsPerSec *
            static_cast<double>(cfg_.outputTokens);
        m.meanQueueDepth = engine.depthIntegral() / makespan;
    }
    m.maxQueueDepth = engine.queueDepthMax();
    m.eventsExecuted = eq.executedCount();

    m.meanSwitchStallSeconds = stalls_.mean();
    m.p95SwitchStallSeconds = stalls_.quantile(0.95);
    m.prefetchesIssued =
        static_cast<std::int64_t>(stats_.get("prefetches_issued"));
    m.prefetchHits =
        static_cast<std::int64_t>(stats_.get("prefetch_hits"));
    m.prefetchesCancelled =
        static_cast<std::int64_t>(stats_.get("prefetches_cancelled"));

    if (cfg_.specDecode.enabled) {
        m.specSteps = engine.specStepsTotal();
        m.specTokensPerStep = m.specSteps > 0
            ? static_cast<double>(completed) *
                static_cast<double>(cfg_.outputTokens) /
                static_cast<double>(m.specSteps)
            : 0.0;
        stats_.set("spec_steps", static_cast<double>(m.specSteps));
    }

    m.shed = engine.shedCount();
    m.shedRate = completed + m.shed > 0
        ? static_cast<double>(m.shed) /
            static_cast<double>(completed + m.shed)
        : 0.0;

    stats_.set("shed", static_cast<double>(m.shed));
    stats_.set("queue_depth_max", engine.queueDepthMax());
    stats_.set("events_executed",
               static_cast<double>(eq.executedCount()));
    stats_.set("batches", static_cast<double>(batches));
    stats_.set("completed", static_cast<double>(completed));
    stats_.set("misses", static_cast<double>(misses));
    stats_.set("hits", static_cast<double>(completed - misses));
    stats_.set("dma_loads_issued",
               engine.memorySystem().stats().get("issued_loads"));
    stats_.set("dma_load_bytes",
               engine.memorySystem().stats().get("load_bytes"));

    double b = static_cast<double>(std::max<std::int64_t>(batches, 1));
    result.perBatch.routerSeconds = engine.routerSecondsTotal() / b;
    result.perBatch.switchSeconds = engine.switchSecondsTotal() / b;
    result.perBatch.execSeconds = engine.execSecondsTotal() / b;
    result.missRate = completed > 0
        ? static_cast<double>(misses) / static_cast<double>(completed)
        : 0.0;
    result.expertSecondsPerPrompt =
        costs_.prefillSeconds +
        cfg_.outputTokens * costs_.decodeSecondsPerToken;
    return result;
}

} // namespace sn40l::coe
