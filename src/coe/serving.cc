#include "coe/serving.h"

#include <algorithm>

#include "baseline/gpu_executor.h"
#include "runtime/runner.h"
#include "sim/log.h"

namespace sn40l::coe {

const char *
platformName(Platform platform)
{
    switch (platform) {
      case Platform::Sn40l: return "SN40L-Node";
      case Platform::DgxA100: return "DGX-A100";
      case Platform::DgxH100: return "DGX-H100";
    }
    sim::panic("platformName: unknown platform");
}

ServingSimulator::ServingSimulator(ServingConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.numExperts <= 0 || cfg_.batch <= 0 || cfg_.requests <= 0)
        sim::fatal("ServingConfig: non-positive counts");
    computeCosts();
}

void
ServingSimulator::computeCosts()
{
    using models::Phase;
    using models::WorkloadSpec;

    WorkloadSpec prefill;
    prefill.model = cfg_.expertBase;
    prefill.phase = Phase::Prefill;
    prefill.batch = 1;
    prefill.seqLen = cfg_.promptLen;
    prefill.tensorParallel = cfg_.tensorParallel;

    WorkloadSpec decode = prefill;
    decode.phase = Phase::Decode;

    // The router is a 7B specialist: one batched prefill plus one
    // decode step to emit the expert choice.
    WorkloadSpec router_prefill = prefill;
    router_prefill.batch = cfg_.batch;
    WorkloadSpec router_decode = decode;
    router_decode.batch = cfg_.batch;

    graph::DataflowGraph g_prefill = buildTransformer(prefill);
    graph::DataflowGraph g_decode = buildTransformer(decode);
    graph::DataflowGraph g_router_p = buildTransformer(router_prefill);
    graph::DataflowGraph g_router_d = buildTransformer(router_decode);

    double expert_bytes = cfg_.expertBase.weightBytes();

    if (cfg_.platform == Platform::Sn40l) {
        arch::NodeConfig node =
            arch::NodeConfig::sn40lNode(cfg_.tensorParallel);

        auto seconds = [&](const graph::DataflowGraph &g) {
            return runtime::runWorkload(g, node, cfg_.tensorParallel,
                                        runtime::RunConfig::FusedHO)
                .seconds();
        };
        costs_.prefillSeconds = seconds(g_prefill);
        costs_.decodeSecondsPerToken = seconds(g_decode);
        costs_.routerSeconds = seconds(g_router_p) + seconds(g_router_d);

        sim::EventQueue eq;
        runtime::RduNode machine(eq, node);
        costs_.switchSeconds =
            sim::toSeconds(machine.estimateDdrToHbm(expert_bytes));

        // HBM region for experts: node HBM minus the router's weights
        // and a KV/activation reserve (Fig 9's "Router Region").
        double reserve = cfg_.expertBase.weightBytes() + 16e9;
        costs_.expertRegionBytes = static_cast<std::int64_t>(
            static_cast<double>(node.totalHbmBytes()) - reserve);

        // Backing capacity: node DDR minus a runtime reserve.
        costs_.capacityBytes =
            static_cast<double>(node.totalDdrBytes()) - 256e9;
        return;
    }

    baseline::DgxConfig dgx = cfg_.platform == Platform::DgxA100
        ? baseline::DgxConfig::dgxA100()
        : baseline::DgxConfig::dgxH100();
    baseline::GpuExecutor executor(dgx);

    costs_.prefillSeconds = executor.run(g_prefill).seconds;
    costs_.decodeSecondsPerToken = executor.run(g_decode).seconds;
    costs_.routerSeconds = executor.run(g_router_p).seconds +
                           executor.run(g_router_d).seconds;

    // Expert switch: host DRAM -> GPU HBM over the host link.
    costs_.switchSeconds = expert_bytes / dgx.hostToGpuBandwidth;
    costs_.expertRegionBytes = dgx.usableHbmBytes();
    costs_.capacityBytes =
        static_cast<double>(dgx.expertCapacityBytes());
}

ServingResult
ServingSimulator::run()
{
    ServingResult result;

    ExpertZoo zoo = ExpertZoo::uniform(cfg_.numExperts, cfg_.expertBase);
    result.residentCapacityExperts = static_cast<int>(
        static_cast<double>(costs_.expertRegionBytes) /
        zoo.maxExpertBytes());

    if (zoo.totalBytes() > costs_.capacityBytes) {
        result.oom = true;
        return result;
    }

    CoeRuntime runtime(zoo, costs_.expertRegionBytes);
    Router router(cfg_.numExperts, cfg_.routing, cfg_.seed);

    double router_total = 0.0, switch_total = 0.0, exec_total = 0.0;
    std::int64_t prompts = 0, misses = 0;

    double per_prompt_exec =
        costs_.prefillSeconds +
        cfg_.outputTokens * costs_.decodeSecondsPerToken;

    for (int r = 0; r < cfg_.requests; ++r) {
        router_total += costs_.routerSeconds;
        for (int b = 0; b < cfg_.batch; ++b) {
            ++prompts;
            int expert = router.route();
            Activation act = runtime.activate(expert);
            if (!act.hit) {
                ++misses;
                double bytes = act.bytesToLoad + act.bytesToWriteBack;
                double copy = costs_.switchSeconds *
                    (bytes / zoo.expert(expert).bytes);
                if (cfg_.predictivePrefetch) {
                    // The copy overlaps the router (first prompt) or
                    // the previous prompt's execution (later prompts);
                    // only the remainder is exposed.
                    double hide = b == 0 ? costs_.routerSeconds
                                         : per_prompt_exec;
                    copy = std::max(0.0, copy - hide);
                }
                switch_total += copy;
            }
            exec_total += per_prompt_exec;
        }
    }

    double batches = static_cast<double>(cfg_.requests);
    result.perBatch.routerSeconds = router_total / batches;
    result.perBatch.switchSeconds = switch_total / batches;
    result.perBatch.execSeconds = exec_total / batches;
    result.missRate =
        static_cast<double>(misses) / static_cast<double>(prompts);
    result.expertSecondsPerPrompt = per_prompt_exec;
    return result;
}

} // namespace sn40l::coe
