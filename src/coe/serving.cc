#include "coe/serving.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/gpu_executor.h"
#include "coe/cost_cache.h"
#include "runtime/runner.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/ticks.h"

namespace sn40l::coe {

const char *
platformName(Platform platform)
{
    switch (platform) {
      case Platform::Sn40l: return "SN40L-Node";
      case Platform::DgxA100: return "DGX-A100";
      case Platform::DgxH100: return "DGX-H100";
    }
    sim::panic("platformName: unknown platform");
}

const char *
schedulerPolicyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Fifo: return "fifo";
      case SchedulerPolicy::ExpertAffinity: return "affinity";
    }
    sim::panic("schedulerPolicyName: unknown policy");
}

SchedulerPolicy
schedulerPolicyFromName(const std::string &name)
{
    if (name == "fifo")
        return SchedulerPolicy::Fifo;
    if (name == "affinity" || name == "expert-affinity")
        return SchedulerPolicy::ExpertAffinity;
    sim::fatal("unknown scheduler policy '" + name +
               "' (expected fifo or affinity)");
}

ServingSimulator::ServingSimulator(ServingConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.numExperts <= 0 || cfg_.batch <= 0 || cfg_.requests <= 0)
        sim::fatal("ServingConfig: non-positive counts");
    if (cfg_.mode == ServingMode::EventDriven) {
        if (cfg_.streamRequests <= 0)
            sim::fatal("ServingConfig: non-positive streamRequests");
        if (cfg_.arrival == ArrivalProcess::Poisson &&
            cfg_.arrivalRatePerSec <= 0.0)
            sim::fatal("ServingConfig: non-positive arrival rate");
        if (cfg_.arrival == ArrivalProcess::ClosedLoop && cfg_.clients <= 0)
            sim::fatal("ServingConfig: non-positive client count");
        if (cfg_.thinkSeconds < 0.0)
            sim::fatal("ServingConfig: negative think time");
        if (cfg_.dmaEngines <= 0)
            sim::fatal("ServingConfig: need at least one DMA engine");
        if (cfg_.prefetchDepth < 0)
            sim::fatal("ServingConfig: negative prefetch depth");
        if (cfg_.prefetchWindow < 0)
            sim::fatal("ServingConfig: negative prefetch window");
    }
    if (cfg_.expertRegionBytes < 0)
        sim::fatal("ServingConfig: negative expert region size");
    computeCosts();
    if (cfg_.expertRegionBytes > 0)
        costs_.expertRegionBytes = cfg_.expertRegionBytes;
}

void
ServingSimulator::computeCosts()
{
    using models::Phase;
    using models::WorkloadSpec;

    WorkloadSpec prefill;
    prefill.model = cfg_.expertBase;
    prefill.phase = Phase::Prefill;
    prefill.batch = 1;
    prefill.seqLen = cfg_.promptLen;
    prefill.tensorParallel = cfg_.tensorParallel;

    WorkloadSpec decode = prefill;
    decode.phase = Phase::Decode;

    // The router is a 7B specialist: one batched prefill plus one
    // decode step to emit the expert choice.
    WorkloadSpec router_prefill = prefill;
    router_prefill.batch = cfg_.batch;
    WorkloadSpec router_decode = decode;
    router_decode.batch = cfg_.batch;

    double expert_bytes = cfg_.expertBase.weightBytes();

    if (cfg_.platform == Platform::Sn40l) {
        arch::NodeConfig node =
            arch::NodeConfig::sn40lNode(cfg_.tensorParallel);

        // Priced through the process-wide memo: a sweep re-prices the
        // same four graph shapes for every (seed, rate, experts)
        // point, and graph build + compile + machine walk is the
        // expensive part. Cache misses build the graph lazily.
        auto seconds = [&](const WorkloadSpec &spec) {
            return CostModelCache::instance().seconds(
                workloadCostKey("sn40l", spec), [&]() {
                    graph::DataflowGraph g = buildTransformer(spec);
                    return runtime::runWorkload(g, node,
                                                cfg_.tensorParallel,
                                                runtime::RunConfig::FusedHO)
                        .seconds();
                });
        };
        costs_.prefillSeconds = seconds(prefill);
        costs_.decodeSecondsPerToken = seconds(decode);
        costs_.routerSeconds =
            seconds(router_prefill) + seconds(router_decode);

        sim::EventQueue eq;
        runtime::RduNode machine(eq, node);
        costs_.switchSeconds =
            sim::toSeconds(machine.estimateDdrToHbm(expert_bytes));

        // HBM region for experts: node HBM minus the router's weights
        // and a KV/activation reserve (Fig 9's "Router Region").
        double reserve = cfg_.expertBase.weightBytes() + 16e9;
        costs_.expertRegionBytes = static_cast<std::int64_t>(
            static_cast<double>(node.totalHbmBytes()) - reserve);

        // Backing capacity: node DDR minus a runtime reserve.
        costs_.capacityBytes =
            static_cast<double>(node.totalDdrBytes()) - 256e9;
        return;
    }

    baseline::DgxConfig dgx = cfg_.platform == Platform::DgxA100
        ? baseline::DgxConfig::dgxA100()
        : baseline::DgxConfig::dgxH100();
    baseline::GpuExecutor executor(dgx);

    // GpuExecutor::run memoizes on the graph fingerprint; the outer
    // memo additionally skips rebuilding the graph on repeat shapes.
    auto seconds = [&](const WorkloadSpec &spec) {
        return CostModelCache::instance().seconds(
            workloadCostKey(platformName(cfg_.platform), spec), [&]() {
                return executor.run(buildTransformer(spec)).seconds;
            });
    };
    costs_.prefillSeconds = seconds(prefill);
    costs_.decodeSecondsPerToken = seconds(decode);
    costs_.routerSeconds = seconds(router_prefill) + seconds(router_decode);

    // Expert switch: host DRAM -> GPU HBM over the host link.
    costs_.switchSeconds = expert_bytes / dgx.hostToGpuBandwidth;
    costs_.expertRegionBytes = dgx.usableHbmBytes();
    costs_.capacityBytes =
        static_cast<double>(dgx.expertCapacityBytes());
}

namespace {

/**
 * Shape the three-tier memory system after the serving platform: the
 * SN40L streams experts from node DDR (one DDR and one HBM channel
 * group per socket), the DGX baselines from host DRAM over the single
 * host link into the GPUs' pooled HBM.
 */
mem::MemorySystemConfig
platformMemoryConfig(const ServingConfig &cfg)
{
    if (cfg.memoryOverride)
        return *cfg.memoryOverride;

    mem::MemorySystemConfig m;
    m.dmaEngines = cfg.dmaEngines;
    if (cfg.platform == Platform::Sn40l) {
        arch::NodeConfig node =
            arch::NodeConfig::sn40lNode(cfg.tensorParallel);
        m.ddr.channels = node.sockets;
        m.ddr.perChannelBandwidth = node.chip.ddrBandwidth;
        m.ddr.efficiency = node.chip.ddrEfficiency;
        m.hbm.channels = node.sockets;
        m.hbm.perChannelBandwidth = node.chip.hbmBandwidth;
        m.hbm.efficiency = node.chip.hbmEfficiency;
    } else {
        baseline::DgxConfig dgx = cfg.platform == Platform::DgxA100
            ? baseline::DgxConfig::dgxA100()
            : baseline::DgxConfig::dgxH100();
        m.ddr.channels = 1; // the host link serializes every copy
        m.ddr.perChannelBandwidth = dgx.hostToGpuBandwidth;
        m.ddr.efficiency = 1.0;
        m.hbm.channels = dgx.gpus;
        m.hbm.perChannelBandwidth = dgx.gpu.hbmBandwidth;
        m.hbm.efficiency = dgx.gpu.hbmEfficiency;
    }
    return m;
}

} // namespace

ServingResult
ServingSimulator::run()
{
    return cfg_.mode == ServingMode::EventDriven ? runEventDriven()
                                                 : runAnalytic();
}

ServingResult
ServingSimulator::runAnalytic()
{
    ServingResult result;

    ExpertZoo zoo = ExpertZoo::uniform(cfg_.numExperts, cfg_.expertBase);
    result.residentCapacityExperts = static_cast<int>(
        static_cast<double>(costs_.expertRegionBytes) /
        zoo.maxExpertBytes());

    if (zoo.totalBytes() > costs_.capacityBytes) {
        result.oom = true;
        return result;
    }

    CoeRuntime runtime(zoo, costs_.expertRegionBytes);
    Router router(cfg_.numExperts, cfg_.routing, cfg_.seed, cfg_.zipfS);

    double router_total = 0.0, switch_total = 0.0, exec_total = 0.0;
    std::int64_t prompts = 0, misses = 0;

    double per_prompt_exec =
        costs_.prefillSeconds +
        cfg_.outputTokens * costs_.decodeSecondsPerToken;

    for (int r = 0; r < cfg_.requests; ++r) {
        router_total += costs_.routerSeconds;
        for (int b = 0; b < cfg_.batch; ++b) {
            ++prompts;
            int expert = router.route();
            Activation act = runtime.activate(expert);
            if (!act.hit) {
                ++misses;
                double bytes = act.bytesToLoad + act.bytesToWriteBack;
                double copy = costs_.switchSeconds *
                    (bytes / zoo.expert(expert).bytes);
                if (cfg_.predictivePrefetch) {
                    // The copy overlaps the router (first prompt) or
                    // the previous prompt's execution (later prompts);
                    // only the remainder is exposed.
                    double hide = b == 0 ? costs_.routerSeconds
                                         : per_prompt_exec;
                    copy = std::max(0.0, copy - hide);
                }
                switch_total += copy;
            }
            exec_total += per_prompt_exec;
        }
    }

    double batches = static_cast<double>(cfg_.requests);
    result.perBatch.routerSeconds = router_total / batches;
    result.perBatch.switchSeconds = switch_total / batches;
    result.perBatch.execSeconds = exec_total / batches;
    result.missRate =
        static_cast<double>(misses) / static_cast<double>(prompts);
    result.expertSecondsPerPrompt = per_prompt_exec;
    return result;
}

namespace {

/** One in-flight prompt in the event-driven stream. */
struct StreamRequest
{
    int id = 0;
    sim::Tick arrival = 0;
    int expert = 0;
    /**
     * Batch-formation count at enqueue time. A request's age in
     * batches (the affinity starvation guard) is derived as
     * "formations completed since" instead of bumping a counter on
     * every queued request per batch — the bump was O(queue) per
     * batch and made overloaded runs quadratic.
     */
    std::int64_t enqueuedAtBatch = 0;
};

} // namespace

ServingResult
ServingSimulator::runEventDriven()
{
    ServingResult result;

    ExpertZoo zoo = ExpertZoo::uniform(cfg_.numExperts, cfg_.expertBase);
    result.residentCapacityExperts = static_cast<int>(
        static_cast<double>(costs_.expertRegionBytes) /
        zoo.maxExpertBytes());

    if (zoo.totalBytes() > costs_.capacityBytes) {
        result.oom = true;
        return result;
    }

    // A batch pins its experts for the whole execution, and issued
    // prefetches are unevictable while streaming; the region must be
    // able to hold that concurrent working set or demand activation
    // deadlocks.
    int pinnable = cfg_.batch +
        (cfg_.predictivePrefetch ? cfg_.dmaEngines : 0);
    if (result.residentCapacityExperts < pinnable)
        sim::fatal("ServingConfig: expert region holds " +
                   std::to_string(result.residentCapacityExperts) +
                   " experts but a batch can pin " +
                   std::to_string(pinnable) +
                   "; shrink --batch or grow --expert-region-gb");

    CoeRuntime runtime(zoo, costs_.expertRegionBytes);
    Router router(cfg_.numExperts, cfg_.routing, cfg_.seed, cfg_.zipfS);
    sim::Rng arrivals(cfg_.seed ^ 0xa55a5aa5a55a5aa5ULL);
    sim::EventQueue eq;
    mem::MemorySystem memsys(eq, "memsys", platformMemoryConfig(cfg_));

    latency_.clear();
    stalls_.clear();
    stats_ = sim::StatSet("serving");

    const double per_prompt_exec =
        costs_.prefillSeconds +
        cfg_.outputTokens * costs_.decodeSecondsPerToken;

    // HBM bytes one prompt's execution streams through the working
    // tier: the weights once for prefill, then once per decoded token
    // — the traffic the expert DMA engines contend with.
    const double traffic_bytes_per_prompt =
        (1.0 + cfg_.outputTokens) * cfg_.expertBase.weightBytes();

    // Backing-tier layout: experts packed contiguously in DDR.
    std::vector<std::int64_t> ddr_offset(
        static_cast<std::size_t>(zoo.size()), 0);
    {
        std::int64_t cursor = 0;
        for (int e = 0; e < zoo.size(); ++e) {
            ddr_offset[static_cast<std::size_t>(e)] = cursor;
            cursor += static_cast<std::int64_t>(zoo.expert(e).bytes);
        }
    }

    // ---- admission queue ----------------------------------------
    // Request ids are assigned in arrival order, so an id-ordered map
    // IS the FIFO view: begin() is the oldest queued request, erase
    // from any position is O(log queue), and iteration walks arrival
    // order. Batch formation removes from arbitrary positions, so a
    // plain deque (with O(queue) mid-erase, plus the old per-batch
    // aging walk) made overloaded runs quadratic.
    std::map<int, StreamRequest> queued;
    bool busy = false;
    int injected = 0;
    std::int64_t completed = 0;
    std::int64_t misses = 0;
    double router_total = 0.0, switch_total = 0.0, exec_total = 0.0;
    double occupancy_total = 0.0;
    std::int64_t batches = 0;
    sim::Tick first_arrival = -1, last_completion = 0;

    // Per-expert view of the queue (ExpertAffinity only): ordered ids
    // of queued requests, maintained on enqueue/dequeue so batch
    // formation inspects O(distinct experts) instead of walking the
    // whole queue per batch.
    const bool affinity =
        cfg_.scheduler == SchedulerPolicy::ExpertAffinity;
    std::map<int, std::set<int>> queued_by_expert;

    auto erase_request = [&](int id, int expert) {
        queued.erase(id);
        if (affinity) {
            auto it = queued_by_expert.find(expert);
            it->second.erase(id);
            if (it->second.empty())
                queued_by_expert.erase(it);
        }
    };

    // ---- async expert-load state --------------------------------
    // Outstanding DMA per expert (demand or speculative).
    std::map<int, mem::TransferId> transfer_of;
    std::set<int> prefetch_outstanding; ///< speculative subset
    std::set<int> prefetch_ready; ///< landed speculations, unused yet
    std::set<int> awaited;        ///< experts the formed batch waits on
    int pending_loads = 0;
    bool router_done = false;
    sim::Tick batch_start = 0;
    sim::Tick exec_start = 0;
    std::size_t exec_index = 0;
    std::vector<StreamRequest> cur_batch;
    std::vector<int> cur_batch_experts; ///< pinned for the batch

    // Time-weighted queue-depth integral.
    sim::Tick depth_mark = 0;
    double depth_integral = 0.0;
    double queue_depth_max = 0.0;
    auto touch_depth = [&](std::size_t next_depth) {
        depth_integral += static_cast<double>(queued.size()) *
            sim::toSeconds(eq.now() - depth_mark);
        depth_mark = eq.now();
        queue_depth_max =
            std::max(queue_depth_max, static_cast<double>(next_depth));
    };

    /**
     * Pick the expert the next batch serves (ExpertAffinity policy).
     * Preference order: a starving request's expert, then the
     * best-backed resident expert (no switch needed), then the
     * most-queued expert overall. Ties break toward the oldest
     * queued request so the policy stays deterministic.
     *
     * Called mid-formation, after `batches` was bumped for the batch
     * being formed, so a queued request's age is (batches - 1) minus
     * its enqueue mark. The queue is FIFO-ordered by id (requests
     * only leave from arbitrary positions, never reorder), so the
     * front request is simultaneously the oldest and the lowest id:
     * if anyone has aged past the guard, the front has, and it is the
     * one the old linear scan would have picked.
     */
    auto pick_expert = [&]() -> int {
        const StreamRequest &front = queued.begin()->second;
        if (batches - 1 - front.enqueuedAtBatch >= cfg_.affinityMaxSkips) {
            stats_.inc("affinity_starvation_overrides");
            return front.expert;
        }

        int best = -1;
        bool best_resident = false;
        int best_count = 0;
        int best_oldest = 0;
        for (const auto &kv : queued_by_expert) {
            int count = static_cast<int>(kv.second.size());
            if (count == 0)
                continue;
            int oldest = *kv.second.begin();
            bool res = runtime.resident(kv.first);
            bool better;
            if (best < 0) {
                better = true;
            } else if (res != best_resident) {
                better = res;
            } else if (count != best_count) {
                better = count > best_count;
            } else {
                better = oldest < best_oldest;
            }
            if (better) {
                best = kv.first;
                best_resident = res;
                best_count = count;
                best_oldest = oldest;
            }
        }
        return best;
    };

    // Forward declarations: the pipeline stages chain through the
    // event queue (arrival -> batch formation -> router + expert DMA
    // -> execution -> completion), and speculation hooks in from
    // several of them.
    std::function<void()> form_batch;
    std::function<void()> maybe_launch;
    std::function<void()> run_next_prompt;
    std::function<void()> maybe_prefetch;
    std::function<void(int)> on_load_done;

    // Eviction pressure reclaims speculative reservations: cancel the
    // queued DMA if it has not been issued yet.
    runtime.setPrefetchCancelHook([&](int e) {
        auto it = transfer_of.find(e);
        if (it == transfer_of.end())
            return true;
        if (!memsys.cancel(it->second))
            return false; // already streaming; it will land
        transfer_of.erase(it);
        prefetch_outstanding.erase(e);
        stats_.inc("prefetches_cancelled");
        return true;
    });
    runtime.setEvictionHook([&](int e) { prefetch_ready.erase(e); });

    on_load_done = [&](int e) {
        runtime.completeLoad(e);
        transfer_of.erase(e);
        if (awaited.erase(e) > 0) {
            --pending_loads;
            prefetch_outstanding.erase(e);
            maybe_launch();
            return;
        }
        if (prefetch_outstanding.erase(e) > 0)
            prefetch_ready.insert(e);
    };

    /**
     * Speculative prefetch (predictivePrefetch, EventDriven flavour):
     * the router's decision for queued-but-unscheduled requests is
     * already known, so stream their experts DDR->HBM at low priority
     * while the current batch computes. Reservations never evict;
     * demand pressure cancels them instead.
     */
    maybe_prefetch = [&]() {
        if (!cfg_.predictivePrefetch)
            return;
        // Optional speculation window (cfg.prefetchWindow > 0):
        // inspect at most that many queued requests from the front.
        // The default full walk matches the historical behaviour but
        // is O(queue) per arrival when the head of a deep queue is
        // all resident experts; overloaded prefetch sweeps should
        // bound it.
        int inspected = 0;
        for (const auto &kv : queued) {
            if (cfg_.prefetchWindow > 0 &&
                ++inspected > cfg_.prefetchWindow)
                break;
            const StreamRequest &r = kv.second;
            if (static_cast<int>(prefetch_outstanding.size()) >=
                cfg_.prefetchDepth)
                break;
            if (runtime.resident(r.expert))
                continue;
            auto act = runtime.beginPrefetch(r.expert);
            if (!act)
                break; // no free region block: stop speculating
            stats_.inc("prefetches_issued");
            int e = r.expert;
            transfer_of[e] = memsys.load(
                ddr_offset[static_cast<std::size_t>(e)], act->hbmOffset,
                act->bytesToLoad, mem::TransferPriority::Prefetch,
                [&, e]() { on_load_done(e); });
            prefetch_outstanding.insert(e);
        }
    };

    // Runs inside an arrival event: admit request @p id to the queue
    // and kick the scheduler if the pipeline is idle.
    auto inject = [&](int id) {
        touch_depth(queued.size() + 1);
        StreamRequest req;
        req.id = id;
        req.arrival = eq.now();
        req.expert = router.route();
        req.enqueuedAtBatch = batches;
        if (first_arrival < 0)
            first_arrival = eq.now();
        if (affinity)
            queued_by_expert[req.expert].insert(req.id);
        queued.emplace(id, req);
        if (!busy)
            form_batch();
        else
            maybe_prefetch();
    };

    auto finish_batch = [&]() {
        for (int e : cur_batch_experts)
            runtime.unpin(e);
        cur_batch_experts.clear();

        last_completion = eq.now();
        for (const StreamRequest &r : cur_batch) {
            latency_.record(sim::toSeconds(eq.now() - r.arrival));
            ++completed;
        }
        std::size_t finished = cur_batch.size();
        cur_batch.clear();
        busy = false;
        if (cfg_.arrival == ArrivalProcess::ClosedLoop) {
            // Each finished client thinks, then issues a new prompt.
            for (std::size_t i = 0; i < finished; ++i) {
                if (injected >= cfg_.streamRequests)
                    break;
                int id = injected++;
                eq.scheduleIn(sim::fromSeconds(cfg_.thinkSeconds),
                              [&, id]() { inject(id); }, "coe.arrival");
            }
        }
        if (!queued.empty())
            form_batch();
    };

    /**
     * Execute the batch's prompts back to back. Each prompt holds the
     * pipeline for its modeled compute time AND until its HBM weight
     * streaming drains — on a contended working tier (prefetch DMA
     * writing behind it) the traffic side finishes later and the
     * slowdown is real, not a closed-form adjustment.
     */
    // Join counter for the in-flight prompt's (compute, HBM-traffic)
    // pair. Prompts execute strictly one at a time, so a single
    // counter replaces a per-prompt heap-allocated control block.
    int prompt_join_pending = 0;
    auto prompt_join = [&]() {
        if (--prompt_join_pending == 0)
            run_next_prompt();
    };
    run_next_prompt = [&]() {
        if (exec_index >= cur_batch.size()) {
            exec_total += sim::toSeconds(eq.now() - exec_start);
            finish_batch();
            return;
        }
        ++exec_index;
        prompt_join_pending = 2;
        eq.scheduleIn(sim::fromSeconds(per_prompt_exec), prompt_join,
                      "coe.prompt_exec");
        memsys.traffic(traffic_bytes_per_prompt, prompt_join);
    };

    // Launch once the router has decided AND every non-resident
    // expert's DMA has landed; the exposed remainder beyond the
    // router is the batch's switch stall.
    maybe_launch = [&]() {
        if (!router_done || pending_loads > 0)
            return;
        double stall = std::max(
            0.0, sim::toSeconds(eq.now() - batch_start) -
                     costs_.routerSeconds);
        stalls_.record(stall);
        switch_total += stall;
        exec_start = eq.now();
        exec_index = 0;
        run_next_prompt();
    };

    form_batch = [&]() {
        if (queued.empty() || busy)
            return;
        busy = true;
        ++batches;
        // Close the depth integral at the pre-batch depth before the
        // batch drains the queue (no simulated time passes in here).
        touch_depth(queued.size());

        const std::size_t cap = static_cast<std::size_t>(cfg_.batch);
        std::vector<StreamRequest> batch;
        auto take_id = [&](int id) {
            const StreamRequest &r = queued.at(id);
            batch.push_back(r);
            erase_request(id, r.expert);
        };
        if (!affinity) {
            while (!queued.empty() && batch.size() < cap)
                take_id(queued.begin()->first);
        } else {
            // Take every queued request for the chosen expert, then
            // backfill spare slots with requests whose experts are
            // already resident (guaranteed-hit co-tenants), then with
            // whatever is oldest so the batch never runs emptier than
            // FIFO would. Each pass selects oldest-first (ids are
            // arrival-ordered), exactly as the historical FIFO walk
            // did, but through the per-expert index so formation cost
            // scales with distinct experts, not queue depth.
            int expert = pick_expert();
            while (batch.size() < cap) {
                // Re-find per take: erase_request drops the expert's
                // entry (invalidating iterators) once its last queued
                // request is taken.
                auto it = queued_by_expert.find(expert);
                if (it == queued_by_expert.end())
                    break;
                take_id(*it->second.begin());
            }
            // Pass 2: oldest requests across resident experts. The
            // resident set cannot change mid-formation, so repeatedly
            // taking the minimum id over resident experts' ordered id
            // sets reproduces the old front-to-back resident scan.
            while (batch.size() < cap) {
                int best_id = -1;
                for (const auto &kv : queued_by_expert) {
                    if (!runtime.resident(kv.first))
                        continue;
                    int oldest = *kv.second.begin();
                    if (best_id < 0 || oldest < best_id)
                        best_id = oldest;
                }
                if (best_id < 0)
                    break;
                take_id(best_id);
            }
            // Pass 3: whatever is oldest overall.
            while (!queued.empty() && batch.size() < cap)
                take_id(queued.begin()->first);
        }
        depth_mark = eq.now();
        occupancy_total += static_cast<double>(batch.size());

        batch_start = eq.now();
        router_done = false;
        awaited.clear();
        pending_loads = 0;

        // Per-request accounting: the first request to touch a
        // non-loaded expert is the miss; same-batch co-tenants ride
        // along as hits (matching the synchronous LRU accounting).
        std::set<int> experts;
        for (const StreamRequest &r : batch) {
            if (!experts.insert(r.expert).second)
                continue;
            if (runtime.loaded(r.expert)) {
                if (prefetch_ready.erase(r.expert) > 0)
                    stats_.inc("prefetch_hits");
            } else {
                ++misses;
                if (runtime.inFlight(r.expert))
                    stats_.inc("prefetch_partial_hits");
            }
        }

        // Pass 1: activate (LRU-refresh) and pin every
        // already-resident expert. In-flight ones are promoted to
        // demand priority and awaited; pinning first keeps pass 2's
        // evictions away from this batch's experts.
        for (int e : experts) {
            if (!runtime.resident(e))
                continue;
            AsyncActivation act = runtime.activateAsync(e);
            runtime.pin(e);
            if (act.pending) {
                auto it = transfer_of.find(e);
                sim::simAssert(it != transfer_of.end(),
                               "serving: in-flight expert has no transfer");
                memsys.promote(it->second);
                prefetch_outstanding.erase(e);
                awaited.insert(e);
                ++pending_loads;
            }
        }
        // Pass 2: demand DMA for the absent experts. Activation may
        // evict cold residents or cancel speculative reservations;
        // pinned and Loading experts are never touched.
        for (int e : experts) {
            if (runtime.resident(e))
                continue;
            AsyncActivation act = runtime.activateAsync(e);
            runtime.pin(e);
            awaited.insert(e);
            ++pending_loads;
            transfer_of[e] = memsys.load(
                ddr_offset[static_cast<std::size_t>(e)], act.hbmOffset,
                act.bytesToLoad + act.bytesToWriteBack,
                mem::TransferPriority::Demand,
                [&, e]() { on_load_done(e); });
        }

        cur_batch = std::move(batch);
        cur_batch_experts.assign(experts.begin(), experts.end());

        router_total += costs_.routerSeconds;
        eq.scheduleIn(sim::fromSeconds(costs_.routerSeconds),
                      [&]() {
                          router_done = true;
                          maybe_launch();
                      },
                      "coe.router_done");
        maybe_prefetch();
    };

    // Open loop: each arrival draws the next inter-arrival gap and
    // schedules its successor, so only one arrival event is ever
    // pending — a million-request run does not pre-materialize a
    // million event-queue entries. The draw order matches the old
    // pre-drawn schedule exactly (the arrivals Rng feeds nothing
    // else), so arrival times are bit-identical.
    std::function<void()> next_arrival;
    double arrival_t = 0.0;
    next_arrival = [&]() {
        if (injected >= cfg_.streamRequests)
            return;
        arrival_t += -std::log(1.0 - arrivals.uniformDouble()) /
            cfg_.arrivalRatePerSec;
        int id = injected++;
        eq.schedule(sim::fromSeconds(arrival_t),
                    [&, id]() {
                        next_arrival();
                        inject(id);
                    },
                    "coe.arrival");
    };

    if (cfg_.arrival == ArrivalProcess::Poisson) {
        next_arrival();
    } else {
        int initial = std::min(cfg_.clients, cfg_.streamRequests);
        for (int i = 0; i < initial; ++i) {
            int id = injected++;
            eq.schedule(0, [&, id]() { inject(id); }, "coe.arrival");
        }
    }

    eq.run();
    sim::simAssert(queued.empty() && !busy,
                   "serving: event stream drained with work pending");
    sim::simAssert(completed == cfg_.streamRequests,
                   "serving: not every injected request completed");
    sim::simAssert(memsys.queuedLoads() == 0 && memsys.loadsInFlight() == 0,
                   "serving: DMA queue drained with transfers pending");

    double makespan =
        sim::toSeconds(last_completion - std::max<sim::Tick>(first_arrival, 0));

    StreamMetrics &m = result.stream;
    m.p50LatencySeconds = latency_.quantile(0.50);
    m.p95LatencySeconds = latency_.quantile(0.95);
    m.p99LatencySeconds = latency_.quantile(0.99);
    m.meanLatencySeconds = latency_.mean();
    m.maxLatencySeconds = latency_.max();
    m.completed = completed;
    m.batches = batches;
    m.meanBatchOccupancy = batches > 0
        ? occupancy_total / static_cast<double>(batches)
        : 0.0;
    m.makespanSeconds = makespan;
    if (makespan > 0.0) {
        m.throughputRequestsPerSec =
            static_cast<double>(completed) / makespan;
        m.throughputTokensPerSec = m.throughputRequestsPerSec *
            static_cast<double>(cfg_.outputTokens);
        m.meanQueueDepth = depth_integral / makespan;
    }
    m.maxQueueDepth = queue_depth_max;
    m.eventsExecuted = eq.executedCount();

    m.meanSwitchStallSeconds = stalls_.mean();
    m.p95SwitchStallSeconds = stalls_.quantile(0.95);
    m.prefetchesIssued =
        static_cast<std::int64_t>(stats_.get("prefetches_issued"));
    m.prefetchHits =
        static_cast<std::int64_t>(stats_.get("prefetch_hits"));
    m.prefetchesCancelled =
        static_cast<std::int64_t>(stats_.get("prefetches_cancelled"));

    stats_.set("queue_depth_max", queue_depth_max);
    stats_.set("events_executed",
               static_cast<double>(eq.executedCount()));
    stats_.set("batches", static_cast<double>(batches));
    stats_.set("completed", static_cast<double>(completed));
    stats_.set("misses", static_cast<double>(misses));
    stats_.set("hits", static_cast<double>(completed - misses));
    stats_.set("dma_loads_issued", memsys.stats().get("issued_loads"));
    stats_.set("dma_load_bytes", memsys.stats().get("load_bytes"));

    double b = static_cast<double>(std::max<std::int64_t>(batches, 1));
    result.perBatch.routerSeconds = router_total / b;
    result.perBatch.switchSeconds = switch_total / b;
    result.perBatch.execSeconds = exec_total / b;
    result.missRate = completed > 0
        ? static_cast<double>(misses) / static_cast<double>(completed)
        : 0.0;
    result.expertSecondsPerPrompt = per_prompt_exec;
    return result;
}

} // namespace sn40l::coe
