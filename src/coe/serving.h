/**
 * @file
 * End-to-end Samba-CoE serving simulator (Sections V-B and VI-C,
 * Figs 1, 9, 12): prompt -> router -> expert switch -> expert
 * execution, on an SN40L node (three-tier memory) or a DGX baseline
 * (HBM + host DRAM over the host link).
 */

#ifndef SN40L_COE_SERVING_H
#define SN40L_COE_SERVING_H

#include <string>

#include "arch/chip_config.h"
#include "baseline/gpu_config.h"
#include "coe/coe_runtime.h"
#include "coe/router.h"
#include "models/transformer_builder.h"

namespace sn40l::coe {

enum class Platform { Sn40l, DgxA100, DgxH100 };

const char *platformName(Platform platform);

struct ServingConfig
{
    Platform platform = Platform::Sn40l;

    int numExperts = 150;
    int batch = 1;         ///< prompts per CoE batch (paper: 1 and 8)
    int outputTokens = 20; ///< paper: 20 (chat) and 200 (translation)
    int promptLen = 2048;
    int requests = 64;     ///< batches to simulate

    RoutingDistribution routing = RoutingDistribution::Uniform;
    std::uint64_t seed = 1;

    /**
     * Predictive prefetching (extension): once the router has chosen
     * the batch's experts, DDR->HBM copies overlap with the router's
     * own execution and with preceding prompts' expert executions,
     * exposing only the un-hidden remainder of each copy.
     */
    bool predictivePrefetch = false;

    models::LlmConfig expertBase = models::LlmConfig::llama2_7b();

    /** Tensor parallel degree (TP8 on every platform, Section VI-C). */
    int tensorParallel = 8;
};

struct LatencyBreakdown
{
    double routerSeconds = 0.0;
    double switchSeconds = 0.0;
    double execSeconds = 0.0; ///< expert prefill + decode

    double
    total() const
    {
        return routerSeconds + switchSeconds + execSeconds;
    }

    /** Fraction of the batch latency spent switching (Fig 1). */
    double
    switchShare() const
    {
        double t = total();
        return t > 0.0 ? switchSeconds / t : 0.0;
    }
};

struct ServingResult
{
    bool oom = false;          ///< experts exceed platform capacity
    LatencyBreakdown perBatch; ///< average over simulated batches
    double missRate = 0.0;
    int residentCapacityExperts = 0;

    /** Per-prompt expert execution time (no router/switch). */
    double expertSecondsPerPrompt = 0.0;
};

/** Platform-dependent primitive costs, exposed for tests/benches. */
struct PhaseCosts
{
    double routerSeconds = 0.0;          ///< per batch
    double prefillSeconds = 0.0;         ///< per prompt
    double decodeSecondsPerToken = 0.0;  ///< per prompt per token
    double switchSeconds = 0.0;          ///< per expert copy
    std::int64_t expertRegionBytes = 0;  ///< HBM available for experts
    double capacityBytes = 0.0;          ///< total expert capacity
};

class ServingSimulator
{
  public:
    explicit ServingSimulator(ServingConfig cfg);

    const PhaseCosts &phaseCosts() const { return costs_; }

    /** Simulate cfg.requests batches and return average behaviour. */
    ServingResult run();

  private:
    void computeCosts();

    ServingConfig cfg_;
    PhaseCosts costs_;
};

} // namespace sn40l::coe

#endif // SN40L_COE_SERVING_H
