/**
 * @file
 * End-to-end Samba-CoE serving simulator (Sections V-B and VI-C,
 * Figs 1, 9, 12): prompt -> router -> expert switch -> expert
 * execution, on an SN40L node (three-tier memory) or a DGX baseline
 * (HBM + host DRAM over the host link).
 *
 * Two modes:
 *
 *  - LegacyAnalytic: the paper-anchor closed-form averager. Every
 *    batch is fully formed up front; the result is the mean latency
 *    breakdown per batch (Figs 1, 12, Table V).
 *
 *  - EventDriven: a request-stream scheduler on sim::EventQueue.
 *    Requests arrive via an open-loop Poisson process or a
 *    closed-loop client pool, wait in an admission queue, and are
 *    formed into continuous batches by a policy (FIFO or
 *    expert-affinity) that plays against the live CoeRuntime LRU
 *    state. This reports tail latency (p50/p95/p99), sustained
 *    throughput, queue depth, and miss rate under load.
 */

#ifndef SN40L_COE_SERVING_H
#define SN40L_COE_SERVING_H

#include <optional>
#include <string>

#include "arch/chip_config.h"
#include "baseline/gpu_config.h"
#include "coe/coe_runtime.h"
#include "coe/router.h"
#include "coe/workload.h"
#include "mem/memory_system.h"
#include "models/transformer_builder.h"
#include "sim/stats.h"

namespace sn40l::coe {

enum class Platform { Sn40l, DgxA100, DgxH100 };

const char *platformName(Platform platform);

/** How the simulator advances time. */
enum class ServingMode { LegacyAnalytic, EventDriven };

/** How requests enter the system (EventDriven mode). */
enum class ArrivalProcess {
    Poisson,    ///< open loop: exponential inter-arrival times
    ClosedLoop, ///< fixed client pool; a client re-issues after think time
};

/** How the admission queue is drained into batches (EventDriven). */
enum class SchedulerPolicy {
    Fifo,           ///< strict arrival order, experts as they come
    ExpertAffinity, ///< group same-expert requests; prefer resident experts
};

const char *schedulerPolicyName(SchedulerPolicy policy);
SchedulerPolicy schedulerPolicyFromName(const std::string &name);

/**
 * Speculative decoding as a serving mode (Table IV): a small draft
 * model lives permanently in the HBM expert region and proposes
 * `gamma` tokens per step; the target expert verifies them in one
 * pass. Each request's number of draft/verify steps is sampled from
 * its own acceptance-rate stream and flows through the per-request
 * exec/traffic shape hooks, so tokens/s, queue depth, and HBM
 * contention respond to gamma and acceptRate inside the event loop.
 */
struct SpecDecodeServingConfig
{
    bool enabled = false;
    int gamma = 4;           ///< draft tokens per verification step
    double acceptRate = 0.8; ///< per-token draft acceptance probability

    /**
     * Draft model size and per-token cost as a fraction of the target
     * expert. The draft's weights are pinned in the expert region
     * (draftRatio * expertBase.weightBytes()) for the whole run.
     */
    double draftRatio = 0.05;
};

/**
 * PEFT expert zoo (CoE pitch, Section V-B): thousands of LoRA
 * adapters share pinned base weights; an expert switch streams only
 * the adapter-sized delta DDR -> HBM, exercising many tiny DMA
 * transfers instead of few multi-GB ones.
 */
struct ZooServingConfig
{
    bool enabled = false;

    /** LoRA rank; adapter bytes scale linearly with it. */
    int rank = 16;

    /**
     * Trending-adapter churn: every this many seconds the workload's
     * routed adapter ids rotate by a deterministic stride, forcing
     * cold loads. 0 disables churn.
     */
    double churnEverySeconds = 0.0;

    /**
     * Fixed per-transfer DMA setup cost (descriptor programming).
     * Negligible against multi-GB expert copies but dominant for
     * adapter-sized ones — the many-tiny-transfer regime. Applied to
     * every DMA transfer while the zoo is enabled.
     */
    double dmaSetupSeconds = 4e-6;
};

/** Bytes of one LoRA adapter at @p rank for base model @p base. */
double loraAdapterBytes(const models::LlmConfig &base, int rank);

struct ServingConfig
{
    Platform platform = Platform::Sn40l;

    ServingMode mode = ServingMode::LegacyAnalytic;

    int numExperts = 150;
    int batch = 1;         ///< prompts per CoE batch (paper: 1 and 8)
    int outputTokens = 20; ///< paper: 20 (chat) and 200 (translation)
    int promptLen = 2048;
    int requests = 64;     ///< LegacyAnalytic: batches to simulate

    RoutingDistribution routing = RoutingDistribution::Uniform;
    double zipfS = 1.0;    ///< skew for RoutingDistribution::Zipf
    std::uint64_t seed = 1;

    /**
     * Predictive prefetching (extension): once the router has chosen
     * the batch's experts, DDR->HBM copies overlap with the router's
     * own execution and with preceding prompts' expert executions,
     * exposing only the un-hidden remainder of each copy.
     */
    bool predictivePrefetch = false;

    models::LlmConfig expertBase = models::LlmConfig::llama2_7b();

    /** Tensor parallel degree (TP8 on every platform, Section VI-C). */
    int tensorParallel = 8;

    // ----------------------- EventDriven-only parameters -----------

    ArrivalProcess arrival = ArrivalProcess::Poisson;
    SchedulerPolicy scheduler = SchedulerPolicy::Fifo;

    /** Total requests injected before the stream drains. */
    int streamRequests = 512;

    /** Open-loop mean arrival rate (requests/second). */
    double arrivalRatePerSec = 8.0;

    /** Closed-loop client pool size and think time. */
    int clients = 16;
    double thinkSeconds = 0.0;

    /**
     * Expert-affinity starvation guard: a queued request whose expert
     * has been passed over this many consecutive batches forces its
     * expert to be scheduled next.
     */
    int affinityMaxSkips = 8;

    // --------------------- EventDriven memory-system parameters ----

    /**
     * DMA engines streaming expert segments DDR -> HBM. More engines
     * overlap more expert copies, but they share the same tier
     * bandwidth channels.
     */
    int dmaEngines = 2;

    /**
     * Override the HBM expert-region size in bytes (0 keeps the
     * platform default derived from node HBM minus the router/KV
     * reserve).
     */
    std::int64_t expertRegionBytes = 0;

    /**
     * Maximum outstanding speculative prefetches when
     * predictivePrefetch is set in EventDriven mode. Prefetches are
     * issued for queued-but-unscheduled requests at low DMA priority
     * and cancelled under eviction pressure.
     */
    int prefetchDepth = 4;

    /**
     * Speculation window: how many queued requests the prefetcher
     * inspects from the front of the queue per scheduling decision.
     * 0 (default) scans the whole queue — the exact historical
     * behaviour — which is O(queue) per arrival when the head of a
     * deep queue is all resident experts; overloaded sweeps with
     * prefetch on should bound it (e.g. 64) to stay linear.
     */
    int prefetchWindow = 0;

    /**
     * Replace the platform-derived memory-system shape (channel
     * counts, bandwidths, interleave) — used by ablations to model
     * e.g. an SN40L whose experts spill over the host link instead of
     * node DDR. dmaEngines inside the override wins over the field
     * above.
     */
    std::optional<mem::MemorySystemConfig> memoryOverride;

    /**
     * Workload scenario knobs (EventDriven): tenant mixes,
     * conversational sessions, rate shaping, SLO admission, trace
     * record/replay. Defaults reproduce the legacy single-tenant
     * arrival processes bit-identically. See coe/workload.h.
     */
    WorkloadConfig workload;

    /** Speculative-decoding serving mode (EventDriven). */
    SpecDecodeServingConfig specDecode;

    /** PEFT expert-zoo serving mode (EventDriven). */
    ZooServingConfig zoo;
};

struct LatencyBreakdown
{
    double routerSeconds = 0.0;
    double switchSeconds = 0.0;
    double execSeconds = 0.0; ///< expert prefill + decode

    double
    total() const
    {
        return routerSeconds + switchSeconds + execSeconds;
    }

    /** Fraction of the batch latency spent switching (Fig 1). */
    double
    switchShare() const
    {
        double t = total();
        return t > 0.0 ? switchSeconds / t : 0.0;
    }
};

/** Load-dependent metrics produced by the EventDriven scheduler. */
struct StreamMetrics
{
    double p50LatencySeconds = 0.0;
    double p95LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    double meanLatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;

    double throughputRequestsPerSec = 0.0;
    double throughputTokensPerSec = 0.0;

    double meanQueueDepth = 0.0; ///< time-weighted over the run
    double maxQueueDepth = 0.0;

    double meanBatchOccupancy = 0.0; ///< requests per formed batch
    std::int64_t batches = 0;
    std::int64_t completed = 0;

    double makespanSeconds = 0.0; ///< first arrival to last completion

    /**
     * Per-batch expert-load stall exposed beyond the router (the part
     * of the DMA streaming the batch actually waited on).
     */
    double meanSwitchStallSeconds = 0.0;
    double p95SwitchStallSeconds = 0.0;

    /** Speculative-prefetch accounting (predictivePrefetch only). */
    std::int64_t prefetchesIssued = 0;
    std::int64_t prefetchHits = 0;
    std::int64_t prefetchesCancelled = 0;

    /**
     * SLO admission-control accounting: requests refused at admission
     * (shed) and the shed fraction of everything that arrived.
     * Non-zero only when the workload carries deadlines.
     */
    std::int64_t shed = 0;
    double shedRate = 0.0;

    /**
     * Chaos-layer accounting (coe/faults.h), all zero on fault-free
     * runs: requests lost to crashes/transient failures after the
     * retry budget, retries dispatched, hedged dispatches issued, and
     * hedges whose duplicate finished first (loser cancelled).
     */
    std::int64_t lost = 0;
    std::int64_t retried = 0;
    std::int64_t hedged = 0;
    std::int64_t hedgeWon = 0;

    /**
     * Speculative-decoding accounting (specDecode.enabled only):
     * total draft/verify steps across completed requests and the mean
     * tokens emitted per step (outputTokens / steps), the measured
     * counterpart of SpecDecodeConfig::expectedTokensPerStep().
     */
    std::int64_t specSteps = 0;
    double specTokensPerStep = 0.0;

    /** Simulator events the run executed (perf accounting, not a
     *  modeled quantity — see bench/perf_serving). */
    std::uint64_t eventsExecuted = 0;
};

struct ServingResult
{
    bool oom = false;          ///< experts exceed platform capacity
    LatencyBreakdown perBatch; ///< average over simulated batches
    double missRate = 0.0;
    int residentCapacityExperts = 0;

    /** Per-prompt expert execution time (no router/switch). */
    double expertSecondsPerPrompt = 0.0;

    /** Filled only in ServingMode::EventDriven. */
    StreamMetrics stream;
};

/** Platform-dependent primitive costs, exposed for tests/benches. */
struct PhaseCosts
{
    double routerSeconds = 0.0;          ///< per batch
    double prefillSeconds = 0.0;         ///< per prompt
    double decodeSecondsPerToken = 0.0;  ///< per prompt per token
    double switchSeconds = 0.0;          ///< per expert copy
    std::int64_t expertRegionBytes = 0;  ///< HBM available for experts
    double capacityBytes = 0.0;          ///< total expert capacity
};

/**
 * Price the platform's serving primitives (router, prefill, decode,
 * expert switch) for @p cfg through the process-wide cost memo. The
 * returned expertRegionBytes is the platform default; callers apply
 * cfg.expertRegionBytes overrides themselves. Shared by the
 * single-node ServingSimulator and the ClusterSimulator, so every
 * node of a heterogeneous cluster prices its graphs exactly once.
 */
PhaseCosts computePhaseCosts(const ServingConfig &cfg);

/**
 * Reject invalid or contradictory ServingConfig fields with a
 * FatalError. Shared by ServingSimulator and ClusterSimulator.
 */
void validateServingConfig(const ServingConfig &cfg);

/**
 * Build the expert zoo for @p cfg: cfg.numExperts full-weight copies
 * of expertBase by default, or cfg.numExperts LoRA adapters of
 * loraAdapterBytes(expertBase, zoo.rank) each when the zoo is
 * enabled (base weights are pinned separately by the engine). Shared
 * by ServingSimulator and ClusterSimulator so placement and serving
 * agree on expert sizes.
 */
ExpertZoo buildServingZoo(const ServingConfig &cfg);

/**
 * Shape the three-tier memory system after the serving platform: the
 * SN40L streams experts from node DDR (one DDR and one HBM channel
 * group per socket), the DGX baselines from host DRAM over the single
 * host link into the GPUs' pooled HBM. Honors cfg.memoryOverride and
 * cfg.dmaEngines.
 */
mem::MemorySystemConfig platformMemoryConfig(const ServingConfig &cfg);

class ServingSimulator
{
  public:
    explicit ServingSimulator(ServingConfig cfg);

    const PhaseCosts &phaseCosts() const { return costs_; }

    /**
     * Run in cfg.mode. LegacyAnalytic simulates cfg.requests batches
     * and returns average behaviour; EventDriven serves
     * cfg.streamRequests arriving requests and additionally fills
     * ServingResult::stream.
     */
    ServingResult run();

    /** Per-request latency samples from the last EventDriven run. */
    const sim::Distribution &latencySamples() const { return latency_; }

    /** Per-batch exposed expert-load stalls (EventDriven). */
    const sim::Distribution &stallSamples() const { return stalls_; }

    /** Scheduler counters from the last EventDriven run. */
    const sim::StatSet &stats() const { return stats_; }

  private:
    void computeCosts();
    ServingResult runAnalytic();
    ServingResult runEventDriven();

    ServingConfig cfg_;
    PhaseCosts costs_;
    sim::Distribution latency_{"request_latency"};
    sim::Distribution stalls_{"switch_stall"};
    sim::StatSet stats_{"serving"};
};

} // namespace sn40l::coe

#endif // SN40L_COE_SERVING_H
