#include "coe/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "runtime/spec_decode.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/ticks.h"

namespace sn40l::coe {

namespace {

/** Seed salt for the per-request spec-decode acceptance sampler. */
constexpr std::uint64_t kSpecSalt = 0x5bec0dec5bec0decULL;

} // namespace

TrafficRequest
toTrafficRequest(const EngineRequest &request)
{
    TrafficRequest t;
    t.id = request.id;
    t.tenant = request.tenant;
    t.expert = request.expert;
    t.session = request.session;
    t.turn = request.turn;
    t.priority = request.priority;
    t.deadlineSeconds = request.deadlineSeconds;
    t.hedgeDuplicate = request.hedgeDuplicate;
    return t;
}

std::int64_t
ServingEngine::effectiveExpertRegionBytes(const ServingConfig &cfg,
                                          const PhaseCosts &costs)
{
    std::int64_t region = costs.expertRegionBytes;
    if (cfg.expertRegionBytes > 0)
        region = cfg.expertRegionBytes;
    double reserve = 0.0;
    if (cfg.specDecode.enabled)
        reserve +=
            cfg.specDecode.draftRatio * cfg.expertBase.weightBytes();
    if (cfg.zoo.enabled)
        reserve += cfg.expertBase.weightBytes();
    if (reserve <= 0.0)
        return region;
    auto reserved = static_cast<std::int64_t>(reserve);
    if (reserved >= region)
        sim::fatal("ServingConfig: always-resident reservations (" +
                   std::to_string(reserved) +
                   " bytes: draft model and/or zoo base weights) do "
                   "not fit the expert region (" +
                   std::to_string(region) + " bytes)");
    return region - reserved;
}

ServingEngine::ServingEngine(sim::EventQueue &eq, const ServingConfig &cfg,
                             const PhaseCosts &costs, ExpertZoo zoo)
    : eq_(eq), cfg_(cfg), costs_(costs), zoo_(std::move(zoo)),
      runtime_(zoo_, effectiveExpertRegionBytes(cfg_, costs_)),
      memsys_(eq, "memsys", platformMemoryConfig(cfg_))
{
    residentCapacity_ = static_cast<int>(
        static_cast<double>(runtime_.regionBytes()) /
        zoo_.maxExpertBytes());

    // A batch pins its experts for the whole execution, and issued
    // prefetches are unevictable while streaming; the region must be
    // able to hold that concurrent working set or demand activation
    // deadlocks.
    int pinnable = cfg_.batch +
        (cfg_.predictivePrefetch ? cfg_.dmaEngines : 0);
    if (residentCapacity_ < pinnable)
        sim::fatal("ServingConfig: expert region holds " +
                   std::to_string(residentCapacity_) +
                   " experts but a batch can pin " +
                   std::to_string(pinnable) +
                   "; shrink --batch or grow --expert-region-gb");

    affinity_ = cfg_.scheduler == SchedulerPolicy::ExpertAffinity;

    perPromptExec_ = costs_.prefillSeconds +
        cfg_.outputTokens * costs_.decodeSecondsPerToken;

    // HBM bytes one prompt's execution streams through the working
    // tier: the weights once for prefill, then once per decoded token
    // — the traffic the expert DMA engines contend with.
    trafficBytesPerPrompt_ =
        (1.0 + cfg_.outputTokens) * cfg_.expertBase.weightBytes();

    ddrOffset_.resize(static_cast<std::size_t>(zoo_.size()), 0);
    std::int64_t cursor = 0;
    for (int e = 0; e < zoo_.size(); ++e) {
        ddrOffset_[static_cast<std::size_t>(e)] = cursor;
        cursor += static_cast<std::int64_t>(zoo_.expert(e).bytes);
    }

    // Eviction pressure reclaims speculative reservations: cancel the
    // queued DMA if it has not been issued yet.
    runtime_.setPrefetchCancelHook([this](int e) {
        auto it = transferOf_.find(e);
        if (it == transferOf_.end())
            return true;
        if (!memsys_.cancel(it->second))
            return false; // already streaming; it will land
        transferOf_.erase(it);
        prefetchOutstanding_.erase(e);
        stats_.inc("prefetches_cancelled");
        return true;
    });
    runtime_.setEvictionHook([this](int e) { prefetchReady_.erase(e); });
}

void
ServingEngine::touchDepth(std::size_t next_depth)
{
    depthIntegral_ += static_cast<double>(queued_.size()) *
        sim::toSeconds(eq_.now() - depthMark_);
    depthMark_ = eq_.now();
    queueDepthMax_ =
        std::max(queueDepthMax_, static_cast<double>(next_depth));
}

/**
 * Pick the expert the next batch serves (ExpertAffinity policy).
 * Preference order: a starving request's expert, then the best-backed
 * resident expert (no switch needed), then the most-queued expert
 * overall. Ties break toward the oldest queued request so the policy
 * stays deterministic.
 *
 * Called mid-formation, after batchCount_ was bumped for the batch
 * being formed, so a queued request's age is (batchCount_ - 1) minus
 * its enqueue mark. The queue is FIFO-ordered by id (requests only
 * leave from arbitrary positions, never reorder), so the front
 * request is simultaneously the oldest and the lowest id: if anyone
 * has aged past the guard, the front has, and it is the one the old
 * linear scan would have picked.
 */
int
ServingEngine::pickExpert()
{
    const EngineRequest &front = queued_.begin()->second;
    if (batchCount_ - 1 - front.enqueuedAtBatch >= cfg_.affinityMaxSkips) {
        stats_.inc("affinity_starvation_overrides");
        return front.expert;
    }

    int best = -1;
    bool best_resident = false;
    int best_count = 0;
    int best_oldest = 0;
    for (const auto &kv : queuedByExpert_) {
        int count = static_cast<int>(kv.second.size());
        if (count == 0)
            continue;
        int oldest = *kv.second.begin();
        bool res = runtime_.resident(kv.first);
        bool better;
        if (best < 0) {
            better = true;
        } else if (res != best_resident) {
            better = res;
        } else if (count != best_count) {
            better = count > best_count;
        } else {
            better = oldest < best_oldest;
        }
        if (better) {
            best = kv.first;
            best_resident = res;
            best_count = count;
            best_oldest = oldest;
        }
    }
    return best;
}

void
ServingEngine::onLoadDone(int e)
{
    runtime_.completeLoad(e);
    transferOf_.erase(e);
    if (awaited_.erase(e) > 0) {
        --pendingLoads_;
        prefetchOutstanding_.erase(e);
        maybeLaunch();
        return;
    }
    if (prefetchOutstanding_.erase(e) > 0)
        prefetchReady_.insert(e);
}

/**
 * Speculative prefetch (predictivePrefetch, EventDriven flavour): the
 * router's decision for queued-but-unscheduled requests is already
 * known, so stream their experts DDR->HBM at low priority while the
 * current batch computes. Reservations never evict; demand pressure
 * cancels them instead.
 */
void
ServingEngine::maybePrefetch()
{
    if (!cfg_.predictivePrefetch)
        return;
    // Optional speculation window (cfg.prefetchWindow > 0): inspect at
    // most that many queued requests from the front. The default full
    // walk matches the historical behaviour but is O(queue) per
    // arrival when the head of a deep queue is all resident experts;
    // overloaded prefetch sweeps should bound it.
    int inspected = 0;
    for (const auto &kv : queued_) {
        if (cfg_.prefetchWindow > 0 && ++inspected > cfg_.prefetchWindow)
            break;
        const EngineRequest &r = kv.second;
        if (static_cast<int>(prefetchOutstanding_.size()) >=
            cfg_.prefetchDepth)
            break;
        if (runtime_.resident(r.expert))
            continue;
        auto act = runtime_.beginPrefetch(r.expert);
        if (!act)
            break; // no free region block: stop speculating
        stats_.inc("prefetches_issued");
        int e = r.expert;
        transferOf_[e] = memsys_.load(
            ddrOffset_[static_cast<std::size_t>(e)], act->hbmOffset,
            act->bytesToLoad, mem::TransferPriority::Prefetch,
            [this, e]() { onLoadDone(e); });
        prefetchOutstanding_.insert(e);
    }
    samplePeakResident();
}

void
ServingEngine::samplePeakResident()
{
    peakResidentBytes_ = std::max(
        peakResidentBytes_,
        runtime_.regionBytes() - runtime_.freeRegionBytes());
}

void
ServingEngine::inject(int id, int expert)
{
    TrafficRequest req;
    req.id = id;
    req.expert = expert;
    inject(req);
}

void
ServingEngine::inject(const TrafficRequest &request)
{
    injectAt(makeEngineRequest(request, eq_.now()));
}

EngineRequest
ServingEngine::makeEngineRequest(const TrafficRequest &request,
                                 sim::Tick arrival) const
{
    EngineRequest req;
    req.id = request.id;
    req.arrival = arrival;
    req.expert = request.expert;
    req.tenant = request.tenant;
    req.session = request.session;
    req.turn = request.turn;
    req.priority = request.priority;
    req.deadlineSeconds = request.deadlineSeconds;
    req.execSeconds =
        execSecondsFor(request.promptLen, request.outputTokens);
    req.trafficBytes = trafficBytesFor(request.outputTokens);
    req.hedgeDuplicate = request.hedgeDuplicate;
    if (cfg_.specDecode.enabled) {
        // Per-request acceptance sampling through the shape hooks:
        // the request's decode becomes `steps` draft/verify rounds,
        // each paying one target verification plus gamma draft tokens
        // at draftRatio of the target's per-token cost, and streaming
        // the target weights once per verification plus the draft's
        // (draftRatio-sized) weights per draft token. Seeded from
        // (config seed, request id) only, so retries, hedge
        // duplicates, and parallel cluster shards resample the exact
        // same shape.
        runtime::SpecDecodeConfig sd;
        sd.gamma = cfg_.specDecode.gamma;
        sd.acceptRate = cfg_.specDecode.acceptRate;
        sim::Rng rng(sim::mix64(cfg_.seed ^ kSpecSalt) ^
                     sim::mix64(static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(request.id))));
        int tokens = request.outputTokens > 0 ? request.outputTokens
                                              : cfg_.outputTokens;
        int steps = runtime::sampleStepsForTokens(sd, tokens, rng);
        double step_cost = 1.0 + sd.gamma * cfg_.specDecode.draftRatio;
        req.specSteps = steps;
        req.execSeconds = prefillSecondsFor(request.promptLen) +
            steps * step_cost * costs_.decodeSecondsPerToken;
        req.trafficBytes = cfg_.expertBase.weightBytes() *
            (1.0 + steps * step_cost);
    }
    return req;
}

void
ServingEngine::setServiceFactor(double factor)
{
    if (factor < 1.0)
        sim::fatal("serving: service-time factor must be >= 1 (got " +
                   std::to_string(factor) + ")");
    serviceFactor_ = factor;
}

/**
 * Per-prompt execution time for a request's shape. The default shape
 * (both fields 0) returns the precomputed constant verbatim, so legacy
 * single-shape runs schedule bit-identical ticks. Non-default prompt
 * lengths scale the priced prefill linearly — the priced graph walk is
 * for cfg.promptLen, and re-pricing per request would defeat the cost
 * memo — and decode cost is exactly linear in emitted tokens.
 */
double
ServingEngine::prefillSecondsFor(int prompt_len) const
{
    if (prompt_len > 0 && prompt_len != cfg_.promptLen)
        return costs_.prefillSeconds *
            (static_cast<double>(prompt_len) /
             static_cast<double>(cfg_.promptLen));
    return costs_.prefillSeconds;
}

double
ServingEngine::execSecondsFor(int prompt_len, int output_tokens) const
{
    if (prompt_len <= 0 && output_tokens <= 0)
        return perPromptExec_;
    double prefill = prefillSecondsFor(prompt_len);
    int tokens = output_tokens > 0 ? output_tokens : cfg_.outputTokens;
    return prefill + tokens * costs_.decodeSecondsPerToken;
}

double
ServingEngine::trafficBytesFor(int output_tokens) const
{
    if (output_tokens <= 0 || output_tokens == cfg_.outputTokens)
        return trafficBytesPerPrompt_;
    return (1.0 + output_tokens) * cfg_.expertBase.weightBytes();
}

/**
 * SLO admission estimate: batches already committed ahead of this
 * request, each priced at router + a full batch of default prompts,
 * plus the request's own batch. Deliberately ignores expert-switch
 * stalls and partial batches — a cheap deterministic bound beats an
 * oracle here, because replaying one trace under different SLO knobs
 * must stay reproducible.
 */
bool
ServingEngine::shouldShed(const EngineRequest &request) const
{
    double batch_seconds = costs_.routerSeconds +
        static_cast<double>(cfg_.batch) * perPromptExec_;
    double batches_ahead = static_cast<double>(
        queued_.size() / static_cast<std::size_t>(cfg_.batch) +
        (busy_ ? 1 : 0));
    double estimate = batches_ahead * batch_seconds +
        costs_.routerSeconds + request.execSeconds;
    return estimate >
        request.deadlineSeconds * (1.0 + request.priority);
}

void
ServingEngine::injectAt(EngineRequest request)
{
    if (request.execSeconds <= 0.0)
        request.execSeconds = perPromptExec_;
    if (request.trafficBytes <= 0.0)
        request.trafficBytes = trafficBytesPerPrompt_;
    if (request.deadlineSeconds > 0.0 && shouldShed(request)) {
        // A hedge duplicate is speculative capacity, not a request:
        // refusing it is silent (the primary copy's fate is the one
        // the conservation ledger tracks).
        if (request.hedgeDuplicate) {
            stats_.inc("hedge_duplicates_refused");
            return;
        }
        ++shedCount_;
        stats_.inc("shed_requests");
        // Per-tenant shed counters, through cached stable references
        // (StatSet::counter): an overloaded SLO run sheds most
        // arrivals, so the string-keyed lookup must not sit on the
        // per-arrival path.
        auto tenant = static_cast<std::size_t>(
            request.tenant >= 0 ? request.tenant : 0);
        while (shedTenantCounter_.size() <= tenant)
            shedTenantCounter_.push_back(&stats_.counter(
                "shed_tenant_" +
                std::to_string(shedTenantCounter_.size())));
        ++*shedTenantCounter_[tenant];
        if (onRequestShed_)
            onRequestShed_(request);
        return;
    }
    touchDepth(queued_.size() + 1);
    request.enqueuedAtBatch = batchCount_;
    if (firstArrival_ < 0)
        firstArrival_ = request.arrival;
    if (affinity_)
        queuedByExpert_[request.expert].insert(request.id);
    int id = request.id;
    queued_.emplace(id, std::move(request));
    ++injectedCount_;
    if (!busy_)
        formBatch();
    else
        maybePrefetch();
}

std::vector<EngineRequest>
ServingEngine::extractQueued()
{
    touchDepth(0);
    std::vector<EngineRequest> out;
    out.reserve(queued_.size());
    for (const auto &kv : queued_)
        out.push_back(kv.second);
    queued_.clear();
    queuedByExpert_.clear();
    // The extracted requests complete elsewhere; they no longer count
    // against this engine's in-flight work.
    injectedCount_ -= static_cast<std::int64_t>(out.size());
    return out;
}

std::vector<EngineRequest>
ServingEngine::crashExtract()
{
    std::vector<EngineRequest> out = extractQueued();
    if (busy_) {
        // Abandon the in-flight batch. Its scheduled events (router,
        // awaited DMA, prompt joins) still fire, but with curBatch_
        // empty they fall straight through runNextPrompt into
        // finishBatch, which releases the pinned experts and clears
        // busy_ — a ghost batch that completes nothing.
        out.reserve(out.size() + curBatch_.size());
        injectedCount_ -= static_cast<std::int64_t>(curBatch_.size());
        for (EngineRequest &r : curBatch_)
            out.push_back(std::move(r));
        curBatch_.clear();
        stats_.inc("crashed_batches");
    }
    stats_.inc("crashes");
    return out;
}

bool
ServingEngine::cancelQueued(int id)
{
    auto it = queued_.find(id);
    if (it == queued_.end())
        return false;
    touchDepth(queued_.size() - 1);
    eraseRequest(id, it->second.expert);
    --injectedCount_;
    stats_.inc("cancelled_queued");
    return true;
}

void
ServingEngine::eraseRequest(int id, int expert)
{
    queued_.erase(id);
    if (affinity_) {
        auto it = queuedByExpert_.find(expert);
        it->second.erase(id);
        if (it->second.empty())
            queuedByExpert_.erase(it);
    }
}

void
ServingEngine::finishBatch()
{
    for (int e : curBatchExperts_)
        runtime_.unpin(e);
    curBatchExperts_.clear();

    lastCompletion_ = eq_.now();
    for (const EngineRequest &r : curBatch_) {
        double seconds = sim::toSeconds(eq_.now() - r.arrival);
        if (logCompletions_)
            completionLog_.push_back(
                {r.id, seconds, r.hedgeDuplicate});
        if (r.hedgeDuplicate) {
            // The duplicate's completion is not a request completion:
            // the cluster credits exactly one completion per hedged
            // id (here its injection is un-counted so outstanding()
            // still converges to zero).
            --injectedCount_;
            stats_.inc("hedge_duplicate_completions");
            continue;
        }
        latency_.record(seconds);
        if (latencyMirror_)
            latencyMirror_->record(seconds);
        specStepsTotal_ += r.specSteps;
        ++completedCount_;
        if (onRequestComplete_)
            onRequestComplete_(r);
    }
    std::size_t finished = curBatch_.size();
    curBatch_.clear();
    busy_ = false;
    if (onBatchComplete_)
        onBatchComplete_(static_cast<int>(finished));
    if (!queued_.empty())
        formBatch();
}

/**
 * Execute the batch's prompts back to back. Each prompt holds the
 * pipeline for its modeled compute time AND until its HBM weight
 * streaming drains — on a contended working tier (prefetch DMA
 * writing behind it) the traffic side finishes later and the slowdown
 * is real, not a closed-form adjustment.
 */
void
ServingEngine::promptJoin()
{
    if (--promptJoinPending_ == 0)
        runNextPrompt();
}

void
ServingEngine::runNextPrompt()
{
    if (execIndex_ >= curBatch_.size()) {
        execTotal_ += sim::toSeconds(eq_.now() - execStart_);
        finishBatch();
        return;
    }
    const EngineRequest &prompt = curBatch_[execIndex_];
    ++execIndex_;
    promptJoinPending_ = 2;
    // serviceFactor_ is exactly 1.0 on a healthy node, and x * 1.0 is
    // IEEE-exact, so non-straggler runs schedule identical ticks.
    eq_.scheduleIn(
        sim::fromSeconds(prompt.execSeconds * serviceFactor_),
        [this]() { promptJoin(); }, "coe.prompt_exec");
    memsys_.traffic(prompt.trafficBytes, [this]() { promptJoin(); });
}

// Launch once the router has decided AND every non-resident expert's
// DMA has landed; the exposed remainder beyond the router is the
// batch's switch stall.
void
ServingEngine::maybeLaunch()
{
    if (!routerDone_ || pendingLoads_ > 0)
        return;
    double stall = std::max(
        0.0, sim::toSeconds(eq_.now() - batchStart_) -
                 costs_.routerSeconds);
    stalls_.record(stall);
    if (stallsMirror_)
        stallsMirror_->record(stall);
    switchTotal_ += stall;
    execStart_ = eq_.now();
    execIndex_ = 0;
    runNextPrompt();
}

void
ServingEngine::formBatch()
{
    if (queued_.empty() || busy_)
        return;
    busy_ = true;
    ++batchCount_;
    // Close the depth integral at the pre-batch depth before the
    // batch drains the queue (no simulated time passes in here).
    touchDepth(queued_.size());

    const std::size_t cap = static_cast<std::size_t>(cfg_.batch);
    std::vector<EngineRequest> batch;
    auto take_id = [&](int id) {
        const EngineRequest &r = queued_.at(id);
        batch.push_back(r);
        eraseRequest(id, r.expert);
    };
    if (!affinity_) {
        while (!queued_.empty() && batch.size() < cap)
            take_id(queued_.begin()->first);
    } else {
        // Take every queued request for the chosen expert, then
        // backfill spare slots with requests whose experts are already
        // resident (guaranteed-hit co-tenants), then with whatever is
        // oldest so the batch never runs emptier than FIFO would. Each
        // pass selects oldest-first (ids are arrival-ordered), exactly
        // as the historical FIFO walk did, but through the per-expert
        // index so formation cost scales with distinct experts, not
        // queue depth.
        int expert = pickExpert();
        while (batch.size() < cap) {
            // Re-find per take: eraseRequest drops the expert's entry
            // (invalidating iterators) once its last queued request is
            // taken.
            auto it = queuedByExpert_.find(expert);
            if (it == queuedByExpert_.end())
                break;
            take_id(*it->second.begin());
        }
        // Pass 2: oldest requests across resident experts. The
        // resident set cannot change mid-formation, so repeatedly
        // taking the minimum id over resident experts' ordered id sets
        // reproduces the old front-to-back resident scan.
        while (batch.size() < cap) {
            int best_id = -1;
            for (const auto &kv : queuedByExpert_) {
                if (!runtime_.resident(kv.first))
                    continue;
                int oldest = *kv.second.begin();
                if (best_id < 0 || oldest < best_id)
                    best_id = oldest;
            }
            if (best_id < 0)
                break;
            take_id(best_id);
        }
        // Pass 3: whatever is oldest overall.
        while (!queued_.empty() && batch.size() < cap)
            take_id(queued_.begin()->first);
    }
    depthMark_ = eq_.now();
    occupancyTotal_ += static_cast<double>(batch.size());

    batchStart_ = eq_.now();
    routerDone_ = false;
    awaited_.clear();
    pendingLoads_ = 0;

    // Per-request accounting: the first request to touch a non-loaded
    // expert is the miss; same-batch co-tenants ride along as hits
    // (matching the synchronous LRU accounting).
    std::set<int> experts;
    for (const EngineRequest &r : batch) {
        if (!experts.insert(r.expert).second)
            continue;
        if (runtime_.loaded(r.expert)) {
            if (prefetchReady_.erase(r.expert) > 0)
                stats_.inc("prefetch_hits");
        } else {
            ++missCount_;
            if (runtime_.inFlight(r.expert))
                stats_.inc("prefetch_partial_hits");
        }
    }

    // Pass 1: activate (LRU-refresh) and pin every already-resident
    // expert. In-flight ones are promoted to demand priority and
    // awaited; pinning first keeps pass 2's evictions away from this
    // batch's experts.
    for (int e : experts) {
        if (!runtime_.resident(e))
            continue;
        AsyncActivation act = runtime_.activateAsync(e);
        runtime_.pin(e);
        if (act.pending) {
            auto it = transferOf_.find(e);
            sim::simAssert(it != transferOf_.end(),
                           "serving: in-flight expert has no transfer");
            memsys_.promote(it->second);
            prefetchOutstanding_.erase(e);
            awaited_.insert(e);
            ++pendingLoads_;
        }
    }
    // Pass 2: demand DMA for the absent experts. Activation may evict
    // cold residents or cancel speculative reservations; pinned and
    // Loading experts are never touched.
    for (int e : experts) {
        if (runtime_.resident(e))
            continue;
        AsyncActivation act = runtime_.activateAsync(e);
        runtime_.pin(e);
        awaited_.insert(e);
        ++pendingLoads_;
        transferOf_[e] = memsys_.load(
            ddrOffset_[static_cast<std::size_t>(e)], act.hbmOffset,
            act.bytesToLoad + act.bytesToWriteBack,
            mem::TransferPriority::Demand,
            [this, e]() { onLoadDone(e); });
    }

    curBatch_ = std::move(batch);
    curBatchExperts_.assign(experts.begin(), experts.end());

    // The demand activations above allocated region space; prefetch
    // reservations are sampled again inside maybePrefetch below.
    samplePeakResident();

    routerTotal_ += costs_.routerSeconds;
    eq_.scheduleIn(sim::fromSeconds(costs_.routerSeconds),
                   [this]() {
                       routerDone_ = true;
                       maybeLaunch();
                   },
                   "coe.router_done");
    maybePrefetch();
}

} // namespace sn40l::coe
