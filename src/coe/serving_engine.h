/**
 * @file
 * One node's event-driven serving stack, extracted from the original
 * ServingSimulator::runEventDriven so a cluster can instantiate many
 * of them on a single shared sim::EventQueue — or, in the cluster's
 * parallel mode (ClusterConfig::threads > 1), one engine per
 * per-node queue shard executed by a worker pool under conservative
 * time-window sync. The engine itself is queue-agnostic: it only
 * ever schedules against the sim::EventQueue it was constructed
 * with, touches no state outside its node, and is therefore safe to
 * run concurrently with other engines on other queues.
 *
 * The engine owns the node's expert zoo, CoeRuntime (HBM expert
 * region + LRU), and mem::MemorySystem (DDR/HBM tiers + DMA pool),
 * and runs the pipeline
 *
 *   inject -> admission queue -> batch formation -> router + expert
 *   DMA -> prompt execution (compute joined with HBM traffic) ->
 *   completion
 *
 * entirely through events on the caller's queue. It does NOT generate
 * arrivals and does NOT draw routing decisions: the driver (single
 * node ServingSimulator or ClusterSimulator) owns the Router and the
 * arrival process and calls inject() from inside arrival events. That
 * split is what keeps a 1-node cluster bit-identical to the
 * single-node simulator: the engine performs the exact event sequence
 * the historical monolithic loop performed.
 */

#ifndef SN40L_COE_SERVING_ENGINE_H
#define SN40L_COE_SERVING_ENGINE_H

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "coe/coe_runtime.h"
#include "coe/serving.h"
#include "coe/workload.h"
#include "mem/memory_system.h"
#include "sim/event_queue.h"
#include "sim/stats.h"

namespace sn40l::coe {

/** One prompt queued on (or executing in) a node engine. */
struct EngineRequest
{
    int id = 0;
    sim::Tick arrival = 0;
    int expert = 0;
    /**
     * Batch-formation count at enqueue time. A request's age in
     * batches (the affinity starvation guard) is derived as
     * "formations completed since" instead of bumping a counter on
     * every queued request per batch — the bump was O(queue) per
     * batch and made overloaded runs quadratic.
     */
    std::int64_t enqueuedAtBatch = 0;

    // ---- workload-scenario fields (coe/workload.h) --------------
    int tenant = 0;
    int session = -1; ///< conversational session id, -1 = one-shot
    int turn = 0;     ///< turn index within the session
    /**
     * Admission priority: under SLO admission control a priority-p
     * request tolerates (1 + p) times its deadline in estimated
     * queueing delay before being shed, so paid tiers outlast free
     * tiers in an overload.
     */
    int priority = 0;
    /** SLO deadline from arrival, seconds; 0 disables admission. */
    double deadlineSeconds = 0.0;
    /**
     * Per-prompt execution seconds and working-tier traffic bytes,
     * resolved from the request's prompt/decode lengths at injection.
     * Default-shape requests carry exactly the engine's precomputed
     * per-prompt constants, which keeps legacy runs bit-identical.
     */
    double execSeconds = 0.0;
    double trafficBytes = 0.0;
    /**
     * Draft/verify steps this request's decode was sampled to take
     * (specDecode.enabled only, else 0). Carried on the request so
     * retries/re-dispatches keep their shape and completion-side
     * accounting never double-counts.
     */
    int specSteps = 0;

    // ---- chaos-layer fields (coe/faults.h) ----------------------
    /** Times this request has been re-dispatched after a failure. */
    int attempt = 0;
    /**
     * A hedged dispatch's duplicate copy: its completion is not a
     * request completion (the cluster credits exactly one completion
     * per hedged id) and SLO admission refuses it silently instead
     * of counting a shed.
     */
    bool hedgeDuplicate = false;
};

/**
 * Translate a completed/shed EngineRequest back into the workload
 * layer's descriptor so models can react (session follow-ups, client
 * re-issue). Single definition: the serving and cluster drivers must
 * not drift on which fields round-trip.
 */
TrafficRequest toTrafficRequest(const EngineRequest &request);

class ServingEngine
{
  public:
    /**
     * @param cfg   fully validated EventDriven serving config for this
     *              node (batch, scheduler, prefetch, DMA shape).
     * @param costs platform phase costs; costs.expertRegionBytes sizes
     *              this node's HBM expert region.
     * @param zoo   the expert zoo, moved in (the runtime keeps a
     *              reference, so the engine must own it).
     *
     * Throws FatalError when the expert region cannot hold the
     * concurrent pinnable working set (batch + in-flight prefetches).
     */
    ServingEngine(sim::EventQueue &eq, const ServingConfig &cfg,
                  const PhaseCosts &costs, ExpertZoo zoo);

    /**
     * HBM expert-region bytes actually available to the LRU after the
     * always-resident reservations: the draft model's weights
     * (specDecode: draftRatio * expertBase.weightBytes()) and the
     * pinned base weights the zoo's adapters share (zoo:
     * expertBase.weightBytes()). With both features off this is
     * exactly costs.expertRegionBytes. Fatals when the reservations
     * do not fit the region.
     */
    static std::int64_t effectiveExpertRegionBytes(
        const ServingConfig &cfg, const PhaseCosts &costs);

    ServingEngine(const ServingEngine &) = delete;
    ServingEngine &operator=(const ServingEngine &) = delete;

    /**
     * Invoked at the exact point a finished batch has released its
     * experts and cleared busy, before the next batch forms — the
     * hook drives closed-loop client re-injection and cluster-level
     * bookkeeping.
     */
    void setOnBatchComplete(std::function<void(int finished)> hook)
    {
        onBatchComplete_ = std::move(hook);
    }

    /**
     * Optional cluster-wide sample sinks: every latency/stall sample
     * this engine records is mirrored into them, in recording order,
     * so cluster distributions are exact merges.
     */
    void setMirrors(sim::Distribution *latency, sim::Distribution *stalls)
    {
        latencyMirror_ = latency;
        stallsMirror_ = stalls;
    }

    /**
     * Invoked once per completed request, at its completion time (from
     * inside the batch-completion event, before the batch hook). The
     * workload layer uses it to schedule session follow-up turns.
     */
    void setOnRequestComplete(std::function<void(const EngineRequest &)> hook)
    {
        onRequestComplete_ = std::move(hook);
    }

    /** Invoked when SLO admission control sheds a request. */
    void setOnRequestShed(std::function<void(const EngineRequest &)> hook)
    {
        onRequestShed_ = std::move(hook);
    }

    /**
     * Admit request @p id for @p expert; must be called from inside an
     * event on the shared queue. The request's arrival timestamp is
     * now().
     */
    void inject(int id, int expert);

    /**
     * Admit a workload-sourced request (tenant, session, per-request
     * shape, SLO deadline); arrival timestamp is now(). When the
     * request carries a deadline, SLO admission control may shed it
     * instead: the request never enters the queue, shedCount() grows,
     * and the shed hook fires. The shed estimate is deliberately
     * simple and deterministic — batches already committed ahead of
     * the request, each priced at router + a full batch of default
     * prompts — so replaying a trace under a different SLO is
     * reproducible.
     */
    void inject(const TrafficRequest &request);

    /**
     * Admit a fully built request carrying its own arrival timestamp —
     * used when a drained node's queued requests are re-dispatched so
     * their end-to-end latency still counts from the original arrival.
     * Runs the same SLO admission check as inject().
     */
    void injectAt(EngineRequest request);

    /**
     * Remove and return every queued (not yet batch-formed) request,
     * in id (arrival) order. The executing batch, if any, completes
     * normally. Outstanding speculative prefetches are left to land;
     * they surface as prefetch-ready residents and age out via LRU.
     */
    std::vector<EngineRequest> extractQueued();

    /**
     * Crash the node mid-batch: return every queued request AND the
     * in-flight batch's requests (none of them complete here), in id
     * order. Unlike a clean drain, the executing batch is abandoned —
     * its already-scheduled router/DMA/compute events resolve as a
     * ghost batch that completes nothing and releases its pinned
     * experts, so the engine is consistent without cancelling events.
     * The caller (the cluster's retry policy) decides the displaced
     * requests' fate.
     */
    std::vector<EngineRequest> crashExtract();

    /**
     * Remove one queued (not yet batch-formed) request without
     * counting it anywhere — hedge-loser cancellation. @return false
     * when the id is not queued here (already forming, completed, or
     * never admitted).
     */
    bool cancelQueued(int id);

    /**
     * Resolve a workload request into an EngineRequest carrying
     * @p arrival, exactly as inject() would — the cluster uses it to
     * keep original arrival timestamps on retried requests that never
     * reached an engine.
     */
    EngineRequest makeEngineRequest(const TrafficRequest &request,
                                    sim::Tick arrival) const;

    /**
     * Chaos actuator: persistent service-time multiplier on prompt
     * execution (a straggler node). Exactly 1.0 (the default) leaves
     * execution arithmetic bit-identical to a healthy node.
     */
    void setServiceFactor(double factor);
    double serviceFactor() const { return serviceFactor_; }

    /** One finished request, as seen by the cluster's hedge logic. */
    struct CompletionRecord
    {
        int id = 0;
        double latencySeconds = 0.0;
        bool hedgeDuplicate = false;
    };

    /**
     * When enabled (hedged dispatch only), every finished request is
     * appended to completionLog() for the cluster to drain at control
     * barriers. Off by default: the no-chaos path records nothing.
     */
    void setLogCompletions(bool on) { logCompletions_ = on; }
    std::vector<CompletionRecord> &completionLog()
    {
        return completionLog_;
    }

    /**
     * Drop every Loaded, unpinned expert from the node's HBM region —
     * a node rejoining after a drain restarts cold and re-warms its
     * resident set from live traffic. Loading / prefetch-reserved
     * entries survive (their DMA will land) and pinned entries are
     * untouched.
     */
    void flushResident() { runtime_.flushUnpinned(); }

    // ------------------------------------------------- observability

    bool busy() const { return busy_; }
    std::size_t queueDepth() const { return queued_.size(); }
    /** Requests admitted but not yet completed. */
    std::int64_t outstanding() const
    {
        return injectedCount_ - completedCount_;
    }

    std::int64_t completedCount() const { return completedCount_; }
    /** Draft/verify steps across completed requests (specDecode). */
    std::int64_t specStepsTotal() const { return specStepsTotal_; }
    std::int64_t injectedCount() const { return injectedCount_; }
    std::int64_t batchCount() const { return batchCount_; }
    std::int64_t missCount() const { return missCount_; }
    /** Requests refused by SLO admission control (not injected). */
    std::int64_t shedCount() const { return shedCount_; }

    double routerSecondsTotal() const { return routerTotal_; }
    double switchSecondsTotal() const { return switchTotal_; }
    double execSecondsTotal() const { return execTotal_; }
    double occupancyTotal() const { return occupancyTotal_; }

    sim::Tick firstArrival() const { return firstArrival_; }
    sim::Tick lastCompletion() const { return lastCompletion_; }

    double depthIntegral() const { return depthIntegral_; }
    double queueDepthMax() const { return queueDepthMax_; }

    /** High-water mark of resident expert bytes in the HBM region. */
    std::int64_t peakResidentBytes() const { return peakResidentBytes_; }

    int residentCapacityExperts() const { return residentCapacity_; }

    const sim::Distribution &latency() const { return latency_; }
    const sim::Distribution &stalls() const { return stalls_; }
    const sim::StatSet &stats() const { return stats_; }

    CoeRuntime &runtime() { return runtime_; }
    mem::MemorySystem &memorySystem() { return memsys_; }
    const ExpertZoo &zoo() const { return zoo_; }

  private:
    void touchDepth(std::size_t next_depth);
    void samplePeakResident();
    double prefillSecondsFor(int prompt_len) const;
    double execSecondsFor(int prompt_len, int output_tokens) const;
    double trafficBytesFor(int output_tokens) const;
    bool shouldShed(const EngineRequest &request) const;
    int pickExpert();
    void onLoadDone(int expert);
    void maybePrefetch();
    void eraseRequest(int id, int expert);
    void formBatch();
    void maybeLaunch();
    void runNextPrompt();
    void promptJoin();
    void finishBatch();

    sim::EventQueue &eq_;
    ServingConfig cfg_;
    PhaseCosts costs_;
    ExpertZoo zoo_;
    CoeRuntime runtime_;
    mem::MemorySystem memsys_;

    sim::Distribution latency_{"request_latency"};
    sim::Distribution stalls_{"switch_stall"};
    sim::StatSet stats_{"serving"};
    sim::Distribution *latencyMirror_ = nullptr;
    sim::Distribution *stallsMirror_ = nullptr;
    std::function<void(int)> onBatchComplete_;
    std::function<void(const EngineRequest &)> onRequestComplete_;
    std::function<void(const EngineRequest &)> onRequestShed_;

    double perPromptExec_ = 0.0;
    double trafficBytesPerPrompt_ = 0.0;
    double serviceFactor_ = 1.0;
    bool logCompletions_ = false;
    std::vector<CompletionRecord> completionLog_;
    int residentCapacity_ = 0;
    /** Backing-tier layout: experts packed contiguously in DDR. */
    std::vector<std::int64_t> ddrOffset_;

    // ---- admission queue ----------------------------------------
    // Request ids are assigned in arrival order, so an id-ordered map
    // IS the FIFO view: begin() is the oldest queued request, erase
    // from any position is O(log queue), and iteration walks arrival
    // order.
    std::map<int, EngineRequest> queued_;
    bool busy_ = false;
    bool affinity_ = false;
    /** Per-expert view of the queue (ExpertAffinity only). */
    std::map<int, std::set<int>> queuedByExpert_;

    std::int64_t injectedCount_ = 0;
    std::int64_t completedCount_ = 0;
    std::int64_t specStepsTotal_ = 0;
    std::int64_t batchCount_ = 0;
    std::int64_t missCount_ = 0;
    std::int64_t shedCount_ = 0;
    /** Cached stable refs to stats_ "shed_tenant_<i>" counters. */
    std::vector<double *> shedTenantCounter_;
    double routerTotal_ = 0.0, switchTotal_ = 0.0, execTotal_ = 0.0;
    double occupancyTotal_ = 0.0;
    sim::Tick firstArrival_ = -1, lastCompletion_ = 0;

    // ---- async expert-load state --------------------------------
    std::map<int, mem::TransferId> transferOf_;
    std::set<int> prefetchOutstanding_; ///< speculative subset
    std::set<int> prefetchReady_; ///< landed speculations, unused yet
    std::set<int> awaited_;       ///< experts the formed batch waits on
    int pendingLoads_ = 0;
    bool routerDone_ = false;
    sim::Tick batchStart_ = 0;
    sim::Tick execStart_ = 0;
    std::size_t execIndex_ = 0;
    std::vector<EngineRequest> curBatch_;
    std::vector<int> curBatchExperts_; ///< pinned for the batch
    /** Join counter for the in-flight prompt's (compute, traffic). */
    int promptJoinPending_ = 0;

    // Time-weighted queue-depth integral.
    sim::Tick depthMark_ = 0;
    double depthIntegral_ = 0.0;
    double queueDepthMax_ = 0.0;

    std::int64_t peakResidentBytes_ = 0;
};

} // namespace sn40l::coe

#endif // SN40L_COE_SERVING_ENGINE_H
