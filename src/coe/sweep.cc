#include "coe/sweep.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/log.h"

namespace sn40l::coe {

std::vector<SweepPoint>
SweepGrid::points() const
{
    auto oneIfEmpty = [](std::size_t n) { return n == 0 ? 1 : n; };
    std::vector<SweepPoint> out;
    out.reserve(oneIfEmpty(nodeCounts.size()) *
                oneIfEmpty(placements.size()) *
                oneIfEmpty(expertCounts.size()) *
                oneIfEmpty(arrivalRates.size()) *
                oneIfEmpty(batchSizes.size()) *
                oneIfEmpty(policies.size()) * oneIfEmpty(seeds.size()));

    // Single-element fallbacks so every axis always iterates once.
    std::vector<int> experts = expertCounts.empty()
        ? std::vector<int>{base.numExperts}
        : expertCounts;
    std::vector<double> rates = arrivalRates.empty()
        ? std::vector<double>{base.arrivalRatePerSec}
        : arrivalRates;
    std::vector<int> batches =
        batchSizes.empty() ? std::vector<int>{base.batch} : batchSizes;
    std::vector<SchedulerPolicy> pols = policies.empty()
        ? std::vector<SchedulerPolicy>{base.scheduler}
        : policies;
    std::vector<std::uint64_t> sds = seeds.empty()
        ? std::vector<std::uint64_t>{base.seed}
        : seeds;

    // Cluster axes: nodes == 0 marks the classic single-node path.
    std::vector<int> nodes =
        nodeCounts.empty() ? std::vector<int>{0} : nodeCounts;
    std::vector<PlacementPolicy> places = placements.empty()
        ? std::vector<PlacementPolicy>{PlacementPolicy::FullReplication}
        : placements;

    int index = 0;
    for (int n : nodes) {
      for (PlacementPolicy place : places) {
        for (int e : experts) {
            for (double rate : rates) {
                for (int b : batches) {
                    for (SchedulerPolicy pol : pols) {
                        for (std::uint64_t seed : sds) {
                            SweepPoint p;
                            p.cfg = base;
                            p.cfg.numExperts = e;
                            p.cfg.arrivalRatePerSec = rate;
                            p.cfg.batch = b;
                            p.cfg.scheduler = pol;
                            p.cfg.seed = seed;
                            p.nodes = n;
                            p.placement = place;
                            p.dispatch = dispatch;
                            p.faults = faults;
                            p.faultPolicy = faultPolicy;
                            p.ratePerNode = rate;
                            if (n > 0 && scaleRateWithNodes)
                                p.cfg.arrivalRatePerSec = rate * n;
                            p.index = index++;
                            p.label = "e" + std::to_string(e) + "/r" +
                                      std::to_string(rate) + "/b" +
                                      std::to_string(b) + "/" +
                                      schedulerPolicyName(pol) + "/s" +
                                      std::to_string(seed);
                            if (n > 0)
                                p.label = "n" + std::to_string(n) + "/" +
                                          placementPolicyName(place) +
                                          "/" + p.label;
                            out.push_back(std::move(p));
                        }
                    }
                }
            }
        }
      }
    }
    return out;
}

namespace {

SweepPointResult
runPoint(const SweepPoint &point)
{
    SweepPointResult r;
    r.point = point;
    auto start = std::chrono::steady_clock::now();
    if (point.nodes > 0) {
        ClusterConfig cluster;
        cluster.node = point.cfg;
        cluster.nodes = point.nodes;
        cluster.placement = point.placement;
        cluster.dispatch = point.dispatch;
        cluster.faults = point.faults;
        cluster.faultPolicy = point.faultPolicy;
        ClusterResult cr = ClusterSimulator(cluster).run();
        r.result.oom = cr.oom;
        r.result.stream = cr.stream;
        r.result.missRate = cr.missRate;
        r.loadImbalance = cr.loadImbalance;
        r.placedBytesTotal = cr.placedBytesTotal;
        r.expertReplicas = cr.expertReplicas;
    } else {
        ServingSimulator sim(point.cfg);
        r.result = sim.run();
    }
    r.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    r.eventsExecuted = r.result.stream.eventsExecuted;
    return r;
}

} // namespace

std::vector<SweepPointResult>
runSweep(const std::vector<SweepPoint> &points, int jobs)
{
    std::vector<SweepPointResult> results(points.size());
    if (points.empty())
        return results;

    if (jobs <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i)
            results[i] = runPoint(points[i]);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= points.size() || failed.load())
                return;
            try {
                results[i] = runPoint(points[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    int n = std::min<int>(jobs, static_cast<int>(points.size()));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
    return results;
}

} // namespace sn40l::coe
