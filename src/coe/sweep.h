/**
 * @file
 * Parallel sweep runner for the CoE serving simulator.
 *
 * The paper's serving results (Table 5, Fig 12) and everything the
 * roadmap builds on them are sweep-shaped: many expert counts x
 * arrival rates x batch sizes x seeds. Every sweep point is an
 * independent deterministic simulation with its own EventQueue, RNGs,
 * and runtime state, so points shard trivially across a thread pool —
 * the only shared state is the process-wide cost-model memo, which is
 * thread-safe and value-deterministic. A parallel sweep therefore
 * produces bit-identical per-point results to a sequential one, in
 * grid order, regardless of completion order.
 */

#ifndef SN40L_COE_SWEEP_H
#define SN40L_COE_SWEEP_H

#include <cstdint>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/serving.h"

namespace sn40l::coe {

/**
 * One grid point: a fully resolved serving configuration, optionally
 * lifted onto a cluster. nodes == 0 runs the single-node
 * ServingSimulator (the historical behaviour); nodes >= 1 runs a
 * ClusterSimulator with the given placement/dispatch and per-node
 * arrival rate cfg.arrivalRatePerSec (the grid scales offered load
 * with node count so points stay comparable).
 */
struct SweepPoint
{
    ServingConfig cfg;
    int nodes = 0; ///< 0: single-node path; >= 1: cluster path
    PlacementPolicy placement = PlacementPolicy::FullReplication;
    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    /**
     * The grid's requested per-node arrival rate. cfg.arrivalRatePerSec
     * is the rate the simulator actually offers (scaled by the node
     * count when scaleRateWithNodes); reports should show this one so
     * points are comparable across node counts.
     */
    double ratePerNode = 0.0;
    int index = 0; ///< position in grid order
    std::string label;

    /**
     * Chaos layer for cluster points (nodes >= 1): the fault schedule
     * is parsed once and shared across every point (same pattern as
     * replayed traces), the policy knobs apply uniformly. Single-node
     * points ignore both.
     */
    std::shared_ptr<const std::vector<FaultEvent>> faults;
    FaultPolicyConfig faultPolicy;
};

/**
 * Cartesian sweep specification. Empty axes inherit the base config's
 * value; points are emitted in nested order with seeds innermost:
 * nodes > placements > experts > rates > batches > policies > seeds.
 * nodeCounts/placements empty keeps the classic single-node grid.
 */
struct SweepGrid
{
    ServingConfig base;
    std::vector<int> expertCounts;
    std::vector<double> arrivalRates;
    std::vector<int> batchSizes;
    std::vector<SchedulerPolicy> policies;
    std::vector<std::uint64_t> seeds;

    /** Cluster axes: empty nodeCounts = single-node points. */
    std::vector<int> nodeCounts;
    std::vector<PlacementPolicy> placements;
    DispatchPolicy dispatch = DispatchPolicy::RoundRobin;
    /** Per-node arrival rates are multiplied by the node count. */
    bool scaleRateWithNodes = true;

    /** Chaos layer, copied onto every cluster point (see SweepPoint). */
    std::shared_ptr<const std::vector<FaultEvent>> faults;
    FaultPolicyConfig faultPolicy;

    std::vector<SweepPoint> points() const;
};

struct SweepPointResult
{
    SweepPoint point;
    ServingResult result;
    double wallSeconds = 0.0;          ///< host time for this point
    std::uint64_t eventsExecuted = 0;  ///< simulator events it ran

    /** Cluster-only extras (nodes >= 1 points). */
    double loadImbalance = 0.0;
    double placedBytesTotal = 0.0;
    int expertReplicas = 0;
};

/**
 * Run every point and return results in point order. @p jobs > 1
 * shards points across that many worker threads (each point runs on
 * one thread with its own EventQueue); @p jobs <= 1 runs sequentially.
 * The first exception raised by any point is rethrown after all
 * workers drain.
 */
std::vector<SweepPointResult> runSweep(const std::vector<SweepPoint> &points,
                                       int jobs);

} // namespace sn40l::coe

#endif // SN40L_COE_SWEEP_H
