/**
 * @file
 * Parallel sweep runner for the CoE serving simulator.
 *
 * The paper's serving results (Table 5, Fig 12) and everything the
 * roadmap builds on them are sweep-shaped: many expert counts x
 * arrival rates x batch sizes x seeds. Every sweep point is an
 * independent deterministic simulation with its own EventQueue, RNGs,
 * and runtime state, so points shard trivially across a thread pool —
 * the only shared state is the process-wide cost-model memo, which is
 * thread-safe and value-deterministic. A parallel sweep therefore
 * produces bit-identical per-point results to a sequential one, in
 * grid order, regardless of completion order.
 */

#ifndef SN40L_COE_SWEEP_H
#define SN40L_COE_SWEEP_H

#include <cstdint>
#include <string>
#include <vector>

#include "coe/serving.h"

namespace sn40l::coe {

/** One grid point: a fully resolved serving configuration. */
struct SweepPoint
{
    ServingConfig cfg;
    int index = 0; ///< position in grid order
    std::string label;
};

/**
 * Cartesian sweep specification. Empty axes inherit the base config's
 * value; points are emitted in nested order with seeds innermost:
 * experts > rates > batches > policies > seeds.
 */
struct SweepGrid
{
    ServingConfig base;
    std::vector<int> expertCounts;
    std::vector<double> arrivalRates;
    std::vector<int> batchSizes;
    std::vector<SchedulerPolicy> policies;
    std::vector<std::uint64_t> seeds;

    std::vector<SweepPoint> points() const;
};

struct SweepPointResult
{
    SweepPoint point;
    ServingResult result;
    double wallSeconds = 0.0;          ///< host time for this point
    std::uint64_t eventsExecuted = 0;  ///< simulator events it ran
};

/**
 * Run every point and return results in point order. @p jobs > 1
 * shards points across that many worker threads (each point runs on
 * one thread with its own EventQueue); @p jobs <= 1 runs sequentially.
 * The first exception raised by any point is rethrown after all
 * workers drain.
 */
std::vector<SweepPointResult> runSweep(const std::vector<SweepPoint> &points,
                                       int jobs);

} // namespace sn40l::coe

#endif // SN40L_COE_SWEEP_H
