#include "coe/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "coe/router.h"
#include "coe/serving.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/ticks.h"

namespace sn40l::coe {

namespace {

using sim::mix64; // decorrelates per-tenant seeds

/** The arrivals-Rng salt the historical drivers used; kept verbatim
 *  so legacy gap sequences stay bit-identical. */
constexpr std::uint64_t kArrivalSalt = 0xa55a5aa5a55a5aa5ULL;

} // namespace

double
RateShape::instantaneous(double base, double t) const
{
    double rate = base;
    if (diurnalAmplitude > 0.0) {
        // Exactly the expression ClusterSimulator inlined before this
        // subsystem existed — amplitude 0 must leave `base` untouched.
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        rate *= 1.0 +
            diurnalAmplitude * std::sin(kTwoPi * t / diurnalPeriodSeconds);
    }
    if (burstFactor > 1.0 && burstEverySeconds > 0.0) {
        if (std::fmod(t, burstEverySeconds) < burstSeconds)
            rate *= burstFactor;
    }
    return rate;
}

namespace {

/**
 * Trending-adapter churn (ZooServingConfig::churnEverySeconds): every
 * churn period the routed id space rotates by a period-derived
 * pseudo-random offset, so adapters that were hot go cold and the
 * engines pay fresh adapter loads on the live DMA path. A pure
 * function of (zoo config, emission time, routed id): deterministic
 * across reruns and cluster shards, and the identity when the zoo or
 * churn is off.
 */
int
applyZooChurn(const ZooServingConfig &zoo, int num_experts,
              double now_seconds, int expert)
{
    if (!zoo.enabled || zoo.churnEverySeconds <= 0.0)
        return expert;
    auto period = static_cast<std::uint64_t>(
        now_seconds / zoo.churnEverySeconds);
    if (period == 0)
        return expert;
    int offset = static_cast<int>(
        mix64(period) % static_cast<std::uint64_t>(num_experts));
    return (expert + offset) % num_experts;
}

void
validateShape(const RateShape &shape, const std::string &who)
{
    if (shape.diurnalAmplitude < 0.0 || shape.diurnalAmplitude >= 1.0)
        sim::fatal(who + ": diurnal amplitude must be in [0, 1)");
    if (shape.diurnalAmplitude > 0.0 && shape.diurnalPeriodSeconds <= 0.0)
        sim::fatal(who + ": non-positive diurnal period");
    if (shape.burstFactor < 1.0)
        sim::fatal(who + ": burst factor must be at least 1");
    if (shape.burstFactor > 1.0) {
        if (shape.burstEverySeconds <= 0.0 || shape.burstSeconds <= 0.0)
            sim::fatal(who + ": bursts need positive --burst-every and "
                             "--burst-seconds");
        if (shape.burstSeconds > shape.burstEverySeconds)
            sim::fatal(who + ": burst window exceeds its period");
    }
}

// ------------------------------------------------------- open loop

/**
 * The historical open-loop Poisson arrival process (optionally
 * rate-shaped), as a model. Chained draws: each arrival event
 * schedules its successor before emitting, so only one arrival event
 * is ever pending and the gap sequence is bit-identical to the old
 * inlined loop (the arrivals Rng feeds nothing else).
 */
class OpenLoopWorkload : public WorkloadModel
{
  public:
    OpenLoopWorkload(const ServingConfig &cfg, const RateShape &shape)
        : router_(cfg.numExperts, cfg.routing, cfg.seed, cfg.zipfS),
          arrivals_(cfg.seed ^ kArrivalSalt),
          baseRate_(cfg.arrivalRatePerSec), shape_(shape),
          total_(cfg.streamRequests),
          sloSeconds_(cfg.workload.sloSeconds), zoo_(cfg.zoo),
          numExperts_(cfg.numExperts)
    {
    }

    void start() override { scheduleNext(); }

    std::int64_t plannedRequests() const override { return total_; }

    void setRateFactor(double factor) override { factor_ = factor; }

  private:
    void
    scheduleNext()
    {
        if (scheduled_ >= total_)
            return;
        ++scheduled_;
        double rate = shape_.instantaneous(baseRate_, arrivalT_) * factor_;
        arrivalT_ += -std::log(1.0 - arrivals_.uniformDouble()) / rate;
        eq().schedule(sim::fromSeconds(arrivalT_),
                      [this]() {
                          scheduleNext();
                          TrafficRequest r;
                          r.expert = applyZooChurn(
                              zoo_, numExperts_,
                              sim::toSeconds(eq().now()),
                              router_.route());
                          r.deadlineSeconds = sloSeconds_;
                          emit(r);
                      },
                      "coe.arrival");
    }

    Router router_;
    sim::Rng arrivals_;
    double baseRate_;
    RateShape shape_;
    std::int64_t total_;
    double sloSeconds_;
    ZooServingConfig zoo_;
    int numExperts_;
    std::int64_t scheduled_ = 0;
    double arrivalT_ = 0.0;
    double factor_ = 1.0;
};

// ----------------------------------------------------- closed loop

/**
 * The historical closed-loop client pool: the initial pool injects at
 * t = 0, and every completed request frees a client to think and
 * re-issue. Event-creation order matches the old inlined loop.
 */
class ClosedLoopWorkload : public WorkloadModel
{
  public:
    explicit ClosedLoopWorkload(const ServingConfig &cfg)
        : router_(cfg.numExperts, cfg.routing, cfg.seed, cfg.zipfS),
          clients_(cfg.clients), thinkSeconds_(cfg.thinkSeconds),
          total_(cfg.streamRequests),
          sloSeconds_(cfg.workload.sloSeconds), zoo_(cfg.zoo),
          numExperts_(cfg.numExperts)
    {
    }

    void
    start() override
    {
        std::int64_t initial =
            std::min<std::int64_t>(clients_, total_);
        for (std::int64_t i = 0; i < initial; ++i) {
            ++scheduled_;
            eq().schedule(0, [this]() { emitOne(); }, "coe.arrival");
        }
    }

    void
    onBatchComplete(int finished) override
    {
        // Each finished client thinks, then issues a new prompt.
        for (int i = 0; i < finished; ++i)
            reissueOne();
    }

    void
    onRequestShed(const TrafficRequest &request) override
    {
        // A shed never joins a batch, so it never reaches
        // onBatchComplete — without this the pool would shrink by one
        // per shed and the run could stall with budget unspent. The
        // refused client thinks, then retries (budget-bounded).
        (void)request;
        reissueOne();
    }

    std::int64_t plannedRequests() const override { return total_; }

  private:
    void
    reissueOne()
    {
        if (scheduled_ >= total_)
            return;
        ++scheduled_;
        eq().scheduleIn(sim::fromSeconds(thinkSeconds_),
                        [this]() { emitOne(); }, "coe.arrival");
    }

    void
    emitOne()
    {
        TrafficRequest r;
        r.expert = applyZooChurn(zoo_, numExperts_,
                                 sim::toSeconds(eq().now()),
                                 router_.route());
        r.deadlineSeconds = sloSeconds_;
        emit(r);
    }

    Router router_;
    int clients_;
    double thinkSeconds_;
    std::int64_t total_;
    double sloSeconds_;
    ZooServingConfig zoo_;
    int numExperts_;
    std::int64_t scheduled_ = 0;
};

// ----------------------------------------------------- multi-tenant

/**
 * N tenants, each an independent chained open-loop stream with its own
 * router (rotated popularity order), rate share, request shape, SLO,
 * and optional conversational sessions. All streams draw against one
 * shared request budget, so the run emits exactly
 * cfg.streamRequests requests across first turns and follow-ups.
 */
class MultiTenantWorkload : public WorkloadModel
{
  public:
    MultiTenantWorkload(const ServingConfig &cfg, const RateShape &shape)
        : numExperts_(cfg.numExperts), total_(cfg.streamRequests),
          zoo_(cfg.zoo)
    {
        std::vector<TenantSpec> specs = cfg.workload.tenantSpecs.empty()
            ? buildTenantMix(cfg)
            : cfg.workload.tenantSpecs;

        double shareSum = 0.0;
        for (const TenantSpec &spec : specs)
            shareSum += spec.rateShare;

        tenants_.reserve(specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::uint64_t tseed = mix64(
                cfg.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(i + 1));
            Tenant t{specs[i],
                     Router(cfg.numExperts, cfg.routing, tseed,
                            specs[i].zipfS),
                     sim::Rng(tseed ^ kArrivalSalt),
                     sim::Rng(tseed ^ 0x5e551055e551055eULL),
                     cfg.arrivalRatePerSec * specs[i].rateShare / shareSum,
                     0.0};
            // The driver-level shape (cluster diurnal) modulates every
            // tenant on top of its own shape; compose by layering the
            // driver diurnal when the tenant has none.
            if (t.spec.shape.diurnalAmplitude == 0.0 &&
                shape.diurnalAmplitude > 0.0) {
                t.spec.shape.diurnalAmplitude = shape.diurnalAmplitude;
                t.spec.shape.diurnalPeriodSeconds =
                    shape.diurnalPeriodSeconds;
            }
            if (t.spec.shape.burstFactor == 1.0 &&
                shape.burstFactor > 1.0) {
                t.spec.shape.burstFactor = shape.burstFactor;
                t.spec.shape.burstEverySeconds = shape.burstEverySeconds;
                t.spec.shape.burstSeconds = shape.burstSeconds;
            }
            tenants_.push_back(std::move(t));
        }
    }

    void
    start() override
    {
        for (std::size_t i = 0; i < tenants_.size(); ++i)
            scheduleNext(static_cast<int>(i));
    }

    void
    onRequestComplete(const TrafficRequest &request) override
    {
        maybeFollowUp(request);
    }

    void
    onRequestShed(const TrafficRequest &request) override
    {
        // A shed turn ends its session: the simulated user gave up.
        (void)request;
    }

    std::int64_t plannedRequests() const override { return total_; }

    void setRateFactor(double factor) override { factor_ = factor; }

  private:
    struct Tenant
    {
        TenantSpec spec;
        Router router;
        sim::Rng arrivals; ///< inter-arrival gaps only
        sim::Rng draws;    ///< lengths, session coin flips, think times
        double rate;
        double arrivalT;
    };

    void
    scheduleNext(int ti)
    {
        if (scheduled_ >= total_)
            return;
        ++scheduled_;
        Tenant &t = tenants_[static_cast<std::size_t>(ti)];
        double rate =
            t.spec.shape.instantaneous(t.rate, t.arrivalT) * factor_;
        t.arrivalT += t.arrivals.exponential(1.0 / rate);
        eq().schedule(sim::fromSeconds(t.arrivalT),
                      [this, ti]() {
                          scheduleNext(ti);
                          emitTurn(ti, -1, 0, -1);
                      },
                      "coe.arrival");
    }

    /**
     * Emit one turn for tenant @p ti. @p expert < 0 routes a fresh
     * prompt (and opens a session when the tenant converses);
     * otherwise the turn reuses the session's expert.
     */
    void
    emitTurn(int ti, int session, int turn, int expert)
    {
        Tenant &t = tenants_[static_cast<std::size_t>(ti)];
        TrafficRequest r;
        r.tenant = ti;
        if (expert < 0) {
            // Churn applies only to fresh routes; session follow-ups
            // deliberately stick to their established adapter.
            r.expert = applyZooChurn(
                zoo_, numExperts_, sim::toSeconds(eq().now()),
                (t.router.route() + t.spec.expertOffset) % numExperts_);
            r.session = t.spec.sessionFollowProb > 0.0 ? nextSession_++
                                                       : -1;
            r.turn = 0;
        } else {
            r.expert = expert;
            r.session = session;
            r.turn = turn;
        }
        r.promptLen = t.spec.promptLen;
        if (t.spec.minOutputTokens > 0) {
            int span = t.spec.maxOutputTokens - t.spec.minOutputTokens;
            r.outputTokens = t.spec.minOutputTokens +
                static_cast<int>(t.draws.uniformInt(
                    static_cast<std::uint64_t>(span) + 1));
        }
        r.priority = t.spec.priority;
        r.deadlineSeconds = t.spec.sloSeconds;
        emit(r);
    }

    void
    maybeFollowUp(const TrafficRequest &request)
    {
        if (request.session < 0)
            return;
        Tenant &t = tenants_[static_cast<std::size_t>(request.tenant)];
        if (request.turn + 1 >= t.spec.sessionMaxTurns)
            return;
        if (t.draws.uniformDouble() >= t.spec.sessionFollowProb)
            return;
        if (scheduled_ >= total_)
            return;
        ++scheduled_;
        int ti = request.tenant;
        int session = request.session;
        int turn = request.turn + 1;
        int expert = request.expert;
        sim::Tick think = sim::fromSeconds(
            t.draws.exponential(t.spec.thinkMeanSeconds));
        eq().scheduleIn(think,
                        [this, ti, session, turn, expert]() {
                            emitTurn(ti, session, turn, expert);
                        },
                        "coe.session_turn");
    }

    int numExperts_;
    std::int64_t total_;
    ZooServingConfig zoo_;
    std::vector<Tenant> tenants_;
    std::int64_t scheduled_ = 0;
    int nextSession_ = 0;
    double factor_ = 1.0;
};

// ---------------------------------------------------- trace replay

/**
 * Re-run a recorded request stream: every entry is emitted at its
 * exact recorded tick, chained (entry i schedules entry i+1 before
 * emitting) so the event-creation order matches a live open-loop run
 * and replaying a recording reproduces its metrics bit-identically.
 */
class TraceReplayWorkload : public WorkloadModel
{
  public:
    /**
     * @param slo_override when > 0, replaces every replayed request's
     * recorded deadline — "same traffic, different SLO" comparisons.
     * 0 keeps the recorded deadlines (bit-faithful replay).
     */
    TraceReplayWorkload(
        std::shared_ptr<const std::vector<TraceEntry>> entries,
        double slo_override)
        : entries_(std::move(entries)), sloOverride_(slo_override)
    {
    }

    void
    start() override
    {
        if (!entries_->empty())
            scheduleEntry(0);
    }

    std::int64_t
    plannedRequests() const override
    {
        return static_cast<std::int64_t>(entries_->size());
    }

  private:
    void
    scheduleEntry(std::size_t i)
    {
        const std::vector<TraceEntry> &e = *entries_;
        eq().schedule(e[i].tick,
                      [this, i]() {
                          if (i + 1 < entries_->size())
                              scheduleEntry(i + 1);
                          // emit() re-assigns ids from its own counter;
                          // loadTrace validated the recorded ids are
                          // 0..N-1 in order, so they coincide.
                          TrafficRequest r = (*entries_)[i].request;
                          if (sloOverride_ > 0.0)
                              r.deadlineSeconds = sloOverride_;
                          emit(r);
                      },
                      "coe.arrival");
    }

    /** Shared, immutable: a sweep parses once for every point. */
    std::shared_ptr<const std::vector<TraceEntry>> entries_;
    double sloOverride_;
};

} // namespace

// -------------------------------------------------- tenant mix

std::vector<TenantSpec>
buildTenantMix(const ServingConfig &cfg)
{
    const WorkloadConfig &w = cfg.workload;
    int tenants = std::max(1, w.tenants);
    std::vector<TenantSpec> out;
    out.reserve(static_cast<std::size_t>(tenants));
    for (int i = 0; i < tenants; ++i) {
        TenantSpec t;
        t.name = "tenant" + std::to_string(i);
        // Tenant sizes follow their own popularity curve: tenant 0 is
        // the whale, the tail thins as 1/(i+1).
        t.rateShare = 1.0 / static_cast<double>(1 + i);
        t.zipfS = cfg.zipfS;
        // Rotate each tenant's popularity order so their hot expert
        // sets differ — the cache sees the union of N skews, not one.
        t.expertOffset = static_cast<int>(
            (static_cast<long long>(i) * cfg.numExperts) / tenants);
        // Alternate short-prompt (chat) and full-prompt tenants.
        t.promptLen = (i % 2 == 1) ? std::max(1, cfg.promptLen / 2) : 0;
        t.minOutputTokens = std::max(1, cfg.outputTokens / 2);
        t.maxOutputTokens = cfg.outputTokens + cfg.outputTokens / 2;
        t.priority = i % 3;
        t.sloSeconds = w.sloSeconds;
        t.sessionFollowProb = w.sessionFollowProb;
        t.sessionMaxTurns = w.sessionMaxTurns;
        t.thinkMeanSeconds = w.sessionThinkSeconds;
        t.shape = w.shape;
        out.push_back(std::move(t));
    }
    return out;
}

// ------------------------------------------------------- trace IO

namespace {

/**
 * Strict field-by-field JSONL parser: the format is fixed-order and
 * machine-written, so any deviation is corruption and dies with a
 * FatalError naming the file, line, and expectation.
 */
struct LineParser
{
    const std::string &path;
    std::size_t lineNo;
    const std::string &line;
    std::size_t pos = 0;

    [[noreturn]] void
    die(const std::string &why) const
    {
        sim::fatal("trace " + path + " line " + std::to_string(lineNo) +
                   ": " + why + " (corrupt or truncated trace?)");
    }

    void
    lit(const char *text)
    {
        std::size_t n = std::string(text).size();
        if (line.compare(pos, n, text) != 0)
            die("expected '" + std::string(text) + "' at column " +
                std::to_string(pos + 1));
        pos += n;
    }

    long long
    integer(const char *key)
    {
        lit("\"");
        lit(key);
        lit("\":");
        const char *begin = line.c_str() + pos;
        char *end = nullptr;
        long long v = std::strtoll(begin, &end, 10);
        if (end == begin)
            die(std::string("malformed integer for key '") + key + "'");
        pos += static_cast<std::size_t>(end - begin);
        return v;
    }

    double
    number(const char *key)
    {
        lit("\"");
        lit(key);
        lit("\":");
        const char *begin = line.c_str() + pos;
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (end == begin)
            die(std::string("malformed number for key '") + key + "'");
        pos += static_cast<std::size_t>(end - begin);
        return v;
    }

    void
    finish()
    {
        lit("}");
        if (pos != line.size())
            die("trailing characters after '}'");
    }
};

} // namespace

void
writeTrace(const std::string &path, const std::vector<TraceEntry> &entries)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("trace: cannot write " + path);
    out << "{\"sn40l_trace\":1,\"requests\":" << entries.size() << "}\n";
    for (const TraceEntry &e : entries) {
        const TrafficRequest &r = e.request;
        std::ostringstream deadline;
        deadline.precision(17);
        deadline << r.deadlineSeconds;
        out << "{\"id\":" << r.id << ",\"tick\":" << e.tick
            << ",\"tenant\":" << r.tenant << ",\"expert\":" << r.expert
            << ",\"session\":" << r.session << ",\"turn\":" << r.turn
            << ",\"prompt\":" << r.promptLen
            << ",\"tokens\":" << r.outputTokens
            << ",\"prio\":" << r.priority
            << ",\"deadline\":" << deadline.str() << "}\n";
    }
    if (!out)
        sim::fatal("trace: write to " + path + " failed");
}

std::vector<TraceEntry>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("trace: cannot open " + path);

    std::string line;
    if (!std::getline(in, line))
        sim::fatal("trace " + path + ": empty file (expected a "
                   "{\"sn40l_trace\":1,...} header)");
    LineParser header{path, 1, line};
    header.lit("{");
    long long version = header.integer("sn40l_trace");
    if (version != 1)
        header.die("unsupported trace version " + std::to_string(version));
    header.lit(",");
    long long requests = header.integer("requests");
    header.finish();
    if (requests <= 0)
        header.die("trace declares no requests");

    std::vector<TraceEntry> entries;
    entries.reserve(static_cast<std::size_t>(requests));
    sim::Tick prevTick = -1;
    for (long long i = 0; i < requests; ++i) {
        if (!std::getline(in, line))
            sim::fatal("trace " + path + ": truncated after " +
                       std::to_string(i) + " of " +
                       std::to_string(requests) + " requests");
        LineParser p{path, static_cast<std::size_t>(i + 2), line};
        TraceEntry e;
        p.lit("{");
        e.request.id = static_cast<int>(p.integer("id"));
        p.lit(",");
        e.tick = p.integer("tick");
        p.lit(",");
        e.request.tenant = static_cast<int>(p.integer("tenant"));
        p.lit(",");
        e.request.expert = static_cast<int>(p.integer("expert"));
        p.lit(",");
        e.request.session = static_cast<int>(p.integer("session"));
        p.lit(",");
        e.request.turn = static_cast<int>(p.integer("turn"));
        p.lit(",");
        e.request.promptLen = static_cast<int>(p.integer("prompt"));
        p.lit(",");
        e.request.outputTokens = static_cast<int>(p.integer("tokens"));
        p.lit(",");
        e.request.priority = static_cast<int>(p.integer("prio"));
        p.lit(",");
        e.request.deadlineSeconds = p.number("deadline");
        p.finish();

        if (e.request.id != static_cast<int>(i))
            p.die("ids must be sequential from 0 (got " +
                  std::to_string(e.request.id) + ", expected " +
                  std::to_string(i) + ")");
        if (e.tick < 0 || e.tick < prevTick)
            p.die("arrival ticks must be non-negative and "
                  "non-decreasing");
        if (e.request.expert < 0 || e.request.tenant < 0 ||
            e.request.turn < 0 || e.request.session < -1 ||
            e.request.promptLen < 0 || e.request.outputTokens < 0 ||
            e.request.priority < 0 || e.request.deadlineSeconds < 0.0)
            p.die("negative field value");
        prevTick = e.tick;
        entries.push_back(e);
    }
    // Anything after the promised requests is corruption; scan every
    // remaining line (tolerating pure trailing newlines) so garbage
    // cannot hide behind a blank line.
    while (std::getline(in, line)) {
        if (!line.empty())
            sim::fatal("trace " + path + ": trailing garbage after " +
                       std::to_string(requests) + " requests");
    }
    return entries;
}

// ------------------------------------------------------ validation

void
validateWorkloadConfig(const ServingConfig &cfg)
{
    const WorkloadConfig &w = cfg.workload;
    if (w.tenants < 1)
        sim::fatal("WorkloadConfig: tenants must be at least 1");
    if (w.sloSeconds < 0.0)
        sim::fatal("WorkloadConfig: negative SLO deadline");
    if (w.sessionFollowProb < 0.0 || w.sessionFollowProb > 1.0)
        sim::fatal("WorkloadConfig: session follow probability outside "
                   "[0, 1]");
    if (w.sessionMaxTurns < 1)
        sim::fatal("WorkloadConfig: sessions need at least one turn");
    if (w.sessionThinkSeconds < 0.0)
        sim::fatal("WorkloadConfig: negative session think time");
    validateShape(w.shape, "WorkloadConfig");
    if (w.multiTenant() && cfg.arrival == ArrivalProcess::ClosedLoop)
        sim::fatal("WorkloadConfig: tenant mixes and sessions are "
                   "open-loop workloads; they cannot be combined with a "
                   "closed loop");
    for (const TenantSpec &t : w.tenantSpecs) {
        if (t.rateShare <= 0.0)
            sim::fatal("TenantSpec " + t.name +
                       ": non-positive rate share");
        if (t.zipfS <= 0.0)
            sim::fatal("TenantSpec " + t.name + ": non-positive zipf "
                                                "skew");
        if (t.expertOffset < 0 || t.expertOffset >= cfg.numExperts)
            sim::fatal("TenantSpec " + t.name +
                       ": expert offset outside the expert pool");
        if (t.promptLen < 0 || t.minOutputTokens < 0 ||
            t.maxOutputTokens < t.minOutputTokens)
            sim::fatal("TenantSpec " + t.name +
                       ": malformed request-shape bounds");
        if (t.priority < 0)
            sim::fatal("TenantSpec " + t.name + ": negative priority");
        if (t.sloSeconds < 0.0)
            sim::fatal("TenantSpec " + t.name + ": negative SLO");
        if (t.sessionFollowProb < 0.0 || t.sessionFollowProb > 1.0)
            sim::fatal("TenantSpec " + t.name +
                       ": session follow probability outside [0, 1]");
        if (t.sessionMaxTurns < 1)
            sim::fatal("TenantSpec " + t.name +
                       ": sessions need at least one turn");
        if (t.thinkMeanSeconds < 0.0)
            sim::fatal("TenantSpec " + t.name + ": negative think time");
        validateShape(t.shape, "TenantSpec " + t.name);
    }
}

// --------------------------------------------------------- factory

std::unique_ptr<WorkloadModel>
makeWorkloadModel(const ServingConfig &cfg, const RateShape &rate_shape)
{
    if (cfg.workload.traceEntries)
        return std::make_unique<TraceReplayWorkload>(
            cfg.workload.traceEntries, cfg.workload.sloSeconds);
    if (!cfg.workload.traceIn.empty())
        return std::make_unique<TraceReplayWorkload>(
            std::make_shared<const std::vector<TraceEntry>>(
                loadTrace(cfg.workload.traceIn)),
            cfg.workload.sloSeconds);

    // Compose the driver-level shape (the cluster's diurnal ramp) over
    // the workload's own: the driver fields win where both are set.
    RateShape shape = cfg.workload.shape;
    if (rate_shape.diurnalAmplitude > 0.0) {
        shape.diurnalAmplitude = rate_shape.diurnalAmplitude;
        shape.diurnalPeriodSeconds = rate_shape.diurnalPeriodSeconds;
    }
    if (rate_shape.burstFactor > 1.0) {
        shape.burstFactor = rate_shape.burstFactor;
        shape.burstEverySeconds = rate_shape.burstEverySeconds;
        shape.burstSeconds = rate_shape.burstSeconds;
    }

    if (cfg.workload.multiTenant())
        return std::make_unique<MultiTenantWorkload>(cfg, shape);
    if (cfg.arrival == ArrivalProcess::ClosedLoop)
        return std::make_unique<ClosedLoopWorkload>(cfg);
    return std::make_unique<OpenLoopWorkload>(cfg, shape);
}

} // namespace sn40l::coe
