/**
 * @file
 * Workload scenario subsystem: pluggable request sources that feed
 * ServingEngine / ClusterSimulator instead of arrival loops hard-coded
 * into each driver.
 *
 * CoServe (arXiv:2503.02354) shows CoE serving behaviour is dominated
 * by workload structure — session reuse, expert skew, bursts — not by
 * mean arrival rate, and "AI and Memory Wall" (arXiv:2403.14123)
 * motivates stressing the memory tiers with diverse demand shapes.
 * This layer makes those scenarios first-class:
 *
 *  - WorkloadModel: the request-source interface. A model is bound to
 *    the run's EventQueue and a sink; it schedules arrival events and
 *    emits TrafficRequest descriptors (expert already routed) from
 *    inside them. Drivers feed back batch/request completions so
 *    closed loops and conversational sessions can re-inject.
 *
 *  - OpenLoopWorkload / ClosedLoopWorkload: the historical Poisson and
 *    client-pool arrival processes, expressed as models. They
 *    reproduce the exact event-creation order and RNG draw sequence of
 *    the old inlined loops, so every pre-existing serving/cluster
 *    golden stays bit-identical. OpenLoopWorkload also owns the
 *    RateShape modulation (diurnal ramp — absorbed from cluster.cc —
 *    and burst/flash-crowd windows), unifying every open-loop arrival
 *    process under one implementation.
 *
 *  - MultiTenantWorkload: N tenants, each an independent open-loop
 *    stream with its own rate share, expert-popularity skew (rotated
 *    Zipf, so tenants' hot sets differ), prompt/decode length
 *    distributions, priority, SLO deadline, and optional
 *    conversational sessions (follow-up turns reuse the session's
 *    expert and arrive an exponential think time after the previous
 *    turn completes).
 *
 *  - TraceReplayWorkload + trace record: any run can dump its emitted
 *    request stream to a JSONL trace (exact arrival ticks, ids,
 *    tenants, experts, shapes) and replay it, so sweeps and cluster
 *    comparisons run the *same* traffic across configs. Replaying a
 *    trace against the recording config reproduces the recorded
 *    metrics bit-identically (golden-locked in tests/test_workload.cc).
 */

#ifndef SN40L_COE_WORKLOAD_H
#define SN40L_COE_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace sn40l::coe {

struct ServingConfig;

/**
 * A request as emitted by a workload source, before admission: the
 * routed expert plus the scenario dimensions (tenant, session, shape,
 * SLO). ServingEngine admits these directly; the id is assigned by
 * WorkloadModel::emit at emission time.
 */
struct TrafficRequest
{
    int id = 0;
    int tenant = 0;
    int expert = 0;
    int session = -1;
    int turn = 0;
    int promptLen = 0;    ///< 0 = the serving config's default
    int outputTokens = 0; ///< 0 = the serving config's default
    int priority = 0;
    double deadlineSeconds = 0.0; ///< 0 = no SLO
    /**
     * Set by the cluster's hedged-dispatch policy on the duplicate
     * copy it routes to a second node (coe/faults.h). Never recorded
     * to traces — hedging happens after the recorder — and never set
     * by workload models.
     */
    bool hedgeDuplicate = false;
};

/**
 * Deterministic modulation of an open-loop arrival rate, unifying the
 * diurnal sinusoid (previously inlined in ClusterSimulator) with
 * burst/flash-crowd windows. The instantaneous rate at workload time t
 * is
 *
 *   base * (1 + diurnalAmplitude * sin(2*pi*t / diurnalPeriodSeconds))
 *        * (burstFactor if t falls in a burst window else 1)
 *
 * where burst windows are the first burstSeconds of every
 * burstEverySeconds period. A default-constructed shape is flat and
 * leaves the base rate arithmetically untouched.
 *
 * Granularity caveat: the arrival chain samples the rate once per
 * gap, at the previous arrival's time (no thinning), so modulation is
 * piecewise-constant per inter-arrival gap. That is accurate for
 * slow ramps (diurnal periods of minutes-hours) but coarse when a
 * burst window is comparable to the mean gap — size burstSeconds
 * several gaps wide for the realized process to track the factor.
 */
struct RateShape
{
    double diurnalAmplitude = 0.0; ///< in [0, 1); 0 disables
    double diurnalPeriodSeconds = 86400.0;
    double burstFactor = 1.0;       ///< >= 1; 1 disables
    double burstEverySeconds = 0.0; ///< burst window period
    double burstSeconds = 0.0;      ///< burst window length

    bool flat() const
    {
        return diurnalAmplitude == 0.0 && burstFactor == 1.0;
    }

    /** Instantaneous rate at workload time @p t seconds. */
    double instantaneous(double base, double t) const;
};

/** One tenant of a multi-tenant traffic mix. */
struct TenantSpec
{
    std::string name = "tenant";

    /** Relative share of the workload's total arrival rate. */
    double rateShare = 1.0;

    /**
     * Expert-popularity skew: the tenant routes Zipf(zipfS) over the
     * expert pool, with its popularity order rotated by expertOffset
     * so different tenants concentrate on different hot sets.
     */
    double zipfS = 1.0;
    int expertOffset = 0;

    int promptLen = 0; ///< 0 = serving config default
    /**
     * Decode length distribution: uniform in
     * [minOutputTokens, maxOutputTokens]; both 0 = config default.
     */
    int minOutputTokens = 0;
    int maxOutputTokens = 0;

    int priority = 0;         ///< see EngineRequest::priority
    double sloSeconds = 0.0;  ///< per-request deadline, 0 = none

    /** P(another turn follows) after each completed session turn. */
    double sessionFollowProb = 0.0;
    int sessionMaxTurns = 8;
    /** Mean of the exponential inter-turn think time. */
    double thinkMeanSeconds = 0.5;

    RateShape shape;
};

// ------------------------------------------------------------ traces

/** One recorded arrival: the emitted request plus its arrival tick. */
struct TraceEntry
{
    TrafficRequest request;
    sim::Tick tick = 0;
};

/**
 * Scenario knobs carried inside ServingConfig. Defaults describe the
 * historical single-tenant workload, so a default WorkloadConfig
 * changes nothing about existing runs.
 */
struct WorkloadConfig
{
    /**
     * Tenants in the traffic mix. 1 keeps the legacy single-tenant
     * arrival process; > 1 derives a deterministic tenant mix (see
     * buildTenantMix) unless tenantSpecs overrides it.
     */
    int tenants = 1;
    std::vector<TenantSpec> tenantSpecs; ///< explicit mix, wins over tenants

    /** Base SLO deadline stamped on requests (0 = no admission). */
    double sloSeconds = 0.0;

    /** Session defaults applied by the derived tenant mix. */
    double sessionFollowProb = 0.0;
    double sessionThinkSeconds = 0.5;
    int sessionMaxTurns = 8;

    /** Open-loop rate modulation (diurnal ramp, bursts). */
    RateShape shape;

    /**
     * Replay this trace instead of generating arrivals. The other
     * generator knobs (tenants, sessions, shape) are ignored;
     * sloSeconds, when set, *overrides* the recorded per-request
     * deadlines so one trace can be replayed under different SLOs.
     */
    std::string traceIn;
    std::string traceOut; ///< record the emitted stream here
    /**
     * Pre-parsed replay entries; wins over traceIn. Lets a sweep
     * parse the trace file once and share the (immutable) entries
     * across every grid point and worker thread instead of re-reading
     * the file per point.
     */
    std::shared_ptr<const std::vector<TraceEntry>> traceEntries;

    /**
     * @return true when the config asks for the multi-tenant model
     * (tenant mixes and conversational sessions live there); SLO
     * deadlines and rate shaping ride on the legacy models unchanged.
     */
    bool multiTenant() const
    {
        return tenants > 1 || !tenantSpecs.empty() ||
            sessionFollowProb > 0.0;
    }

    bool replay() const { return traceEntries || !traceIn.empty(); }
};

/**
 * Derive a deterministic @p tenants-wide mix from the serving config:
 * rate shares follow a 1/(i+1) popularity curve, popularity orders are
 * rotated so hot sets differ, decode lengths spread to a uniform
 * [tokens/2, 3*tokens/2] band, priorities cycle 0/1/2, and SLO
 * deadlines (when cfg.workload.sloSeconds is set) widen with priority.
 * Session knobs are copied from the workload config.
 */
std::vector<TenantSpec> buildTenantMix(const ServingConfig &cfg);

/**
 * Write @p entries as a JSONL trace: a header object
 * {"sn40l_trace":1,"requests":N} followed by one compact object per
 * request. Arrival times are stored as exact integer ticks, so replay
 * is bit-faithful. Throws FatalError when the file cannot be written.
 */
void writeTrace(const std::string &path,
                const std::vector<TraceEntry> &entries);

/**
 * Parse a trace written by writeTrace. Malformed headers, malformed
 * or out-of-order lines, truncated files, and trailing garbage all
 * throw FatalError naming the path and line — never undefined
 * behaviour on corrupt input.
 */
std::vector<TraceEntry> loadTrace(const std::string &path);

/** Buffers emitted requests so a run can be dumped as a trace. */
class TraceRecorder
{
  public:
    /** An empty path records nothing (record() is a cheap no-op). */
    explicit TraceRecorder(std::string path) : path_(std::move(path)) {}

    void record(const TrafficRequest &request, sim::Tick tick)
    {
        if (path_.empty())
            return;
        entries_.push_back({request, tick});
    }

    /** Flush to disk; no-op when the path is empty. */
    void write() const
    {
        if (!path_.empty())
            writeTrace(path_, entries_);
    }

    const std::vector<TraceEntry> &entries() const { return entries_; }

  private:
    std::string path_;
    std::vector<TraceEntry> entries_;
};

// ----------------------------------------------------------- models

/**
 * A pluggable request source. The driver binds the model to the run's
 * event queue and a sink, then start() schedules the initial arrival
 * events; every emission happens from inside an event on the queue, so
 * the sink's eq.now() is the request's arrival time.
 *
 * Request ids are assigned at emission time from a single counter, in
 * event order — the engine's id-ordered admission queue stays a true
 * FIFO even when several tenant streams interleave.
 */
class WorkloadModel
{
  public:
    using Sink = std::function<void(const TrafficRequest &)>;

    virtual ~WorkloadModel() = default;

    void bind(sim::EventQueue &eq, Sink sink)
    {
        eq_ = &eq;
        sink_ = std::move(sink);
    }

    /** Schedule the initial arrivals. Call after bind(). */
    virtual void start() = 0;

    /** A batch finished; @p finished requests completed in it. */
    virtual void onBatchComplete(int finished) { (void)finished; }

    /** One request completed (fires at its completion event). */
    virtual void onRequestComplete(const TrafficRequest &request)
    {
        (void)request;
    }

    /** One request was shed by SLO admission (terminal: no retry). */
    virtual void onRequestShed(const TrafficRequest &request)
    {
        (void)request;
    }

    /**
     * Runtime multiplier on the instantaneous arrival rate — the
     * cluster controller's rate-override actuator. Applies to gaps
     * sampled after the call; open-loop models honour it, closed
     * loops and trace replays (whose timing is completion-driven or
     * recorded) ignore it. A factor of 1.0 multiplies exactly, so it
     * never perturbs the gap sequence.
     */
    virtual void setRateFactor(double factor) { (void)factor; }

    /**
     * Requests this model will emit over the whole run (its budget).
     * After the queue drains, emitted() == plannedRequests().
     */
    virtual std::int64_t plannedRequests() const = 0;

    /** Requests emitted into the sink so far. */
    std::int64_t emitted() const { return emitted_; }

  protected:
    sim::EventQueue &eq()
    {
        return *eq_;
    }

    /** Assign the next id and hand @p request to the sink. */
    void emit(TrafficRequest request)
    {
        request.id = static_cast<int>(emitted_++);
        sink_(request);
    }

  private:
    sim::EventQueue *eq_ = nullptr;
    Sink sink_;
    std::int64_t emitted_ = 0;
};

/**
 * Build the workload model cfg describes: a trace replay when
 * cfg.workload.traceIn is set, a multi-tenant mix when the scenario
 * knobs ask for one, otherwise the legacy open-loop Poisson or
 * closed-loop client pool (bit-identical to the historical inlined
 * arrival loops). @p rate_shape layers driver-level modulation (the
 * cluster's diurnal ramp) over cfg.workload.shape.
 */
std::unique_ptr<WorkloadModel>
makeWorkloadModel(const ServingConfig &cfg,
                  const RateShape &rate_shape = RateShape{});

/**
 * Validate the scenario knobs (tenant shares, session probabilities,
 * rate shapes, SLO signs); FatalError on contradictions. Called from
 * validateServingConfig.
 */
void validateWorkloadConfig(const ServingConfig &cfg);

} // namespace sn40l::coe

#endif // SN40L_COE_WORKLOAD_H
