#include "compiler/bandwidth_model.h"

#include <algorithm>

#include "arch/agcu.h"
#include "arch/pcu.h"
#include "compiler/placer.h"
#include "sim/log.h"

namespace sn40l::compiler {

const char *
KernelCost::bottleneck() const
{
    double best = computeSeconds;
    const char *name = "compute";
    if (hbmSeconds > best) {
        best = hbmSeconds;
        name = "hbm";
    }
    if (ddrSeconds > best) {
        best = ddrSeconds;
        name = "ddr";
    }
    if (p2pSeconds > best) {
        name = "p2p";
    }
    return name;
}

namespace {

/**
 * Unfused kernels run one operator in isolation: small operators
 * cannot fill the chip (utilization ramps with work), and the whole
 * array runs without inter-op pipelining.
 */
double
unfusedComputeSeconds(const arch::ChipConfig &chip, const Kernel &kernel,
                      int tp)
{
    double sys = kernel.systolicFlops / tp;
    double simd = kernel.simdFlops / tp;
    double work = sys + simd;
    if (work <= 0.0)
        return 0.0;

    double util = std::clamp(work / chip.unfusedSaturationFlops,
                             chip.unfusedMinUtilization, 1.0);
    double sys_rate = chip.peakBf16Flops * chip.systolicEfficiency;
    double simd_rate = chip.peakBf16Flops * chip.simdRelativeThroughput;
    return (sys / sys_rate + simd / simd_rate) / util;
}

} // namespace

KernelCost
costKernel(const arch::ChipConfig &chip, const FusionOptions &options,
           const Kernel &kernel, const TrafficSplit &split)
{
    int tp = std::max(1, options.tensorParallel);
    KernelCost cost;

    // ---- Compute ---------------------------------------------------
    if (kernel.mode == ExecMode::RduFused) {
        cost.computeSeconds = placedComputeSeconds(chip, kernel, tp);
        cost.fillSeconds =
            static_cast<double>(kernel.stages.size()) *
            sim::toSeconds(chip.stageFillLatency);
    } else {
        cost.computeSeconds = unfusedComputeSeconds(chip, kernel, tp);
        cost.fillSeconds = 0.0;
    }

    // ---- Off-chip traffic ------------------------------------------
    double boundary_bytes = kernel.offChipBytes() / tp;
    double ddr_bytes = boundary_bytes * split.ddrFraction;
    double hbm_bytes = boundary_bytes - ddr_bytes;

    // Unfused kernels cannot overlap address generation with
    // streaming as deeply; they see lower sustained HBM efficiency.
    double hbm_eff = chip.hbmEfficiency;
    if (kernel.mode == ExecMode::RduUnfused)
        hbm_eff *= 0.75;

    cost.hbmBytes = hbm_bytes;
    cost.ddrBytes = ddr_bytes;
    cost.hbmSeconds = hbm_bytes / (chip.hbmBandwidth * hbm_eff);
    cost.ddrSeconds =
        ddr_bytes > 0.0 ? ddr_bytes / chip.effectiveDdrBandwidth() : 0.0;

    // ---- Collectives ------------------------------------------------
    if (tp > 1 && kernel.allReduceBytes > 0.0) {
        double factor = arch::Agcu::allReduceTrafficFactor(tp);
        cost.p2pBytes = kernel.allReduceBytes * factor / tp;
        cost.p2pSeconds = cost.p2pBytes / chip.p2pBandwidth;
        if (kernel.mode != ExecMode::RduFused) {
            // Unfused collectives are separate kernels and pay a
            // latency per hop; fused pipelines overlap it.
            cost.p2pSeconds += kernel.collectiveOps * 2e-6;
        }
    }
    return cost;
}

} // namespace sn40l::compiler
