/**
 * @file
 * Static bandwidth model (Section VII, "Managing bandwidth in
 * software"): predicts each kernel's execution time as the bottleneck
 * of compute, HBM traffic, DDR traffic (spilled symbols), and
 * peer-to-peer collective traffic, plus pipeline fill.
 */

#ifndef SN40L_COMPILER_BANDWIDTH_MODEL_H
#define SN40L_COMPILER_BANDWIDTH_MODEL_H

#include "arch/chip_config.h"
#include "compiler/fusion.h"
#include "compiler/kernel.h"
#include "sim/ticks.h"

namespace sn40l::compiler {

/** Where a kernel's boundary traffic lands. */
struct TrafficSplit
{
    /** Fraction of weight/activation bytes served from DDR because
     *  they were spilled (0 when everything fits in HBM). */
    double ddrFraction = 0.0;
};

struct KernelCost
{
    double computeSeconds = 0.0;
    double hbmSeconds = 0.0;
    double ddrSeconds = 0.0;
    double p2pSeconds = 0.0;
    double fillSeconds = 0.0;

    /** Bytes actually moved (per socket), for channel accounting. */
    double hbmBytes = 0.0;
    double ddrBytes = 0.0;
    double p2pBytes = 0.0;

    double
    steadySeconds() const
    {
        double s = computeSeconds;
        s = std::max(s, hbmSeconds);
        s = std::max(s, ddrSeconds);
        s = std::max(s, p2pSeconds);
        return s;
    }

    double totalSeconds() const { return steadySeconds() + fillSeconds; }
    sim::Tick totalTicks() const
    {
        return sim::fromSeconds(totalSeconds());
    }

    /** Dominant resource name, for reports. */
    const char *bottleneck() const;
};

/**
 * Cost one kernel's per-socket execution. @p kernel must be placed
 * (for fused kernels) before costing.
 */
KernelCost costKernel(const arch::ChipConfig &chip,
                      const FusionOptions &options, const Kernel &kernel,
                      const TrafficSplit &split = {});

} // namespace sn40l::compiler

#endif // SN40L_COMPILER_BANDWIDTH_MODEL_H
