#include "compiler/compiler.h"

#include <algorithm>
#include <map>

#include "compiler/placer.h"
#include "sim/log.h"

namespace sn40l::compiler {

using graph::OpId;
using graph::TensorId;
using graph::TensorKind;

double
Program::execSeconds() const
{
    double total = 0.0;
    for (const KernelExec &ke : kernels)
        total += ke.cost.totalSeconds();
    return total;
}

double
Program::estimatedSeconds(double launch_overhead_seconds) const
{
    return execSeconds() +
           static_cast<double>(totalLaunches) * launch_overhead_seconds;
}

namespace {

/**
 * Build memory-plan symbols from the tensors that live off-chip at
 * kernel boundaries, with lifetimes in kernel-schedule steps.
 */
std::vector<mem::Symbol>
buildSymbols(const graph::DataflowGraph &graph,
             const std::vector<Kernel> &kernels,
             const CompileOptions &options, int tp,
             std::vector<TensorId> &symbol_tensors)
{
    int num_kernels = static_cast<int>(kernels.size());

    // Tensor -> kernel steps that touch it.
    std::map<TensorId, std::pair<int, int>> live; // first, last
    auto touch = [&](TensorId id, int step) {
        auto it = live.find(id);
        if (it == live.end())
            live[id] = {step, step};
        else
            it->second.second = std::max(it->second.second, step);
    };

    // Count boundary traffic per tensor for spill prioritization.
    std::map<TensorId, double> footprint;

    for (int step = 0; step < num_kernels; ++step) {
        const Kernel &k = kernels[step];
        for (OpId id : k.ops) {
            const graph::Operator &op = graph.op(id);
            for (TensorId in : op.inputs) {
                touch(in, step);
                footprint[in] += graph.effectiveReadBytes(id, in);
            }
            for (TensorId out : op.outputs) {
                touch(out, step);
                footprint[out] += graph.effectiveWriteBytes(id, out);
            }
        }
    }

    std::vector<mem::Symbol> symbols;
    symbol_tensors.clear();
    for (const graph::Tensor &t : graph.tensors()) {
        auto it = live.find(t.id);
        if (it == live.end())
            continue;

        // Activations entirely internal to one fused kernel never go
        // off-chip — they live in PMU stage buffers, not HBM.
        bool persistent_kind = t.kind == TensorKind::Weight ||
                               t.kind == TensorKind::Constant ||
                               t.kind == TensorKind::KvCache;
        if (!persistent_kind && t.kind == TensorKind::Activation &&
            it->second.first == it->second.second) {
            continue;
        }

        mem::Symbol sym;
        sym.name = t.name;
        sym.bytes = std::max<std::int64_t>(1, t.bytes() / tp);
        sym.readOnly = graph::isReadOnlyKind(t.kind);
        sym.transferFootprint = footprint[t.id] / tp;

        bool persistent = t.kind == TensorKind::Weight ||
                          t.kind == TensorKind::Constant ||
                          t.kind == TensorKind::KvCache;
        if (persistent) {
            // Weights persist for the whole schedule and are re-read
            // every generated token: scale their bandwidth demand.
            sym.firstUse = 0;
            sym.lastUse = num_kernels - 1;
            sym.transferFootprint *= options.weightReuseFactor;
        } else {
            sym.firstUse = it->second.first;
            sym.lastUse = it->second.second;
        }
        symbols.push_back(std::move(sym));
        symbol_tensors.push_back(t.id);
    }
    return symbols;
}

} // namespace

Program
compile(const graph::DataflowGraph &graph, const arch::ChipConfig &chip,
        const CompileOptions &options)
{
    Program prog;
    prog.name = graph.name();
    prog.mode = options.fusion.mode;
    prog.tensorParallel = std::max(1, options.fusion.tensorParallel);
    prog.weightBytes = graph.weightBytes();
    prog.totalFlops = graph.totalFlops();

    std::vector<Kernel> kernels = partitionGraph(graph, chip,
                                                 options.fusion);
    if (prog.mode == ExecMode::RduFused) {
        for (Kernel &k : kernels)
            placeKernel(graph, chip, options.fusion, k);
    }

    // ---- Static memory plan (Section V-A) -------------------------
    std::vector<TensorId> symbol_tensors;
    std::vector<mem::Symbol> symbols =
        buildSymbols(graph, kernels, options, prog.tensorParallel,
                     symbol_tensors);

    mem::MemoryPlan plan = mem::planMemory(symbols, chip.hbmBytes,
                                           chip.ddrBytes);
    prog.hbmResidentBytes = static_cast<double>(plan.hbmPeakBytes);
    prog.ddrResidentBytes = static_cast<double>(plan.ddrBytes);
    prog.spilledSymbols = plan.spilledSymbols;

    // Global DDR traffic fraction applied to every kernel's boundary
    // bytes (a finer per-kernel split would need per-tensor routing
    // through the cost model; the aggregate is what Fig 1/V-A show).
    double total_footprint = 0.0;
    for (const mem::Symbol &sym : symbols)
        total_footprint += sym.transferFootprint;
    TrafficSplit split;
    if (total_footprint > 0.0) {
        split.ddrFraction = std::min(
            1.0, plan.spillTrafficBytes / total_footprint);
    }

    // ---- Cost and schedule ----------------------------------------
    prog.kernels.reserve(kernels.size());
    for (Kernel &k : kernels) {
        KernelExec ke;
        ke.cost = costKernel(chip, options.fusion, k, split);
        prog.totalLaunches += k.launches;
        ke.kernel = std::move(k);
        prog.kernels.push_back(std::move(ke));
    }
    return prog;
}

} // namespace sn40l::compiler
