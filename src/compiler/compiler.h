/**
 * @file
 * Compiler driver: graph -> kernels -> placement -> memory plan ->
 * costed, executable Program.
 */

#ifndef SN40L_COMPILER_COMPILER_H
#define SN40L_COMPILER_COMPILER_H

#include <string>
#include <vector>

#include "arch/chip_config.h"
#include "compiler/bandwidth_model.h"
#include "compiler/fusion.h"
#include "compiler/kernel.h"
#include "graph/dataflow_graph.h"
#include "mem/static_allocator.h"

namespace sn40l::compiler {

struct CompileOptions
{
    FusionOptions fusion;

    /**
     * Multi-token reuse factor applied to weight/constant/KV symbols
     * when prioritizing HBM residency (Section V-A: weights win
     * because they are re-read every generated token).
     */
    double weightReuseFactor = 16.0;
};

/** One schedulable kernel with its predicted cost. */
struct KernelExec
{
    Kernel kernel;
    KernelCost cost;
};

struct Program
{
    std::string name;
    ExecMode mode = ExecMode::RduFused;
    int tensorParallel = 1;

    std::vector<KernelExec> kernels;

    // ---- Memory footprint (per socket) ----------------------------
    double hbmResidentBytes = 0.0; ///< peak HBM from the static plan
    double ddrResidentBytes = 0.0; ///< spilled symbols
    double weightBytes = 0.0;      ///< total parameter bytes (all sockets)

    double totalFlops = 0.0;
    std::int64_t totalLaunches = 0;
    int spilledSymbols = 0;

    /** Sum of kernel execution times, no launch overheads. */
    double execSeconds() const;

    /** Analytic end-to-end estimate with per-launch overhead. */
    double estimatedSeconds(double launch_overhead_seconds) const;
};

/**
 * Compile @p graph for an SN40L socket (replicated tensor-parallel
 * across options.fusion.tensorParallel sockets).
 */
Program compile(const graph::DataflowGraph &graph,
                const arch::ChipConfig &chip,
                const CompileOptions &options);

} // namespace sn40l::compiler

#endif // SN40L_COMPILER_COMPILER_H
