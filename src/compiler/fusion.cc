#include "compiler/fusion.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "sim/log.h"

namespace sn40l::compiler {

using graph::DataflowGraph;
using graph::OpClass;
using graph::OpId;
using graph::OpKind;
using graph::TensorId;

std::int64_t
stageBufferBytes(const DataflowGraph &graph, OpId id,
                 std::int64_t tile_rows)
{
    const graph::Operator &op = graph.op(id);
    std::int64_t total = 0;
    for (TensorId out : op.outputs) {
        const graph::Tensor &t = graph.tensor(out);
        if (t.kind == graph::TensorKind::KvCache)
            continue; // lives in HBM, streams through
        std::int64_t row = t.shape.innermost() *
            static_cast<std::int64_t>(graph::dtypeBytes(t.dtype));
        std::int64_t tile = std::min(t.bytes(), tile_rows * row);
        total += 2 * tile; // double-buffered
    }
    return total;
}

namespace {

int
minPcusFor(const graph::Operator &op, const FusionOptions &opt)
{
    switch (op.cls()) {
      case OpClass::Systolic: return opt.minPcusSystolic;
      case OpClass::Simd: return opt.minPcusSimd;
      case OpClass::Memory: return 0;  // PMUs/AGCUs only
      case OpClass::Collective: return 0;
    }
    sim::panic("minPcusFor: unknown class");
}

/** Finalize a group into a Kernel (traffic + naming). */
Kernel
makeKernel(const DataflowGraph &graph, ExecMode mode, int id,
           std::vector<OpId> ops)
{
    Kernel k;
    k.id = id;
    k.mode = mode;
    k.ops = std::move(ops);
    k.name = graph.op(k.ops.front()).name;
    if (k.ops.size() > 1)
        k.name += "..." + graph.op(k.ops.back()).name;
    accountKernelTraffic(graph, k);
    return k;
}

std::vector<Kernel>
partitionRduFused(const DataflowGraph &graph, const arch::ChipConfig &chip,
                  const FusionOptions &opt)
{
    std::vector<Kernel> kernels;
    std::vector<OpId> group;
    int group_pcus = 0;
    std::int64_t group_sram = 0;
    double group_flops = 0.0;

    int placeable_pcus = static_cast<int>(
        std::floor(chip.pcuCount * chip.placeableFraction));
    std::int64_t placeable_sram = static_cast<std::int64_t>(
        static_cast<double>(chip.sramBytes) * chip.placeableFraction);
    int tp = std::max(1, opt.tensorParallel);

    auto flush = [&]() {
        if (group.empty())
            return;
        kernels.push_back(makeKernel(graph, ExecMode::RduFused,
                                     static_cast<int>(kernels.size()),
                                     group));
        group.clear();
        group_pcus = 0;
        group_sram = 0;
        group_flops = 0.0;
    };

    for (OpId id : graph.topoOrder()) {
        const graph::Operator &op = graph.op(id);
        int pcus = minPcusFor(op, opt);
        // Stage buffers shard across sockets with the tensors.
        std::int64_t sram = stageBufferBytes(graph, id, opt.tileRows) / tp;
        double flops = graph.opFlops(id) / tp;

        bool fits = group.empty() ||
            (group_pcus + pcus <= placeable_pcus &&
             group_sram + sram <= placeable_sram &&
             group_flops + flops <= opt.fusedKernelFlopsBudget);
        if (!fits)
            flush();

        group.push_back(id);
        group_pcus += pcus;
        group_sram += sram;
        group_flops += flops;
    }
    flush();
    return kernels;
}

std::vector<Kernel>
partitionRduUnfused(const DataflowGraph &graph,
                    const FusionOptions &opt)
{
    std::vector<Kernel> kernels;
    int tp = std::max(1, opt.tensorParallel);
    for (OpId id : graph.topoOrder()) {
        Kernel k = makeKernel(graph, ExecMode::RduUnfused,
                              static_cast<int>(kernels.size()), {id});
        double socket_flops = graph.opFlops(id) / tp;
        k.launches = std::max<int>(
            1, static_cast<int>(std::ceil(
                   socket_flops / opt.maxFlopsPerUnfusedLaunch)));
        kernels.push_back(std::move(k));
    }
    return kernels;
}

/**
 * Match the FlashAttention pattern by following data edges from a
 * scores BatchGemm: BatchGemm -> [Scale/Add]* -> Softmax -> BatchGemm
 * (each link through a single-consumer activation).
 * @return ops consumed, or empty if no match.
 */
std::vector<OpId>
matchFlashAttention(const DataflowGraph &graph, OpId start)
{
    auto sole_consumer = [&](OpId id) -> OpId {
        const graph::Operator &op = graph.op(id);
        if (op.outputs.size() != 1)
            return graph::kInvalidOp;
        const graph::Tensor &t = graph.tensor(op.outputs[0]);
        if (t.consumers.size() != 1)
            return graph::kInvalidOp;
        return t.consumers[0];
    };

    if (graph.op(start).kind != OpKind::BatchGemm)
        return {};
    std::vector<OpId> ops = {start};

    OpId cur = sole_consumer(start);
    while (cur != graph::kInvalidOp &&
           (graph.op(cur).kind == OpKind::Scale ||
            graph.op(cur).kind == OpKind::Add)) {
        ops.push_back(cur);
        cur = sole_consumer(cur);
    }
    if (cur == graph::kInvalidOp ||
        graph.op(cur).kind != OpKind::Softmax) {
        return {};
    }
    ops.push_back(cur);
    cur = sole_consumer(cur);
    if (cur == graph::kInvalidOp ||
        graph.op(cur).kind != OpKind::BatchGemm) {
        return {};
    }
    ops.push_back(cur);
    return ops;
}

std::vector<Kernel>
partitionGpu(const DataflowGraph &graph, const FusionOptions &opt)
{
    std::vector<Kernel> kernels;
    std::vector<OpId> order = graph.topoOrder();
    std::vector<OpId> group;

    auto flush = [&]() {
        if (group.empty())
            return;
        kernels.push_back(makeKernel(graph, ExecMode::GpuConventional,
                                     static_cast<int>(kernels.size()),
                                     group));
        group.clear();
    };

    std::set<OpId> claimed; // ops already emitted in an FA kernel

    for (std::size_t i = 0; i < order.size(); ++i) {
        const graph::Operator &op = graph.op(order[i]);
        if (claimed.count(op.id))
            continue;

        if (opt.gpuFlashAttention) {
            std::vector<OpId> fa = matchFlashAttention(graph, order[i]);
            if (!fa.empty()) {
                flush();
                kernels.push_back(
                    makeKernel(graph, ExecMode::GpuConventional,
                               static_cast<int>(kernels.size()), fa));
                claimed.insert(fa.begin(), fa.end());
                continue;
            }
        }

        if (op.cls() == OpClass::Systolic ||
            op.cls() == OpClass::Collective ||
            op.cls() == OpClass::Memory ||
            !graph::isGpuFusable(op.kind)) {
            // Starts (or stands as) its own kernel; GEMMs may then
            // absorb elementwise epilogues.
            flush();
            group.push_back(op.id);
            if (op.cls() != OpClass::Systolic)
                flush(); // only GEMMs take epilogues
            continue;
        }

        // Elementwise: fuse into the running group (epilogue or
        // elementwise chain), but only if it consumes the group's
        // running output — otherwise start a new chain.
        if (!group.empty()) {
            bool consumes_prev = false;
            const graph::Operator &prev = graph.op(group.back());
            for (TensorId out : prev.outputs) {
                for (TensorId in : op.inputs) {
                    if (in == out)
                        consumes_prev = true;
                }
            }
            if (!consumes_prev)
                flush();
        }
        group.push_back(op.id);
    }
    flush();
    return kernels;
}

} // namespace

std::vector<Kernel>
partitionGraph(const DataflowGraph &graph, const arch::ChipConfig &chip,
               const FusionOptions &options)
{
    if (graph.numOps() == 0)
        sim::fatal("partitionGraph: empty graph");
    switch (options.mode) {
      case ExecMode::RduFused:
        return partitionRduFused(graph, chip, options);
      case ExecMode::RduUnfused:
        return partitionRduUnfused(graph, options);
      case ExecMode::GpuConventional:
        return partitionGpu(graph, options);
    }
    sim::panic("partitionGraph: unknown mode");
}

std::int64_t
totalLaunches(const std::vector<Kernel> &kernels)
{
    std::int64_t total = 0;
    for (const Kernel &k : kernels)
        total += k.launches;
    return total;
}

std::vector<graph::FusionGroup>
toFusionGroups(const std::vector<Kernel> &kernels)
{
    std::vector<graph::FusionGroup> groups;
    groups.reserve(kernels.size());
    for (const Kernel &k : kernels) {
        graph::FusionGroup g;
        g.ops = k.ops;
        groups.push_back(std::move(g));
    }
    return groups;
}

} // namespace sn40l::compiler
