/**
 * @file
 * Graph partitioning into kernels, under three regimes:
 *
 *  - RduFused: streaming-dataflow fusion. Ops fuse greedily in
 *    topological order into coarse pipelines, bounded only by chip
 *    resources (PCU floors per stage, SRAM stage buffers) and a
 *    per-kernel FLOP budget representing the compiler's pipeline-
 *    depth/throughput tradeoff. Arbitrary access patterns (transpose,
 *    shuffles, collectives) do NOT break fusion (Section III-A).
 *
 *  - RduUnfused: the paper's baseline. One kernel per operator;
 *    large operators split into multiple grid launches; all
 *    intermediates materialize off-chip.
 *
 *  - GpuConventional: TensorRT/torch.compile-class fusion for the DGX
 *    baseline. A producing kernel absorbs a chain of elementwise
 *    epilogues; layout changes, lookups, softmax (unless the
 *    FlashAttention pattern is enabled) and collectives start new
 *    kernels.
 */

#ifndef SN40L_COMPILER_FUSION_H
#define SN40L_COMPILER_FUSION_H

#include <vector>

#include "arch/chip_config.h"
#include "compiler/kernel.h"
#include "graph/intensity.h"

namespace sn40l::compiler {

struct FusionOptions
{
    ExecMode mode = ExecMode::RduFused;

    /** Tensor-parallel degree (per-socket work = total / tp). */
    int tensorParallel = 1;

    /** Minimum PCUs a pipeline stage needs to sustain throughput.
     *  Sized so one decoder layer occupies "almost 90% of the PCUs"
     *  (Section VI-C) — the paper's per-decoder fusion granularity. */
    int minPcusSystolic = 80;
    int minPcusSimd = 8;

    /**
     * Per-socket FLOP budget per fused kernel: the compiler closes a
     * pipeline beyond this to bound pipeline depth and stage buffer
     * pressure (calibration constant; see EXPERIMENTS.md).
     */
    double fusedKernelFlopsBudget = 1e12;

    /** Pipeline tile granularity (rows double-buffered per stage). */
    std::int64_t tileRows = 64;

    /** Per-socket FLOPs one unfused grid launch can cover. */
    double maxFlopsPerUnfusedLaunch = 32e9;

    /** GPU baseline: fuse the attention pattern like FlashAttention. */
    bool gpuFlashAttention = true;
};

/**
 * Partition @p graph into kernels per @p options. Every op lands in
 * exactly one kernel; kernels appear in executable (topological)
 * order with traffic accounting filled in.
 */
std::vector<Kernel> partitionGraph(const graph::DataflowGraph &graph,
                                   const arch::ChipConfig &chip,
                                   const FusionOptions &options);

/** Total launches (kernels x grid splits) in a partition. */
std::int64_t totalLaunches(const std::vector<Kernel> &kernels);

/** Convert kernels to intensity-analysis fusion groups. */
std::vector<graph::FusionGroup>
toFusionGroups(const std::vector<Kernel> &kernels);

/**
 * Double-buffered stage-buffer bytes for an op's outputs inside a
 * pipeline (tiles, not whole tensors — the point of streaming).
 */
std::int64_t stageBufferBytes(const graph::DataflowGraph &graph,
                              graph::OpId id, std::int64_t tile_rows);

} // namespace sn40l::compiler

#endif // SN40L_COMPILER_FUSION_H
