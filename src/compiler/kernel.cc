#include "compiler/kernel.h"

#include <algorithm>
#include <map>
#include <set>

#include "sim/log.h"

namespace sn40l::compiler {

using graph::OpClass;
using graph::OpId;
using graph::OpKind;
using graph::TensorId;
using graph::TensorKind;

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::RduFused: return "rdu-fused";
      case ExecMode::RduUnfused: return "rdu-unfused";
      case ExecMode::GpuConventional: return "gpu-conventional";
    }
    sim::panic("execModeName: unknown mode");
}

void
accountKernelTraffic(const graph::DataflowGraph &graph, Kernel &kernel)
{
    std::set<OpId> members(kernel.ops.begin(), kernel.ops.end());

    kernel.flops = 0.0;
    kernel.systolicFlops = 0.0;
    kernel.simdFlops = 0.0;
    kernel.weightBytes = 0.0;
    kernel.inputBytes = 0.0;
    kernel.outputBytes = 0.0;
    kernel.kvReadBytes = 0.0;
    kernel.kvWriteBytes = 0.0;
    kernel.allReduceBytes = 0.0;
    kernel.collectiveOps = 0;

    std::map<TensorId, double> reads, writes;

    for (OpId id : kernel.ops) {
        const graph::Operator &op = graph.op(id);
        double f = graph.opFlops(id);
        kernel.flops += f;
        if (op.cls() == OpClass::Systolic)
            kernel.systolicFlops += f;
        else if (op.cls() == OpClass::Simd)
            kernel.simdFlops += f;

        if (op.kind == OpKind::AllReduce) {
            ++kernel.collectiveOps;
            if (!op.inputs.empty()) {
                kernel.allReduceBytes += static_cast<double>(
                    graph.tensor(op.inputs[0]).bytes());
            }
        }

        for (TensorId in : op.inputs) {
            const graph::Tensor &t = graph.tensor(in);
            bool internal = t.producer != graph::kInvalidOp &&
                            members.count(t.producer) &&
                            t.kind != TensorKind::KvCache;
            if (internal)
                continue;
            double bytes = graph.effectiveReadBytes(id, in);
            auto it = reads.find(in);
            if (it == reads.end() || it->second < bytes)
                reads[in] = bytes;
        }
        for (TensorId out : op.outputs) {
            const graph::Tensor &t = graph.tensor(out);
            bool escapes = t.kind == TensorKind::Output ||
                           t.kind == TensorKind::KvCache;
            for (OpId c : t.consumers) {
                if (!members.count(c))
                    escapes = true;
            }
            if (!escapes)
                continue;
            double bytes = graph.effectiveWriteBytes(id, out);
            auto it = writes.find(out);
            if (it == writes.end() || it->second < bytes)
                writes[out] = bytes;
        }
    }

    for (const auto &kv : reads) {
        const graph::Tensor &t = graph.tensor(kv.first);
        switch (t.kind) {
          case TensorKind::Weight:
          case TensorKind::Constant:
            kernel.weightBytes += kv.second;
            break;
          case TensorKind::KvCache:
            kernel.kvReadBytes += kv.second;
            break;
          default:
            kernel.inputBytes += kv.second;
        }
    }
    for (const auto &kv : writes) {
        const graph::Tensor &t = graph.tensor(kv.first);
        if (t.kind == TensorKind::KvCache)
            kernel.kvWriteBytes += kv.second;
        else
            kernel.outputBytes += kv.second;
    }
}

} // namespace sn40l::compiler
