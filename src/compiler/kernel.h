/**
 * @file
 * Kernel: a fusion group scheduled as one launch (or several grid
 * launches for split unfused ops), with its off-chip traffic
 * classified by tensor role. The traffic accounting feeds the static
 * bandwidth model and the executor.
 */

#ifndef SN40L_COMPILER_KERNEL_H
#define SN40L_COMPILER_KERNEL_H

#include <string>
#include <vector>

#include "graph/dataflow_graph.h"

namespace sn40l::compiler {

/** How the graph was lowered. */
enum class ExecMode {
    RduFused,       ///< streaming dataflow fusion (the paper's mode)
    RduUnfused,     ///< one kernel per operator, materializing
    GpuConventional ///< GPU-style restricted fusion (baseline)
};

const char *execModeName(ExecMode mode);

/** PCU assignment for one pipeline stage of a fused kernel. */
struct StagePlacement
{
    graph::OpId op = graph::kInvalidOp;
    graph::OpClass cls = graph::OpClass::Simd;
    int pcus = 0;
    double flops = 0.0;
    std::int64_t stageBufferBytes = 0;
};

struct Kernel
{
    int id = 0;
    std::string name;
    ExecMode mode = ExecMode::RduFused;
    std::vector<graph::OpId> ops;

    /** Grid launches this kernel needs (unfused ops may split). */
    int launches = 1;

    // ---- Work (whole-workload aggregate; executor divides by TP) --
    double flops = 0.0;         ///< total, sparsity-discounted
    double systolicFlops = 0.0; ///< GEMM-class share of flops
    double simdFlops = 0.0;     ///< SIMD-class share

    // ---- Off-chip traffic at kernel boundaries -------------------
    double weightBytes = 0.0;   ///< weights/constants streamed in
    double inputBytes = 0.0;    ///< activations read from off-chip
    double outputBytes = 0.0;   ///< activations written off-chip
    double kvReadBytes = 0.0;
    double kvWriteBytes = 0.0;
    double allReduceBytes = 0.0;///< collective payload (pre-ring-factor)
    int collectiveOps = 0;

    // ---- Placement summary (fused kernels) -----------------------
    std::vector<StagePlacement> stages;
    int pcusUsed = 0;
    int pmusUsed = 0;
    std::int64_t sramBytes = 0;

    double
    offChipReadBytes() const
    {
        return weightBytes + inputBytes + kvReadBytes;
    }

    double
    offChipBytes() const
    {
        return offChipReadBytes() + outputBytes + kvWriteBytes;
    }

    /** FLOPs per off-chip byte at this kernel's boundary. */
    double
    operationalIntensity() const
    {
        double bytes = offChipBytes();
        return bytes > 0.0 ? flops / bytes : 0.0;
    }
};

/**
 * Classify the off-chip traffic of a prospective fusion group and
 * fill the work/traffic fields of @p kernel. @p member must answer
 * whether an op id belongs to the group.
 */
void accountKernelTraffic(const graph::DataflowGraph &graph, Kernel &kernel);

} // namespace sn40l::compiler

#endif // SN40L_COMPILER_KERNEL_H
