#include "compiler/placer.h"

#include <algorithm>
#include <cmath>

#include "arch/pcu.h"
#include "sim/log.h"

namespace sn40l::compiler {

using graph::OpClass;

namespace {

/**
 * Placement floors: the minimum PCUs a stage can run on at all. These
 * are intentionally smaller than the FusionOptions granularity floors
 * (which express the compiler's throughput target for closing
 * pipelines); once a pipeline exists, tiny stages may legitimately
 * run on very few units.
 */
int
placementFloor(OpClass cls)
{
    switch (cls) {
      case OpClass::Systolic: return 4;
      case OpClass::Simd: return 2;
      default: return 0;
    }
}

} // namespace

void
placeKernel(const graph::DataflowGraph &graph, const arch::ChipConfig &chip,
            const FusionOptions &options, Kernel &kernel)
{
    kernel.stages.clear();

    int placeable_pcus = static_cast<int>(
        std::floor(chip.pcuCount * chip.placeableFraction));

    // Per-stage normalized work: FLOPs scaled by the inverse of the
    // class's per-PCU throughput, so a SIMD FLOP demands
    // proportionally more PCUs than a systolic FLOP.
    std::vector<double> weight;
    for (graph::OpId id : kernel.ops) {
        const graph::Operator &op = graph.op(id);
        StagePlacement stage;
        stage.op = id;
        stage.cls = op.cls();
        stage.flops = graph.opFlops(id);
        stage.stageBufferBytes =
            stageBufferBytes(graph, id, options.tileRows);
        stage.pcus = placementFloor(op.cls());
        kernel.stages.push_back(stage);

        double rate = arch::Pcu::throughput(chip, op.cls());
        weight.push_back(rate > 0.0 ? stage.flops / rate : 0.0);
    }

    int floor_total = 0;
    for (const StagePlacement &stage : kernel.stages)
        floor_total += stage.pcus;
    if (floor_total > placeable_pcus) {
        sim::panic("placeKernel: kernel '" + kernel.name +
                   "' floors exceed placeable PCUs");
    }

    // Waterfill: equalize stage times. Stages whose floor already
    // meets the balanced rate pin at the floor; the rest share the
    // remaining PCUs proportionally to weighted work. Iterate until
    // the pinned set stabilizes.
    std::vector<bool> pinned(kernel.stages.size(), false);
    for (std::size_t i = 0; i < kernel.stages.size(); ++i) {
        if (weight[i] <= 0.0)
            pinned[i] = true; // memory/collective stages keep floors
    }
    for (;;) {
        double active_weight = 0.0;
        int budget = placeable_pcus;
        for (std::size_t i = 0; i < kernel.stages.size(); ++i) {
            if (pinned[i])
                budget -= kernel.stages[i].pcus;
            else
                active_weight += weight[i];
        }
        if (active_weight <= 0.0 || budget <= 0)
            break;

        // Balanced per-PCU time if all active stages share budget.
        double t = active_weight / budget;
        bool changed = false;
        for (std::size_t i = 0; i < kernel.stages.size(); ++i) {
            if (pinned[i])
                continue;
            double want = weight[i] / t;
            if (want <= kernel.stages[i].pcus) {
                pinned[i] = true; // floor already fast enough
                changed = true;
            }
        }
        if (!changed) {
            for (std::size_t i = 0; i < kernel.stages.size(); ++i) {
                if (!pinned[i]) {
                    kernel.stages[i].pcus = std::max(
                        kernel.stages[i].pcus,
                        static_cast<int>(std::floor(weight[i] / t)));
                }
            }
            break;
        }
    }

    kernel.pcusUsed = 0;
    for (const StagePlacement &stage : kernel.stages)
        kernel.pcusUsed += stage.pcus;
    if (kernel.pcusUsed > placeable_pcus) {
        sim::panic("placeKernel: kernel '" + kernel.name +
                   "' over-allocated PCUs");
    }

    // PMUs: stage buffers, at least one PMU per buffered stage.
    kernel.sramBytes = 0;
    kernel.pmusUsed = 0;
    for (const StagePlacement &stage : kernel.stages) {
        kernel.sramBytes += stage.stageBufferBytes;
        if (stage.stageBufferBytes > 0) {
            kernel.pmusUsed += std::max<int>(
                1, static_cast<int>(
                       (stage.stageBufferBytes + chip.sramPerPmu() - 1) /
                       chip.sramPerPmu()));
        }
    }
    kernel.pmusUsed = std::min(
        kernel.pmusUsed,
        static_cast<int>(std::floor(chip.pmuCount *
                                    chip.placeableFraction)));
}

double
placedComputeSeconds(const arch::ChipConfig &chip, const Kernel &kernel,
                     int tensor_parallel)
{
    int tp = std::max(1, tensor_parallel);

    // Pipeline steady state: the slowest stage under its allocation
    // sets the kernel's compute time.
    double bottleneck = 0.0;
    for (const StagePlacement &stage : kernel.stages) {
        if (stage.pcus <= 0 || stage.flops <= 0.0)
            continue;
        double rate = arch::Pcu::throughput(chip, stage.cls);
        if (rate <= 0.0)
            continue;
        double stage_seconds =
            (stage.flops / tp) / (rate * stage.pcus);
        bottleneck = std::max(bottleneck, stage_seconds);
    }
    return bottleneck;
}

} // namespace sn40l::compiler
