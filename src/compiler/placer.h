/**
 * @file
 * Placer: allocates PCUs and PMUs to the stages of a fused kernel.
 * PCUs are split proportionally to each stage's FLOP share (with
 * per-class floors); PMUs follow stage-buffer capacity and bandwidth
 * needs (Section III's "composable memory units").
 */

#ifndef SN40L_COMPILER_PLACER_H
#define SN40L_COMPILER_PLACER_H

#include "arch/chip_config.h"
#include "compiler/fusion.h"
#include "compiler/kernel.h"
#include "graph/dataflow_graph.h"

namespace sn40l::compiler {

/**
 * Fill kernel.stages / pcusUsed / pmusUsed / sramBytes for a fused
 * kernel. Throws SimPanic if the kernel cannot place (the fusion pass
 * should have prevented that).
 */
void placeKernel(const graph::DataflowGraph &graph,
                 const arch::ChipConfig &chip, const FusionOptions &options,
                 Kernel &kernel);

/**
 * Effective pipeline compute time (seconds) of a placed kernel's
 * per-socket work: the bottleneck stage under proportional allocation.
 */
double placedComputeSeconds(const arch::ChipConfig &chip,
                            const Kernel &kernel, int tensor_parallel);

} // namespace sn40l::compiler

#endif // SN40L_COMPILER_PLACER_H
