#include "compiler/traffic_analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "sim/log.h"

namespace sn40l::compiler {

TrafficAnalyzer::TrafficAnalyzer(const arch::ChipConfig &chip,
                                 double burst_factor,
                                 bool distribute_lanes)
    : chip_(chip), burstFactor_(burst_factor),
      distributeLanes_(distribute_lanes)
{
    if (burst_factor < 1.0)
        sim::fatal("TrafficAnalyzer: burst factor must be >= 1");
}

TrafficReport
TrafficAnalyzer::analyze(const graph::DataflowGraph &graph,
                         const Kernel &kernel, double kernel_seconds,
                         int tensor_parallel) const
{
    if (kernel.stages.empty())
        sim::panic("TrafficAnalyzer: kernel is not placed");
    if (kernel_seconds <= 0.0)
        kernel_seconds = 1e-6;
    double tp = std::max(1, tensor_parallel);

    // Logical mesh for the whole socket: tiles stacked vertically.
    int cols = chip_.meshCols;
    int rows = chip_.meshRows * chip_.tileCount();
    arch::RdnMesh mesh(cols, rows);

    // Assign stages contiguous PCU slots in snake order; a stage's
    // traffic enters/leaves at its centroid slot.
    TrafficReport report;
    std::map<graph::OpId, arch::Coord> center_of;
    int slot = 0;
    auto slot_coord = [&](int s) {
        int row = s / cols;
        int col = s % cols;
        if (row % 2 == 1)
            col = cols - 1 - col; // snake
        return arch::Coord{col, std::min(row, rows - 1)};
    };
    for (const StagePlacement &stage : kernel.stages) {
        int span = std::max(1, stage.pcus);
        arch::Coord center = slot_coord(slot + span / 2);
        center_of[stage.op] = center;
        report.stageCenters.push_back(center);
        slot += span;
    }

    // Inter-stage streams: every tensor produced by one stage and
    // consumed by another flows between their placements at
    // bytes / kernel_seconds. A distributing placer splits the stream
    // across the stages' parallel units; a naive one funnels it
    // through the centroid route.
    std::set<graph::OpId> members(kernel.ops.begin(), kernel.ops.end());
    std::map<graph::OpId, int> pcus_of;
    for (const StagePlacement &stage : kernel.stages) {
        // Memory-class stages run on PMUs; their streams distribute
        // across the stage-buffer PMUs (at least a modest spread).
        int span = stage.pcus > 0 ? stage.pcus : 16;
        pcus_of[stage.op] = span;
    }

    for (graph::OpId id : kernel.ops) {
        const graph::Operator &op = graph.op(id);
        for (graph::TensorId out : op.outputs) {
            const graph::Tensor &t = graph.tensor(out);
            double rate =
                static_cast<double>(t.bytes()) / tp / kernel_seconds;
            std::vector<arch::Coord> dsts;
            int consumer_span = 1 << 20;
            for (graph::OpId c : t.consumers) {
                if (!members.count(c) || c == id)
                    continue;
                dsts.push_back(center_of.at(c));
                consumer_span = std::min(consumer_span, pcus_of.at(c));
            }
            if (dsts.empty())
                continue;
            if (distributeLanes_) {
                int lanes = std::max(
                    1, std::min(pcus_of.at(id), consumer_span));
                rate /= lanes;
            }
            // One-to-many streams use a multicast tree.
            if (dsts.size() == 1)
                mesh.addFlow(center_of.at(id), dsts[0], rate);
            else
                mesh.addMulticastFlow(center_of.at(id), dsts, rate);
            for (arch::Coord dst : dsts)
                report.flowList.push_back(
                    {center_of.at(id), dst, rate});
            ++report.flows;
        }
        // Off-chip reads enter through the AGCU column (x = 0) at the
        // stage's row, spread across the socket's AGCUs when the
        // placer distributes.
        double inbound = graph.opReadBytes(id);
        const graph::Tensor *first_in = op.inputs.empty()
            ? nullptr
            : &graph.tensor(op.inputs[0]);
        bool reads_offchip = first_in &&
            (first_in->kind == graph::TensorKind::Weight ||
             first_in->kind == graph::TensorKind::Input ||
             first_in->kind == graph::TensorKind::KvCache);
        if (reads_offchip && inbound > 0.0) {
            double rate = inbound / tp / kernel_seconds;
            if (distributeLanes_)
                rate /= chip_.agcusPerTile * chip_.tileCount();
            arch::Coord dst = center_of.at(id);
            arch::Coord src{0, dst.y};
            mesh.addFlow(src, dst, rate);
            report.flowList.push_back({src, dst, rate});
            ++report.flows;
        }
    }

    report.meshCols = cols;
    report.meshRows = rows;
    report.maxLinkLoad = mesh.maxLinkLoad();
    double link_bw = chip_.rdnLinkBandwidth;
    report.throttledFactor = mesh.congestionFactor(link_bw);
    report.congestionFactor =
        std::max(1.0, report.maxLinkLoad * burstFactor_ / link_bw);
    return report;
}

} // namespace sn40l::compiler
