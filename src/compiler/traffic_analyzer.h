/**
 * @file
 * RDN traffic analysis for placed kernels (Section VII, "Performance
 * debugging"): maps pipeline stages onto mesh coordinates, derives the
 * on-chip streams between producer and consumer stages, finds hot
 * links, and models the effect of programmable packet throttling on
 * bursty traffic.
 */

#ifndef SN40L_COMPILER_TRAFFIC_ANALYZER_H
#define SN40L_COMPILER_TRAFFIC_ANALYZER_H

#include <vector>

#include "arch/chip_config.h"
#include "arch/rdn.h"
#include "compiler/kernel.h"
#include "graph/dataflow_graph.h"

namespace sn40l::compiler {

struct TrafficReport
{
    std::size_t flows = 0;

    /** Sustained load on the hottest link, bytes/sec. */
    double maxLinkLoad = 0.0;

    /** Time dilation with bursty (unthrottled) traffic. */
    double congestionFactor = 1.0;

    /** Time dilation after programmable packet throttling smooths
     *  bursts to the sustained rate (Section VII). */
    double throttledFactor = 1.0;

    /** Stage coordinates used (for inspection/tests). */
    std::vector<arch::Coord> stageCenters;

    /**
     * The flow set behind the numbers above, for event-driven replay
     * (arch::simulatedCongestionFactor). Multicast streams appear
     * once per destination — an upper bound, since the closed-form
     * accounting charges a shared tree prefix only once.
     */
    std::vector<arch::MeshFlow> flowList;

    /** Mesh geometry the flows were placed on (cols x rows). */
    int meshCols = 0;
    int meshRows = 0;
};

class TrafficAnalyzer
{
  public:
    /**
     * @param burst_factor peak-to-sustained ratio of unthrottled
     *        producer bursts (the paper observes bursty traffic can
     *        "easily slow down the entire kernel").
     * @param distribute_lanes when true (the compiler's real
     *        behaviour), an inter-stage stream is spread across the
     *        participating units' parallel paths instead of funneling
     *        through one route — the "program-controlled bandwidth
     *        management" of Section III-A.
     */
    explicit TrafficAnalyzer(const arch::ChipConfig &chip,
                             double burst_factor = 2.0,
                             bool distribute_lanes = true);

    /**
     * Analyze a *placed* fused kernel executing with steady-state
     * duration @p kernel_seconds on one socket of a
     * @p tensor_parallel-way sharded workload: inter-stage stream
     * rates are per-socket tensor bytes over that duration.
     */
    TrafficReport analyze(const graph::DataflowGraph &graph,
                          const Kernel &kernel, double kernel_seconds,
                          int tensor_parallel = 1) const;

  private:
    const arch::ChipConfig &chip_;
    double burstFactor_;
    bool distributeLanes_;
};

} // namespace sn40l::compiler

#endif // SN40L_COMPILER_TRAFFIC_ANALYZER_H
