#include "graph/dataflow_graph.h"

#include <algorithm>
#include <queue>

#include "sim/log.h"

namespace sn40l::graph {

TensorId
DataflowGraph::addTensor(const std::string &name, TensorShape shape,
                         DType dtype, TensorKind kind)
{
    Tensor t;
    t.id = static_cast<TensorId>(tensors_.size());
    t.name = name;
    t.shape = std::move(shape);
    t.dtype = dtype;
    t.kind = kind;
    tensors_.push_back(std::move(t));
    return tensors_.back().id;
}

OpId
DataflowGraph::addOp(OpKind kind, const std::string &name,
                     std::vector<TensorId> inputs,
                     std::vector<TensorId> outputs, double sparsity)
{
    Operator op;
    op.id = static_cast<OpId>(ops_.size());
    op.kind = kind;
    op.name = name;
    op.sparsity = sparsity;

    for (TensorId in : inputs) {
        if (in < 0 || in >= static_cast<TensorId>(tensors_.size()))
            sim::panic("addOp(" + name + "): invalid input tensor id");
        tensors_[in].consumers.push_back(op.id);
    }
    for (TensorId out : outputs) {
        if (out < 0 || out >= static_cast<TensorId>(tensors_.size()))
            sim::panic("addOp(" + name + "): invalid output tensor id");
        Tensor &t = tensors_[out];
        // KvCache tensors are mutable state and may be rewritten.
        if (t.producer != kInvalidOp && t.kind != TensorKind::KvCache) {
            sim::panic("addOp(" + name + "): tensor '" + t.name +
                       "' already has a producer");
        }
        t.producer = op.id;
    }

    op.inputs = std::move(inputs);
    op.outputs = std::move(outputs);
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

const Tensor &
DataflowGraph::tensor(TensorId id) const
{
    if (id < 0 || id >= static_cast<TensorId>(tensors_.size()))
        sim::panic("tensor(): invalid id " + std::to_string(id));
    return tensors_[id];
}

const Operator &
DataflowGraph::op(OpId id) const
{
    if (id < 0 || id >= static_cast<OpId>(ops_.size()))
        sim::panic("op(): invalid id " + std::to_string(id));
    return ops_[id];
}

std::vector<OpId>
DataflowGraph::topoOrder() const
{
    // Edges: producer(op) -> consumer(op) through Activation/Output
    // tensors. KvCache reads do not create ordering edges (state).
    std::vector<int> indegree(ops_.size(), 0);
    std::vector<std::vector<OpId>> succs(ops_.size());

    for (const Operator &op : ops_) {
        for (TensorId in : op.inputs) {
            const Tensor &t = tensors_[in];
            if (t.kind == TensorKind::KvCache)
                continue;
            if (t.producer != kInvalidOp && t.producer != op.id) {
                succs[t.producer].push_back(op.id);
                ++indegree[op.id];
            }
        }
    }

    std::queue<OpId> ready;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        if (indegree[i] == 0)
            ready.push(static_cast<OpId>(i));
    }

    std::vector<OpId> order;
    order.reserve(ops_.size());
    while (!ready.empty()) {
        OpId id = ready.front();
        ready.pop();
        order.push_back(id);
        for (OpId succ : succs[id]) {
            if (--indegree[succ] == 0)
                ready.push(succ);
        }
    }

    if (order.size() != ops_.size())
        sim::panic("topoOrder: graph '" + name_ + "' has a cycle");
    return order;
}

void
DataflowGraph::validate() const
{
    for (const Tensor &t : tensors_) {
        bool has_producer = t.producer != kInvalidOp;
        switch (t.kind) {
          case TensorKind::Input:
          case TensorKind::Weight:
          case TensorKind::Constant:
            if (has_producer) {
                sim::panic("validate: " + std::string(tensorKindName(t.kind)) +
                           " tensor '" + t.name + "' has a producer");
            }
            break;
          case TensorKind::Activation:
          case TensorKind::Output:
            if (!has_producer) {
                sim::panic("validate: tensor '" + t.name +
                           "' has no producer");
            }
            break;
          case TensorKind::KvCache:
            break; // may or may not be written
        }
        if (t.kind == TensorKind::Activation && t.consumers.empty()) {
            sim::panic("validate: activation '" + t.name +
                       "' is never consumed");
        }
    }
    // Throws on cycles.
    (void)topoOrder();
}

namespace {

/**
 * FLOPs for a (possibly batched) GEMM given operand shapes.
 * Convention: op.inputs[0] is the data operand [..., M, K] and
 * op.inputs[1] the weight/second operand [..., K, N] (or [K, N]).
 */
double
gemmFlops(const Tensor &a, const Tensor &b)
{
    if (a.shape.rank() < 2 || b.shape.rank() < 2)
        sim::panic("gemmFlops: operands must be rank >= 2");
    std::int64_t k = a.shape.dims.back();
    std::int64_t k2 = b.shape.dims[b.shape.rank() - 2];
    if (k != k2) {
        sim::panic("gemmFlops: inner dims disagree: " + a.shape.str() +
                   " x " + b.shape.str());
    }
    std::int64_t n = b.shape.dims.back();
    // Every dim of A except the last participates as batch*M.
    std::int64_t batch_m = a.shape.elems() / k;
    return 2.0 * static_cast<double>(batch_m) * static_cast<double>(k) *
           static_cast<double>(n);
}

/** Per-element FLOP factors for SIMD-class ops. */
double
simdFlopsPerElem(OpKind kind)
{
    switch (kind) {
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Scale:
      case OpKind::Relu:
      case OpKind::Cast:
      case OpKind::Reduce:
        return 1.0;
      case OpKind::Exp:
      case OpKind::TopK:
      case OpKind::Sample:
        return 2.0;
      case OpKind::Silu:
      case OpKind::Gelu:
      case OpKind::RmsNorm:
        return 4.0;
      case OpKind::Softmax:
        return 5.0;
      case OpKind::LayerNorm:
      case OpKind::Rope:
        return 6.0;
      default:
        return 0.0;
    }
}

} // namespace

double
DataflowGraph::opFlops(OpId id) const
{
    const Operator &o = op(id);
    switch (o.cls()) {
      case OpClass::Systolic: {
        if (o.inputs.size() < 2)
            sim::panic("opFlops: gemm '" + o.name + "' needs 2 inputs");
        double dense = gemmFlops(tensor(o.inputs[0]), tensor(o.inputs[1]));
        return dense * (1.0 - o.sparsity);
      }
      case OpClass::Simd: {
        if (o.outputs.empty())
            sim::panic("opFlops: simd op '" + o.name + "' has no output");
        // Reductions do work proportional to what they consume, not
        // to their (collapsed) output.
        const Tensor &sized = (o.kind == OpKind::Reduce &&
                               !o.inputs.empty())
            ? tensor(o.inputs[0])
            : tensor(o.outputs[0]);
        double elems = static_cast<double>(sized.shape.elems());
        return elems * simdFlopsPerElem(o.kind);
      }
      case OpClass::Memory:
      case OpClass::Collective:
        return 0.0;
    }
    sim::panic("opFlops: unknown class");
}

double
DataflowGraph::totalFlops() const
{
    double total = 0.0;
    for (const Operator &o : ops_)
        total += opFlops(o.id);
    return total;
}

std::int64_t
DataflowGraph::tensorBytes(TensorId id) const
{
    return tensor(id).bytes();
}

double
DataflowGraph::weightBytes() const
{
    double total = 0.0;
    for (const Tensor &t : tensors_) {
        if (t.kind != TensorKind::Weight && t.kind != TensorKind::Constant)
            continue;
        double sparsity = 0.0;
        // A sparse consumer means the stored weight is compressed.
        for (OpId c : t.consumers)
            sparsity = std::max(sparsity, ops_[c].sparsity);
        total += static_cast<double>(t.bytes()) * (1.0 - sparsity);
    }
    return total;
}

double
DataflowGraph::effectiveReadBytes(OpId id, TensorId input) const
{
    const Operator &o = op(id);
    const Tensor &t = tensor(input);

    // Indexed table lookups fetch only the gathered rows (one row of
    // the table per output row).
    bool is_lookup = o.kind == OpKind::Embedding || o.kind == OpKind::Gather;
    bool is_table = t.kind == TensorKind::Weight ||
                    t.kind == TensorKind::Constant;
    if (is_lookup && is_table && !o.outputs.empty()) {
        double gathered =
            static_cast<double>(tensor(o.outputs[0]).bytes());
        return std::min(static_cast<double>(t.bytes()), gathered);
    }

    double discount =
        (t.kind == TensorKind::Weight) ? (1.0 - o.sparsity) : 1.0;
    return static_cast<double>(t.bytes()) * discount;
}

double
DataflowGraph::effectiveWriteBytes(OpId id, TensorId output) const
{
    const Operator &o = op(id);
    const Tensor &t = tensor(output);

    // Appending to a persistent cache writes only the appended rows.
    if (o.kind == OpKind::KvAppend && !o.inputs.empty()) {
        double appended =
            static_cast<double>(tensor(o.inputs[0]).bytes());
        return std::min(static_cast<double>(t.bytes()), appended);
    }
    return static_cast<double>(t.bytes());
}

double
DataflowGraph::opReadBytes(OpId id) const
{
    const Operator &o = op(id);
    double total = 0.0;
    for (TensorId in : o.inputs)
        total += effectiveReadBytes(id, in);
    return total;
}

double
DataflowGraph::opWriteBytes(OpId id) const
{
    const Operator &o = op(id);
    double total = 0.0;
    for (TensorId out : o.outputs)
        total += effectiveWriteBytes(id, out);
    return total;
}

} // namespace sn40l::graph
