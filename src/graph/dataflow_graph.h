/**
 * @file
 * The dataflow graph IR: a DAG of operators over tensors. Workload
 * builders (models/) emit these graphs; the compiler partitions them
 * into kernels; cost models consume per-op FLOP and byte accounting
 * defined here.
 */

#ifndef SN40L_GRAPH_DATAFLOW_GRAPH_H
#define SN40L_GRAPH_DATAFLOW_GRAPH_H

#include <string>
#include <vector>

#include "graph/operator.h"
#include "graph/tensor.h"

namespace sn40l::graph {

class DataflowGraph
{
  public:
    explicit DataflowGraph(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Add a tensor node. @return its id. */
    TensorId addTensor(const std::string &name, TensorShape shape,
                       DType dtype = DType::BF16,
                       TensorKind kind = TensorKind::Activation);

    /**
     * Add an operator consuming @p inputs and producing @p outputs.
     * Output tensors must not already have a producer.
     * @return the op id.
     */
    OpId addOp(OpKind kind, const std::string &name,
               std::vector<TensorId> inputs,
               std::vector<TensorId> outputs,
               double sparsity = 0.0);

    const Tensor &tensor(TensorId id) const;
    const Operator &op(OpId id) const;

    std::size_t numTensors() const { return tensors_.size(); }
    std::size_t numOps() const { return ops_.size(); }

    const std::vector<Tensor> &tensors() const { return tensors_; }
    const std::vector<Operator> &ops() const { return ops_; }

    /**
     * Kahn topological order over ops. Panics if the graph has a
     * cycle (addOp ordering normally prevents one, but builders can
     * create cycles through KvCache tensors if buggy).
     */
    std::vector<OpId> topoOrder() const;

    /**
     * Check structural invariants; throws SimPanic on violation:
     * every Activation/Output tensor has exactly one producer,
     * Input/Weight/Constant tensors have none, all ids are valid,
     * and the graph is acyclic.
     */
    void validate() const;

    /** FLOPs executed by one op (sparsity-discounted). */
    double opFlops(OpId id) const;

    /** Sum of opFlops over the whole graph. */
    double totalFlops() const;

    /** Bytes of one tensor. */
    std::int64_t tensorBytes(TensorId id) const;

    /**
     * Total parameter bytes (Weight tensors), discounted by the
     * sparsity of their consuming op where applicable (sparseGPT
     * stores compressed weights).
     */
    double weightBytes() const;

    /**
     * Bytes an op actually reads from tensor @p input. Differs from
     * the tensor's size for indexed accesses: Embedding/Gather read
     * only the gathered rows of their table, and sparse consumers read
     * compressed weights.
     */
    double effectiveReadBytes(OpId id, TensorId input) const;

    /**
     * Bytes an op actually writes to tensor @p output. KvAppend
     * writes only the appended rows, not the whole cache.
     */
    double effectiveWriteBytes(OpId id, TensorId output) const;

    /** Bytes read by an op: effectiveReadBytes over all inputs. */
    double opReadBytes(OpId id) const;

    /** Bytes written by an op: effectiveWriteBytes over all outputs. */
    double opWriteBytes(OpId id) const;

  private:
    std::string name_;
    std::vector<Tensor> tensors_;
    std::vector<Operator> ops_;
};

} // namespace sn40l::graph

#endif // SN40L_GRAPH_DATAFLOW_GRAPH_H
