#include "graph/intensity.h"

#include <algorithm>
#include <map>
#include <vector>

#include "sim/log.h"

namespace sn40l::graph {

IntensityResult
operationalIntensity(const DataflowGraph &graph,
                     const std::vector<FusionGroup> &groups)
{
    // Map op -> group index, checking the partition is exact.
    std::vector<int> group_of(graph.numOps(), -1);
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (OpId id : groups[g].ops) {
            if (id < 0 || id >= static_cast<OpId>(graph.numOps()))
                sim::panic("operationalIntensity: invalid op id");
            if (group_of[id] != -1)
                sim::panic("operationalIntensity: op in two groups");
            group_of[id] = static_cast<int>(g);
        }
    }
    for (std::size_t i = 0; i < graph.numOps(); ++i) {
        if (group_of[i] == -1)
            sim::panic("operationalIntensity: op missing from partition");
    }

    IntensityResult result;
    result.flops = graph.totalFlops();

    for (std::size_t g = 0; g < groups.size(); ++g) {
        // Tensor -> charged bytes; a tensor touched by several ops of
        // the group is charged once (at the largest effective size).
        std::map<TensorId, double> reads, writes;
        for (OpId id : groups[g].ops) {
            const Operator &op = graph.op(id);
            for (TensorId in : op.inputs) {
                const Tensor &t = graph.tensor(in);
                bool produced_inside = t.producer != kInvalidOp &&
                    group_of[t.producer] == static_cast<int>(g);
                if (produced_inside)
                    continue;
                double bytes = graph.effectiveReadBytes(id, in);
                auto it = reads.find(in);
                if (it == reads.end() || it->second < bytes)
                    reads[in] = bytes;
            }
            for (TensorId out : op.outputs) {
                const Tensor &t = graph.tensor(out);
                bool escapes = t.kind == TensorKind::Output ||
                               t.kind == TensorKind::KvCache;
                for (OpId c : t.consumers) {
                    if (group_of[c] != static_cast<int>(g))
                        escapes = true;
                }
                if (!escapes)
                    continue;
                double bytes = graph.effectiveWriteBytes(id, out);
                auto it = writes.find(out);
                if (it == writes.end() || it->second < bytes)
                    writes[out] = bytes;
            }
        }
        for (const auto &kv : reads)
            result.bytes += kv.second;
        for (const auto &kv : writes)
            result.bytes += kv.second;
    }
    return result;
}

std::vector<FusionGroup>
singleOpGroups(const DataflowGraph &graph)
{
    std::vector<FusionGroup> groups(graph.numOps());
    for (std::size_t i = 0; i < graph.numOps(); ++i)
        groups[i].ops = {static_cast<OpId>(i)};
    return groups;
}

std::vector<FusionGroup>
singleGroup(const DataflowGraph &graph)
{
    std::vector<FusionGroup> groups(1);
    for (std::size_t i = 0; i < graph.numOps(); ++i)
        groups[0].ops.push_back(static_cast<OpId>(i));
    return groups;
}

} // namespace sn40l::graph
