/**
 * @file
 * Operational-intensity analysis over fusion partitions (paper
 * Table I). Given a partition of a graph into fusion groups, computes
 * FLOPs and the off-chip bytes crossing group boundaries; their ratio
 * is the achievable operational intensity at that fusion level.
 */

#ifndef SN40L_GRAPH_INTENSITY_H
#define SN40L_GRAPH_INTENSITY_H

#include <vector>

#include "graph/dataflow_graph.h"

namespace sn40l::graph {

/** A set of ops executed as one fused kernel. */
struct FusionGroup
{
    std::vector<OpId> ops;
};

struct IntensityResult
{
    double flops = 0.0;
    double bytes = 0.0;

    double
    intensity() const
    {
        return bytes > 0.0 ? flops / bytes : 0.0;
    }
};

/**
 * Byte accounting: for each group, external reads are tensors consumed
 * by a group op but produced outside the group (including weights,
 * constants and graph inputs); external writes are tensors produced in
 * the group and consumed outside it (or graph outputs). A tensor read
 * by several ops of one group is counted once for that group.
 *
 * Every op must appear in exactly one group (checked).
 */
IntensityResult operationalIntensity(const DataflowGraph &graph,
                                     const std::vector<FusionGroup> &groups);

/** One group per op — the "No Fusion" row of Table I. */
std::vector<FusionGroup> singleOpGroups(const DataflowGraph &graph);

/** All ops in one group — the "Fully Spatially Fused" row. */
std::vector<FusionGroup> singleGroup(const DataflowGraph &graph);

} // namespace sn40l::graph

#endif // SN40L_GRAPH_INTENSITY_H
