#include "graph/operator.h"

#include "sim/log.h"

namespace sn40l::graph {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Gemm: return "gemm";
      case OpKind::BatchGemm: return "batch_gemm";
      case OpKind::Add: return "add";
      case OpKind::Sub: return "sub";
      case OpKind::Mul: return "mul";
      case OpKind::Div: return "div";
      case OpKind::Scale: return "scale";
      case OpKind::Exp: return "exp";
      case OpKind::Silu: return "silu";
      case OpKind::Gelu: return "gelu";
      case OpKind::Relu: return "relu";
      case OpKind::Softmax: return "softmax";
      case OpKind::RmsNorm: return "rms_norm";
      case OpKind::LayerNorm: return "layer_norm";
      case OpKind::Rope: return "rope";
      case OpKind::Reduce: return "reduce";
      case OpKind::Cast: return "cast";
      case OpKind::Transpose: return "transpose";
      case OpKind::Reshape: return "reshape";
      case OpKind::Concat: return "concat";
      case OpKind::Split: return "split";
      case OpKind::Copy: return "copy";
      case OpKind::Embedding: return "embedding";
      case OpKind::Gather: return "gather";
      case OpKind::KvAppend: return "kv_append";
      case OpKind::TopK: return "topk";
      case OpKind::Sample: return "sample";
      case OpKind::AllReduce: return "all_reduce";
    }
    sim::panic("opKindName: unknown kind");
}

OpClass
opClass(OpKind kind)
{
    switch (kind) {
      case OpKind::Gemm:
      case OpKind::BatchGemm:
        return OpClass::Systolic;

      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Scale:
      case OpKind::Exp:
      case OpKind::Silu:
      case OpKind::Gelu:
      case OpKind::Relu:
      case OpKind::Softmax:
      case OpKind::RmsNorm:
      case OpKind::LayerNorm:
      case OpKind::Rope:
      case OpKind::Reduce:
      case OpKind::Cast:
      case OpKind::TopK:
      case OpKind::Sample:
        return OpClass::Simd;

      case OpKind::Transpose:
      case OpKind::Reshape:
      case OpKind::Concat:
      case OpKind::Split:
      case OpKind::Copy:
      case OpKind::Embedding:
      case OpKind::Gather:
      case OpKind::KvAppend:
        return OpClass::Memory;

      case OpKind::AllReduce:
        return OpClass::Collective;
    }
    sim::panic("opClass: unknown kind");
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::Systolic: return "systolic";
      case OpClass::Simd: return "simd";
      case OpClass::Memory: return "memory";
      case OpClass::Collective: return "collective";
    }
    sim::panic("opClassName: unknown class");
}

bool
isElementwise(OpKind kind)
{
    switch (kind) {
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Mul:
      case OpKind::Div:
      case OpKind::Scale:
      case OpKind::Exp:
      case OpKind::Silu:
      case OpKind::Gelu:
      case OpKind::Relu:
      case OpKind::Cast:
      case OpKind::Rope:
        return true;
      default:
        return false;
    }
}

bool
isGpuFusable(OpKind kind)
{
    // Conventional fusers (TensorRT / torch.compile class, Section
    // III-A) absorb elementwise epilogues into a producing kernel but
    // stop at layout changes, lookups, reductions with cross-thread
    // reuse, and collectives.
    return isElementwise(kind);
}

} // namespace sn40l::graph
