/**
 * @file
 * Operator kinds for the dataflow graph IR, with the classification
 * used by the hardware cost models (systolic vs SIMD vs
 * memory-movement vs collective).
 */

#ifndef SN40L_GRAPH_OPERATOR_H
#define SN40L_GRAPH_OPERATOR_H

#include <string>
#include <vector>

#include "graph/tensor.h"

namespace sn40l::graph {

enum class OpKind {
    // Systolic (matrix) compute
    Gemm,        ///< [M,K] x [K,N] -> [M,N]; weights usually operand 1
    BatchGemm,   ///< [B,M,K] x [B,K,N] -> [B,M,N]

    // Streaming SIMD compute
    Add, Sub, Mul, Div,     ///< elementwise; second operand broadcastable
    Scale,                  ///< multiply by a scalar constant
    Exp, Silu, Gelu, Relu,  ///< activations / transcendental
    Softmax,                ///< along innermost dim
    RmsNorm, LayerNorm,     ///< normalizations (include their weights)
    Rope,                   ///< rotary position embedding
    Reduce,                 ///< sum/max along innermost dim
    Cast,                   ///< dtype conversion

    // Data movement / layout
    Transpose,   ///< swap last two dims; pure access-pattern on SN40L
    Reshape,     ///< metadata-only on SN40L, materializing on GPUs
    Concat, Split,
    Copy,
    Embedding,   ///< table lookup (vocab rows)
    Gather,      ///< generic indexed load
    KvAppend,    ///< append current K/V to cache
    TopK, Sample,///< decode-side selection ops (tiny)

    // Collectives
    AllReduce,   ///< tensor-parallel reduction across sockets
};

/** Compute-resource class an operator maps to. */
enum class OpClass {
    Systolic,  ///< PCU systolic array / GPU tensor cores
    Simd,      ///< PCU SIMD pipeline / GPU CUDA cores
    Memory,    ///< address-generation + data movement only
    Collective,///< inter-socket communication
};

const char *opKindName(OpKind kind);
OpClass opClass(OpKind kind);
const char *opClassName(OpClass cls);

/** @return true for pure element-wise kinds (fusable on GPUs too). */
bool isElementwise(OpKind kind);

/**
 * @return true if a conventional (GPU-style) fuser may absorb this op
 * into a preceding kernel. Streaming dataflow has no such restriction;
 * this predicate encodes the Section III-A limitations: shuffles,
 * transposes, reductions-with-reuse and collectives break GPU fusion.
 */
bool isGpuFusable(OpKind kind);

struct Operator
{
    OpId id = kInvalidOp;
    OpKind kind = OpKind::Add;
    std::string name;
    std::vector<TensorId> inputs;
    std::vector<TensorId> outputs;

    /** Weight sparsity in [0,1); scales FLOPs and weight traffic. */
    double sparsity = 0.0;

    OpClass cls() const { return opClass(kind); }
};

} // namespace sn40l::graph

#endif // SN40L_GRAPH_OPERATOR_H
