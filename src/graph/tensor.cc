#include "graph/tensor.h"

#include "sim/log.h"

namespace sn40l::graph {

std::size_t
dtypeBytes(DType dtype)
{
    switch (dtype) {
      case DType::BF16: return 2;
      case DType::FP16: return 2;
      case DType::FP32: return 4;
      case DType::INT32: return 4;
      case DType::INT8: return 1;
    }
    sim::panic("dtypeBytes: unknown dtype");
}

const char *
dtypeName(DType dtype)
{
    switch (dtype) {
      case DType::BF16: return "bf16";
      case DType::FP16: return "fp16";
      case DType::FP32: return "fp32";
      case DType::INT32: return "int32";
      case DType::INT8: return "int8";
    }
    sim::panic("dtypeName: unknown dtype");
}

std::int64_t
TensorShape::elems() const
{
    std::int64_t n = 1;
    for (std::int64_t d : dims) {
        if (d <= 0)
            sim::panic("TensorShape: non-positive dimension " + str());
        n *= d;
    }
    return n;
}

std::int64_t
TensorShape::bytes(DType dtype) const
{
    return elems() * static_cast<std::int64_t>(dtypeBytes(dtype));
}

std::int64_t
TensorShape::innermost() const
{
    return dims.empty() ? 1 : dims.back();
}

std::string
TensorShape::str() const
{
    if (dims.empty())
        return "scalar";
    std::string out;
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i > 0)
            out += "x";
        out += std::to_string(dims[i]);
    }
    return out;
}

const char *
tensorKindName(TensorKind kind)
{
    switch (kind) {
      case TensorKind::Input: return "input";
      case TensorKind::Output: return "output";
      case TensorKind::Weight: return "weight";
      case TensorKind::Constant: return "constant";
      case TensorKind::Activation: return "activation";
      case TensorKind::KvCache: return "kv_cache";
    }
    sim::panic("tensorKindName: unknown kind");
}

bool
isReadOnlyKind(TensorKind kind)
{
    return kind == TensorKind::Weight || kind == TensorKind::Constant;
}

} // namespace sn40l::graph
