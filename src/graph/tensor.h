/**
 * @file
 * Tensor metadata for the dataflow graph IR: shapes, dtypes, and
 * tensor roles. The simulator never materializes tensor *data*; it
 * reasons about shapes, bytes, and data movement only.
 */

#ifndef SN40L_GRAPH_TENSOR_H
#define SN40L_GRAPH_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sn40l::graph {

using TensorId = std::int32_t;
using OpId = std::int32_t;
constexpr TensorId kInvalidTensor = -1;
constexpr OpId kInvalidOp = -1;

/** Element datatypes used by the workloads in the paper. */
enum class DType { BF16, FP16, FP32, INT32, INT8 };

std::size_t dtypeBytes(DType dtype);
const char *dtypeName(DType dtype);

/** Dense row-major tensor shape. An empty dim list denotes a scalar. */
struct TensorShape
{
    std::vector<std::int64_t> dims;

    TensorShape() = default;
    TensorShape(std::initializer_list<std::int64_t> d) : dims(d) {}
    explicit TensorShape(std::vector<std::int64_t> d) : dims(std::move(d)) {}

    int rank() const { return static_cast<int>(dims.size()); }

    /** Number of elements; 1 for a scalar. */
    std::int64_t elems() const;

    /** Size in bytes for the given element type. */
    std::int64_t bytes(DType dtype) const;

    /** Last dimension, or 1 for a scalar. */
    std::int64_t innermost() const;

    /** e.g. "128x1024". Scalars render as "scalar". */
    std::string str() const;

    bool operator==(const TensorShape &other) const
    {
        return dims == other.dims;
    }
    bool operator!=(const TensorShape &other) const
    {
        return !(*this == other);
    }
};

/**
 * The role a tensor plays in the program. Roles drive memory placement
 * (weights stream from HBM/DDR; activations live in PMU SRAM inside a
 * fused kernel) and the read-only skip-copyback optimization in the
 * CoE runtime (Section V-B).
 */
enum class TensorKind {
    Input,      ///< graph input (prompt activations, images, ...)
    Output,     ///< graph output (logits, hidden states)
    Weight,     ///< model parameter; read-only at inference
    Constant,   ///< small read-only constant (scales, tables, twiddles)
    Activation, ///< intermediate produced and consumed inside the graph
    KvCache,    ///< persistent, mutable attention cache state
};

const char *tensorKindName(TensorKind kind);

/** @return true for kinds that are never written at inference time. */
bool isReadOnlyKind(TensorKind kind);

struct Tensor
{
    TensorId id = kInvalidTensor;
    std::string name;
    TensorShape shape;
    DType dtype = DType::BF16;
    TensorKind kind = TensorKind::Activation;
    OpId producer = kInvalidOp;
    std::vector<OpId> consumers;

    std::int64_t bytes() const { return shape.bytes(dtype); }
};

} // namespace sn40l::graph

#endif // SN40L_GRAPH_TENSOR_H
