#include "mem/bandwidth_channel.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::mem {

BandwidthChannel::BandwidthChannel(sim::EventQueue &eq, std::string name,
                                   double peak_bw, double efficiency,
                                   sim::Tick latency)
    : eq_(eq), name_(std::move(name)), peakBw_(peak_bw),
      efficiency_(efficiency), latency_(latency), stats_(name_)
{
    if (peak_bw <= 0.0)
        sim::fatal("BandwidthChannel " + name_ + ": non-positive bandwidth");
    if (efficiency <= 0.0 || efficiency > 1.0)
        sim::fatal("BandwidthChannel " + name_ + ": efficiency out of (0,1]");
}

void
BandwidthChannel::setEfficiency(double efficiency)
{
    if (efficiency <= 0.0 || efficiency > 1.0)
        sim::fatal("BandwidthChannel " + name_ + ": efficiency out of (0,1]");
    efficiency_ = efficiency;
}

sim::Tick
BandwidthChannel::estimate(double bytes) const
{
    return sim::transferTicks(bytes, effectiveBandwidth());
}

void
BandwidthChannel::transfer(double bytes, Callback on_done)
{
    if (bytes < 0.0)
        sim::panic("BandwidthChannel " + name_ + ": negative transfer");

    sim::Tick start = std::max(eq_.now(), busyUntil_);
    sim::Tick duration = estimate(bytes);
    sim::Tick end = start + duration;
    busyUntil_ = end;

    stats_.inc("bytes", bytes);
    stats_.inc("transfers");
    stats_.inc("busy_ticks", static_cast<double>(duration));
    stats_.inc("queue_ticks", static_cast<double>(start - eq_.now()));

    if (!on_done)
        return;
    eq_.schedule(end + latency_, std::move(on_done),
                 name_ + ".transfer_done");
}

void
BandwidthChannel::recordUse(double bytes, sim::Tick busy_time)
{
    stats_.inc("bytes", bytes);
    stats_.inc("busy_ticks", static_cast<double>(busy_time));
}

} // namespace sn40l::mem
