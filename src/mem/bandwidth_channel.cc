#include "mem/bandwidth_channel.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::mem {

BandwidthChannel::BandwidthChannel(sim::EventQueue &eq, std::string name,
                                   double peak_bw, double efficiency,
                                   sim::Tick latency)
    : eq_(eq), name_(std::move(name)), doneLabel_(name_ + ".transfer_done"),
      peakBw_(peak_bw), efficiency_(efficiency), latency_(latency),
      stats_(name_), bytesStat_(stats_.counter("bytes")),
      transfersStat_(stats_.counter("transfers")),
      busyTicksStat_(stats_.counter("busy_ticks")),
      queueTicksStat_(stats_.counter("queue_ticks"))
{
    if (peak_bw <= 0.0)
        sim::fatal("BandwidthChannel " + name_ + ": non-positive bandwidth");
    if (efficiency <= 0.0 || efficiency > 1.0)
        sim::fatal("BandwidthChannel " + name_ + ": efficiency out of (0,1]");
}

void
BandwidthChannel::setEfficiency(double efficiency)
{
    if (efficiency <= 0.0 || efficiency > 1.0)
        sim::fatal("BandwidthChannel " + name_ + ": efficiency out of (0,1]");
    efficiency_ = efficiency;
}

sim::Tick
BandwidthChannel::estimate(double bytes) const
{
    return sim::transferTicks(bytes, effectiveBandwidth());
}

sim::Tick
BandwidthChannel::book(double bytes)
{
    if (bytes < 0.0)
        sim::panic("BandwidthChannel " + name_ + ": negative transfer");

    sim::Tick start = std::max(eq_.now(), busyUntil_);
    sim::Tick duration = estimate(bytes);
    sim::Tick end = start + duration;
    busyUntil_ = end;

    bytesStat_ += bytes;
    transfersStat_ += 1.0;
    busyTicksStat_ += static_cast<double>(duration);
    queueTicksStat_ += static_cast<double>(start - eq_.now());
    return end + latency_;
}

void
BandwidthChannel::transfer(double bytes, Callback on_done)
{
    sim::Tick done = book(bytes);
    if (!on_done)
        return;
    eq_.schedule(done, std::move(on_done), doneLabel_.c_str());
}

void
BandwidthChannel::recordUse(double bytes, sim::Tick busy_time)
{
    bytesStat_ += bytes;
    busyTicksStat_ += static_cast<double>(busy_time);
}

} // namespace sn40l::mem
