/**
 * @file
 * Shared-bandwidth channel: the basic off-chip memory / link resource
 * of the simulator. HBM stacks, DDR DIMM groups, PCIe links, D2D and
 * P2P links are all instances with different parameters.
 *
 * The model serializes transfers FIFO at the channel's effective
 * bandwidth and adds a fixed access latency per transfer. This is the
 * right fidelity for the paper's phenomena, which are dominated by
 * sustained-bandwidth behaviour rather than request interleaving.
 */

#ifndef SN40L_MEM_BANDWIDTH_CHANNEL_H
#define SN40L_MEM_BANDWIDTH_CHANNEL_H

#include <string>

#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/ticks.h"

namespace sn40l::mem {

class BandwidthChannel
{
  public:
    using Callback = sim::EventQueue::Callback;

    /**
     * @param peak_bw    peak bandwidth in bytes/second
     * @param efficiency fraction of peak achievable by streaming
     *                   traffic (e.g. 0.85 for the RDU's HBM)
     * @param latency    fixed per-transfer latency in ticks
     */
    BandwidthChannel(sim::EventQueue &eq, std::string name,
                     double peak_bw, double efficiency = 1.0,
                     sim::Tick latency = 0);

    const std::string &name() const { return name_; }
    double peakBandwidth() const { return peakBw_; }
    double efficiency() const { return efficiency_; }
    double effectiveBandwidth() const { return peakBw_ * efficiency_; }

    void setEfficiency(double efficiency);

    /**
     * Enqueue a transfer of @p bytes; @p on_done fires when the last
     * byte has arrived. Transfers are serialized in issue order.
     */
    void transfer(double bytes, Callback on_done);

    /**
     * Book a transfer of @p bytes without scheduling any event: the
     * channel's busy window advances exactly as transfer() would, and
     * the tick at which the last byte lands (including the fixed
     * access latency) is returned. Because transfers serialize FIFO at
     * a fixed effective bandwidth, completion time is known in closed
     * form at issue — callers aggregating several channels (an
     * interleaved tier, a DMA join) book every leg and schedule one
     * completion event at the max instead of one event per channel.
     */
    sim::Tick book(double bytes);

    /** Pure time estimate for @p bytes on an idle channel (no latency). */
    sim::Tick estimate(double bytes) const;

    /** Tick at which the channel next becomes idle. */
    sim::Tick busyUntil() const { return busyUntil_; }

    /**
     * Account for traffic whose timing is already captured elsewhere
     * (e.g. inside a kernel cost): bumps byte/busy statistics without
     * scheduling events.
     */
    void recordUse(double bytes, sim::Tick busy_time);

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    sim::EventQueue &eq_;
    std::string name_;
    std::string doneLabel_; ///< precomputed event name (no per-event alloc)
    double peakBw_;
    double efficiency_;
    sim::Tick latency_;
    sim::Tick busyUntil_ = 0;
    sim::StatSet stats_;
    // Hot counters resolved once; StatSet map lookups stay off the
    // per-transfer path.
    double &bytesStat_;
    double &transfersStat_;
    double &busyTicksStat_;
    double &queueTicksStat_;
};

} // namespace sn40l::mem

#endif // SN40L_MEM_BANDWIDTH_CHANNEL_H
