#include "mem/dma_engine.h"

#include <algorithm>

#include "mem/interleaved_memory.h"

namespace sn40l::mem {

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name)
    : eq_(eq), name_(std::move(name)), stats_(name_)
{
}

DmaEngine::Callback
DmaEngine::wrapCompletion(Callback on_done)
{
    ++inFlight_;
    return [this, cb = std::move(on_done)]() {
        --inFlight_;
        if (cb)
            cb();
    };
}

void
DmaEngine::copy(BandwidthChannel &src, BandwidthChannel &dst, double bytes,
                Callback on_done)
{
    stats_.inc("copies");
    stats_.inc("bytes", bytes);

    // Join barrier: fire on_done once both endpoint transfers finish.
    auto remaining = std::make_shared<int>(2);
    auto join = [remaining, cb = wrapCompletion(std::move(on_done))]() {
        if (--*remaining == 0 && cb)
            cb();
    };
    src.transfer(bytes, join);
    dst.transfer(bytes, join);
}

void
DmaEngine::copy(InterleavedMemory &src, std::int64_t src_addr,
                InterleavedMemory &dst, std::int64_t dst_addr, double bytes,
                Callback on_done)
{
    stats_.inc("copies");
    stats_.inc("bytes", bytes);

    auto remaining = std::make_shared<int>(2);
    auto join = [remaining, cb = wrapCompletion(std::move(on_done))]() {
        if (--*remaining == 0 && cb)
            cb();
    };
    src.access(src_addr, bytes, join);
    dst.access(dst_addr, bytes, join);
}

sim::Tick
DmaEngine::estimate(const BandwidthChannel &src, const BandwidthChannel &dst,
                    double bytes)
{
    return std::max(src.estimate(bytes), dst.estimate(bytes));
}

} // namespace sn40l::mem
