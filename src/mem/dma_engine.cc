#include "mem/dma_engine.h"

#include <algorithm>

namespace sn40l::mem {

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name)
    : eq_(eq), name_(std::move(name)), stats_(name_)
{
}

void
DmaEngine::copy(BandwidthChannel &src, BandwidthChannel &dst, double bytes,
                Callback on_done)
{
    stats_.inc("copies");
    stats_.inc("bytes", bytes);

    // Join barrier: fire on_done once both endpoint transfers finish.
    auto remaining = std::make_shared<int>(2);
    auto join = [remaining, cb = std::move(on_done)]() {
        if (--*remaining == 0 && cb)
            cb();
    };
    src.transfer(bytes, join);
    dst.transfer(bytes, join);
}

sim::Tick
DmaEngine::estimate(const BandwidthChannel &src, const BandwidthChannel &dst,
                    double bytes)
{
    return std::max(src.estimate(bytes), dst.estimate(bytes));
}

} // namespace sn40l::mem
