#include "mem/dma_engine.h"

#include <algorithm>
#include <utility>

#include "mem/interleaved_memory.h"
#include "sim/log.h"

namespace sn40l::mem {

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name)
    : eq_(eq), name_(std::move(name)), doneLabel_(name_ + ".copy_done"),
      stats_(name_), copiesStat_(stats_.counter("copies")),
      bytesStat_(stats_.counter("bytes"))
{
}

void
DmaEngine::setRateFactor(double factor)
{
    if (factor < 1.0)
        sim::fatal(name_ + ": DMA rate factor must be >= 1 (got " +
                   std::to_string(factor) + ")");
    rateFactor_ = factor;
}

void
DmaEngine::setSetupTicks(sim::Tick ticks)
{
    if (ticks < 0)
        sim::fatal(name_ + ": negative DMA setup ticks");
    setupTicks_ = ticks;
}

void
DmaEngine::scheduleCompletion(sim::Tick done, Callback on_done)
{
    if (setupTicks_ > 0)
        done += setupTicks_;
    // Exact pass-through at the default factor: healthy runs must not
    // even round-trip ticks through a multiply.
    if (rateFactor_ != 1.0) {
        sim::Tick now = eq_.now();
        double span = static_cast<double>(done - now) * rateFactor_;
        done = now + static_cast<sim::Tick>(span);
    }
    ++inFlight_;
    std::uint32_t slot;
    if (!cbFree_.empty()) {
        slot = cbFree_.back();
        cbFree_.pop_back();
        cbPool_[slot] = std::move(on_done);
    } else {
        slot = static_cast<std::uint32_t>(cbPool_.size());
        cbPool_.push_back(std::move(on_done));
    }
    eq_.schedule(done,
                 [this, slot]() {
                     --inFlight_;
                     // Free the slot before invoking: the callback may
                     // issue another copy, which can reuse (or grow
                     // past) it.
                     Callback cb = std::move(cbPool_[slot]);
                     cbFree_.push_back(slot);
                     if (cb)
                         cb();
                 },
                 doneLabel_.c_str());
}

void
DmaEngine::copy(BandwidthChannel &src, BandwidthChannel &dst, double bytes,
                Callback on_done)
{
    copiesStat_ += 1.0;
    bytesStat_ += bytes;
    sim::Tick done = std::max(src.book(bytes), dst.book(bytes));
    scheduleCompletion(done, std::move(on_done));
}

void
DmaEngine::copy(InterleavedMemory &src, std::int64_t src_addr,
                InterleavedMemory &dst, std::int64_t dst_addr, double bytes,
                Callback on_done)
{
    copiesStat_ += 1.0;
    bytesStat_ += bytes;
    sim::Tick done = std::max(src.bookAccess(src_addr, bytes),
                              dst.bookAccess(dst_addr, bytes));
    scheduleCompletion(done, std::move(on_done));
}

sim::Tick
DmaEngine::estimate(const BandwidthChannel &src, const BandwidthChannel &dst,
                    double bytes)
{
    return std::max(src.estimate(bytes), dst.estimate(bytes));
}

} // namespace sn40l::mem
