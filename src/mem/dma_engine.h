/**
 * @file
 * DMA engine moving data between two bandwidth channels (e.g. DDR to
 * HBM for expert activation — Section V-B, or host DRAM to GPU HBM
 * over PCIe for the DGX baseline). A copy occupies both endpoints and
 * completes when the slower side finishes.
 *
 * Engines also copy between whole InterleavedMemory tiers, spreading
 * each endpoint's share across the tier's channels; MemorySystem pools
 * several engines and schedules expert-streaming jobs onto them.
 *
 * Copies book both endpoints in closed form and schedule a single
 * completion event at the slower endpoint's finish tick, so an
 * N-channel tier-to-tier copy costs one event instead of a per-channel
 * join fan-in.
 */

#ifndef SN40L_MEM_DMA_ENGINE_H
#define SN40L_MEM_DMA_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/bandwidth_channel.h"

namespace sn40l::mem {

class InterleavedMemory;

class DmaEngine
{
  public:
    using Callback = BandwidthChannel::Callback;

    DmaEngine(sim::EventQueue &eq, std::string name);

    /**
     * Copy @p bytes from @p src to @p dst. @p on_done fires when both
     * channels have drained the copy.
     */
    void copy(BandwidthChannel &src, BandwidthChannel &dst, double bytes,
              Callback on_done);

    /**
     * Copy @p bytes between interleaved tiers: read @p src starting at
     * @p src_addr, write @p dst starting at @p dst_addr. Each tier
     * spreads its share over its channels; @p on_done fires when the
     * slower tier finishes.
     */
    void copy(InterleavedMemory &src, std::int64_t src_addr,
              InterleavedMemory &dst, std::int64_t dst_addr, double bytes,
              Callback on_done);

    /** Copies issued through this engine that have not completed. */
    int inFlight() const { return inFlight_; }
    bool busy() const { return inFlight_ > 0; }

    /**
     * Fault-injection hook: stretch the completion time of every copy
     * issued while the factor is set — a copy that would take T ticks
     * takes factor * T. Exactly 1.0 (the default) leaves completion
     * arithmetic untouched, so healthy runs stay bit-identical; the
     * chaos layer uses large factors to model a stalled engine.
     * Factors below 1 are a FatalError (the engine cannot beat its
     * channels). Already-scheduled completions are not moved.
     */
    void setRateFactor(double factor);
    double rateFactor() const { return rateFactor_; }

    /**
     * Fixed per-copy setup cost (descriptor programming), added to
     * every completion while set. Negligible for multi-GB expert
     * copies but dominant for adapter-sized transfers — the PEFT
     * zoo's many-tiny-transfer regime. The engine counts as busy
     * through the setup span, so the pool cannot double-issue onto
     * it. 0 (the default) leaves completion arithmetic untouched.
     * Negative values are a FatalError.
     */
    void setSetupTicks(sim::Tick ticks);
    sim::Tick setupTicks() const { return setupTicks_; }

    /** Idle-channel estimate: bytes at the slower endpoint's rate. */
    static sim::Tick estimate(const BandwidthChannel &src,
                              const BandwidthChannel &dst, double bytes);

    sim::StatSet &stats() { return stats_; }

  private:
    void scheduleCompletion(sim::Tick done, Callback on_done);

    sim::EventQueue &eq_;
    std::string name_;
    std::string doneLabel_;
    int inFlight_ = 0;
    double rateFactor_ = 1.0;
    sim::Tick setupTicks_ = 0;
    /**
     * Parked completion callbacks, indexed by slot. The completion
     * event captures only {engine, slot} (16 bytes, fits the inline
     * callback buffer); capturing the callback itself would nest one
     * InlineCallback inside another and spill to the heap on every
     * copy.
     */
    std::vector<Callback> cbPool_;
    std::vector<std::uint32_t> cbFree_;
    sim::StatSet stats_;
    double &copiesStat_;
    double &bytesStat_;
};

} // namespace sn40l::mem

#endif // SN40L_MEM_DMA_ENGINE_H
