/**
 * @file
 * DMA engine moving data between two bandwidth channels (e.g. DDR to
 * HBM for expert activation — Section V-B, or host DRAM to GPU HBM
 * over PCIe for the DGX baseline). A copy occupies both endpoints and
 * completes when the slower side finishes.
 */

#ifndef SN40L_MEM_DMA_ENGINE_H
#define SN40L_MEM_DMA_ENGINE_H

#include <functional>
#include <memory>
#include <string>

#include "mem/bandwidth_channel.h"

namespace sn40l::mem {

class DmaEngine
{
  public:
    using Callback = std::function<void()>;

    DmaEngine(sim::EventQueue &eq, std::string name);

    /**
     * Copy @p bytes from @p src to @p dst. @p on_done fires when both
     * channels have drained the copy.
     */
    void copy(BandwidthChannel &src, BandwidthChannel &dst, double bytes,
              Callback on_done);

    /** Idle-channel estimate: bytes at the slower endpoint's rate. */
    static sim::Tick estimate(const BandwidthChannel &src,
                              const BandwidthChannel &dst, double bytes);

    sim::StatSet &stats() { return stats_; }

  private:
    sim::EventQueue &eq_;
    std::string name_;
    sim::StatSet stats_;
};

} // namespace sn40l::mem

#endif // SN40L_MEM_DMA_ENGINE_H
