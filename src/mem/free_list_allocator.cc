#include "mem/free_list_allocator.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::mem {

FreeListAllocator::FreeListAllocator(std::int64_t capacity,
                                     std::int64_t alignment)
    : capacity_(capacity), alignment_(alignment)
{
    if (capacity <= 0)
        sim::fatal("FreeListAllocator: non-positive capacity");
    if (alignment <= 0 || (alignment & (alignment - 1)) != 0)
        sim::fatal("FreeListAllocator: alignment must be a power of two");
    freeByOffset_[0] = capacity;
}

std::int64_t
FreeListAllocator::align(std::int64_t bytes) const
{
    return (bytes + alignment_ - 1) & ~(alignment_ - 1);
}

std::optional<std::int64_t>
FreeListAllocator::allocate(std::int64_t bytes)
{
    if (bytes <= 0)
        sim::panic("FreeListAllocator: non-positive allocation");
    std::int64_t need = align(bytes);

    for (auto it = freeByOffset_.begin(); it != freeByOffset_.end(); ++it) {
        if (it->second < need)
            continue;
        std::int64_t offset = it->first;
        std::int64_t remainder = it->second - need;
        freeByOffset_.erase(it);
        if (remainder > 0)
            freeByOffset_[offset + need] = remainder;
        allocated_[offset] = need;
        used_ += need;
        return offset;
    }
    return std::nullopt;
}

void
FreeListAllocator::free(std::int64_t offset)
{
    auto it = allocated_.find(offset);
    if (it == allocated_.end())
        sim::panic("FreeListAllocator: freeing unallocated offset " +
                   std::to_string(offset));
    std::int64_t size = it->second;
    allocated_.erase(it);
    used_ -= size;

    // Insert and coalesce with neighbours.
    auto inserted = freeByOffset_.emplace(offset, size).first;
    if (inserted != freeByOffset_.begin()) {
        auto prev = std::prev(inserted);
        if (prev->first + prev->second == inserted->first) {
            prev->second += inserted->second;
            freeByOffset_.erase(inserted);
            inserted = prev;
        }
    }
    auto next = std::next(inserted);
    if (next != freeByOffset_.end() &&
        inserted->first + inserted->second == next->first) {
        inserted->second += next->second;
        freeByOffset_.erase(next);
    }
}

std::int64_t
FreeListAllocator::largestFreeBlock() const
{
    std::int64_t best = 0;
    for (const auto &kv : freeByOffset_)
        best = std::max(best, kv.second);
    return best;
}

double
FreeListAllocator::fragmentation() const
{
    std::int64_t free_total = freeBytes();
    if (free_total <= 0)
        return 0.0;
    return 1.0 - static_cast<double>(largestFreeBlock()) /
                 static_cast<double>(free_total);
}

} // namespace sn40l::mem
