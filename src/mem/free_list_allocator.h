/**
 * @file
 * First-fit free-list allocator over a byte range. Used by the CoE
 * runtime to manage the HBM expert region dynamically (Section V-B):
 * expert activations allocate blocks, evictions free them, and
 * fragmentation is observable through stats.
 */

#ifndef SN40L_MEM_FREE_LIST_ALLOCATOR_H
#define SN40L_MEM_FREE_LIST_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <optional>

namespace sn40l::mem {

class FreeListAllocator
{
  public:
    explicit FreeListAllocator(std::int64_t capacity,
                               std::int64_t alignment = 256);

    /**
     * Allocate @p bytes; @return the block offset, or std::nullopt if
     * no free block is large enough (even if total free space would
     * suffice — external fragmentation is modeled, not hidden).
     */
    std::optional<std::int64_t> allocate(std::int64_t bytes);

    /** Free a previously allocated block. Panics on a bad offset. */
    void free(std::int64_t offset);

    std::int64_t capacity() const { return capacity_; }
    std::int64_t usedBytes() const { return used_; }
    std::int64_t freeBytes() const { return capacity_ - used_; }
    std::int64_t largestFreeBlock() const;
    std::size_t allocatedBlocks() const { return allocated_.size(); }
    std::size_t freeBlocks() const { return freeByOffset_.size(); }

    /** 1 - largestFree/totalFree; 0 when unfragmented or full. */
    double fragmentation() const;

  private:
    std::int64_t align(std::int64_t bytes) const;

    std::int64_t capacity_;
    std::int64_t alignment_;
    std::int64_t used_ = 0;
    std::map<std::int64_t, std::int64_t> freeByOffset_;  ///< offset -> size
    std::map<std::int64_t, std::int64_t> allocated_;     ///< offset -> size
};

} // namespace sn40l::mem

#endif // SN40L_MEM_FREE_LIST_ALLOCATOR_H
