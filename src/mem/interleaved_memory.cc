#include "mem/interleaved_memory.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::mem {

InterleavedMemory::InterleavedMemory(sim::EventQueue &eq, std::string name,
                                     int channels, double per_channel_bw,
                                     std::int64_t interleave_bytes,
                                     double efficiency, sim::Tick latency)
    : eq_(eq), name_(std::move(name)), doneLabel_(name_ + ".access_done"),
      interleaveBytes_(interleave_bytes), stats_(name_),
      accessesStat_(stats_.counter("accesses")),
      bytesStat_(stats_.counter("bytes"))
{
    if (channels <= 0)
        sim::fatal("InterleavedMemory " + name_ + ": need channels");
    if (interleave_bytes <= 0)
        sim::fatal("InterleavedMemory " + name_ + ": bad interleave");
    for (int i = 0; i < channels; ++i) {
        channels_.push_back(std::make_unique<BandwidthChannel>(
            eq, name_ + ".ch" + std::to_string(i), per_channel_bw,
            efficiency, latency));
    }
    scratch_.assign(channels_.size(), 0.0);
}

double
InterleavedMemory::aggregateBandwidth() const
{
    return static_cast<double>(channels_.size()) *
           channels_.front()->effectiveBandwidth();
}

int
InterleavedMemory::channelOf(std::int64_t addr) const
{
    if (addr < 0)
        sim::panic("InterleavedMemory " + name_ + ": negative address");
    return static_cast<int>((addr / interleaveBytes_) %
                            static_cast<std::int64_t>(channels_.size()));
}

sim::Tick
InterleavedMemory::bookScratch()
{
    sim::Tick done = eq_.now();
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
        if (scratch_[i] <= 0.0)
            continue;
        done = std::max(done, channels_[i]->book(scratch_[i]));
    }
    return done;
}

sim::Tick
InterleavedMemory::bookAccess(std::int64_t addr, double bytes)
{
    if (bytes < 0.0)
        sim::panic("InterleavedMemory " + name_ + ": negative access");
    accessesStat_ += 1.0;
    bytesStat_ += bytes;

    // Closed-form split of the contiguous range: count whole
    // interleave lines per channel over [first_line, last_line], then
    // trim the truncated leading and trailing lines. O(channels)
    // regardless of size — bulk streams (hundreds of GB of decode
    // traffic per prompt) must not walk line by line.
    std::fill(scratch_.begin(), scratch_.end(), 0.0);
    std::int64_t total = static_cast<std::int64_t>(bytes);
    if (total > 0) {
        const std::int64_t line = interleaveBytes_;
        const std::int64_t chans =
            static_cast<std::int64_t>(channels_.size());
        const std::int64_t last_addr = addr + total - 1;
        const std::int64_t first_line = addr / line;
        const std::int64_t last_line = last_addr / line;
        for (std::int64_t c = 0; c < chans; ++c) {
            std::int64_t first_k = first_line +
                (((c - first_line % chans) % chans) + chans) % chans;
            if (first_k > last_line)
                continue;
            std::int64_t lines = (last_line - first_k) / chans + 1;
            scratch_[static_cast<std::size_t>(c)] =
                static_cast<double>(lines * line);
        }
        scratch_[static_cast<std::size_t>(channelOf(addr))] -=
            static_cast<double>(addr % line);
        scratch_[static_cast<std::size_t>(channelOf(last_addr))] -=
            static_cast<double>(line - 1 - last_addr % line);
    }
    return bookScratch();
}

void
InterleavedMemory::access(std::int64_t addr, double bytes, Callback on_done)
{
    sim::Tick done = bookAccess(addr, bytes);
    if (on_done)
        eq_.schedule(done, std::move(on_done), doneLabel_.c_str());
}

void
InterleavedMemory::accessStrided(std::int64_t base, std::int64_t stride,
                                 std::int64_t count,
                                 std::int64_t elem_bytes, Callback on_done)
{
    if (count < 0)
        sim::fatal("InterleavedMemory " + name_ +
                   ": negative strided element count");
    if (elem_bytes <= 0)
        sim::fatal("InterleavedMemory " + name_ +
                   ": non-positive strided element size");
    if (count == 0) {
        // An empty access is a degenerate but legal request: complete
        // asynchronously like any other zero-byte access.
        if (on_done)
            eq_.scheduleIn(0, std::move(on_done), doneLabel_.c_str());
        return;
    }
    // Negative strides walk the address space downward; they are fine
    // as long as no element lands below address zero.
    std::int64_t lowest = stride < 0 ? base + (count - 1) * stride : base;
    if (lowest < 0)
        sim::fatal("InterleavedMemory " + name_ +
                   ": strided access reaches negative addresses");
    accessesStat_ += 1.0;
    bytesStat_ += static_cast<double>(count * elem_bytes);

    std::fill(scratch_.begin(), scratch_.end(), 0.0);
    for (std::int64_t i = 0; i < count; ++i) {
        std::int64_t addr = base + i * stride;
        scratch_[channelOf(addr)] += static_cast<double>(elem_bytes);
    }
    sim::Tick done = bookScratch();
    if (on_done)
        eq_.schedule(done, std::move(on_done), doneLabel_.c_str());
}

} // namespace sn40l::mem
