/**
 * @file
 * Channel-interleaved memory: an HBM stack as N independent channels
 * with addresses interleaved at a fixed granularity. Captures the
 * bank/channel-level parallelism the paper's PMU/HBM design leans on:
 * contiguous streams spread across all channels and reach aggregate
 * bandwidth, while channel-camping strides collapse to a single
 * channel's worth.
 */

#ifndef SN40L_MEM_INTERLEAVED_MEMORY_H
#define SN40L_MEM_INTERLEAVED_MEMORY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/bandwidth_channel.h"

namespace sn40l::mem {

class InterleavedMemory
{
  public:
    using Callback = BandwidthChannel::Callback;

    /**
     * @param channels          number of independent channels
     * @param per_channel_bw    bytes/sec of one channel
     * @param interleave_bytes  contiguous bytes mapped to one channel
     *                          before rotating to the next
     */
    InterleavedMemory(sim::EventQueue &eq, std::string name, int channels,
                      double per_channel_bw, std::int64_t interleave_bytes,
                      double efficiency = 1.0, sim::Tick latency = 0);

    int numChannels() const { return static_cast<int>(channels_.size()); }
    double aggregateBandwidth() const;
    std::int64_t interleaveBytes() const { return interleaveBytes_; }

    /** Channel owning byte address @p addr. */
    int channelOf(std::int64_t addr) const;

    BandwidthChannel &channel(int i) { return *channels_.at(i); }

    /**
     * Issue a contiguous access of @p bytes starting at @p addr; each
     * channel serves its interleaved share, and @p on_done fires when
     * the slowest channel finishes.
     */
    void access(std::int64_t addr, double bytes, Callback on_done);

    /**
     * Book a contiguous access on every channel without scheduling a
     * completion event; @return the tick at which the slowest channel
     * delivers its last byte (never before now). Channel completion
     * is closed-form at issue (FIFO serialization per channel), so an
     * N-channel access needs no join machinery — callers schedule one
     * event at the returned tick, or fold it into a larger join.
     */
    sim::Tick bookAccess(std::int64_t addr, double bytes);

    /**
     * Issue a strided access: @p count elements of @p elem_bytes, with
     * byte stride @p stride from @p base. Strides that are multiples
     * of channels x interleave camp on one channel.
     */
    void accessStrided(std::int64_t base, std::int64_t stride,
                       std::int64_t count, std::int64_t elem_bytes,
                       Callback on_done);

    sim::StatSet &stats() { return stats_; }

  private:
    /** Book the per-channel byte shares in scratch_. @return done tick. */
    sim::Tick bookScratch();

    sim::EventQueue &eq_;
    std::string name_;
    std::string doneLabel_;
    std::int64_t interleaveBytes_;
    std::vector<std::unique_ptr<BandwidthChannel>> channels_;
    std::vector<double> scratch_; ///< per-channel split, reused per access
    sim::StatSet stats_;
    double &accessesStat_;
    double &bytesStat_;
};

} // namespace sn40l::mem

#endif // SN40L_MEM_INTERLEAVED_MEMORY_H
