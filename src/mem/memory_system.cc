#include "mem/memory_system.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::mem {

void
MemorySystemConfig::validate() const
{
    if (ddr.channels <= 0 || hbm.channels <= 0)
        sim::fatal("MemorySystemConfig: need at least one channel per tier");
    if (ddr.perChannelBandwidth <= 0.0 || hbm.perChannelBandwidth <= 0.0)
        sim::fatal("MemorySystemConfig: non-positive channel bandwidth");
    if (ddr.interleaveBytes <= 0 || hbm.interleaveBytes <= 0)
        sim::fatal("MemorySystemConfig: non-positive interleave");
    if (dmaEngines <= 0)
        sim::fatal("MemorySystemConfig: need at least one DMA engine");
    if (dmaSetupSeconds < 0.0)
        sim::fatal("MemorySystemConfig: negative DMA setup time");
}

MemorySystem::MemorySystem(sim::EventQueue &eq, std::string name,
                           const MemorySystemConfig &cfg)
    : eq_(eq), name_(std::move(name)), stats_(name_)
{
    cfg.validate();
    ddr_ = std::make_unique<InterleavedMemory>(
        eq, name_ + ".ddr", cfg.ddr.channels, cfg.ddr.perChannelBandwidth,
        cfg.ddr.interleaveBytes, cfg.ddr.efficiency);
    hbm_ = std::make_unique<InterleavedMemory>(
        eq, name_ + ".hbm", cfg.hbm.channels, cfg.hbm.perChannelBandwidth,
        cfg.hbm.interleaveBytes, cfg.hbm.efficiency);
    for (int i = 0; i < cfg.dmaEngines; ++i) {
        engines_.push_back(std::make_unique<DmaEngine>(
            eq, name_ + ".dma" + std::to_string(i)));
        if (cfg.dmaSetupSeconds > 0.0)
            engines_.back()->setSetupTicks(
                sim::fromSeconds(cfg.dmaSetupSeconds));
    }
}

TransferId
MemorySystem::load(std::int64_t ddr_addr, std::int64_t hbm_addr,
                   double bytes, TransferPriority priority,
                   Callback on_done)
{
    if (bytes < 0.0)
        sim::panic("MemorySystem " + name_ + ": negative load");

    Job job;
    job.id = nextId_++;
    job.srcAddr = ddr_addr;
    job.dstAddr = hbm_addr;
    job.bytes = bytes;
    job.priority = priority;
    job.onDone = std::move(on_done);

    if (priority == TransferPriority::Demand) {
        stats_.inc("demand_loads");
        demandQueue_.push_back(std::move(job));
    } else {
        stats_.inc("prefetch_loads");
        prefetchQueue_.push_back(std::move(job));
    }
    TransferId id = nextId_ - 1;
    pump();
    return id;
}

bool
MemorySystem::cancel(TransferId id)
{
    for (std::deque<Job> *queue : {&prefetchQueue_, &demandQueue_}) {
        for (auto it = queue->begin(); it != queue->end(); ++it) {
            if (it->id == id) {
                queue->erase(it);
                stats_.inc("cancelled_loads");
                return true;
            }
        }
    }
    return false;
}

bool
MemorySystem::promote(TransferId id)
{
    for (auto it = prefetchQueue_.begin(); it != prefetchQueue_.end(); ++it) {
        if (it->id == id) {
            Job job = std::move(*it);
            job.priority = TransferPriority::Demand;
            prefetchQueue_.erase(it);
            demandQueue_.push_back(std::move(job));
            stats_.inc("promoted_loads");
            return true;
        }
    }
    return false;
}

void
MemorySystem::traffic(double bytes, Callback on_done)
{
    stats_.inc("traffic_bytes", bytes);
    // Contiguous stream over the whole working set: spreads evenly
    // across every HBM channel, queueing behind in-flight DMA writes.
    hbm_->access(0, bytes, std::move(on_done));
}

sim::Tick
MemorySystem::estimateLoad(double bytes) const
{
    return std::max(
        sim::transferTicks(bytes, ddr_->aggregateBandwidth()),
        sim::transferTicks(bytes, hbm_->aggregateBandwidth()));
}

void
MemorySystem::pump()
{
    for (int i = 0; i < static_cast<int>(engines_.size()); ++i) {
        if (engines_[i]->busy())
            continue;
        Job job;
        if (!demandQueue_.empty()) {
            job = std::move(demandQueue_.front());
            demandQueue_.pop_front();
        } else if (!prefetchQueue_.empty()) {
            job = std::move(prefetchQueue_.front());
            prefetchQueue_.pop_front();
        } else {
            return;
        }
        issue(i, std::move(job));
    }
}

void
MemorySystem::issue(int engine_idx, Job job)
{
    stats_.inc("issued_loads");
    stats_.inc("load_bytes", job.bytes);
    stats_.max("engines_busy_max", [this] {
        int busy = 0;
        for (const auto &e : engines_)
            busy += e->busy() ? 1 : 0;
        return static_cast<double>(busy + 1);
    }());

    TransferId id = job.id;
    inFlight_.emplace(id, std::move(job.onDone));
    engines_[engine_idx]->copy(*ddr_, job.srcAddr, *hbm_, job.dstAddr,
                               job.bytes,
                               [this, id]() { completeLoad(id); });
}

void
MemorySystem::completeLoad(TransferId id)
{
    auto it = inFlight_.find(id);
    Callback cb = std::move(it->second);
    inFlight_.erase(it);
    stats_.inc("completed_loads");
    if (cb)
        cb();
    pump();
}

} // namespace sn40l::mem
