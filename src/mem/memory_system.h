/**
 * @file
 * Three-tier memory facade (Section III-B / Fig 9): the DDR backing
 * tier and the HBM working tier of one platform as InterleavedMemory
 * instances, plus a pool of DMA engines that stream expert segments
 * DDR -> HBM. Expert loads and execution-side HBM traffic share the
 * same bandwidth channels, so decode weight streaming and expert
 * switching genuinely contend instead of being charged as independent
 * closed-form latency terms.
 *
 * Loads are queued jobs with two priorities: Demand (a batch is
 * blocked on the expert) and Prefetch (speculative, router-driven).
 * A free engine always drains the demand queue first. Queued jobs can
 * be cancelled (speculation invalidated by eviction pressure) or
 * promoted to demand priority (a speculated expert turned out to be
 * needed now); once a job is issued on an engine it runs to
 * completion.
 */

#ifndef SN40L_MEM_MEMORY_SYSTEM_H
#define SN40L_MEM_MEMORY_SYSTEM_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/dma_engine.h"
#include "mem/interleaved_memory.h"

namespace sn40l::mem {

enum class TransferPriority { Demand, Prefetch };

/** Opaque id for a load in flight or queued; 0 is never assigned. */
using TransferId = std::uint64_t;
constexpr TransferId kInvalidTransfer = 0;

struct TierConfig
{
    int channels = 1;
    double perChannelBandwidth = 0.0; ///< bytes/sec peak per channel
    double efficiency = 1.0;
    std::int64_t interleaveBytes = 1 << 20;
};

struct MemorySystemConfig
{
    TierConfig ddr; ///< backing tier (node DDR, or host DRAM over PCIe)
    TierConfig hbm; ///< working tier the experts execute from
    int dmaEngines = 2;

    /**
     * Fixed per-transfer setup cost (descriptor programming) applied
     * by every DMA engine in the pool. 0 (default) keeps completion
     * arithmetic bit-identical to the setup-free engine; the PEFT
     * expert zoo sets it so thousands of adapter-sized transfers pay
     * a real per-transfer overhead (see DmaEngine::setSetupTicks).
     */
    double dmaSetupSeconds = 0.0;

    /** Throws FatalError on non-positive channel/engine counts. */
    void validate() const;
};

class MemorySystem
{
  public:
    using Callback = DmaEngine::Callback;

    MemorySystem(sim::EventQueue &eq, std::string name,
                 const MemorySystemConfig &cfg);

    /**
     * Queue an async DDR->HBM copy of @p bytes (reading the backing
     * tier at @p ddr_addr, writing the working tier at @p hbm_addr)
     * and return its id. @p on_done fires when the last byte lands.
     */
    TransferId load(std::int64_t ddr_addr, std::int64_t hbm_addr,
                    double bytes, TransferPriority priority,
                    Callback on_done);

    /**
     * Cancel a queued load. @return true iff the job had not been
     * issued on an engine yet (its callback will never fire); false if
     * it is already streaming (it will complete) or unknown.
     */
    bool cancel(TransferId id);

    /**
     * Move a queued prefetch to the back of the demand queue.
     * @return true iff the job was found queued at prefetch priority.
     */
    bool promote(TransferId id);

    /**
     * Execution-side traffic on the working tier (decode weight
     * streaming, KV reads): occupies the same HBM channels the DMA
     * engines write through.
     */
    void traffic(double bytes, Callback on_done);

    InterleavedMemory &ddr() { return *ddr_; }
    InterleavedMemory &hbm() { return *hbm_; }
    DmaEngine &engine(int i) { return *engines_.at(i); }

    /**
     * Fault-injection hook: apply a completion-stretch factor to every
     * DMA engine in the pool (see DmaEngine::setRateFactor). 1.0
     * restores healthy behaviour.
     */
    void setDmaRateFactor(double factor)
    {
        for (auto &e : engines_)
            e->setRateFactor(factor);
    }

    int dmaEngineCount() const { return static_cast<int>(engines_.size()); }
    int queuedLoads() const
    {
        return static_cast<int>(demandQueue_.size() + prefetchQueue_.size());
    }
    int loadsInFlight() const { return static_cast<int>(inFlight_.size()); }

    /** Idle-system estimate of one load: slower tier paces the copy. */
    sim::Tick estimateLoad(double bytes) const;

    sim::StatSet &stats() { return stats_; }
    const sim::StatSet &stats() const { return stats_; }

  private:
    struct Job
    {
        TransferId id = kInvalidTransfer;
        std::int64_t srcAddr = 0;
        std::int64_t dstAddr = 0;
        double bytes = 0.0;
        TransferPriority priority = TransferPriority::Demand;
        Callback onDone;
    };

    /** Issue queued jobs onto free engines, demand queue first. */
    void pump();
    void issue(int engine_idx, Job job);
    void completeLoad(TransferId id);

    sim::EventQueue &eq_;
    std::string name_;
    std::unique_ptr<InterleavedMemory> ddr_;
    std::unique_ptr<InterleavedMemory> hbm_;
    std::vector<std::unique_ptr<DmaEngine>> engines_;

    TransferId nextId_ = 1;
    std::deque<Job> demandQueue_;
    std::deque<Job> prefetchQueue_;
    /**
     * Loads streaming on an engine, with their completion callbacks
     * parked here so the engine-side completion captures only
     * {system, id} and stays within the inline callback buffer.
     */
    std::map<TransferId, Callback> inFlight_;

    sim::StatSet stats_;
};

} // namespace sn40l::mem

#endif // SN40L_MEM_MEMORY_SYSTEM_H
