#include "mem/static_allocator.h"

#include <algorithm>
#include <numeric>

#include "sim/log.h"

namespace sn40l::mem {

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::HBM: return "hbm";
      case Tier::DDR: return "ddr";
    }
    sim::panic("tierName: unknown tier");
}

std::int64_t
placeWithLifetimeReuse(const std::vector<Symbol> &symbols,
                       const std::vector<bool> &include,
                       std::vector<std::int64_t> &offsets)
{
    if (include.size() != symbols.size())
        sim::panic("placeWithLifetimeReuse: include size mismatch");

    offsets.assign(symbols.size(), -1);

    // Greedy interval placement: process symbols ordered by first use
    // (then by descending size for determinism); each symbol takes the
    // lowest offset that does not collide with any already-placed
    // symbol whose lifetime overlaps.
    std::vector<std::size_t> order(symbols.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (symbols[a].firstUse != symbols[b].firstUse)
            return symbols[a].firstUse < symbols[b].firstUse;
        if (symbols[a].bytes != symbols[b].bytes)
            return symbols[a].bytes > symbols[b].bytes;
        return a < b;
    });

    struct Placed { std::int64_t lo, hi; int first, last; };
    std::vector<Placed> placed;
    std::int64_t peak = 0;

    for (std::size_t idx : order) {
        if (!include[idx])
            continue;
        const Symbol &sym = symbols[idx];
        if (sym.bytes <= 0)
            sim::panic("placeWithLifetimeReuse: symbol '" + sym.name +
                       "' has non-positive size");
        if (sym.lastUse < sym.firstUse)
            sim::panic("placeWithLifetimeReuse: symbol '" + sym.name +
                       "' has inverted lifetime");

        // Collect live intervals overlapping this symbol's lifetime,
        // then scan gaps in offset order.
        std::vector<std::pair<std::int64_t, std::int64_t>> busy;
        for (const Placed &p : placed) {
            bool overlaps = !(p.last < sym.firstUse || p.first > sym.lastUse);
            if (overlaps)
                busy.emplace_back(p.lo, p.hi);
        }
        std::sort(busy.begin(), busy.end());

        std::int64_t candidate = 0;
        for (const auto &range : busy) {
            if (candidate + sym.bytes <= range.first)
                break;
            candidate = std::max(candidate, range.second);
        }

        offsets[idx] = candidate;
        placed.push_back({candidate, candidate + sym.bytes,
                          sym.firstUse, sym.lastUse});
        peak = std::max(peak, candidate + sym.bytes);
    }
    return peak;
}

MemoryPlan
planMemory(const std::vector<Symbol> &symbols, std::int64_t hbm_capacity,
           std::int64_t ddr_capacity)
{
    MemoryPlan plan;
    plan.placements.assign(symbols.size(), Placement{});

    std::vector<bool> in_hbm(symbols.size(), true);
    for (const Symbol &sym : symbols)
        plan.hbmBytesNoReuse += sym.bytes;

    // Spill candidates ordered by ascending bandwidth demand: the
    // symbols whose residence in HBM buys the least are evicted first.
    std::vector<std::size_t> spill_order(symbols.size());
    std::iota(spill_order.begin(), spill_order.end(), 0);
    std::sort(spill_order.begin(), spill_order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (symbols[a].transferFootprint !=
                      symbols[b].transferFootprint) {
                      return symbols[a].transferFootprint <
                             symbols[b].transferFootprint;
                  }
                  return a < b;
              });

    std::vector<std::int64_t> offsets;
    std::size_t next_spill = 0;
    for (;;) {
        std::int64_t peak = placeWithLifetimeReuse(symbols, in_hbm, offsets);
        if (peak <= hbm_capacity) {
            plan.hbmPeakBytes = peak;
            break;
        }
        // Spill at least the overflow before re-placing; lifetime
        // reuse can only shrink the footprint further, so this batch
        // heuristic stays conservative while avoiding O(spills)
        // placement passes.
        std::int64_t overflow = peak - hbm_capacity;
        std::int64_t freed = 0;
        while (freed < overflow) {
            if (next_spill >= symbols.size()) {
                sim::fatal("planMemory: symbols cannot fit in HBM even "
                           "after spilling everything");
            }
            std::size_t victim = spill_order[next_spill++];
            if (!in_hbm[victim])
                continue;
            in_hbm[victim] = false;
            freed += symbols[victim].bytes;
            plan.ddrBytes += symbols[victim].bytes;
            plan.spillTrafficBytes += symbols[victim].transferFootprint;
            ++plan.spilledSymbols;
        }
    }

    if (plan.ddrBytes > ddr_capacity)
        sim::fatal("planMemory: spilled symbols exceed DDR capacity");

    for (std::size_t i = 0; i < symbols.size(); ++i) {
        if (in_hbm[i]) {
            plan.placements[i] = {Tier::HBM, offsets[i]};
        } else {
            plan.placements[i] = {Tier::DDR, -1};
        }
    }
    return plan;
}

} // namespace sn40l::mem
