/**
 * @file
 * Compile-time device memory planner implementing Section V-A:
 *
 *  1. Symbol lifetimes are known statically (no dynamic allocation or
 *     pointer aliasing in the programming model), so symbols whose
 *     lifetimes do not overlap may share device addresses
 *     ("static garbage collection").
 *  2. If the model still does not fit in HBM, symbols are spilled to
 *     DDR in ascending order of their aggregate transfer footprint
 *     (bandwidth demand), so the cheapest-to-spill symbols go first.
 *     Weights naturally receive the highest priority to stay in HBM
 *     because they are re-read on every token.
 */

#ifndef SN40L_MEM_STATIC_ALLOCATOR_H
#define SN40L_MEM_STATIC_ALLOCATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace sn40l::mem {

/** Memory tier a symbol ends up in. */
enum class Tier { HBM, DDR };

const char *tierName(Tier tier);

/** A compiler symbol: a tensor with a static lifetime. */
struct Symbol
{
    std::string name;
    std::int64_t bytes = 0;

    /**
     * Lifetime as an inclusive range of schedule steps (kernel
     * indices). A weight used by kernels 3..17 has firstUse=3,
     * lastUse=17; persistent symbols span the whole schedule.
     */
    int firstUse = 0;
    int lastUse = 0;

    /**
     * Aggregate bytes this symbol moves over the whole application
     * (reads + writes summed over all uses). The spill heuristic
     * keeps high-footprint symbols in HBM.
     */
    double transferFootprint = 0.0;

    bool readOnly = false;
};

struct Placement
{
    Tier tier = Tier::HBM;
    std::int64_t offset = -1;  ///< valid for HBM placements
};

struct MemoryPlan
{
    std::vector<Placement> placements;  ///< parallel to input symbols
    std::int64_t hbmPeakBytes = 0;      ///< peak concurrent HBM usage
    std::int64_t ddrBytes = 0;          ///< total spilled bytes
    std::int64_t hbmBytesNoReuse = 0;   ///< sum of all HBM symbol sizes
    int spilledSymbols = 0;

    /** Extra DDR traffic per execution caused by spilling. */
    double spillTrafficBytes = 0.0;
};

/**
 * Plan placements for @p symbols given @p hbm_capacity bytes of HBM.
 *
 * Throws FatalError if even the spilled plan cannot fit (a single
 * symbol larger than HBM *and* larger than ddr_capacity).
 */
MemoryPlan planMemory(const std::vector<Symbol> &symbols,
                      std::int64_t hbm_capacity,
                      std::int64_t ddr_capacity);

/**
 * Lifetime-aware linear placement: assigns offsets such that symbols
 * with overlapping lifetimes never overlap in address space, reusing
 * addresses across disjoint lifetimes. @return peak bytes used, and
 * offsets through @p offsets (parallel to @p symbols; -1 = not placed
 * because include[i] was false).
 */
std::int64_t placeWithLifetimeReuse(const std::vector<Symbol> &symbols,
                                    const std::vector<bool> &include,
                                    std::vector<std::int64_t> &offsets);

} // namespace sn40l::mem

#endif // SN40L_MEM_STATIC_ALLOCATOR_H
