#include "models/fft_conv.h"

#include "sim/log.h"

namespace sn40l::models {

using graph::DataflowGraph;
using graph::DType;
using graph::OpKind;
using graph::TensorId;
using graph::TensorKind;

graph::DataflowGraph
buildFig3Example()
{
    DataflowGraph g("monarch-fig3");
    TensorId w0 = g.addTensor("W0", {1024, 128}, DType::BF16,
                              TensorKind::Weight);
    TensorId i0 = g.addTensor("I0", {128, 1024}, DType::BF16,
                              TensorKind::Input);
    TensorId s = g.addTensor("S", {1024, 1024});
    TensorId scale = g.addTensor("Scale", {128, 1024}, DType::BF16,
                                 TensorKind::Constant);
    TensorId m = g.addTensor("M", {1024, 1024});
    TensorId t = g.addTensor("T", {1024, 1024});
    TensorId w1 = g.addTensor("W1", {128, 1024}, DType::BF16,
                              TensorKind::Weight);
    TensorId out = g.addTensor("Out", {128, 1024}, DType::BF16,
                               TensorKind::Output);

    g.addOp(OpKind::Gemm, "Gemm0", {w0, i0}, {s});
    g.addOp(OpKind::Mul, "Mul", {s, scale}, {m});
    g.addOp(OpKind::Transpose, "Transpose", {m}, {t});
    g.addOp(OpKind::Gemm, "Gemm1", {w1, t}, {out});
    g.validate();
    return g;
}

void
FftConvSpec::validate() const
{
    if (radices.empty())
        sim::fatal("FftConvSpec: need at least one radix");
    std::int64_t product = 1;
    for (std::int64_t r : radices) {
        if (r < 2)
            sim::fatal("FftConvSpec: radix must be >= 2");
        product *= r;
    }
    if (product != seqLen)
        sim::fatal("FftConvSpec: radices must multiply to seqLen");
    if (channels <= 0 || batch <= 0)
        sim::fatal("FftConvSpec: bad channels/batch");
}

namespace {

/**
 * Emit one FFT direction: for each radix r, a batched [N/r x r] x
 * [r x r] DFT matmul, a twiddle multiply between stages, and a
 * transpose to expose the next radix. The inverse direction walks the
 * radices in reverse so the data returns to its original layout.
 */
TensorId
emitFftStages(DataflowGraph &g, const FftConvSpec &spec,
              const std::vector<std::int64_t> &radices, TensorId x,
              const std::string &prefix)
{
    std::int64_t bc = static_cast<std::int64_t>(spec.batch) * spec.channels;
    std::int64_t n = spec.seqLen;

    for (std::size_t i = 0; i < radices.size(); ++i) {
        std::int64_t r = radices[i];
        std::string p = prefix + ".s" + std::to_string(i);

        TensorId dft = g.addTensor(p + ".dft", {r, r}, DType::BF16,
                                   TensorKind::Constant);
        TensorId y = g.addTensor(p + ".y", {bc, n / r, r}, DType::BF16,
                                 TensorKind::Activation);
        g.addOp(OpKind::BatchGemm, p + ".gemm", {x, dft}, {y});
        x = y;

        if (i + 1 < radices.size()) {
            TensorId tw = g.addTensor(p + ".twiddle", {n / r, r},
                                      DType::BF16, TensorKind::Constant);
            TensorId m = g.addTensor(p + ".twout", {bc, n / r, r},
                                     DType::BF16, TensorKind::Activation);
            g.addOp(OpKind::Mul, p + ".twmul", {x, tw}, {m});

            std::int64_t next_r = radices[i + 1];
            TensorId t = g.addTensor(p + ".t", {bc, n / next_r, next_r},
                                     DType::BF16, TensorKind::Activation);
            g.addOp(OpKind::Transpose, p + ".transpose", {m}, {t});
            x = t;
        }
    }
    return x;
}

} // namespace

graph::DataflowGraph
buildFftConv(const FftConvSpec &spec)
{
    spec.validate();
    DataflowGraph g("flashfftconv-" + std::to_string(spec.seqLen));

    std::int64_t bc = static_cast<std::int64_t>(spec.batch) * spec.channels;
    std::int64_t n = spec.seqLen;
    std::int64_t r0 = spec.radices.front();

    TensorId u = g.addTensor("u", {bc, n / r0, r0}, DType::BF16,
                             TensorKind::Input);
    TensorId x = u;

    if (spec.gated) {
        TensorId gate_in = g.addTensor("gate_in", {bc, n / r0, r0},
                                       DType::BF16, TensorKind::Input);
        TensorId gated = g.addTensor("u_gated", {bc, n / r0, r0},
                                     DType::BF16, TensorKind::Activation);
        g.addOp(OpKind::Mul, "gate_in.mul", {u, gate_in}, {gated});
        x = gated;
    }

    x = emitFftStages(g, spec, spec.radices, x, "fwd");

    // Frequency-domain pointwise filter (the convolution kernel).
    std::int64_t last_r = spec.radices.back();
    TensorId filt = g.addTensor("filter", {n / last_r, last_r},
                                DType::BF16, TensorKind::Weight);
    TensorId fx = g.addTensor("freq_prod", {bc, n / last_r, last_r},
                              DType::BF16, TensorKind::Activation);
    g.addOp(OpKind::Mul, "filter.mul", {x, filt}, {fx});

    // Inverse walks the radices in reverse; the data lands back in
    // the input layout [bc, n/r0, r0].
    std::vector<std::int64_t> reversed(spec.radices.rbegin(),
                                       spec.radices.rend());
    x = emitFftStages(g, spec, reversed, fx, "inv");

    if (spec.gated) {
        TensorId gate_out = g.addTensor("gate_out", {bc, n / r0, r0},
                                        DType::BF16, TensorKind::Input);
        TensorId y = g.addTensor("y_gated", {bc, n / r0, r0},
                                 DType::BF16, TensorKind::Activation);
        g.addOp(OpKind::Mul, "gate_out.mul", {x, gate_out}, {y});
        x = y;
    }

    TensorId out = g.addTensor("out", {bc, n / r0, r0}, DType::BF16,
                               TensorKind::Output);
    g.addOp(OpKind::Add, "residual", {x, u}, {out});
    g.validate();
    return g;
}

} // namespace sn40l::models
