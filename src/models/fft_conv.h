/**
 * @file
 * Monarch FFT convolution graph builders (FlashFFTConv, paper Fig 3
 * and the Table III "1M sequence" benchmark). The Monarch
 * decomposition rewrites a length-N FFT as a chain of small batched
 * matrix multiplies, twiddle multiplies, and transposes — the access
 * patterns that defeat conventional GPU fusion (Section III-A).
 */

#ifndef SN40L_MODELS_FFT_CONV_H
#define SN40L_MODELS_FFT_CONV_H

#include <cstdint>
#include <vector>

#include "graph/dataflow_graph.h"

namespace sn40l::models {

/**
 * The simplified Fig 3 example: Gemm0 -> Mul(Scale) -> Transpose ->
 * Gemm1, with the paper's shapes. Used for Table I.
 */
graph::DataflowGraph buildFig3Example();

struct FftConvSpec
{
    /** Sequence length; must equal the product of the radices. */
    std::int64_t seqLen = 1LL << 20;

    /** Monarch radices (decomposition order = radices.size()). */
    std::vector<std::int64_t> radices = {128, 128, 64};

    /** Model/channel dimension convolved independently. */
    int channels = 64;

    int batch = 1;

    /** Emit the FlashFFTConv input/output elementwise gating. */
    bool gated = true;

    void validate() const;
};

/**
 * Full FFT convolution: gate-in, forward Monarch FFT (one batched
 * GEMM + twiddle + transpose per radix), frequency-domain filter
 * multiply, inverse FFT, gate-out, residual.
 */
graph::DataflowGraph buildFftConv(const FftConvSpec &spec);

} // namespace sn40l::models

#endif // SN40L_MODELS_FFT_CONV_H
