#include "models/llm_config.h"

#include "sim/log.h"

namespace sn40l::models {

void
LlmConfig::validate() const
{
    if (numLayers <= 0 || dModel <= 0 || numHeads <= 0 || dFfn <= 0)
        sim::fatal("LlmConfig " + name + ": non-positive dimension");
    if (dModel % numHeads != 0)
        sim::fatal("LlmConfig " + name + ": dModel % numHeads != 0");
    if (numKvHeads <= 0 || numHeads % numKvHeads != 0)
        sim::fatal("LlmConfig " + name + ": bad KV head count");
    if (vocabSize <= 0)
        sim::fatal("LlmConfig " + name + ": bad vocab");
    if (weightSparsity < 0.0 || weightSparsity >= 1.0)
        sim::fatal("LlmConfig " + name + ": sparsity out of [0,1)");
}

std::int64_t
LlmConfig::paramCount() const
{
    std::int64_t d = dModel;
    std::int64_t kv = kvDim();

    // Attention: Q and O projections are d x d; K and V are d x kv.
    std::int64_t attn = 2 * d * d + 2 * d * kv;

    std::int64_t ffn_params = ffn == FfnKind::SwiGLU
        ? 3LL * d * dFfn   // gate, up, down
        : 2LL * d * dFfn;  // up, down

    // Per-layer norms: two (pre-attn, pre-ffn), one for parallel
    // blocks; LayerNorm carries a bias alongside the scale.
    std::int64_t norm_width = norm == NormKind::LayerNorm ? 2 * d : d;
    std::int64_t norms = (parallelBlocks ? 1 : 2) * norm_width;

    std::int64_t per_layer = attn + ffn_params + norms;
    std::int64_t total = per_layer * numLayers;

    // Embeddings (+ untied LM head) + final norm.
    total += vocabSize * d * (tiedEmbeddings ? 1 : 2);
    total += norm_width;

    if (vision) {
        const VisionTowerConfig &v = *vision;
        std::int64_t vd = v.dModel;
        std::int64_t v_attn = 4 * vd * vd;
        std::int64_t v_ffn = 2LL * vd * v.dFfn;
        std::int64_t v_norms = 2 * (2 * vd); // ViT uses LayerNorm
        total += (v_attn + v_ffn + v_norms) * v.numLayers;
        total += static_cast<std::int64_t>(v.patchDim) * vd; // patch embed
        total += vd * d * 2;                                 // 2-layer proj
    }
    return total;
}

double
LlmConfig::weightBytes() const
{
    return static_cast<double>(paramCount()) *
           static_cast<double>(graph::dtypeBytes(dtype)) *
           (1.0 - weightSparsity);
}

std::int64_t
LlmConfig::kvBytesPerToken() const
{
    return 2LL * numLayers * kvDim() *
           static_cast<std::int64_t>(graph::dtypeBytes(dtype));
}

LlmConfig
LlmConfig::llama2_7b()
{
    LlmConfig c;
    c.name = "llama2-7b";
    c.numLayers = 32;
    c.dModel = 4096;
    c.numHeads = 32;
    c.numKvHeads = 32;
    c.dFfn = 11008;
    c.vocabSize = 32000;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::llama2_13b()
{
    LlmConfig c;
    c.name = "llama2-13b";
    c.numLayers = 40;
    c.dModel = 5120;
    c.numHeads = 40;
    c.numKvHeads = 40;
    c.dFfn = 13824;
    c.vocabSize = 32000;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::sparseGpt13b()
{
    LlmConfig c = llama2_13b();
    c.name = "sparseGPT-13b";
    c.weightSparsity = 0.875;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::llama2_70b()
{
    LlmConfig c;
    c.name = "llama2-70b";
    c.numLayers = 80;
    c.dModel = 8192;
    c.numHeads = 64;
    c.numKvHeads = 8;
    c.dFfn = 28672;
    c.vocabSize = 32000;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::llama31_8b()
{
    LlmConfig c;
    c.name = "llama3.1-8b";
    c.numLayers = 32;
    c.dModel = 4096;
    c.numHeads = 32;
    c.numKvHeads = 8;
    c.dFfn = 14336;
    c.vocabSize = 128256;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::llama31_70b()
{
    LlmConfig c = llama2_70b();
    c.name = "llama3.1-70b";
    c.vocabSize = 128256;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::llama31_405b()
{
    LlmConfig c;
    c.name = "llama3.1-405b";
    c.numLayers = 126;
    c.dModel = 16384;
    c.numHeads = 128;
    c.numKvHeads = 8;
    c.dFfn = 53248;
    c.vocabSize = 128256;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::mistral7b()
{
    LlmConfig c;
    c.name = "mistral-7b";
    c.numLayers = 32;
    c.dModel = 4096;
    c.numHeads = 32;
    c.numKvHeads = 8;
    c.dFfn = 14336;
    c.vocabSize = 32000;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::falcon40b()
{
    LlmConfig c;
    c.name = "falcon-40b";
    c.numLayers = 60;
    c.dModel = 8192;
    c.numHeads = 128;
    c.numKvHeads = 8;
    c.dFfn = 32768;
    c.vocabSize = 65024;
    c.ffn = FfnKind::Mlp;
    c.norm = NormKind::LayerNorm;
    c.tiedEmbeddings = true;
    c.parallelBlocks = true;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::bloom176b()
{
    LlmConfig c;
    c.name = "bloom-176b";
    c.numLayers = 70;
    c.dModel = 14336;
    c.numHeads = 112;
    c.numKvHeads = 112;
    c.dFfn = 57344;
    c.vocabSize = 250880;
    c.ffn = FfnKind::Mlp;
    c.norm = NormKind::LayerNorm;
    c.tiedEmbeddings = true;
    c.validate();
    return c;
}

LlmConfig
LlmConfig::llava15_7b()
{
    LlmConfig c = llama2_7b();
    c.name = "llava1.5-7b";
    c.vision = VisionTowerConfig{};
    c.validate();
    return c;
}

} // namespace sn40l::models
