/**
 * @file
 * Architecture descriptors for every language model in the paper's
 * evaluation (Table III, Table IV, Samba-CoE experts). Parameter
 * counts derive from the architecture so weight-byte accounting is
 * exact rather than quoted.
 */

#ifndef SN40L_MODELS_LLM_CONFIG_H
#define SN40L_MODELS_LLM_CONFIG_H

#include <cstdint>
#include <optional>
#include <string>

#include "graph/tensor.h"

namespace sn40l::models {

/** Feed-forward block flavor. */
enum class FfnKind {
    SwiGLU, ///< gate/up/down projections (Llama, Mistral)
    Mlp,    ///< up/down with GELU (BLOOM, Falcon)
};

enum class NormKind { RmsNorm, LayerNorm };

/** CLIP-style vision tower (LLaVA's encoder). */
struct VisionTowerConfig
{
    int numLayers = 24;
    int dModel = 1024;
    int numHeads = 16;
    int dFfn = 4096;
    int numPatches = 576; ///< (336/14)^2 for ViT-L/14 at 336px
    int patchDim = 588;   ///< 3 * 14 * 14 input channels per patch
};

struct LlmConfig
{
    std::string name;
    int numLayers = 0;
    int dModel = 0;
    int numHeads = 0;
    int numKvHeads = 0; ///< < numHeads for GQA/MQA models
    int dFfn = 0;
    std::int64_t vocabSize = 0;

    FfnKind ffn = FfnKind::SwiGLU;
    NormKind norm = NormKind::RmsNorm;
    bool tiedEmbeddings = false;
    bool parallelBlocks = false; ///< Falcon: attention and MLP in parallel
    double weightSparsity = 0.0; ///< sparseGPT: 0.875
    graph::DType dtype = graph::DType::BF16;

    std::optional<VisionTowerConfig> vision;

    int headDim() const { return dModel / numHeads; }
    std::int64_t kvDim() const
    {
        return static_cast<std::int64_t>(numKvHeads) * headDim();
    }

    /** Exact parameter count from the architecture. */
    std::int64_t paramCount() const;

    /** Stored weight bytes (sparsity-compressed where applicable). */
    double weightBytes() const;

    /** KV-cache bytes appended per token per sequence. */
    std::int64_t kvBytesPerToken() const;

    /** Sanity checks; throws FatalError on inconsistent configs. */
    void validate() const;

    // ---- The paper's model zoo -----------------------------------
    static LlmConfig llama2_7b();
    static LlmConfig llama2_13b();   ///< sparseGPT base (dense)
    static LlmConfig sparseGpt13b(); ///< 87.5% sparse variant
    static LlmConfig llama2_70b();
    static LlmConfig llama31_8b();
    static LlmConfig llama31_70b();
    static LlmConfig llama31_405b();
    static LlmConfig mistral7b();
    static LlmConfig falcon40b();
    static LlmConfig bloom176b();
    static LlmConfig llava15_7b();
};

} // namespace sn40l::models

#endif // SN40L_MODELS_LLM_CONFIG_H
