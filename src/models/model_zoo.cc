#include "models/model_zoo.h"

namespace sn40l::models {

namespace {

Benchmark
llmBenchmark(const std::string &name, LlmConfig cfg, Phase phase,
             int seq_len, int batch)
{
    WorkloadSpec spec;
    spec.model = std::move(cfg);
    spec.phase = phase;
    spec.seqLen = seq_len;
    spec.batch = batch;
    spec.tensorParallel = 8;
    return {name, 8, [spec]() { return buildTransformer(spec); }};
}

} // namespace

std::vector<Benchmark>
paperBenchmarks()
{
    std::vector<Benchmark> suite;

    suite.push_back(llmBenchmark("llama7B-4k-prefill",
                                 LlmConfig::llama2_7b(), Phase::Prefill,
                                 4096, 1));
    suite.push_back(llmBenchmark("llama7B-4k-decode",
                                 LlmConfig::llama2_7b(), Phase::Decode,
                                 4096, 1));
    suite.push_back(llmBenchmark("sparseGPT-13B-train",
                                 LlmConfig::sparseGpt13b(), Phase::Train,
                                 2048, 4));
    suite.push_back(llmBenchmark("llama70B-4k-prefill",
                                 LlmConfig::llama2_70b(), Phase::Prefill,
                                 4096, 1));
    suite.push_back(llmBenchmark("llama70B-4k-decode",
                                 LlmConfig::llama2_70b(), Phase::Decode,
                                 4096, 1));
    suite.push_back(llmBenchmark("llama7B-4k-train",
                                 LlmConfig::llama2_7b(), Phase::Train,
                                 4096, 4));
    suite.push_back(llmBenchmark("bloom176B-8k-prefill",
                                 LlmConfig::bloom176b(), Phase::Prefill,
                                 8192, 1));
    suite.push_back(llmBenchmark("bloom176B-8k-decode",
                                 LlmConfig::bloom176b(), Phase::Decode,
                                 8192, 1));
    suite.push_back(llmBenchmark("mistral7B-2k-prefill",
                                 LlmConfig::mistral7b(), Phase::Prefill,
                                 2048, 1));
    suite.push_back(llmBenchmark("mistral7B-2k-decode",
                                 LlmConfig::mistral7b(), Phase::Decode,
                                 2048, 1));
    suite.push_back(llmBenchmark("mistral7B-4k-prefill",
                                 LlmConfig::mistral7b(), Phase::Prefill,
                                 4096, 1));
    suite.push_back(llmBenchmark("mistral7B-4k-decode",
                                 LlmConfig::mistral7b(), Phase::Decode,
                                 4096, 1));
    suite.push_back(llmBenchmark("falcon40B-2k-prefill",
                                 LlmConfig::falcon40b(), Phase::Prefill,
                                 2048, 1));
    suite.push_back(llmBenchmark("falcon40B-2k-decode",
                                 LlmConfig::falcon40b(), Phase::Decode,
                                 2048, 1));
    suite.push_back(llmBenchmark("llava1.5-llama7B-prefill",
                                 LlmConfig::llava15_7b(), Phase::Prefill,
                                 4096, 1));
    suite.push_back(llmBenchmark("llava1.5-llama7B-decode",
                                 LlmConfig::llava15_7b(), Phase::Decode,
                                 4096, 1));

    // FlashFFTConv is a single-kernel benchmark on one socket
    // (Section VI-A setup).
    FftConvSpec fft;
    suite.push_back({"FlashFFTConv", 1,
                     [fft]() { return buildFftConv(fft); }});
    return suite;
}

std::vector<WorkloadSpec>
llama31Specs()
{
    std::vector<WorkloadSpec> specs;
    for (LlmConfig cfg : {LlmConfig::llama31_8b(), LlmConfig::llama31_70b(),
                          LlmConfig::llama31_405b()}) {
        WorkloadSpec spec;
        spec.model = std::move(cfg);
        spec.phase = Phase::Decode;
        spec.batch = 1;
        spec.seqLen = 8192;
        spec.tensorParallel = 16;
        specs.push_back(std::move(spec));
    }
    return specs;
}

} // namespace sn40l::models
