/**
 * @file
 * The paper's benchmark suites: the Table III / Fig 10 operator-fusion
 * workloads and the Table IV Llama 3.1 configurations.
 */

#ifndef SN40L_MODELS_MODEL_ZOO_H
#define SN40L_MODELS_MODEL_ZOO_H

#include <functional>
#include <string>
#include <vector>

#include "models/fft_conv.h"
#include "models/transformer_builder.h"

namespace sn40l::models {

/** One Fig 10 benchmark: a named graph factory plus its scale-out. */
struct Benchmark
{
    std::string name;          ///< paper's x-axis label
    int sockets = 8;           ///< all run on 8 sockets except FFT (1)
    std::function<graph::DataflowGraph()> build;
};

/**
 * The seventeen Fig 10 / Fig 11 benchmarks, in the paper's order:
 * llama2-7B (prefill/decode/train), sparseGPT-13B train, llama2-70B,
 * bloom-176B, mistral-7B at 2K and 4K, falcon-40B, LLaVA-1.5, and
 * FlashFFTConv at 1M sequence length.
 */
std::vector<Benchmark> paperBenchmarks();

/** Table IV: Llama 3.1 8B / 70B / 405B decode at 8K on 16 sockets. */
std::vector<WorkloadSpec> llama31Specs();

} // namespace sn40l::models

#endif // SN40L_MODELS_MODEL_ZOO_H
