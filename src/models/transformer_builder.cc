#include "models/transformer_builder.h"

#include <functional>
#include <vector>

#include "sim/log.h"

namespace sn40l::models {

using graph::DataflowGraph;
using graph::DType;
using graph::OpId;
using graph::OpKind;
using graph::TensorId;
using graph::TensorKind;
using graph::TensorShape;

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Prefill: return "prefill";
      case Phase::Decode: return "decode";
      case Phase::Train: return "train";
    }
    sim::panic("phaseName: unknown phase");
}

std::string
WorkloadSpec::str() const
{
    return model.name + "-" + std::to_string(seqLen) + "-" +
           phaseName(phase) + "-b" + std::to_string(batch);
}

namespace {

/**
 * Incremental graph builder holding the spec-wide dimensions and the
 * deferred backward-pass emitters for training graphs.
 */
class Builder
{
  public:
    explicit Builder(const WorkloadSpec &spec)
        : spec_(spec), cfg_(spec.model), g_(spec.str()),
          dtype_(cfg_.dtype)
    {
        tokens_ = spec.tokens();
        ctx_ = spec.contextLen();
    }

    DataflowGraph build();

  private:
    TensorId
    act(const std::string &name, TensorShape shape)
    {
        return g_.addTensor(name, std::move(shape), dtype_,
                            TensorKind::Activation);
    }

    TensorId
    weight(const std::string &name, TensorShape shape)
    {
        return g_.addTensor(name, std::move(shape), dtype_,
                            TensorKind::Weight);
    }

    /** Gemm with a fresh weight [k, n]; records backward emitters. */
    TensorId
    gemm(const std::string &name, TensorId x, std::int64_t k,
         std::int64_t n, TensorShape out_shape)
    {
        TensorId w = weight(name + ".w", {k, n});
        TensorId out = act(name, std::move(out_shape));
        g_.addOp(OpKind::Gemm, name, {x, w}, {out},
                 cfg_.weightSparsity);
        if (spec_.phase == Phase::Train)
            recordGemmBackward(name, x, w, out);
        return out;
    }

    /** Elementwise/norm op producing a same-shaped activation. */
    TensorId
    simd(OpKind kind, const std::string &name, std::vector<TensorId> ins)
    {
        TensorShape shape = g_.tensor(ins[0]).shape;
        TensorId out = act(name, shape);
        g_.addOp(kind, name, std::move(ins), {out});
        if (spec_.phase == Phase::Train)
            recordSimdBackward(name, shape);
        return out;
    }

    void
    recordGemmBackward(const std::string &name, TensorId x, TensorId w,
                       TensorId out)
    {
        bwd_.push_back([this, name, x, w, out]() {
            (void)out;
            const TensorShape xs = g_.tensor(x).shape;
            const TensorShape ws = g_.tensor(w).shape;
            // Canonical [M, N] gradient of the op's output.
            std::int64_t m = xs.elems() / xs.dims.back();
            std::int64_t n = ws.dims[1];
            TensorId d_out = act(name + ".dout", {m, n});
            g_.addOp(OpKind::Copy, name + ".dout.src", {grad_}, {d_out});
            TensorId wt = act(name + ".wT", {ws.dims[1], ws.dims[0]});
            g_.addOp(OpKind::Transpose, name + ".wT.t", {w}, {wt});
            TensorId dx = act(name + ".dx", xs);
            g_.addOp(OpKind::Gemm, name + ".dx", {d_out, wt}, {dx},
                     cfg_.weightSparsity);
            // dW = X^T x dOut
            TensorId xt = act(name + ".xT",
                              {xs.dims.back(), xs.elems() / xs.dims.back()});
            g_.addOp(OpKind::Transpose, name + ".xT.t", {x}, {xt});
            TensorId dw = act(name + ".dw", ws);
            g_.addOp(OpKind::Gemm, name + ".dw", {xt, d_out}, {dw},
                     cfg_.weightSparsity);
            // Optimizer update (SGD-style fused update).
            TensorId wn = g_.addTensor(name + ".w_next", ws, dtype_,
                                       TensorKind::Output);
            g_.addOp(OpKind::Add, name + ".update", {w, dw}, {wn});
            // Chain: this op's input gradient feeds the next (earlier)
            // backward step.
            grad_ = dx;
        });
    }

    void
    recordSimdBackward(const std::string &name, TensorShape shape)
    {
        bwd_.push_back([this, name, shape]() {
            TensorId dx = act(name + ".dgrad", shape);
            g_.addOp(OpKind::Mul, name + ".bwd", {grad_}, {dx});
            // Keep the chain alive: mark consumed via a cheap reduce.
            TensorId sink = g_.addTensor(name + ".dsink", {1}, dtype_,
                                         TensorKind::Output);
            g_.addOp(OpKind::Reduce, name + ".dsink.r", {dx}, {sink});
        });
    }

    TensorId embedTokens();
    TensorId visionTower(TensorId text_embed);
    TensorId decoderLayer(int layer, TensorId x);
    TensorId attention(const std::string &p, int layer, TensorId xn);
    TensorId ffn(const std::string &p, TensorId xn);
    TensorId maybeAllReduce(const std::string &name, TensorId x);
    void head(TensorId x);
    void emitBackward();

    const WorkloadSpec &spec_;
    const LlmConfig &cfg_;
    DataflowGraph g_;
    DType dtype_;
    std::int64_t tokens_ = 0;
    std::int64_t ctx_ = 0;
    TensorId grad_ = graph::kInvalidTensor;
    std::vector<std::function<void()>> bwd_;
};

TensorId
Builder::embedTokens()
{
    TensorId ids = g_.addTensor("token_ids", {tokens_}, DType::INT32,
                                TensorKind::Input);
    TensorId table = weight("embed.table", {cfg_.vocabSize, cfg_.dModel});
    TensorId x0 = act("embed.out", {tokens_, cfg_.dModel});
    g_.addOp(OpKind::Embedding, "embed", {ids, table}, {x0});
    return x0;
}

TensorId
Builder::visionTower(TensorId text_embed)
{
    const VisionTowerConfig &v = *cfg_.vision;
    std::int64_t patches =
        static_cast<std::int64_t>(spec_.batch) * v.numPatches;

    TensorId pixels = g_.addTensor("vit.pixels", {patches, v.patchDim},
                                   dtype_, TensorKind::Input);
    TensorId pe_w = weight("vit.patch_embed.w", {v.patchDim, v.dModel});
    TensorId x = act("vit.embed", {patches, v.dModel});
    g_.addOp(OpKind::Gemm, "vit.patch_embed", {pixels, pe_w}, {x});

    std::int64_t vd = v.dModel;
    std::int64_t hd = vd / v.numHeads;
    std::int64_t bh = static_cast<std::int64_t>(spec_.batch) * v.numHeads;

    for (int l = 0; l < v.numLayers; ++l) {
        std::string p = "vit.L" + std::to_string(l) + ".";
        TensorId nw1 = weight(p + "ln1.w", {vd});
        TensorId n1 = act(p + "ln1", {patches, vd});
        g_.addOp(OpKind::LayerNorm, p + "ln1", {x, nw1}, {n1});

        TensorId qkv_w = weight(p + "qkv.w", {vd, 3 * vd});
        TensorId qkv = act(p + "qkv", {patches, 3 * vd});
        g_.addOp(OpKind::Gemm, p + "qkv", {n1, qkv_w}, {qkv});

        // Split the fused projection into per-head views; the K view
        // is transposed for the score GEMM.
        TensorId qv = act(p + "qview", {bh, v.numPatches, hd});
        TensorId kt = act(p + "kT", {bh, hd, v.numPatches});
        TensorId vv = act(p + "vview", {bh, v.numPatches, hd});
        g_.addOp(OpKind::Split, p + "split_qkv", {qkv}, {qv, kt, vv});

        TensorId scores = act(p + "scores",
                              {bh, v.numPatches, v.numPatches});
        g_.addOp(OpKind::BatchGemm, p + "scores", {qv, kt}, {scores});

        TensorId sm = act(p + "softmax", {bh, v.numPatches, v.numPatches});
        g_.addOp(OpKind::Softmax, p + "softmax", {scores}, {sm});

        TensorId ctx = act(p + "ctx", {patches, vd});
        g_.addOp(OpKind::BatchGemm, p + "ctx", {sm, vv}, {ctx});

        TensorId o = gemm(p + "o", ctx, vd, vd, {patches, vd});
        TensorId r1 = act(p + "resid1", {patches, vd});
        g_.addOp(OpKind::Add, p + "resid1", {x, o}, {r1});

        TensorId nw2 = weight(p + "ln2.w", {vd});
        TensorId n2 = act(p + "ln2", {patches, vd});
        g_.addOp(OpKind::LayerNorm, p + "ln2", {r1, nw2}, {n2});

        TensorId fc1 = gemm(p + "fc1", n2, vd, v.dFfn, {patches, v.dFfn});
        TensorId ge = simd(OpKind::Gelu, p + "gelu", {fc1});
        TensorId fc2 = gemm(p + "fc2", ge, v.dFfn, vd, {patches, vd});
        TensorId r2 = act(p + "resid2", {patches, vd});
        g_.addOp(OpKind::Add, p + "resid2", {r1, fc2}, {r2});
        x = r2;
    }

    // Project into the language model embedding space and concatenate
    // with the text embedding.
    TensorId proj = gemm("vit.proj", x, v.dModel, cfg_.dModel,
                         {patches, cfg_.dModel});
    TensorId joint = act("mm.joint",
                         {tokens_ + patches, cfg_.dModel});
    g_.addOp(OpKind::Concat, "mm.concat", {proj, text_embed}, {joint});
    return joint;
}

TensorId
Builder::maybeAllReduce(const std::string &name, TensorId x)
{
    if (spec_.tensorParallel <= 1)
        return x;
    TensorId out = act(name, g_.tensor(x).shape);
    g_.addOp(OpKind::AllReduce, name, {x}, {out});
    return out;
}

TensorId
Builder::attention(const std::string &p, int layer, TensorId xn)
{
    (void)layer;
    std::int64_t d = cfg_.dModel;
    std::int64_t hd = cfg_.headDim();
    std::int64_t kv = cfg_.kvDim();
    std::int64_t b = spec_.batch;
    std::int64_t bh = b * cfg_.numHeads;
    std::int64_t bkv = b * cfg_.numKvHeads;
    // tokens_/batch, so multimodal prefixes lengthen the sequence.
    std::int64_t s_new = spec_.phase == Phase::Decode ? 1 : tokens_ / b;

    TensorId q = gemm(p + "q", xn, d, d, {bh, s_new, hd});
    TensorId k = gemm(p + "k", xn, d, kv, {bkv, hd, s_new});
    TensorId v = gemm(p + "v", xn, d, kv, {bkv, s_new, hd});

    TensorId qr = simd(OpKind::Rope, p + "rope_q", {q});
    TensorId kr = simd(OpKind::Rope, p + "rope_k", {k});

    // Persistent caches; prefill constructs them, decode extends them.
    TensorId k_cache = g_.addTensor(p + "kcache", {bkv, hd, ctx_}, dtype_,
                                    TensorKind::KvCache);
    TensorId v_cache = g_.addTensor(p + "vcache", {bkv, ctx_, hd}, dtype_,
                                    TensorKind::KvCache);
    g_.addOp(OpKind::KvAppend, p + "kappend", {kr}, {k_cache});
    g_.addOp(OpKind::KvAppend, p + "vappend", {v}, {v_cache});

    // Prefill attends over the fresh K/V; decode attends over the
    // whole cache.
    bool decode = spec_.phase == Phase::Decode;
    TensorId k_opnd = decode ? k_cache : kr;
    TensorId v_opnd = decode ? v_cache : v;
    std::int64_t span = decode ? ctx_ : s_new;

    TensorId scores = act(p + "scores", {bh, s_new, span});
    g_.addOp(OpKind::BatchGemm, p + "scores", {qr, k_opnd}, {scores});
    TensorId scaled = simd(OpKind::Scale, p + "scale", {scores});
    TensorId sm = simd(OpKind::Softmax, p + "softmax", {scaled});

    TensorId ctx_out = act(p + "ctx", {b * s_new, d});
    g_.addOp(OpKind::BatchGemm, p + "ctx", {sm, v_opnd}, {ctx_out});

    return gemm(p + "o", ctx_out, d, d, {b * s_new, d});
}

TensorId
Builder::ffn(const std::string &p, TensorId xn)
{
    std::int64_t d = cfg_.dModel;
    std::int64_t f = cfg_.dFfn;
    std::int64_t t = tokens_;

    if (cfg_.ffn == FfnKind::SwiGLU) {
        TensorId gate = gemm(p + "gate", xn, d, f, {t, f});
        TensorId up = gemm(p + "up", xn, d, f, {t, f});
        TensorId sg = simd(OpKind::Silu, p + "silu", {gate});
        TensorId prod = simd(OpKind::Mul, p + "gated", {sg, up});
        return gemm(p + "down", prod, f, d, {t, d});
    }
    TensorId up = gemm(p + "up", xn, d, f, {t, f});
    TensorId ge = simd(OpKind::Gelu, p + "gelu", {up});
    return gemm(p + "down", ge, f, d, {t, d});
}

TensorId
Builder::decoderLayer(int layer, TensorId x)
{
    std::string p = "L" + std::to_string(layer) + ".";
    std::int64_t d = cfg_.dModel;
    OpKind norm_kind = cfg_.norm == NormKind::RmsNorm ? OpKind::RmsNorm
                                                      : OpKind::LayerNorm;

    TensorId nw1 = weight(p + "norm1.w", {d});
    TensorId n1 = act(p + "norm1", {tokens_, d});
    g_.addOp(norm_kind, p + "norm1", {x, nw1}, {n1});

    if (cfg_.parallelBlocks) {
        // Falcon: attention and MLP both read the single norm; their
        // outputs sum with the residual, and tensor parallelism needs
        // only one all-reduce.
        TensorId attn = attention(p, layer, n1);
        TensorId mlp = ffn(p, n1);
        TensorId both = act(p + "both", {tokens_, d});
        g_.addOp(OpKind::Add, p + "both", {attn, mlp}, {both});
        TensorId red = maybeAllReduce(p + "allreduce", both);
        TensorId out = act(p + "resid", {tokens_, d});
        g_.addOp(OpKind::Add, p + "resid", {x, red}, {out});
        return out;
    }

    TensorId attn = attention(p, layer, n1);
    TensorId attn_r = maybeAllReduce(p + "allreduce1", attn);
    TensorId r1 = act(p + "resid1", {tokens_, d});
    g_.addOp(OpKind::Add, p + "resid1", {x, attn_r}, {r1});

    TensorId nw2 = weight(p + "norm2.w", {d});
    TensorId n2 = act(p + "norm2", {tokens_, d});
    g_.addOp(norm_kind, p + "norm2", {r1, nw2}, {n2});

    TensorId mlp = ffn(p, n2);
    TensorId mlp_r = maybeAllReduce(p + "allreduce2", mlp);
    TensorId r2 = act(p + "resid2", {tokens_, d});
    g_.addOp(OpKind::Add, p + "resid2", {r1, mlp_r}, {r2});
    return r2;
}

void
Builder::head(TensorId x)
{
    std::int64_t d = cfg_.dModel;
    OpKind norm_kind = cfg_.norm == NormKind::RmsNorm ? OpKind::RmsNorm
                                                      : OpKind::LayerNorm;
    TensorId nw = weight("final_norm.w", {d});

    if (spec_.phase == Phase::Train) {
        // Training computes logits and loss over every position.
        TensorId nf = act("final_norm", {tokens_, d});
        g_.addOp(norm_kind, "final_norm", {x, nw}, {nf});
        TensorId logits = gemm("lm_head", nf, d, cfg_.vocabSize,
                               {tokens_, cfg_.vocabSize});
        TensorId probs = simd(OpKind::Softmax, "loss.softmax", {logits});
        TensorId loss = g_.addTensor("loss", {1}, DType::FP32,
                                     TensorKind::Activation);
        g_.addOp(OpKind::Reduce, "loss.reduce", {probs}, {loss});
        // Seed gradient for the backward pass.
        grad_ = act("dloss", {tokens_, d});
        g_.addOp(OpKind::Mul, "dloss.seed", {loss}, {grad_});
        return;
    }

    // Inference emits logits for the last position of each sequence.
    TensorId last = act("last_hidden", {spec_.batch, d});
    g_.addOp(OpKind::Gather, "gather_last", {x}, {last});
    TensorId nf = act("final_norm", {spec_.batch, d});
    g_.addOp(norm_kind, "final_norm", {last, nw}, {nf});

    TensorId wl = weight("lm_head.w", {d, cfg_.vocabSize});
    TensorId logits = act("logits", {spec_.batch, cfg_.vocabSize});
    g_.addOp(OpKind::Gemm, "lm_head", {nf, wl}, {logits});

    TensorId token = g_.addTensor("next_token", {spec_.batch},
                                  DType::INT32, TensorKind::Output);
    g_.addOp(OpKind::Sample, "sample", {logits}, {token});
}

void
Builder::emitBackward()
{
    if (grad_ == graph::kInvalidTensor)
        sim::panic("emitBackward: no gradient seed");
    // Reverse program order mirrors reverse-mode differentiation.
    for (auto it = bwd_.rbegin(); it != bwd_.rend(); ++it)
        (*it)();
    // Sink the final input gradient (embedding grad in a real run).
    TensorId dinput = g_.addTensor("dinput", {1}, DType::FP32,
                                   TensorKind::Output);
    g_.addOp(OpKind::Reduce, "dinput.sink", {grad_}, {dinput});
}

DataflowGraph
Builder::build()
{
    cfg_.validate();
    if (spec_.batch <= 0 || spec_.seqLen <= 0)
        sim::fatal("WorkloadSpec " + spec_.str() + ": bad batch/seq");
    if (cfg_.vision && spec_.phase == Phase::Train)
        sim::fatal("WorkloadSpec " + spec_.str() +
                   ": multimodal training not modeled");

    TensorId x = embedTokens();
    if (cfg_.vision && spec_.phase == Phase::Prefill) {
        x = visionTower(x);
        // The joint sequence is longer than the text alone.
        tokens_ += static_cast<std::int64_t>(spec_.batch) *
                   cfg_.vision->numPatches;
        ctx_ = tokens_ / spec_.batch;
    }

    for (int l = 0; l < cfg_.numLayers; ++l)
        x = decoderLayer(l, x);
    head(x);

    if (spec_.phase == Phase::Train)
        emitBackward();

    g_.validate();
    return std::move(g_);
}

} // namespace

graph::DataflowGraph
buildTransformer(const WorkloadSpec &spec)
{
    Builder builder(spec);
    return builder.build();
}

} // namespace sn40l::models
