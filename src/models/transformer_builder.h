/**
 * @file
 * Dataflow-graph builders for transformer workloads: prefill (first
 * token, KV-cache construction), autoregressive decode (one token
 * with KV-cache reuse), and training (forward + backward + update).
 * The emitted graphs carry exact shapes, so all FLOP and byte
 * accounting downstream is derived, not quoted.
 */

#ifndef SN40L_MODELS_TRANSFORMER_BUILDER_H
#define SN40L_MODELS_TRANSFORMER_BUILDER_H

#include <string>

#include "graph/dataflow_graph.h"
#include "models/llm_config.h"

namespace sn40l::models {

enum class Phase { Prefill, Decode, Train };

const char *phaseName(Phase phase);

struct WorkloadSpec
{
    LlmConfig model;
    Phase phase = Phase::Prefill;
    int batch = 1;

    /** Prompt/sequence length (prefill, train) or context length
     *  already in the KV cache (decode). */
    int seqLen = 2048;

    /** Tensor-parallel degree the workload runs at (sockets). */
    int tensorParallel = 8;

    std::string str() const;

    /** Tokens processed by one forward pass. */
    std::int64_t tokens() const
    {
        return phase == Phase::Decode
            ? batch
            : static_cast<std::int64_t>(batch) * seqLen;
    }

    /** Context length attention reads (decode includes the new token). */
    std::int64_t contextLen() const
    {
        return phase == Phase::Decode ? seqLen + 1 : seqLen;
    }
};

/**
 * Build the dataflow graph for one forward pass (prefill/decode) or
 * one training step (train). The graph is validated before return.
 */
graph::DataflowGraph buildTransformer(const WorkloadSpec &spec);

} // namespace sn40l::models

#endif // SN40L_MODELS_TRANSFORMER_BUILDER_H
