#include "runtime/executor.h"

#include <memory>

#include "sim/log.h"

namespace sn40l::runtime {

namespace {

/** State machine walking the kernel schedule through the event queue. */
struct Run : std::enable_shared_from_this<Run>
{
    RduNode &node;
    const compiler::Program &program;
    arch::Orchestration mode;
    Executor::Callback onDone;
    TraceWriter *trace = nullptr;

    std::size_t kernelIdx = 0;
    int launchIdx = 0;
    sim::Tick startTick = 0;
    sim::Tick prevExec = 0;
    ExecutionResult result;

    Run(RduNode &n, const compiler::Program &p, arch::Orchestration m,
        Executor::Callback cb)
        : node(n), program(p), mode(m), onDone(std::move(cb))
    {
    }

    void
    start()
    {
        startTick = node.eventQueue().now();
        next();
    }

    void
    next()
    {
        if (kernelIdx >= program.kernels.size()) {
            finish();
            return;
        }
        const compiler::KernelExec &ke = program.kernels[kernelIdx];

        sim::Tick exec = ke.cost.totalTicks() /
                         std::max(1, ke.kernel.launches);
        sim::Tick overhead =
            node.socket(0).agcu().launchGap(mode, prevExec);
        prevExec = exec;
        result.launchTicks += overhead;
        result.execTicks += exec;
        ++result.launches;

        // Account channel usage on every socket (timing is captured
        // by the cost model; channels record utilization). Bytes are
        // split across this kernel's grid launches.
        double launch_frac = 1.0 / std::max(1, ke.kernel.launches);
        for (int s = 0; s < node.numSockets() &&
                        s < program.tensorParallel; ++s) {
            node.socket(s).hbm().recordUse(ke.cost.hbmBytes * launch_frac,
                                           exec);
            if (ke.cost.ddrBytes > 0.0) {
                node.socket(s).ddr().recordUse(
                    ke.cost.ddrBytes * launch_frac, exec);
            }
        }
        if (ke.cost.p2pBytes > 0.0) {
            node.p2p().recordUse(ke.cost.p2pBytes * launch_frac *
                                 program.tensorParallel, exec);
        }

        if (trace) {
            sim::Tick now = node.eventQueue().now();
            if (overhead > 0) {
                trace->record("orchestration",
                              arch::orchestrationName(mode), now,
                              overhead);
            }
            trace->record("kernels", ke.kernel.name, now + overhead,
                          exec);
        }

        auto self = shared_from_this();
        node.eventQueue().scheduleIn(overhead + exec, [self]() {
            if (++self->launchIdx >=
                self->program.kernels[self->kernelIdx].kernel.launches) {
                self->launchIdx = 0;
                ++self->kernelIdx;
            }
            self->next();
        }, "kernel_launch");
    }

    void
    finish()
    {
        result.totalTicks = node.eventQueue().now() - startTick;
        if (onDone)
            onDone(result);
    }
};

} // namespace

void
Executor::runAsync(const compiler::Program &program,
                   arch::Orchestration mode, Callback on_done)
{
    auto run = std::make_shared<Run>(node_, program, mode,
                                     std::move(on_done));
    run->trace = trace_;
    run->start();
}

ExecutionResult
Executor::run(const compiler::Program &program, arch::Orchestration mode)
{
    ExecutionResult result;
    bool done = false;
    runAsync(program, mode, [&](const ExecutionResult &r) {
        result = r;
        done = true;
    });
    node_.eventQueue().run();
    if (!done)
        sim::panic("Executor::run: program did not complete");
    return result;
}

} // namespace sn40l::runtime
