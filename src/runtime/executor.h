/**
 * @file
 * Executor: runs a compiled Program on an RduNode through the event
 * queue, under software- or hardware-orchestrated kernel launching
 * (Section IV-D). Produces the time breakdown the Fig 10 experiments
 * report.
 */

#ifndef SN40L_RUNTIME_EXECUTOR_H
#define SN40L_RUNTIME_EXECUTOR_H

#include <functional>

#include "arch/agcu.h"
#include "compiler/compiler.h"
#include "runtime/machine.h"
#include "runtime/trace.h"

namespace sn40l::runtime {

struct ExecutionResult
{
    sim::Tick totalTicks = 0;
    sim::Tick launchTicks = 0; ///< time spent in launch overhead
    sim::Tick execTicks = 0;   ///< time spent executing kernels
    std::int64_t launches = 0;

    double seconds() const { return sim::toSeconds(totalTicks); }
    double launchSeconds() const { return sim::toSeconds(launchTicks); }
    double execSeconds() const { return sim::toSeconds(execTicks); }
};

class Executor
{
  public:
    using Callback = std::function<void(const ExecutionResult &)>;

    explicit Executor(RduNode &node) : node_(node) {}

    /** Attach a timeline writer; kernel launches and executions are
     *  recorded on per-resource lanes (not owned). */
    void setTrace(TraceWriter *trace) { trace_ = trace; }

    /**
     * Run the program to completion (drains the event queue).
     * Kernels launch back-to-back; each launch pays the orchestration
     * overhead, then occupies the machine for its costed duration.
     */
    ExecutionResult run(const compiler::Program &program,
                        arch::Orchestration mode);

    /**
     * Schedule the program asynchronously from the current simulated
     * time; @p on_done fires at completion. Used by the CoE serving
     * simulator to interleave programs with DMA traffic.
     */
    void runAsync(const compiler::Program &program,
                  arch::Orchestration mode, Callback on_done);

  private:
    RduNode &node_;
    TraceWriter *trace_ = nullptr;
};

} // namespace sn40l::runtime

#endif // SN40L_RUNTIME_EXECUTOR_H
