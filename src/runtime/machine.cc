#include "runtime/machine.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::runtime {

RduSocket::RduSocket(sim::EventQueue &eq, const arch::ChipConfig &cfg,
                     std::string name)
    : name_(std::move(name)), cfg_(cfg),
      hbm_(eq, name_ + ".hbm", cfg.hbmBandwidth, cfg.hbmEfficiency,
           sim::fromNs(300)),
      ddr_(eq, name_ + ".ddr", cfg.ddrBandwidth, cfg.ddrEfficiency,
           sim::fromNs(100)),
      agcu_(cfg, name_ + ".agcu")
{
}

RduNode::RduNode(sim::EventQueue &eq, const arch::NodeConfig &cfg)
    : eq_(eq), cfg_(cfg),
      pcie_(eq, cfg.name + ".pcie", cfg.chip.pcieBandwidth, 1.0,
            sim::fromUs(2)),
      p2p_(eq, cfg.name + ".p2p", cfg.chip.p2pBandwidth * cfg.sockets, 1.0,
           sim::fromUs(1)),
      dma_(eq, cfg.name + ".dma")
{
    for (int i = 0; i < cfg_.sockets; ++i) {
        sockets_.push_back(std::make_unique<RduSocket>(
            eq, cfg_.chip, cfg_.name + ".rdu" + std::to_string(i)));
    }
}

void
RduNode::copyDdrToHbm(double total_bytes, Callback on_done)
{
    // Each socket DMAs its shard through its own DDR + HBM channels;
    // completion when the slowest socket finishes.
    double shard = total_bytes / numSockets();
    auto remaining = std::make_shared<int>(numSockets());
    for (auto &socket : sockets_) {
        dma_.copy(socket->ddr(), socket->hbm(), shard,
                  [remaining, on_done]() {
                      if (--*remaining == 0 && on_done)
                          on_done();
                  });
    }
}

void
RduNode::copyHostToHbm(double total_bytes, Callback on_done)
{
    // Host DRAM feeds the sockets through the (much narrower) host
    // link; HBM-side time is negligible by comparison but still
    // modeled through the first socket's channel.
    auto remaining = std::make_shared<int>(2);
    auto join = [remaining, on_done]() {
        if (--*remaining == 0 && on_done)
            on_done();
    };
    pcie_.transfer(total_bytes, join);
    socket(0).hbm().transfer(total_bytes / numSockets(), join);
}

sim::Tick
RduNode::estimateDdrToHbm(double total_bytes) const
{
    double shard = total_bytes / cfg_.sockets;
    double rate = std::min(cfg_.chip.effectiveDdrBandwidth(),
                           cfg_.chip.effectiveHbmBandwidth());
    return sim::transferTicks(shard, rate);
}

} // namespace sn40l::runtime
