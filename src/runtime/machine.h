/**
 * @file
 * Machine models: an SN40L socket (HBM + DDR channels + launch
 * sequencer) and an SN40L node (eight sockets, P2P links, host PCIe).
 * All timing flows through the shared event queue.
 */

#ifndef SN40L_RUNTIME_MACHINE_H
#define SN40L_RUNTIME_MACHINE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/agcu.h"
#include "arch/chip_config.h"
#include "mem/bandwidth_channel.h"
#include "mem/dma_engine.h"
#include "sim/event_queue.h"

namespace sn40l::runtime {

class RduSocket
{
  public:
    RduSocket(sim::EventQueue &eq, const arch::ChipConfig &cfg,
              std::string name);

    const std::string &name() const { return name_; }
    const arch::ChipConfig &config() const { return cfg_; }

    mem::BandwidthChannel &hbm() { return hbm_; }
    mem::BandwidthChannel &ddr() { return ddr_; }
    arch::Agcu &agcu() { return agcu_; }

  private:
    std::string name_;
    const arch::ChipConfig &cfg_;
    mem::BandwidthChannel hbm_;
    mem::BandwidthChannel ddr_;
    arch::Agcu agcu_;
};

class RduNode
{
  public:
    using Callback = std::function<void()>;

    RduNode(sim::EventQueue &eq, const arch::NodeConfig &cfg);

    sim::EventQueue &eventQueue() { return eq_; }
    const arch::NodeConfig &config() const { return cfg_; }
    int numSockets() const { return static_cast<int>(sockets_.size()); }
    RduSocket &socket(int i) { return *sockets_.at(i); }

    mem::BandwidthChannel &pcie() { return pcie_; }
    mem::BandwidthChannel &p2p() { return p2p_; }

    /**
     * Copy @p total_bytes from DDR to HBM, sharded across all sockets
     * (each moves its tensor-parallel slice concurrently) — the CoE
     * expert-switch path (Fig 9).
     */
    void copyDdrToHbm(double total_bytes, Callback on_done);

    /** Copy from host DRAM to HBM over PCIe (the DGX-style path). */
    void copyHostToHbm(double total_bytes, Callback on_done);

    /** Idle-machine estimate of the DDR->HBM copy. */
    sim::Tick estimateDdrToHbm(double total_bytes) const;

  private:
    sim::EventQueue &eq_;
    arch::NodeConfig cfg_;
    std::vector<std::unique_ptr<RduSocket>> sockets_;
    mem::BandwidthChannel pcie_;
    mem::BandwidthChannel p2p_;
    mem::DmaEngine dma_;
};

} // namespace sn40l::runtime

#endif // SN40L_RUNTIME_MACHINE_H
