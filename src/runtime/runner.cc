#include "runtime/runner.h"

#include "sim/log.h"

namespace sn40l::runtime {

const char *
runConfigName(RunConfig config)
{
    switch (config) {
      case RunConfig::Unfused: return "unfused";
      case RunConfig::FusedSO: return "fused+SO";
      case RunConfig::FusedHO: return "fused+HO";
    }
    sim::panic("runConfigName: unknown config");
}

RunOutcome
runWorkload(const graph::DataflowGraph &graph,
            const arch::NodeConfig &node_cfg, int sockets,
            RunConfig config)
{
    compiler::CompileOptions options;
    options.fusion.tensorParallel = sockets;
    options.fusion.mode = config == RunConfig::Unfused
        ? compiler::ExecMode::RduUnfused
        : compiler::ExecMode::RduFused;

    RunOutcome outcome;
    outcome.program = compiler::compile(graph, node_cfg.chip, options);

    arch::Orchestration orch = config == RunConfig::FusedHO
        ? arch::Orchestration::Hardware
        : arch::Orchestration::Software;

    sim::EventQueue eq;
    RduNode node(eq, node_cfg);
    Executor executor(node);
    outcome.result = executor.run(outcome.program, orch);
    return outcome;
}

double
decodeSecondsPerToken(const graph::DataflowGraph &decode_graph,
                      const arch::NodeConfig &node_cfg, int sockets,
                      RunConfig config)
{
    return runWorkload(decode_graph, node_cfg, sockets, config).seconds();
}

} // namespace sn40l::runtime
