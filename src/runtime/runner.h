/**
 * @file
 * Convenience harness tying workloads, compiler, and executor
 * together: compile a graph in any of the three configurations the
 * paper benchmarks (Unfused, Fused+SO, Fused+HO) and run it on an
 * SN40L node. Used by the Fig 10/11 benches, Table IV, and tests.
 */

#ifndef SN40L_RUNTIME_RUNNER_H
#define SN40L_RUNTIME_RUNNER_H

#include <string>

#include "compiler/compiler.h"
#include "graph/dataflow_graph.h"
#include "runtime/executor.h"

namespace sn40l::runtime {

/** The three Fig 10 configurations. */
enum class RunConfig {
    Unfused,    ///< per-op kernels, software orchestrated
    FusedSO,    ///< streaming-dataflow fusion, software orchestrated
    FusedHO,    ///< fusion + hardware-orchestrated launches
};

const char *runConfigName(RunConfig config);

struct RunOutcome
{
    compiler::Program program;
    ExecutionResult result;

    double seconds() const { return result.seconds(); }
};

/**
 * Compile @p graph for @p sockets-way tensor parallelism and execute
 * it on a fresh node in the given configuration.
 */
RunOutcome runWorkload(const graph::DataflowGraph &graph,
                       const arch::NodeConfig &node_cfg, int sockets,
                       RunConfig config);

/** Per-token decode seconds for a spec, on @p sockets sockets. */
double decodeSecondsPerToken(const graph::DataflowGraph &decode_graph,
                             const arch::NodeConfig &node_cfg, int sockets,
                             RunConfig config = RunConfig::FusedHO);

} // namespace sn40l::runtime

#endif // SN40L_RUNTIME_RUNNER_H
