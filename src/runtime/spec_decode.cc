#include "runtime/spec_decode.h"

#include <cmath>

#include "sim/log.h"

namespace sn40l::runtime {

double
SpecDecodeConfig::expectedTokensPerStep() const
{
    if (gamma <= 0)
        return 1.0;
    if (acceptRate <= 0.0)
        return 1.0;
    if (acceptRate >= 1.0)
        return gamma + 1.0;
    return (1.0 - std::pow(acceptRate, gamma + 1)) / (1.0 - acceptRate);
}

double
specDecodeTokensPerSecond(const SpecDecodeConfig &cfg,
                          double target_step_seconds,
                          double draft_token_seconds)
{
    if (cfg.gamma < 0)
        sim::fatal("specDecode: negative gamma");
    if (target_step_seconds <= 0.0)
        sim::fatal("specDecode: non-positive target step time");
    if (draft_token_seconds <= 0.0)
        return 1.0 / target_step_seconds;
    double step = target_step_seconds + cfg.gamma * draft_token_seconds;
    return cfg.expectedTokensPerStep() / step;
}

int
sampleTokensPerStep(const SpecDecodeConfig &cfg, sim::Rng &rng)
{
    if (cfg.gamma < 0)
        sim::fatal("specDecode: negative gamma");
    if (cfg.acceptRate < 0.0 || cfg.acceptRate > 1.0)
        sim::fatal("specDecode: acceptRate outside [0, 1]");
    // Burn all gamma draws even after the first rejection so that the
    // same rng stream at a higher acceptRate accepts a superset of
    // tokens (common-random-numbers coupling).
    int accepted = 0;
    bool rejected = false;
    for (int i = 0; i < cfg.gamma; ++i) {
        bool accept = rng.uniformDouble() < cfg.acceptRate;
        if (!rejected && accept)
            ++accepted;
        else
            rejected = true;
    }
    return accepted + 1;
}

int
sampleStepsForTokens(const SpecDecodeConfig &cfg, int output_tokens,
                     sim::Rng &rng)
{
    if (output_tokens <= 0)
        return 0;
    int emitted = 0;
    int steps = 0;
    while (emitted < output_tokens) {
        emitted += sampleTokensPerStep(cfg, rng);
        ++steps;
    }
    return steps;
}

} // namespace sn40l::runtime
