#include "runtime/spec_decode.h"

#include <cmath>

#include "sim/log.h"

namespace sn40l::runtime {

double
SpecDecodeConfig::expectedTokensPerStep() const
{
    if (gamma <= 0)
        return 1.0;
    if (acceptRate <= 0.0)
        return 1.0;
    if (acceptRate >= 1.0)
        return gamma + 1.0;
    return (1.0 - std::pow(acceptRate, gamma + 1)) / (1.0 - acceptRate);
}

double
specDecodeTokensPerSecond(const SpecDecodeConfig &cfg,
                          double target_step_seconds,
                          double draft_token_seconds)
{
    if (target_step_seconds <= 0.0)
        sim::fatal("specDecode: non-positive target step time");
    if (draft_token_seconds <= 0.0)
        return 1.0 / target_step_seconds;
    double step = target_step_seconds + cfg.gamma * draft_token_seconds;
    return cfg.expectedTokensPerStep() / step;
}

} // namespace sn40l::runtime
