/**
 * @file
 * Speculative decoding throughput model (Table IV: Llama 3.1 70B and
 * 405B use it). A draft model proposes gamma tokens; the target model
 * verifies them in one forward pass. Expected accepted tokens per
 * step follow the standard geometric formula from Leviathan et al.
 *
 * Degenerate corners (both decode autoregressively, one target token
 * per step at 1/target_step_seconds):
 *  - gamma == 0: no draft tokens are proposed, so the draft cost term
 *    gamma * draft_token_seconds vanishes even when draft time is
 *    positive, and expectedTokensPerStep() == 1.
 *  - draft_token_seconds <= 0: treated as "no draft model"; the step
 *    time is the bare target step.
 * Negative gamma is rejected (sim::fatal) — it would shrink the step
 * below the target verification time and inflate throughput.
 */

#ifndef SN40L_RUNTIME_SPEC_DECODE_H
#define SN40L_RUNTIME_SPEC_DECODE_H

#include "sim/rng.h"

namespace sn40l::runtime {

struct SpecDecodeConfig
{
    int gamma = 5;             ///< draft tokens per verification step
    double acceptRate = 0.93;  ///< per-token acceptance probability

    /** E[tokens emitted per step] = (1 - a^(gamma+1)) / (1 - a). */
    double expectedTokensPerStep() const;
};

/**
 * Output tokens/second given the target model's per-step verification
 * time and the draft model's per-token decode time (seconds). See the
 * file comment for the gamma == 0 and draft_token_seconds <= 0
 * corners. Fatals on gamma < 0 or target_step_seconds <= 0.
 */
double specDecodeTokensPerSecond(const SpecDecodeConfig &cfg,
                                 double target_step_seconds,
                                 double draft_token_seconds);

/**
 * Sample the number of tokens emitted by one draft/verify step:
 * consecutive accepted draft tokens plus the target model's bonus
 * token, in [1, gamma + 1]. Draws exactly cfg.gamma uniforms from
 * `rng` regardless of where the first rejection lands (common random
 * numbers), so for a fixed rng stream a higher acceptRate never
 * yields fewer tokens — the coupling that makes tokens/s monotone in
 * acceptance rate. Fatals on gamma < 0 or acceptRate outside [0, 1].
 */
int sampleTokensPerStep(const SpecDecodeConfig &cfg, sim::Rng &rng);

/**
 * Number of draft/verify steps needed to emit `output_tokens` tokens,
 * sampling each step with sampleTokensPerStep. Returns 0 when
 * output_tokens <= 0. With gamma == 0 this is exactly output_tokens
 * (autoregressive).
 */
int sampleStepsForTokens(const SpecDecodeConfig &cfg, int output_tokens,
                         sim::Rng &rng);

} // namespace sn40l::runtime

#endif // SN40L_RUNTIME_SPEC_DECODE_H
