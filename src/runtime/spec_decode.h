/**
 * @file
 * Speculative decoding throughput model (Table IV: Llama 3.1 70B and
 * 405B use it). A draft model proposes gamma tokens; the target model
 * verifies them in one forward pass. Expected accepted tokens per
 * step follow the standard geometric formula from Leviathan et al.
 */

#ifndef SN40L_RUNTIME_SPEC_DECODE_H
#define SN40L_RUNTIME_SPEC_DECODE_H

namespace sn40l::runtime {

struct SpecDecodeConfig
{
    int gamma = 5;             ///< draft tokens per verification step
    double acceptRate = 0.93;  ///< per-token acceptance probability

    /** E[tokens emitted per step] = (1 - a^(gamma+1)) / (1 - a). */
    double expectedTokensPerStep() const;
};

/**
 * Output tokens/second given the target model's per-step verification
 * time and the draft model's per-token decode time (seconds). With
 * draft_seconds <= 0 the model decodes autoregressively.
 */
double specDecodeTokensPerSecond(const SpecDecodeConfig &cfg,
                                 double target_step_seconds,
                                 double draft_token_seconds);

} // namespace sn40l::runtime

#endif // SN40L_RUNTIME_SPEC_DECODE_H
