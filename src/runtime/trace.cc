#include "runtime/trace.h"

#include <map>

namespace sn40l::runtime {

void
TraceWriter::record(const std::string &lane, const std::string &name,
                    sim::Tick start, sim::Tick duration)
{
    events_.push_back({lane, name, start, duration});
}

namespace {

/** Escape a string for JSON output. */
std::string
escape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

void
TraceWriter::writeJson(std::ostream &os) const
{
    // Assign a stable tid per lane.
    std::map<std::string, int> lane_tid;
    for (const Event &e : events_) {
        if (!lane_tid.count(e.lane)) {
            int tid = static_cast<int>(lane_tid.size());
            lane_tid[e.lane] = tid;
        }
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &kv : lane_tid) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << kv.second << ",\"args\":{\"name\":\""
           << escape(kv.first) << "\"}}";
    }
    for (const Event &e : events_) {
        os << ",{\"name\":\"" << escape(e.name) << "\",\"ph\":\"X\","
           << "\"pid\":1,\"tid\":" << lane_tid[e.lane]
           << ",\"ts\":" << sim::toUs(e.start)
           << ",\"dur\":" << sim::toUs(e.duration) << "}";
    }
    os << "]}";
}

} // namespace sn40l::runtime
