/**
 * @file
 * Execution timeline tracing: collects kernel-launch and transfer
 * events during simulation and emits Chrome trace-event JSON
 * (chrome://tracing / Perfetto compatible), the tooling counterpart
 * of the paper's performance-debugging workflow (Section VII).
 */

#ifndef SN40L_RUNTIME_TRACE_H
#define SN40L_RUNTIME_TRACE_H

#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.h"

namespace sn40l::runtime {

class TraceWriter
{
  public:
    /** Record a complete event on a named lane (e.g. "socket0.hbm"). */
    void record(const std::string &lane, const std::string &name,
                sim::Tick start, sim::Tick duration);

    std::size_t eventCount() const { return events_.size(); }

    /** Emit Chrome trace-event JSON ("traceEvents" array form). */
    void writeJson(std::ostream &os) const;

    void clear() { events_.clear(); }

  private:
    struct Event
    {
        std::string lane;
        std::string name;
        sim::Tick start;
        sim::Tick duration;
    };
    std::vector<Event> events_;
};

} // namespace sn40l::runtime

#endif // SN40L_RUNTIME_TRACE_H
