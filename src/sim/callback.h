/**
 * @file
 * Small-buffer-optimized callable for the simulation hot path.
 *
 * Every event the EventQueue fires carries a callback. std::function
 * heap-allocates as soon as a lambda captures more than a couple of
 * words, which puts an allocator round-trip on the schedule/fire cycle
 * of every simulated event. InlineCallback stores the callable in a
 * fixed in-object buffer (falling back to the heap only for outsized
 * captures), is move-only (an event fires exactly once, so nothing
 * ever needs to copy one), and dispatches through a static vtable of
 * three function pointers instead of RTTI machinery.
 */

#ifndef SN40L_SIM_CALLBACK_H
#define SN40L_SIM_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sn40l::sim {

class InlineCallback
{
  public:
    /** Captures up to this many bytes live in the object itself. */
    static constexpr std::size_t kInlineBytes = 48;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {} // NOLINT: mirrors std::function

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&fn) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            vt_ = inlineVTable<Fn>();
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(fn));
            vt_ = heapVTable<Fn>();
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    explicit operator bool() const { return vt_ != nullptr; }

    void
    operator()()
    {
        vt_->invoke(buf_);
    }

    void
    reset()
    {
        if (vt_ != nullptr) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

  private:
    struct VTable
    {
        void (*invoke)(void *self);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *self);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static void
    invokeInline(void *self)
    {
        (*static_cast<Fn *>(self))();
    }

    template <typename Fn>
    static void
    relocateInline(void *src, void *dst) noexcept
    {
        Fn *fn = static_cast<Fn *>(src);
        ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
    }

    template <typename Fn>
    static void
    destroyInline(void *self)
    {
        static_cast<Fn *>(self)->~Fn();
    }

    template <typename Fn>
    static const VTable *
    inlineVTable()
    {
        static const VTable vt = {&invokeInline<Fn>, &relocateInline<Fn>,
                                  &destroyInline<Fn>};
        return &vt;
    }

    template <typename Fn>
    static void
    invokeHeap(void *self)
    {
        (**static_cast<Fn **>(self))();
    }

    template <typename Fn>
    static void
    relocateHeap(void *src, void *dst) noexcept
    {
        *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
    }

    template <typename Fn>
    static void
    destroyHeap(void *self)
    {
        delete *static_cast<Fn **>(self);
    }

    template <typename Fn>
    static const VTable *
    heapVTable()
    {
        static const VTable vt = {&invokeHeap<Fn>, &relocateHeap<Fn>,
                                  &destroyHeap<Fn>};
        return &vt;
    }

    void
    moveFrom(InlineCallback &other) noexcept
    {
        vt_ = other.vt_;
        if (vt_ != nullptr) {
            vt_->relocate(other.buf_, buf_);
            other.vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const VTable *vt_ = nullptr;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_CALLBACK_H
