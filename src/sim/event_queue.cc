#include "sim/event_queue.h"

#include <string>
#include <utility>

#include "sim/log.h"

namespace sn40l::sim {

bool
EventQueue::Handle::cancel()
{
    if (eq_ == nullptr || slot_ >= eq_->pool_.size())
        return false;
    Slot &slot = eq_->pool_[slot_];
    if (!slot.live || slot.gen != gen_ || slot.cancelled)
        return false;
    slot.cancelled = true;
    // The callback can be released immediately; the heap entry is
    // reaped lazily when it reaches the top.
    slot.cb.reset();
    return true;
}

bool
EventQueue::Handle::pending() const
{
    if (eq_ == nullptr || slot_ >= eq_->pool_.size())
        return false;
    const Slot &slot = eq_->pool_[slot_];
    return slot.live && slot.gen == gen_ && !slot.cancelled;
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != kNoSlot) {
        std::uint32_t idx = freeHead_;
        freeHead_ = pool_[idx].nextFree;
        pool_[idx].live = true;
        pool_[idx].cancelled = false;
        return idx;
    }
    if (pool_.size() >= (1u << 24))
        panic("EventQueue: more than 2^24 concurrently pending events");
    pool_.emplace_back();
    pool_.back().live = true;
    return static_cast<std::uint32_t>(pool_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &slot = pool_[idx];
    slot.cb.reset();
    slot.name = "";
    slot.live = false;
    slot.cancelled = false;
    ++slot.gen; // invalidate outstanding handles
    slot.nextFree = freeHead_;
    freeHead_ = idx;
}

/**
 * Flat binary min-heap on (when, seq). Hand-rolled sift instead of
 * std::push_heap/pop_heap so the entry is moved into its final
 * position in one pass.
 */
void
EventQueue::heapPush(HeapEntry entry)
{
    std::size_t i = heap_.size();
    heap_.push_back(entry);
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        const HeapEntry &p = heap_[parent];
        if (p.when < entry.when ||
            (p.when == entry.when && p.seq < entry.seq))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = entry;
}

EventQueue::HeapEntry
EventQueue::heapPop()
{
    HeapEntry top = heap_.front();
    HeapEntry last = heap_.back();
    heap_.pop_back();
    std::size_t n = heap_.size();
    if (n > 0) {
        std::size_t i = 0;
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            std::size_t right = child + 1;
            if (right < n &&
                (heap_[right].when < heap_[child].when ||
                 (heap_[right].when == heap_[child].when &&
                  heap_[right].seq < heap_[child].seq)))
                child = right;
            if (last.when < heap_[child].when ||
                (last.when == heap_[child].when &&
                 last.seq < heap_[child].seq))
                break;
            heap_[i] = heap_[child];
            i = child;
        }
        heap_[i] = last;
    }
    return top;
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, const char *name)
{
    if (when < curTick_) {
        panic("EventQueue: scheduling event '" + std::string(name) +
              "' at tick " + std::to_string(when) + " in the past (now " +
              std::to_string(curTick_) + ")");
    }
    if (!cb)
        panic("EventQueue: scheduling empty callback '" +
              std::string(name) + "'");

    std::uint32_t idx = allocSlot();
    Slot &slot = pool_[idx];
    slot.cb = std::move(cb);
    slot.name = name;

    if (nextSeq_ >= (1ULL << 40))
        panic("EventQueue: sequence counter exhausted (2^40 events); "
              "same-tick FIFO order would silently break");
    HeapEntry entry;
    entry.when = when;
    entry.seq = nextSeq_++;
    entry.slot = idx;
    heapPush(entry);
    ++pendingCount_;
    return Handle(this, idx, slot.gen);
}

EventQueue::Handle
EventQueue::scheduleIn(Tick delta, Callback cb, const char *name)
{
    if (delta < 0)
        panic("EventQueue: negative delta for event '" +
              std::string(name) + "'");
    return schedule(curTick_ + delta, std::move(cb), name);
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        HeapEntry top = heapPop();
        --pendingCount_;
        std::uint32_t idx = static_cast<std::uint32_t>(top.slot);
        Slot &slot = pool_[idx];
        if (slot.cancelled) {
            freeSlot(idx);
            continue;
        }
        curTick_ = top.when;
        // Move the callback out and recycle the slot before invoking:
        // the callback may schedule new events, which can reuse (or
        // grow past) this slot.
        Callback cb = std::move(slot.cb);
        freeSlot(idx);
        ++executedCount_;
        cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
        // Reap cancelled entries first so the limit check below always
        // sees a live event.
        const HeapEntry &top = heap_.front();
        if (pool_[top.slot].cancelled) {
            freeSlot(static_cast<std::uint32_t>(top.slot));
            heapPop();
            --pendingCount_;
            continue;
        }
        if (top.when > limit)
            break;
        if (step())
            ++executed;
    }
    return executed;
}

Tick
EventQueue::peekNextTick()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.front();
        if (pool_[top.slot].cancelled) {
            freeSlot(static_cast<std::uint32_t>(top.slot));
            heapPop();
            --pendingCount_;
            continue;
        }
        return top.when;
    }
    return kMaxTick;
}

void
EventQueue::advanceTo(Tick when)
{
    Tick next = peekNextTick();
    if (next < when)
        panic("EventQueue: advanceTo(" + std::to_string(when) +
              ") would skip a pending event at tick " +
              std::to_string(next));
    if (when > curTick_)
        curTick_ = when;
}

bool
EventQueue::empty() const
{
    return pendingCount_ == 0;
}

void
EventQueue::reset()
{
    for (const HeapEntry &entry : heap_)
        freeSlot(static_cast<std::uint32_t>(entry.slot));
    heap_.clear();
    pendingCount_ = 0;
    curTick_ = 0;
}

} // namespace sn40l::sim
