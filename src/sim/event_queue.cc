#include "sim/event_queue.h"

#include "sim/log.h"

namespace sn40l::sim {

struct EventQueue::Handle::State
{
    bool cancelled = false;
    bool done = false;
};

bool
EventQueue::Handle::cancel()
{
    if (!state_ || state_->done || state_->cancelled)
        return false;
    state_->cancelled = true;
    return true;
}

bool
EventQueue::Handle::pending() const
{
    return state_ && !state_->done && !state_->cancelled;
}

struct EventQueue::Entry
{
    Tick when;
    std::uint64_t seq;
    Callback cb;
    std::string name;
    std::shared_ptr<Handle::State> state;
};

bool
EventQueue::EntryCompare::operator()(const std::shared_ptr<Entry> &a,
                                     const std::shared_ptr<Entry> &b) const
{
    // priority_queue is a max-heap; invert for earliest-first, with the
    // sequence number as a FIFO tie-break at equal ticks.
    if (a->when != b->when)
        return a->when > b->when;
    return a->seq > b->seq;
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, std::string name)
{
    if (when < curTick_) {
        panic("EventQueue: scheduling event '" + name + "' at tick " +
              std::to_string(when) + " in the past (now " +
              std::to_string(curTick_) + ")");
    }
    if (!cb)
        panic("EventQueue: scheduling empty callback '" + name + "'");

    auto entry = std::make_shared<Entry>();
    entry->when = when;
    entry->seq = nextSeq_++;
    entry->cb = std::move(cb);
    entry->name = std::move(name);
    entry->state = std::make_shared<Handle::State>();
    heap_.push(entry);
    ++pendingCount_;
    return Handle(entry->state);
}

EventQueue::Handle
EventQueue::scheduleIn(Tick delta, Callback cb, std::string name)
{
    if (delta < 0)
        panic("EventQueue: negative delta for event '" + name + "'");
    return schedule(curTick_ + delta, std::move(cb), std::move(name));
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        auto entry = heap_.top();
        heap_.pop();
        --pendingCount_;
        if (entry->state->cancelled) {
            entry->state->done = true;
            continue;
        }
        curTick_ = entry->when;
        entry->state->done = true;
        ++executedCount_;
        entry->cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!heap_.empty()) {
        // Peel cancelled entries first so the limit check below always
        // sees a live event.
        if (heap_.top()->state->cancelled) {
            heap_.top()->state->done = true;
            heap_.pop();
            --pendingCount_;
            continue;
        }
        if (heap_.top()->when > limit)
            break;
        if (step())
            ++executed;
    }
    return executed;
}

bool
EventQueue::empty() const
{
    return pendingCount_ == 0;
}

void
EventQueue::reset()
{
    while (!heap_.empty())
        heap_.pop();
    pendingCount_ = 0;
    curTick_ = 0;
}

} // namespace sn40l::sim
