/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue is the spine of the whole simulator: every hardware
 * model (memory channels, DMA engines, kernel launches, RDN transfers)
 * advances time exclusively by scheduling callbacks here. Events at
 * the same tick execute in scheduling order (FIFO), which makes runs
 * fully deterministic.
 */

#ifndef SN40L_SIM_EVENT_QUEUE_H
#define SN40L_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/ticks.h"

namespace sn40l::sim {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Cancellation handle for a scheduled event. Handles are cheap to
     * copy; cancelling an already-run or already-cancelled event is a
     * harmless no-op.
     */
    class Handle
    {
      public:
        Handle() = default;

        /** @return true if the event was pending and is now cancelled. */
        bool cancel();

        /** @return true if the event has not yet run nor been cancelled. */
        bool pending() const;

      private:
        friend class EventQueue;
        struct State;
        explicit Handle(std::shared_ptr<State> state)
            : state_(std::move(state)) {}
        std::shared_ptr<State> state_;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * Scheduling in the past is a simulator bug and panics.
     */
    Handle schedule(Tick when, Callback cb, std::string name = "");

    /** Schedule @p cb to run @p delta ticks from now. */
    Handle scheduleIn(Tick delta, Callback cb, std::string name = "");

    /**
     * Run events until the queue drains or the next event would be
     * after @p limit (exclusive upper bound semantics: events at
     * exactly @p limit still run).
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** Execute exactly one event if one is pending. @return executed? */
    bool step();

    bool empty() const;
    std::size_t pendingCount() const { return pendingCount_; }
    std::uint64_t executedCount() const { return executedCount_; }

    /** Drop all pending events and rewind time to zero. */
    void reset();

  private:
    struct Entry;
    struct EntryCompare
    {
        bool operator()(const std::shared_ptr<Entry> &a,
                        const std::shared_ptr<Entry> &b) const;
    };

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executedCount_ = 0;
    std::size_t pendingCount_ = 0;
    std::priority_queue<std::shared_ptr<Entry>,
                        std::vector<std::shared_ptr<Entry>>,
                        EntryCompare> heap_;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_EVENT_QUEUE_H
