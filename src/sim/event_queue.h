/**
 * @file
 * Discrete-event simulation core.
 *
 * The EventQueue is the spine of the whole simulator: every hardware
 * model (memory channels, DMA engines, kernel launches, RDN transfers)
 * advances time exclusively by scheduling callbacks here. Events at
 * the same tick execute in scheduling order (FIFO), which makes runs
 * fully deterministic.
 *
 * The implementation is built for million-event runs: event state
 * lives in a recycling slab of pooled slots, callbacks are stored
 * inline (sim::InlineCallback), cancellation handles are
 * generation-counted slot indices, and the pending set is a flat
 * binary heap of 16-byte entries. The common schedule/fire cycle
 * performs no heap allocation once the slab and heap have grown to the
 * run's working set.
 */

#ifndef SN40L_SIM_EVENT_QUEUE_H
#define SN40L_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/ticks.h"

namespace sn40l::sim {

class EventQueue
{
  public:
    using Callback = InlineCallback;

    /**
     * Cancellation handle for a scheduled event. Handles are cheap to
     * copy; cancelling an already-run or already-cancelled event is a
     * harmless no-op. A handle holds a generation-counted index into
     * the queue's slot pool, so a stale handle whose slot has been
     * recycled by a later event is inert rather than dangling.
     *
     * Lifetime: a handle refers into its EventQueue and must not be
     * used after that queue is destroyed (every model component in
     * this codebase shares the run's queue, which outlives them all).
     */
    class Handle
    {
      public:
        Handle() = default;

        /** @return true if the event was pending and is now cancelled. */
        bool cancel();

        /** @return true if the event has not yet run nor been cancelled. */
        bool pending() const;

      private:
        friend class EventQueue;
        Handle(EventQueue *eq, std::uint32_t slot, std::uint32_t gen)
            : eq_(eq), slot_(slot), gen_(gen) {}
        EventQueue *eq_ = nullptr;
        std::uint32_t slot_ = 0;
        std::uint32_t gen_ = 0;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /**
     * Schedule @p cb to run at absolute time @p when. @p name is a
     * diagnostic label for panic messages; it must be a literal or
     * otherwise outlive the event. Scheduling in the past is a
     * simulator bug and panics.
     */
    Handle schedule(Tick when, Callback cb, const char *name = "");

    /** Schedule @p cb to run @p delta ticks from now. */
    Handle scheduleIn(Tick delta, Callback cb, const char *name = "");

    /**
     * Run events until the queue drains or the next event would be
     * after @p limit (exclusive upper bound semantics: events at
     * exactly @p limit still run).
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** Execute exactly one event if one is pending. @return executed? */
    bool step();

    // ------------------------------------------------ window API
    //
    // Conservative time-window synchronization (parallel cluster
    // simulation) drives many queues side by side: a coordinator peeks
    // each shard's next event time to bound the window, runs each
    // shard with run(window_end), and squares the clocks up at the
    // barrier with advanceTo() so barrier-time interactions (drain
    // re-dispatch, controller snapshots) observe the same timestamps a
    // single shared queue would have produced.

    /**
     * Time of the earliest pending event, or kMaxTick when the queue
     * is empty. Reaps cancelled heap heads on the way, so the answer
     * is always a live event's time.
     */
    Tick peekNextTick();

    /**
     * Jump the clock forward to @p when without executing anything.
     * Panics if an event earlier than @p when is still pending (that
     * would rewrite history); a @p when in the past is a no-op.
     */
    void advanceTo(Tick when);

    bool empty() const;
    std::size_t pendingCount() const { return pendingCount_; }
    std::uint64_t executedCount() const { return executedCount_; }

    /**
     * Slots currently allocated in the recycling pool (pending events
     * plus cancelled-but-unreaped ones). Exposed so tests can assert
     * that slot recycling keeps the pool at the live working set
     * instead of growing with total events scheduled.
     */
    std::size_t slabSlots() const { return pool_.size(); }

    /** Drop all pending events and rewind time to zero. */
    void reset();

  private:
    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    struct Slot
    {
        Callback cb;
        const char *name = "";
        std::uint32_t gen = 0;
        std::uint32_t nextFree = kNoSlot;
        bool live = false;
        bool cancelled = false;
    };

    /** Heap entry: 16 bytes, ordered by (when, seq) earliest-first. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq : 40; ///< FIFO tie-break; 1T events per run
        std::uint64_t slot : 24;
    };

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t idx);
    void heapPush(HeapEntry entry);
    HeapEntry heapPop();

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executedCount_ = 0;
    std::size_t pendingCount_ = 0;
    std::vector<Slot> pool_;
    std::uint32_t freeHead_ = kNoSlot;
    std::vector<HeapEntry> heap_;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_EVENT_QUEUE_H
