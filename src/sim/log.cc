#include "sim/log.h"

#include <iostream>

namespace sn40l::sim {

namespace {

LogLevel g_level = LogLevel::Quiet;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Quiet: return "QUIET";
    }
    return "?";
}

} // namespace

void
panic(const std::string &msg)
{
    throw SimPanic("panic: " + msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const std::string &component,
           const std::string &msg)
{
    if (level < g_level || g_level == LogLevel::Quiet)
        return;
    std::cerr << "[" << levelName(level) << "] " << component << ": "
              << msg << "\n";
}

} // namespace sn40l::sim
