/**
 * @file
 * Logging and error reporting, following the gem5 panic/fatal split:
 *
 *  - panic():  an internal simulator invariant was violated (a bug in
 *              this library). Throws SimPanic.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, impossible parameters). Throws
 *              FatalError.
 *
 * Both throw instead of aborting so that library users — and the test
 * suite — can observe and recover from failures.
 */

#ifndef SN40L_SIM_LOG_H
#define SN40L_SIM_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace sn40l::sim {

/** Raised by panic(): an internal invariant was violated. */
class SimPanic : public std::logic_error {
  public:
    explicit SimPanic(const std::string &msg) : std::logic_error(msg) {}
};

/** Raised by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

[[noreturn]] void panic(const std::string &msg);
[[noreturn]] void fatal(const std::string &msg);

/** Severity levels for the optional diagnostic log. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Quiet = 3 };

/** Set the global diagnostic log threshold (default: Quiet). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a message if @p level passes the global threshold. */
void logMessage(LogLevel level, const std::string &component,
                const std::string &msg);

inline void
logDebug(const std::string &component, const std::string &msg)
{
    logMessage(LogLevel::Debug, component, msg);
}

inline void
logInfo(const std::string &component, const std::string &msg)
{
    logMessage(LogLevel::Info, component, msg);
}

inline void
logWarn(const std::string &component, const std::string &msg)
{
    logMessage(LogLevel::Warn, component, msg);
}

/**
 * Assert a simulator invariant; throws SimPanic with @p msg on failure.
 * Always checked (not compiled out), since model correctness depends
 * on these invariants holding in release builds too.
 */
inline void
simAssert(bool condition, const std::string &msg)
{
    if (!condition)
        panic(msg);
}

} // namespace sn40l::sim

#endif // SN40L_SIM_LOG_H
