#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include "sim/log.h"

namespace sn40l::sim {

const char *
topologyName(Topology topology)
{
    switch (topology) {
      case Topology::Star: return "star";
      case Topology::Mesh2D: return "mesh";
      case Topology::Torus2D: return "torus";
      case Topology::FatTree: return "fat-tree";
    }
    panic("topologyName: unknown topology");
}

Topology
topologyFromName(const std::string &name)
{
    if (name == "star")
        return Topology::Star;
    if (name == "mesh" || name == "mesh2d")
        return Topology::Mesh2D;
    if (name == "torus" || name == "torus2d")
        return Topology::Torus2D;
    if (name == "fat-tree" || name == "fattree")
        return Topology::FatTree;
    fatal("unknown topology '" + name +
          "' (expected star, mesh, torus, or fat-tree)");
}

void
validateNetworkConfig(const NetworkConfig &cfg)
{
    if (cfg.endpoints < 1)
        fatal("NetworkConfig: need at least one endpoint");
    if (cfg.linkBytesPerSec <= 0.0)
        fatal("NetworkConfig: non-positive link bandwidth");
    if (cfg.linkLatency < 0)
        fatal("NetworkConfig: negative link latency");
    if (cfg.bufferFlits < 1)
        fatal("NetworkConfig: need at least one buffer flit (credit)");
    if (cfg.flitBytes <= 0.0)
        fatal("NetworkConfig: non-positive flit size");
    if (cfg.maxFlitsPerMessage < 1)
        fatal("NetworkConfig: need at least one flit per message");
    if (cfg.meshCols < 0)
        fatal("NetworkConfig: negative mesh width");
    if (cfg.fatTreeRadix < 1 || cfg.fatTreeSpines < 1)
        fatal("NetworkConfig: fat-tree radix and spine count must be "
              "positive");
}

Network::Network(EventQueue &eq, const NetworkConfig &cfg)
    : eq_(eq), cfg_(cfg)
{
    validateNetworkConfig(cfg_);
    switch (cfg_.topology) {
      case Topology::Star:
        buildStar();
        break;
      case Topology::Mesh2D:
        buildGrid(/*wrap=*/false);
        break;
      case Topology::Torus2D:
        buildGrid(/*wrap=*/true);
        break;
      case Topology::FatTree:
        buildFatTree();
        break;
    }
}

int
Network::addLink(int from, int to)
{
    Link l;
    l.from = from;
    l.to = to;
    l.credits = cfg_.bufferFlits;
    int id = static_cast<int>(links_.size());
    links_.push_back(std::move(l));
    linkIndex_.emplace(std::make_pair(from, to), id);
    return id;
}

void
Network::buildStar()
{
    const int E = cfg_.endpoints;
    numNodes_ = E + 1; // endpoints + the hub switch
    for (int e = 0; e < E; ++e) {
        addLink(e, E);
        addLink(E, e);
    }
}

void
Network::buildGrid(bool wrap)
{
    const int E = cfg_.endpoints;
    meshCols_ = cfg_.meshCols > 0
        ? cfg_.meshCols
        : std::max(1, static_cast<int>(std::ceil(std::sqrt(
              static_cast<double>(E)))));
    meshRows_ = (E + meshCols_ - 1) / meshCols_;
    // Every grid cell is a router; the first `endpoints` cells are
    // also terminals. Routes may pass through terminal-less cells.
    numNodes_ = meshCols_ * meshRows_;
    auto id = [this](int x, int y) { return y * meshCols_ + x; };
    for (int y = 0; y < meshRows_; ++y) {
        for (int x = 0; x < meshCols_; ++x) {
            if (x + 1 < meshCols_) {
                addLink(id(x, y), id(x + 1, y));
                addLink(id(x + 1, y), id(x, y));
            }
            if (y + 1 < meshRows_) {
                addLink(id(x, y), id(x, y + 1));
                addLink(id(x, y + 1), id(x, y));
            }
        }
    }
    if (wrap) {
        // Wrap links only when they are not duplicates of the mesh
        // links (a 2-wide dimension already has both directions).
        if (meshCols_ > 2)
            for (int y = 0; y < meshRows_; ++y) {
                addLink(id(meshCols_ - 1, y), id(0, y));
                addLink(id(0, y), id(meshCols_ - 1, y));
            }
        if (meshRows_ > 2)
            for (int x = 0; x < meshCols_; ++x) {
                addLink(id(x, meshRows_ - 1), id(x, 0));
                addLink(id(x, 0), id(x, meshRows_ - 1));
            }
    }
}

void
Network::buildFatTree()
{
    const int E = cfg_.endpoints;
    const int r = cfg_.fatTreeRadix;
    const int leaves = (E + r - 1) / r;
    const int spines = cfg_.fatTreeSpines;
    numNodes_ = E + leaves + spines;
    for (int e = 0; e < E; ++e) {
        int leaf = E + e / r;
        addLink(e, leaf);
        addLink(leaf, e);
    }
    for (int l = 0; l < leaves; ++l)
        for (int s = 0; s < spines; ++s) {
            addLink(E + l, E + leaves + s);
            addLink(E + leaves + s, E + l);
        }
}

std::vector<int>
Network::gridRoute(int src, int dst, bool wrap) const
{
    std::vector<int> path;
    int x = src % meshCols_, y = src / meshCols_;
    const int dx = dst % meshCols_, dy = dst / meshCols_;
    auto id = [this](int cx, int cy) { return cy * meshCols_ + cx; };
    auto hop = [this, &path](int a, int b) {
        path.push_back(linkIndex_.at(std::make_pair(a, b)));
    };
    // Dimension order: X first, then Y. On a torus take the shorter
    // direction (ties go positive), stepping through wrap links.
    while (x != dx) {
        int fwd = (dx - x + meshCols_) % meshCols_;
        int nx;
        if (wrap && meshCols_ > 2 &&
            fwd > meshCols_ - fwd) // backward is strictly shorter
            nx = (x + meshCols_ - 1) % meshCols_;
        else if (wrap && meshCols_ > 2)
            nx = (x + 1) % meshCols_;
        else
            nx = x < dx ? x + 1 : x - 1;
        hop(id(x, y), id(nx, y));
        x = nx;
    }
    while (y != dy) {
        int fwd = (dy - y + meshRows_) % meshRows_;
        int ny;
        if (wrap && meshRows_ > 2 && fwd > meshRows_ - fwd)
            ny = (y + meshRows_ - 1) % meshRows_;
        else if (wrap && meshRows_ > 2)
            ny = (y + 1) % meshRows_;
        else
            ny = y < dy ? y + 1 : y - 1;
        hop(id(x, y), id(x, ny));
        y = ny;
    }
    return path;
}

std::vector<int>
Network::computeRoute(int src, int dst) const
{
    const int E = cfg_.endpoints;
    std::vector<int> path;
    auto hop = [this, &path](int a, int b) {
        path.push_back(linkIndex_.at(std::make_pair(a, b)));
    };
    switch (cfg_.topology) {
      case Topology::Star:
        hop(src, E);
        hop(E, dst);
        break;
      case Topology::Mesh2D:
        return gridRoute(src, dst, /*wrap=*/false);
      case Topology::Torus2D:
        return gridRoute(src, dst, /*wrap=*/true);
      case Topology::FatTree: {
        const int r = cfg_.fatTreeRadix;
        const int leaves = (E + r - 1) / r;
        int ls = E + src / r, ld = E + dst / r;
        hop(src, ls);
        if (ls != ld) {
            // Deterministic spine pick per leaf pair: static path
            // diversity without per-packet adaptivity.
            int spine = E + leaves +
                (src / r * 131 + dst / r) % cfg_.fatTreeSpines;
            hop(ls, spine);
            hop(spine, ld);
        }
        hop(ld, dst);
        break;
      }
    }
    return path;
}

const std::vector<int> &
Network::route(int src, int dst)
{
    if (src < 0 || src >= cfg_.endpoints || dst < 0 ||
        dst >= cfg_.endpoints)
        fatal("Network: endpoint out of range");
    auto key = std::make_pair(src, dst);
    auto it = routes_.find(key);
    if (it == routes_.end())
        it = routes_.emplace(key, computeRoute(src, dst)).first;
    return it->second;
}

double
Network::pathCongestion(int src, int dst)
{
    double c = 0.0;
    for (int li : route(src, dst)) {
        const Link &l = links_[static_cast<std::size_t>(li)];
        // Occupancy scaled by the link's serialization stretch: a
        // backlog on a slow link takes rateFactor times longer to
        // drain, and an *empty* degraded link still advertises its
        // stretch — a purely reactive signal would keep trickling
        // traffic onto a 40x link until the queue built, each trickle
        // head-of-line blocking the shared upstream hops.
        double occ = static_cast<double>(l.queued);
        if (l.freeAt > eq_.now())
            occ += 1.0;
        c += occ * l.rateFactor + (l.rateFactor - 1.0);
    }
    return c;
}

void
Network::setEndpointLinkFactor(int endpoint, double factor)
{
    if (endpoint < 0 || endpoint >= cfg_.endpoints)
        fatal("Network: endpoint out of range");
    if (factor < 1.0)
        fatal("Network: link degrade factor must be at least 1");
    for (Link &l : links_)
        if (l.from == endpoint || l.to == endpoint)
            l.rateFactor = factor;
}

int
Network::allocMessage()
{
    if (!freeIds_.empty()) {
        int id = freeIds_.back();
        freeIds_.pop_back();
        return id;
    }
    messages_.emplace_back();
    return static_cast<int>(messages_.size()) - 1;
}

void
Network::freeMessage(int msg)
{
    Message &m = messages_[static_cast<std::size_t>(msg)];
    m = Message{};
    freeIds_.push_back(msg);
}

void
Network::send(int src, int dst, double bytes, Callback on_delivered)
{
    if (bytes < 0.0)
        fatal("Network: negative message size");
    ++messagesSent_;
    if (src == dst) {
        // Local delivery: no link is touched, but the completion
        // still fires from an event so callers see one code path.
        ++inFlight_;
        eq_.schedule(
            eq_.now(),
            [this, cb = std::move(on_delivered)]() {
                --inFlight_;
                ++messagesDelivered_;
                if (cb)
                    cb();
            },
            "net.local");
        return;
    }
    const std::vector<int> &path = route(src, dst);
    int flits = static_cast<int>(std::ceil(bytes / cfg_.flitBytes));
    flits = std::max(1, std::min(flits, cfg_.maxFlitsPerMessage));
    int id = allocMessage();
    Message &m = messages_[static_cast<std::size_t>(id)];
    m.path = &path;
    m.chunkBytes = bytes / static_cast<double>(flits);
    m.flits = flits;
    m.delivered = 0;
    m.onDelivered = std::move(on_delivered);
    ++inFlight_;
    // The source NIC queues the whole message at once; credit-based
    // backpressure then paces it hop by hop (the injection queue is
    // the sender stalling, not a drop).
    for (int f = 0; f < flits; ++f)
        pushFlit(path[0], /*upstream_link=*/-1, id, 0);
    pump(path[0]);
}

void
Network::pushFlit(int link, int upstream_link, int msg, int hop)
{
    Link &l = links_[static_cast<std::size_t>(link)];
    std::size_t port = 0;
    for (; port < l.upstream.size(); ++port)
        if (l.upstream[port] == upstream_link)
            break;
    if (port == l.upstream.size()) {
        l.upstream.push_back(upstream_link);
        l.q.emplace_back();
    }
    l.q[port].push_back(Entry{msg, hop});
    ++l.queued;
}

void
Network::arm(int link, Tick when)
{
    Link &l = links_[static_cast<std::size_t>(link)];
    if (l.armed)
        return;
    l.armed = true;
    eq_.schedule(
        when,
        [this, link]() {
            links_[static_cast<std::size_t>(link)].armed = false;
            pump(link);
        },
        "net.tx");
}

void
Network::returnCredit(int link)
{
    eq_.schedule(
        eq_.now() + cfg_.linkLatency,
        [this, link]() {
            ++links_[static_cast<std::size_t>(link)].credits;
            pump(link);
        },
        "net.credit");
}

/** Try to transmit one flit on @p link; re-arms itself as needed. */
void
Network::pump(int link)
{
    Link &l = links_[static_cast<std::size_t>(link)];
    if (l.queued == 0)
        return;
    Tick now = eq_.now();
    if (l.freeAt > now) {
        arm(link, l.freeAt);
        return;
    }
    if (l.credits == 0) {
        // Backpressured: woken again by the next credit return.
        ++creditStalls_;
        return;
    }
    // Round-robin arbitration across the input ports.
    std::size_t ports = l.q.size();
    std::size_t p = 0;
    for (std::size_t k = 0; k < ports; ++k) {
        p = (static_cast<std::size_t>(l.rr) + k) % ports;
        if (!l.q[p].empty())
            break;
    }
    l.rr = static_cast<int>((p + 1) % ports);
    Entry f = l.q[p].front();
    l.q[p].pop_front();
    --l.queued;
    // The flit leaves the upstream link's downstream buffer: its
    // credit travels back one link latency behind.
    if (l.upstream[p] >= 0)
        returnCredit(l.upstream[p]);
    --l.credits;
    const Message &m = messages_[static_cast<std::size_t>(f.msg)];
    Tick ser = transferTicks(m.chunkBytes,
                             cfg_.linkBytesPerSec / l.rateFactor);
    l.freeAt = now + ser;
    l.busyTicks += ser;
    ++l.flits;
    eq_.schedule(
        l.freeAt + cfg_.linkLatency,
        [this, link, msg = f.msg, hop = f.hop]() {
            arriveFlit(link, msg, hop);
        },
        "net.rx");
    if (l.queued > 0)
        arm(link, l.freeAt);
}

void
Network::arriveFlit(int link, int msg, int hop)
{
    Message &m = messages_[static_cast<std::size_t>(msg)];
    const std::vector<int> &path = *m.path;
    if (static_cast<std::size_t>(hop) + 1 == path.size()) {
        // Ejected at the destination endpoint: the buffer slot frees
        // immediately and the credit signals back upstream.
        returnCredit(link);
        ++flitsDelivered_;
        if (++m.delivered == m.flits) {
            Callback cb = std::move(m.onDelivered);
            freeMessage(msg);
            --inFlight_;
            ++messagesDelivered_;
            if (cb)
                cb();
        }
        return;
    }
    // Forward into the next hop's input queue. The flit keeps holding
    // this link's credit until it wins that arbitration.
    int next = path[static_cast<std::size_t>(hop) + 1];
    pushFlit(next, link, msg, hop + 1);
    pump(next);
}

int
Network::linkFrom(int link) const
{
    return links_[static_cast<std::size_t>(link)].from;
}

int
Network::linkTo(int link) const
{
    return links_[static_cast<std::size_t>(link)].to;
}

Tick
Network::linkBusyTicks(int link) const
{
    return links_[static_cast<std::size_t>(link)].busyTicks;
}

std::int64_t
Network::linkFlits(int link) const
{
    return links_[static_cast<std::size_t>(link)].flits;
}

std::string
Network::nodeLabel(int node) const
{
    if (node < cfg_.endpoints)
        return "ep" + std::to_string(node);
    return "sw" + std::to_string(node - cfg_.endpoints);
}

} // namespace sn40l::sim
