/**
 * @file
 * Event-driven link/credit interconnect on sim::EventQueue.
 *
 * A Network is a directed graph of unidirectional links between nodes
 * (terminal endpoints plus internal switches, depending on topology).
 * Messages are serialized into flits; each flit
 *
 *   - waits in a per-input-port FIFO at its next link's transmitter,
 *   - wins the output port through round-robin arbitration across the
 *     input ports (VC-style: one queue per upstream link, so two
 *     streams merging at a switch interleave fairly instead of one
 *     draining first),
 *   - consumes one credit of the link (a slot in the downstream input
 *     buffer), occupies the wire for its serialization time, and lands
 *     after the link latency,
 *   - returns the credit one link latency after it leaves the
 *     downstream buffer (ejection at an endpoint, or winning the next
 *     hop's arbitration at a switch).
 *
 * A transmitter that has flits queued but no credits stalls (counted);
 * nothing is ever dropped. Because a held credit is a held buffer
 * slot, a congested downstream link backpressures through shared
 * upstream links — the head-of-line coupling that makes a single
 * degraded link hurt every flow behind it, which is exactly what the
 * topology-aware dispatch ablation measures.
 *
 * Topologies: star (every endpoint hangs off one central switch),
 * 2-D mesh / torus of combined endpoint+router cells with
 * dimension-order (XY) routing, and a two-level fat-tree (endpoint ->
 * leaf -> spine) whose spine choice is a deterministic hash of the
 * leaf pair. All routing is computed once per (src, dst) pair and
 * cached, so routes — and therefore results — are a pure function of
 * the configuration.
 *
 * Determinism: all state lives behind one EventQueue; ties resolve in
 * FIFO schedule order and the round-robin cursors advance only inside
 * events, so a run is bit-reproducible for a fixed config regardless
 * of wall-clock interleaving outside the queue.
 */

#ifndef SN40L_SIM_NETWORK_H
#define SN40L_SIM_NETWORK_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/ticks.h"

namespace sn40l::sim {

enum class Topology {
    Star,    ///< endpoints <-> one central switch
    Mesh2D,  ///< grid of endpoint+router cells, XY routing
    Torus2D, ///< mesh with wraparound links, shortest-direction XY
    FatTree, ///< endpoints -> leaf switches -> spine switches
};

const char *topologyName(Topology topology);
Topology topologyFromName(const std::string &name);

struct NetworkConfig
{
    Topology topology = Topology::Star;

    /** Terminal nodes (message sources/sinks), ids 0..endpoints-1. */
    int endpoints = 1;

    /** Per-link bandwidth; each flit occupies its link for
     *  chunkBytes / linkBytesPerSec (>= 1 tick). */
    double linkBytesPerSec = 25e9;

    /** Per-hop propagation latency, and the credit-return delay. */
    Tick linkLatency = fromUs(2.0);

    /** Downstream input-buffer depth per link == its credit count. */
    int bufferFlits = 64;

    /** Serialization quantum: messages split into ceil(bytes/flit)
     *  flits, capped by maxFlitsPerMessage (large payloads chunk
     *  coarser so a multi-GB DMA does not become millions of
     *  events). */
    double flitBytes = 4096.0;
    int maxFlitsPerMessage = 256;

    /** Mesh/torus width; 0 derives a near-square grid. */
    int meshCols = 0;

    /** Fat-tree shape: endpoints per leaf switch, spine count. */
    int fatTreeRadix = 4;
    int fatTreeSpines = 2;
};

/** FatalError on a non-positive or contradictory configuration. */
void validateNetworkConfig(const NetworkConfig &cfg);

class Network
{
  public:
    using Callback = std::function<void()>;

    Network(EventQueue &eq, const NetworkConfig &cfg);

    /**
     * Send @p bytes from endpoint @p src to endpoint @p dst;
     * @p on_delivered fires (inside the event that ejects the last
     * flit) when the whole message has landed. src == dst delivers at
     * the current tick without touching any link.
     */
    void send(int src, int dst, double bytes, Callback on_delivered);

    /** Links along the cached route src -> dst (size == hop count). */
    const std::vector<int> &route(int src, int dst);

    /**
     * Congestion estimate of the route src -> dst: per link, the
     * queued flits (plus 1 mid-serialization) scaled by the link's
     * serialization stretch factor, plus the stretch itself — so a
     * degraded link advertises its slowness even when idle. Reading
     * it never mutates state visible to the simulation, so a
     * dispatch policy may poll it between events.
     */
    double pathCongestion(int src, int dst);

    /**
     * Stretch the serialization time of every link adjacent to
     * endpoint @p endpoint by @p factor >= 1 (1.0 heals). On mesh /
     * torus the endpoint is its router, so through-traffic crossing
     * the cell degrades too — a degraded NIC hurts its neighbourhood.
     */
    void setEndpointLinkFactor(int endpoint, double factor);

    // ---- observability -------------------------------------------

    int endpointCount() const { return cfg_.endpoints; }
    std::int64_t messagesSent() const { return messagesSent_; }
    std::int64_t messagesDelivered() const { return messagesDelivered_; }
    std::int64_t messagesInFlight() const { return inFlight_; }
    /** Flits ejected at their destination endpoint. */
    std::int64_t flitsDelivered() const { return flitsDelivered_; }
    /** Transmit attempts that found flits queued but zero credits. */
    std::int64_t creditStalls() const { return creditStalls_; }

    int linkCount() const { return static_cast<int>(links_.size()); }
    int linkFrom(int link) const;
    int linkTo(int link) const;
    /** Cumulative ticks the link spent serializing flits. */
    Tick linkBusyTicks(int link) const;
    std::int64_t linkFlits(int link) const;
    /** "ep3" for an endpoint, "sw1" for an internal switch. */
    std::string nodeLabel(int node) const;

  private:
    struct Entry
    {
        int msg;
        int hop; ///< index into the message's route
    };

    struct Link
    {
        int from;
        int to;
        double rateFactor = 1.0; ///< >= 1 stretches serialization
        Tick freeAt = 0;
        int credits;
        bool armed = false; ///< a pump event is already scheduled
        int rr = 0;         ///< round-robin cursor over input ports
        int queued = 0;     ///< flits across all input ports
        std::vector<int> upstream;        ///< port -> feeding link (-1 local)
        std::vector<std::deque<Entry>> q; ///< per-port FIFO
        // stats
        std::int64_t flits = 0;
        Tick busyTicks = 0;
    };

    struct Message
    {
        const std::vector<int> *path = nullptr;
        double chunkBytes = 0.0;
        int flits = 0;
        int delivered = 0;
        Callback onDelivered;
    };

    int addLink(int from, int to);
    void buildStar();
    void buildGrid(bool wrap);
    void buildFatTree();
    std::vector<int> computeRoute(int src, int dst) const;
    std::vector<int> gridRoute(int src, int dst, bool wrap) const;
    void pushFlit(int link, int upstream_link, int msg, int hop);
    void pump(int link);
    void arm(int link, Tick when);
    void returnCredit(int link);
    void arriveFlit(int link, int msg, int hop);
    int allocMessage();
    void freeMessage(int msg);

    EventQueue &eq_;
    NetworkConfig cfg_;
    int numNodes_ = 0;    ///< endpoints + switches
    int meshCols_ = 0;    ///< resolved grid width (mesh/torus)
    int meshRows_ = 0;
    std::vector<Link> links_;
    std::map<std::pair<int, int>, int> linkIndex_; ///< (from,to) -> id
    std::map<std::pair<int, int>, std::vector<int>> routes_;
    std::vector<Message> messages_; ///< slab, recycled via freeIds_
    std::vector<int> freeIds_;
    std::int64_t messagesSent_ = 0;
    std::int64_t messagesDelivered_ = 0;
    std::int64_t inFlight_ = 0;
    std::int64_t flitsDelivered_ = 0;
    std::int64_t creditStalls_ = 0;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_NETWORK_H
