/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 seeding a
 * xoshiro256** core). Every stochastic model component owns its own
 * Rng so simulations are reproducible regardless of call interleaving.
 */

#ifndef SN40L_SIM_RNG_H
#define SN40L_SIM_RNG_H

#include <cstdint>

namespace sn40l::sim {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        // SplitMix64 expansion of the seed into xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniformDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sn40l::sim

#endif // SN40L_SIM_RNG_H
