/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 seeding a
 * xoshiro256** core). Every stochastic model component owns its own
 * Rng so simulations are reproducible regardless of call interleaving.
 */

#ifndef SN40L_SIM_RNG_H
#define SN40L_SIM_RNG_H

#include <cmath>
#include <cstdint>

namespace sn40l::sim {

/**
 * SplitMix64 finalizer: a cheap, high-quality 64-bit mixer for
 * decorrelating derived seeds (per-tenant, per-node) and hashing ids
 * onto rings. Shared here so every component mixes identically.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        // SplitMix64 expansion of the seed into xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    uniformInt(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniformDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Exponential with the given mean — inter-arrival gaps and think
     * times. Consumes exactly one uniform draw.
     */
    double
    exponential(double mean)
    {
        return -std::log(1.0 - uniformDouble()) * mean;
    }

    /**
     * Standard normal via Box-Muller. Each pair of uniform draws
     * yields two variates; the spare is cached, so draw parity is part
     * of the generator's state (deterministic, but interleaving two
     * consumers on one Rng changes both streams — give each component
     * its own Rng, as everywhere else in this codebase).
     */
    double
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = uniformDouble();
        double u2 = uniformDouble();
        // Avoid log(0): uniformDouble() < 1, so 1 - u1 > 0.
        double r = std::sqrt(-2.0 * std::log(1.0 - u1));
        constexpr double kTwoPi = 6.283185307179586476925286766559;
        spare_ = r * std::sin(kTwoPi * u2);
        haveSpare_ = true;
        return r * std::cos(kTwoPi * u2);
    }

    /** Lognormal: exp(mu + sigma * N(0,1)) — request-length skew. */
    double
    lognormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * gaussian());
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_RNG_H
