#include "sim/stats.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::sim {

namespace {

/**
 * Fixed seed for every reservoir: sub-sampling must be reproducible
 * run to run, and independent of how many distributions a simulation
 * happens to construct.
 */
constexpr std::uint64_t kReservoirSeed = 0x5eed0fD157ULL;

} // namespace

Distribution::Distribution(std::string name, std::size_t max_exact_samples)
    : name_(std::move(name)), maxExact_(max_exact_samples),
      reservoirRng_(kReservoirSeed)
{
    if (maxExact_ == 0)
        fatal("Distribution " + name_ +
              ": max_exact_samples must be positive");
}

void
Distribution::record(double sample)
{
    if (count_ < maxExact_) {
        samples_.push_back(sample);
        sortedValid_ = false;
    } else {
        // Algorithm R: the n-th sample replaces a uniformly random
        // reservoir slot with probability maxExact_/n, keeping the
        // buffer a uniform sample of everything recorded so far.
        std::uint64_t j = reservoirRng_.uniformInt(count_ + 1);
        if (j < maxExact_) {
            samples_[static_cast<std::size_t>(j)] = sample;
            sortedValid_ = false;
        }
    }
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
}

double
Distribution::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Distribution::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Distribution::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
Distribution::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        fatal("Distribution " + name_ + ": quantile " + std::to_string(q) +
              " outside [0, 1]");
    if (count_ == 0)
        return 0.0;
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
    if (q <= 0.0)
        return min();
    if (q >= 1.0)
        return max();
    double rank = q * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    double value = lo + 1 >= sorted_.size()
        ? sorted_.back()
        : sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
    // In reservoir mode the sample can miss the true extremes; the
    // exact running bounds are always authoritative.
    return std::clamp(value, min(), max());
}

void
Distribution::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    reservoirRng_ = Rng(kReservoirSeed);
}

void
StatSet::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatSet::max(const std::string &name, double value)
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second < value)
        values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : values_) {
        if (!owner_.empty())
            os << owner_ << ".";
        os << kv.first << " " << kv.second << "\n";
    }
}

} // namespace sn40l::sim
