#include "sim/stats.h"

#include <algorithm>

#include "sim/log.h"

namespace sn40l::sim {

namespace {

/**
 * Fixed seed for every reservoir: sub-sampling must be reproducible
 * run to run, and independent of how many distributions a simulation
 * happens to construct.
 */
constexpr std::uint64_t kReservoirSeed = 0x5eed0fD157ULL;

} // namespace

Distribution::Distribution(std::string name, std::size_t max_exact_samples)
    : name_(std::move(name)), maxExact_(max_exact_samples),
      reservoirRng_(kReservoirSeed)
{
    if (maxExact_ == 0)
        fatal("Distribution " + name_ +
              ": max_exact_samples must be positive");
}

void
Distribution::record(double sample)
{
    if (count_ < maxExact_) {
        samples_.push_back(sample);
        sortedValid_ = false;
    } else {
        // Algorithm R: the n-th sample replaces a uniformly random
        // reservoir slot with probability maxExact_/n, keeping the
        // buffer a uniform sample of everything recorded so far.
        std::uint64_t j = reservoirRng_.uniformInt(count_ + 1);
        if (j < maxExact_) {
            samples_[static_cast<std::size_t>(j)] = sample;
            sortedValid_ = false;
        }
    }
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    sum_ += sample;
}

void
Distribution::merge(const Distribution &other)
{
    if (maxExact_ != other.maxExact_)
        fatal("Distribution " + name_ + ": merging reservoir capacity " +
              std::to_string(maxExact_) + " with incompatible capacity " +
              std::to_string(other.maxExact_));
    if (other.count_ == 0)
        return;

    if (count_ + other.count_ <= maxExact_) {
        // Both sides still hold every sample verbatim: concatenation
        // is exact and stays exact.
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
    } else {
        // At least one side overflows the exact threshold: build a
        // proportional uniform subsample of the two buffers. Each
        // buffer is itself a uniform sample of its stream, so drawing
        // round(k * n_i / n) elements without replacement from buffer
        // i keeps every original sample's inclusion probability at
        // ~k/n — a valid (stratified) uniform reservoir of the merged
        // stream. Tail fidelity beyond rank resolution 1/k is lost;
        // min/max/mean/count below stay exact regardless.
        double total = static_cast<double>(count_ + other.count_);
        std::size_t want_mine = static_cast<std::size_t>(
            static_cast<double>(maxExact_) *
                (static_cast<double>(count_) / total) +
            0.5);
        want_mine = std::min(want_mine, samples_.size());
        std::size_t want_theirs =
            std::min(maxExact_ - want_mine, other.samples_.size());

        auto subsample = [this](std::vector<double> buf, std::size_t k) {
            // Partial Fisher-Yates: the first k slots become a uniform
            // k-subset, in deterministic reservoir-Rng order.
            for (std::size_t i = 0; i < k; ++i) {
                std::size_t j = i + static_cast<std::size_t>(
                    reservoirRng_.uniformInt(buf.size() - i));
                std::swap(buf[i], buf[j]);
            }
            buf.resize(k);
            return buf;
        };
        std::vector<double> merged = subsample(samples_, want_mine);
        std::vector<double> theirs =
            subsample(other.samples_, want_theirs);
        merged.insert(merged.end(), theirs.begin(), theirs.end());
        samples_ = std::move(merged);
    }
    sortedValid_ = false;

    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Distribution::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Distribution::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Distribution::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
Distribution::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        fatal("Distribution " + name_ + ": quantile " + std::to_string(q) +
              " outside [0, 1]");
    if (count_ == 0)
        return 0.0;
    if (!sortedValid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
    if (q <= 0.0)
        return min();
    if (q >= 1.0)
        return max();
    double rank = q * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    double value = lo + 1 >= sorted_.size()
        ? sorted_.back()
        : sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
    // In reservoir mode the sample can miss the true extremes; the
    // exact running bounds are always authoritative.
    return std::clamp(value, min(), max());
}

void
Distribution::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    reservoirRng_ = Rng(kReservoirSeed);
}

void
StatSet::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatSet::max(const std::string &name, double value)
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second < value)
        values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : values_) {
        if (!owner_.empty())
            os << owner_ << ".";
        os << kv.first << " " << kv.second << "\n";
    }
}

} // namespace sn40l::sim
