#include "sim/stats.h"

#include <algorithm>

namespace sn40l::sim {

void
Distribution::record(double sample)
{
    samples_.push_back(sample);
    sorted_.clear();
    sum_ += sample;
}

double
Distribution::mean() const
{
    return samples_.empty()
        ? 0.0
        : sum_ / static_cast<double>(samples_.size());
}

double
Distribution::min() const
{
    return samples_.empty()
        ? 0.0
        : *std::min_element(samples_.begin(), samples_.end());
}

double
Distribution::max() const
{
    return samples_.empty()
        ? 0.0
        : *std::max_element(samples_.begin(), samples_.end());
}

double
Distribution::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    if (sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
    }
    if (q <= 0.0)
        return sorted_.front();
    if (q >= 1.0)
        return sorted_.back();
    double rank = q * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[lo] + frac * (sorted_[lo + 1] - sorted_[lo]);
}

void
Distribution::clear()
{
    samples_.clear();
    sorted_.clear();
    sum_ = 0.0;
}

void
StatSet::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatSet::max(const std::string &name, double value)
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second < value)
        values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : values_) {
        if (!owner_.empty())
            os << owner_ << ".";
        os << kv.first << " " << kv.second << "\n";
    }
}

} // namespace sn40l::sim
