#include "sim/stats.h"

#include <algorithm>

namespace sn40l::sim {

void
StatSet::inc(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

void
StatSet::max(const std::string &name, double value)
{
    auto it = values_.find(name);
    if (it == values_.end() || it->second < value)
        values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::vector<std::string>
StatSet::names() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &kv : values_) {
        if (!owner_.empty())
            os << owner_ << ".";
        os << kv.first << " " << kv.second << "\n";
    }
}

} // namespace sn40l::sim
