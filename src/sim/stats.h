/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatSet is a flat registry of named doubles owned by a model
 * component. Components expose their StatSet so tests and benches can
 * assert on counters (bytes moved, conflicts, hits) without bespoke
 * accessors for every quantity.
 */

#ifndef SN40L_SIM_STATS_H
#define SN40L_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sn40l::sim {

/**
 * A recorder for per-event samples (latencies, queue depths, batch
 * sizes) that answers order statistics after the fact. Samples are
 * kept verbatim; quantile() sorts lazily, so recording stays O(1).
 */
class Distribution
{
  public:
    explicit Distribution(std::string name = "") : name_(std::move(name)) {}

    void record(double sample);

    std::size_t count() const { return samples_.size(); }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;

    /**
     * The @p q quantile (q in [0, 1]) by linear interpolation between
     * closest ranks; 0.0 when no samples were recorded.
     */
    double quantile(double q) const;

    const std::string &name() const { return name_; }
    const std::vector<double> &samples() const { return samples_; }

    void clear();

  private:
    std::string name_;
    std::vector<double> samples_;
    mutable std::vector<double> sorted_; ///< lazy cache for quantile()
    double sum_ = 0.0;
};

class StatSet
{
  public:
    explicit StatSet(std::string owner = "") : owner_(std::move(owner)) {}

    /** Add @p delta (default 1) to the named counter, creating it at 0. */
    void inc(const std::string &name, double delta = 1.0);

    /** Set the named stat to an absolute value. */
    void set(const std::string &name, double value);

    /** Track a running maximum under @p name. */
    void max(const std::string &name, double value);

    /** @return the stat value, or 0.0 if never touched. */
    double get(const std::string &name) const;

    /** @return true if the stat has ever been touched. */
    bool has(const std::string &name) const;

    const std::string &owner() const { return owner_; }

    /** Stable (sorted) list of stat names. */
    std::vector<std::string> names() const;

    /** Print "owner.name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    void clear() { values_.clear(); }

  private:
    std::string owner_;
    std::map<std::string, double> values_;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_STATS_H
