/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatSet is a flat registry of named doubles owned by a model
 * component. Components expose their StatSet so tests and benches can
 * assert on counters (bytes moved, conflicts, hits) without bespoke
 * accessors for every quantity.
 */

#ifndef SN40L_SIM_STATS_H
#define SN40L_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace sn40l::sim {

/**
 * A recorder for per-event samples (latencies, queue depths, batch
 * sizes) that answers order statistics after the fact.
 *
 * Storage is two-mode so million-sample runs stay memory-bounded:
 *
 *  - Exact (up to @p max_exact_samples, default 64Ki): every sample is
 *    kept verbatim and quantile() interpolates between closest ranks,
 *    exactly as a full sort would. Runs below the threshold are
 *    bit-identical to the historical all-samples behaviour.
 *
 *  - Reservoir (beyond the threshold): the sample buffer becomes a
 *    fixed-size uniform reservoir (Vitter's Algorithm R, driven by a
 *    private deterministic Rng) and quantile() answers from it, while
 *    count/sum/mean/min/max stay exact via running accumulators.
 *    Memory is O(max_exact_samples) regardless of how many samples
 *    are recorded.
 *
 * Recording is O(1); min()/max()/mean() are O(1); quantile() sorts
 * lazily and caches the sorted view until the next record().
 */
class Distribution
{
  public:
    /** Sample count beyond which storage switches to the reservoir. */
    static constexpr std::size_t kDefaultMaxExactSamples = 65536;

    explicit Distribution(std::string name = "",
                          std::size_t max_exact_samples =
                              kDefaultMaxExactSamples);

    void record(double sample);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const; ///< exact running minimum, O(1)
    double max() const; ///< exact running maximum, O(1)

    /**
     * The @p q quantile by linear interpolation between closest ranks;
     * 0.0 when no samples were recorded. In reservoir mode the result
     * is an estimate from the uniform sample (clamped to the exact
     * [min, max]). @p q outside [0, 1] is a caller bug: FatalError.
     */
    double quantile(double q) const;

    /**
     * Fold @p other into this distribution, as if every sample ever
     * recorded into @p other had been recorded here too.
     *
     * count/sum/mean/min/max are always exact after a merge. The
     * sample buffer is exact — bit-identical to single-recorder
     * quantiles — while the combined count fits max_exact_samples.
     * Beyond that the merged buffer is a proportional uniform
     * subsample of the two buffers (each element keeps inclusion
     * probability ~k/n), so quantiles carry the usual reservoir rank
     * error of O(1/sqrt(k)) — about 0.4% of rank at the default 64Ki
     * capacity; the regression test in test_stats_rng.cc locks <= 1%
     * quantile error on merged lognormals. The subsampling draws come
     * from this distribution's private reservoir Rng, so merges are
     * deterministic and order-dependent (merge in a fixed order for
     * reproducible results).
     *
     * Merging distributions with different max_exact_samples is a
     * caller bug (their reservoirs are incomparable subsamples):
     * FatalError.
     */
    void merge(const Distribution &other);

    /** @return true while every sample is still stored verbatim. */
    bool exact() const { return count_ <= maxExact_; }

    const std::string &name() const { return name_; }

    /**
     * The stored sample buffer: all samples in exact mode, the
     * uniform reservoir afterwards. Use count() — not samples().size()
     * — for the number of recorded samples.
     */
    const std::vector<double> &samples() const { return samples_; }

    void clear();

  private:
    std::string name_;
    std::size_t maxExact_;
    std::vector<double> samples_;
    mutable std::vector<double> sorted_; ///< lazy cache for quantile()
    mutable bool sortedValid_ = false;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    Rng reservoirRng_;
};

class StatSet
{
  public:
    explicit StatSet(std::string owner = "") : owner_(std::move(owner)) {}

    /** Add @p delta (default 1) to the named counter, creating it at 0. */
    void inc(const std::string &name, double delta = 1.0);

    /** Set the named stat to an absolute value. */
    void set(const std::string &name, double value);

    /** Track a running maximum under @p name. */
    void max(const std::string &name, double value);

    /** @return the stat value, or 0.0 if never touched. */
    double get(const std::string &name) const;

    /** @return true if the stat has ever been touched. */
    bool has(const std::string &name) const;

    /**
     * Stable reference to the named stat (created at 0). Hot-path
     * components resolve their counters once at construction and
     * accumulate through the reference, keeping the map lookup off the
     * per-event path. References stay valid for the StatSet's lifetime
     * (clear() empties the map, so don't mix clear() with cached
     * references).
     */
    double &counter(const std::string &name) { return values_[name]; }

    const std::string &owner() const { return owner_; }

    /** Stable (sorted) list of stat names. */
    std::vector<std::string> names() const;

    /** Print "owner.name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    void clear() { values_.clear(); }

  private:
    std::string owner_;
    std::map<std::string, double> values_;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_STATS_H
