/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * A StatSet is a flat registry of named doubles owned by a model
 * component. Components expose their StatSet so tests and benches can
 * assert on counters (bytes moved, conflicts, hits) without bespoke
 * accessors for every quantity.
 */

#ifndef SN40L_SIM_STATS_H
#define SN40L_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace sn40l::sim {

class StatSet
{
  public:
    explicit StatSet(std::string owner = "") : owner_(std::move(owner)) {}

    /** Add @p delta (default 1) to the named counter, creating it at 0. */
    void inc(const std::string &name, double delta = 1.0);

    /** Set the named stat to an absolute value. */
    void set(const std::string &name, double value);

    /** Track a running maximum under @p name. */
    void max(const std::string &name, double value);

    /** @return the stat value, or 0.0 if never touched. */
    double get(const std::string &name) const;

    /** @return true if the stat has ever been touched. */
    bool has(const std::string &name) const;

    const std::string &owner() const { return owner_; }

    /** Stable (sorted) list of stat names. */
    std::vector<std::string> names() const;

    /** Print "owner.name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    void clear() { values_.clear(); }

  private:
    std::string owner_;
    std::map<std::string, double> values_;
};

} // namespace sn40l::sim

#endif // SN40L_SIM_STATS_H
