/**
 * @file
 * Simulation time base.
 *
 * One tick is one picosecond. Picoseconds give enough resolution to
 * express sub-nanosecond link and SRAM latencies while still covering
 * multi-hour simulated spans in a signed 64-bit integer.
 */

#ifndef SN40L_SIM_TICKS_H
#define SN40L_SIM_TICKS_H

#include <cstdint>
#include <limits>

namespace sn40l::sim {

using Tick = std::int64_t;

/** Ticks per SI time unit. */
constexpr Tick kTicksPerPs = 1;
constexpr Tick kTicksPerNs = 1000LL;
constexpr Tick kTicksPerUs = 1000LL * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000LL * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000LL * kTicksPerMs;

/** Sentinel for "never" / unbounded run limits. */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

constexpr Tick fromPs(double ps) { return static_cast<Tick>(ps); }
constexpr Tick fromNs(double ns) { return static_cast<Tick>(ns * kTicksPerNs); }
constexpr Tick fromUs(double us) { return static_cast<Tick>(us * kTicksPerUs); }
constexpr Tick fromMs(double ms) { return static_cast<Tick>(ms * kTicksPerMs); }
constexpr Tick fromSeconds(double s) { return static_cast<Tick>(s * kTicksPerSec); }

constexpr double toNs(Tick t) { return static_cast<double>(t) / kTicksPerNs; }
constexpr double toUs(Tick t) { return static_cast<double>(t) / kTicksPerUs; }
constexpr double toMs(Tick t) { return static_cast<double>(t) / kTicksPerMs; }
constexpr double toSeconds(Tick t) { return static_cast<double>(t) / kTicksPerSec; }

/**
 * Time taken to move @p bytes at @p bytes_per_sec, as a tick count.
 * Rounds up so a nonzero transfer never takes zero time.
 */
constexpr Tick
transferTicks(double bytes, double bytes_per_sec)
{
    if (bytes <= 0.0 || bytes_per_sec <= 0.0)
        return 0;
    double seconds = bytes / bytes_per_sec;
    Tick t = static_cast<Tick>(seconds * kTicksPerSec);
    return t > 0 ? t : 1;
}

} // namespace sn40l::sim

#endif // SN40L_SIM_TICKS_H
