/**
 * @file
 * Minimal streaming JSON writer shared by every emitter in the tree
 * (sn40l_run --json, bench perf harnesses, the cluster controller
 * log). Replaces the hand-rolled `out << "{\"key\": ..."` printers
 * that had drifted into three slightly different dialects.
 *
 * The writer is append-only and comma-managed: callers open objects
 * and arrays, emit key/value pairs, and close scopes; the writer
 * tracks whether a separator is due. Doubles are written with 17
 * significant digits so metrics round-trip bit-exactly. Pretty mode
 * indents two spaces per level (the BENCH_*.json house style);
 * compact mode emits one-line JSON for JSONL streams.
 */

#ifndef SN40L_UTIL_JSON_H
#define SN40L_UTIL_JSON_H

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sn40l::util {

class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, bool pretty = false)
        : os_(os), pretty_(pretty)
    {
        os_.precision(17);
    }

    JsonWriter &
    beginObject()
    {
        separate();
        os_ << '{';
        push();
        return *this;
    }

    JsonWriter &
    endObject()
    {
        pop();
        os_ << '}';
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        separate();
        os_ << '[';
        push();
        return *this;
    }

    JsonWriter &
    endArray()
    {
        pop();
        os_ << ']';
        return *this;
    }

    JsonWriter &
    key(const char *k)
    {
        separate();
        quote(k);
        os_ << ':';
        if (pretty_)
            os_ << ' ';
        keyPending_ = true;
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        separate();
        // JSON has no inf/nan literals; clamp to null like every
        // tolerant emitter does.
        if (std::isfinite(v))
            os_ << v;
        else
            os_ << "null";
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        separate();
        os_ << v;
        return *this;
    }

    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }

    JsonWriter &
    value(std::uint64_t v)
    {
        separate();
        os_ << v;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        separate();
        os_ << (v ? "true" : "false");
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        separate();
        quote(v.c_str());
        return *this;
    }

    JsonWriter &value(const char *v) { return value(std::string(v)); }

    /** key(k) + value(v), the common field spelling. */
    template <typename T>
    JsonWriter &
    field(const char *k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    void
    push()
    {
        first_.push_back(true);
        keyPending_ = false;
    }

    void
    pop()
    {
        first_.pop_back();
        keyPending_ = false;
        newlineIndent();
    }

    /** Emit the comma/newline due before the next element. */
    void
    separate()
    {
        if (keyPending_) {
            // Value completing a key: no separator.
            keyPending_ = false;
            return;
        }
        if (first_.empty())
            return;
        if (!first_.back())
            os_ << ',';
        first_.back() = false;
        newlineIndent(1);
    }

    void
    newlineIndent(std::size_t extra = 0)
    {
        if (!pretty_)
            return;
        os_ << '\n';
        std::size_t depth = first_.size() + extra;
        for (std::size_t i = 1; i < depth; ++i)
            os_ << "  ";
    }

    void
    quote(const char *s)
    {
        os_ << '"';
        for (const char *p = s; *p; ++p) {
            switch (*p) {
              case '"': os_ << "\\\""; break;
              case '\\': os_ << "\\\\"; break;
              case '\n': os_ << "\\n"; break;
              case '\t': os_ << "\\t"; break;
              default: os_ << *p; break;
            }
        }
        os_ << '"';
    }

    std::ostream &os_;
    bool pretty_;
    std::vector<bool> first_;
    bool keyPending_ = false;
};

} // namespace sn40l::util

#endif // SN40L_UTIL_JSON_H
