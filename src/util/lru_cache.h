/**
 * @file
 * Small intrusive-list LRU cache used to memoize deterministic but
 * expensive computations (cost-model pricing of a dataflow-graph
 * shape). Lookup and insert are O(1) amortized; capacity is fixed and
 * the least-recently-used entry is evicted on overflow.
 *
 * Not thread-safe by itself — wrap with a mutex where callers share an
 * instance across threads (see coe::CostModelCache).
 */

#ifndef SN40L_UTIL_LRU_CACHE_H
#define SN40L_UTIL_LRU_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace sn40l::util {

template <typename Key, typename Value>
class LruCache
{
  public:
    explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

    /**
     * @return pointer to the cached value (refreshed to
     * most-recently-used), or nullptr on miss. The pointer stays valid
     * until the next insert() or clear().
     */
    Value *
    find(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Insert (or overwrite) @p key, evicting the LRU entry if full. */
    void
    insert(Key key, Value value)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        if (order_.size() >= capacity_ && capacity_ > 0) {
            index_.erase(order_.back().first);
            order_.pop_back();
        }
        order_.emplace_front(std::move(key), std::move(value));
        index_[order_.front().first] = order_.begin();
    }

    std::size_t size() const { return order_.size(); }
    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void
    clear()
    {
        order_.clear();
        index_.clear();
        hits_ = 0;
        misses_ = 0;
    }

  private:
    std::size_t capacity_;
    std::list<std::pair<Key, Value>> order_; ///< MRU at front
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
        index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace sn40l::util

#endif // SN40L_UTIL_LRU_CACHE_H
