#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/units.h"

namespace sn40l::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
    separators_.push_back(false);
}

void
Table::addSeparator()
{
    rows_.emplace_back();
    separators_.push_back(true);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << cell << " ";
        }
        os << "|\n";
    };

    auto print_sep = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c)
            os << "|" << std::string(widths[c] + 2, '-');
        os << "|\n";
    };

    print_row(header_);
    print_sep();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (separators_[r])
            print_sep();
        else
            print_row(rows_[r]);
    }
}

std::string
formatDouble(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return os.str();
}

std::string
formatBytes(double bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
    int u = 0;
    double v = bytes;
    while (std::abs(v) >= 1000.0 && u < 5) {
        v /= 1000.0;
        ++u;
    }
    return formatDouble(v, 2) + " " + units[u];
}

std::string
formatBandwidth(double bytes_per_sec)
{
    return formatBytes(bytes_per_sec) + "/s";
}

std::string
formatSeconds(double seconds)
{
    double v = seconds;
    if (std::abs(v) >= 1.0)
        return formatDouble(v, 3) + " s";
    if (std::abs(v) >= 1e-3)
        return formatDouble(v * 1e3, 3) + " ms";
    if (std::abs(v) >= 1e-6)
        return formatDouble(v * 1e6, 3) + " us";
    return formatDouble(v * 1e9, 1) + " ns";
}

} // namespace sn40l::util
