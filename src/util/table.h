/**
 * @file
 * Minimal aligned-column table printer used by the benchmark harnesses
 * to emit paper-style rows.
 */

#ifndef SN40L_UTIL_TABLE_H
#define SN40L_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

#include "util/units.h" // formatting helpers used alongside tables

namespace sn40l::util {

class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; it may have fewer cells than the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    std::size_t rowCount() const { return rows_.size(); }

    /** Print with column alignment and a header separator. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<bool> separators_;
};

} // namespace sn40l::util

#endif // SN40L_UTIL_TABLE_H
