/**
 * @file
 * Byte, bandwidth, and time unit helpers shared across the simulator.
 *
 * Conventions: capacities are in bytes (std::int64_t), bandwidths in
 * bytes per second (double), compute rates in FLOP/s (double).
 */

#ifndef SN40L_UTIL_UNITS_H
#define SN40L_UTIL_UNITS_H

#include <cstdint>
#include <string>

namespace sn40l {

/** Binary (IEC) capacity units. */
constexpr std::int64_t KiB = 1024LL;
constexpr std::int64_t MiB = 1024LL * KiB;
constexpr std::int64_t GiB = 1024LL * MiB;
constexpr std::int64_t TiB = 1024LL * GiB;

/** Decimal (SI) units, used for bandwidths and marketing capacities. */
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;
constexpr double TB = 1e12;

/** Bandwidth helpers: bytes per second. */
constexpr double GBps(double x) { return x * 1e9; }
constexpr double TBps(double x) { return x * 1e12; }

/** Compute-rate helpers: FLOP per second. */
constexpr double GFLOPS(double x) { return x * 1e9; }
constexpr double TFLOPS(double x) { return x * 1e12; }

namespace util {

/** Render a byte count as a human-readable string, e.g. "13.48 GB". */
std::string formatBytes(double bytes);

/** Render a bytes-per-second rate, e.g. "1.80 TB/s". */
std::string formatBandwidth(double bytes_per_sec);

/** Render a second count with an adaptive unit, e.g. "12.9 ms". */
std::string formatSeconds(double seconds);

/** Render a double with @p digits fractional digits. */
std::string formatDouble(double value, int digits = 2);

} // namespace util
} // namespace sn40l

#endif // SN40L_UTIL_UNITS_H
