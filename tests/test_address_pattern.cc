/** @file Tests for affine address patterns and AGCU coalescing. */

#include <gtest/gtest.h>

#include <algorithm>

#include "arch/address_pattern.h"
#include "arch/agcu.h"
#include "arch/chip_config.h"
#include "sim/log.h"

using namespace sn40l;
using arch::AddressPattern;

TEST(AddressPattern, RowMajorIsContiguous)
{
    auto pat = AddressPattern::rowMajor(0, 4, 8, 2);
    EXPECT_EQ(pat.count(), 32);
    auto addrs = pat.generate();
    for (std::size_t i = 0; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], static_cast<std::int64_t>(i) * 2);
}

TEST(AddressPattern, ColMajorIsStrided)
{
    auto pat = AddressPattern::colMajor(0, 4, 8, 2);
    EXPECT_EQ(pat.count(), 32);
    auto addrs = pat.generate(4);
    // First column: rows 0..3 of an 8-wide, 2-byte-element tile.
    EXPECT_EQ(addrs, (std::vector<std::int64_t>{0, 16, 32, 48}));
}

TEST(AddressPattern, TransposedPatternsCoverSameAddresses)
{
    auto row = AddressPattern::rowMajor(128, 16, 32, 2).generate();
    auto col = AddressPattern::colMajor(128, 16, 32, 2).generate();
    std::sort(row.begin(), row.end());
    std::sort(col.begin(), col.end());
    EXPECT_EQ(row, col);
}

TEST(AddressPattern, BaseOffsetAndBoundsChecks)
{
    auto pat = AddressPattern::rowMajor(1000, 2, 2, 4);
    EXPECT_EQ(pat.addressAt(0), 1000);
    EXPECT_EQ(pat.addressAt(3), 1012);
    EXPECT_THROW(pat.addressAt(4), sim::SimPanic);
    EXPECT_THROW(pat.addressAt(-1), sim::SimPanic);
}

TEST(AddressPattern, RejectsNonPositiveExtent)
{
    EXPECT_THROW(AddressPattern(0, {{0, 4}}), sim::SimPanic);
}

TEST(Agcu, CoalescesContiguousAccesses)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    arch::Agcu agcu(cfg, "agcu");
    // 64 contiguous 4-byte accesses in 64-byte lines -> 4 requests.
    auto pat = AddressPattern::rowMajor(0, 1, 64, 4);
    EXPECT_EQ(agcu.coalesceRequests(pat, 64, 4), 4);
    EXPECT_DOUBLE_EQ(agcu.burstEfficiency(pat, 64, 4), 1.0);
}

TEST(Agcu, StridedAccessWastesBandwidth)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    arch::Agcu agcu(cfg, "agcu");
    // 16 accesses of 4 bytes, each 256 bytes apart: one line each.
    AddressPattern pat(0, {{16, 256}});
    EXPECT_EQ(agcu.coalesceRequests(pat, 64, 4), 16);
    EXPECT_DOUBLE_EQ(agcu.burstEfficiency(pat, 64, 4), 4.0 / 64.0);
}

TEST(Agcu, LaunchOverheads)
{
    arch::ChipConfig cfg = arch::ChipConfig::sn40l();
    arch::Agcu agcu(cfg, "agcu");
    EXPECT_GT(agcu.launchOverhead(arch::Orchestration::Software),
              agcu.launchOverhead(arch::Orchestration::Hardware));
    EXPECT_EQ(agcu.launchOverhead(arch::Orchestration::Software),
              cfg.swLaunchOverhead);
}

TEST(Agcu, AllReduceTrafficFactor)
{
    EXPECT_DOUBLE_EQ(arch::Agcu::allReduceTrafficFactor(1), 0.0);
    EXPECT_DOUBLE_EQ(arch::Agcu::allReduceTrafficFactor(2), 1.0);
    EXPECT_DOUBLE_EQ(arch::Agcu::allReduceTrafficFactor(8), 1.75);
}
