/**
 * @file
 * Tests for the free-list allocator (CoE runtime HBM region) and the
 * static lifetime-reuse planner with DDR spilling (Section V-A).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/free_list_allocator.h"
#include "mem/static_allocator.h"
#include "sim/log.h"
#include "sim/rng.h"

using namespace sn40l;
using mem::FreeListAllocator;
using mem::MemoryPlan;
using mem::Symbol;
using mem::Tier;

TEST(FreeListAllocator, BasicAllocFree)
{
    FreeListAllocator alloc(1024, 1);
    auto a = alloc.allocate(256);
    auto b = alloc.allocate(256);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(alloc.usedBytes(), 512);
    alloc.free(*a);
    EXPECT_EQ(alloc.usedBytes(), 256);
    alloc.free(*b);
    EXPECT_EQ(alloc.usedBytes(), 0);
    EXPECT_EQ(alloc.largestFreeBlock(), 1024);
}

TEST(FreeListAllocator, AlignmentRoundsUp)
{
    FreeListAllocator alloc(4096, 256);
    auto a = alloc.allocate(1);
    ASSERT_TRUE(a);
    EXPECT_EQ(alloc.usedBytes(), 256);
    auto b = alloc.allocate(257);
    ASSERT_TRUE(b);
    EXPECT_EQ(alloc.usedBytes(), 256 + 512);
}

TEST(FreeListAllocator, ExternalFragmentationIsModeled)
{
    FreeListAllocator alloc(1000, 1);
    auto a = alloc.allocate(400);
    auto b = alloc.allocate(200);
    auto c = alloc.allocate(400);
    ASSERT_TRUE(a && b && c);
    alloc.free(*a);
    alloc.free(*c);
    // 800 bytes free but the largest hole is 400: a 500-byte request
    // must fail.
    EXPECT_EQ(alloc.freeBytes(), 800);
    EXPECT_EQ(alloc.largestFreeBlock(), 400);
    EXPECT_FALSE(alloc.allocate(500));
    EXPECT_GT(alloc.fragmentation(), 0.0);
}

TEST(FreeListAllocator, CoalescesNeighbours)
{
    FreeListAllocator alloc(1000, 1);
    auto a = alloc.allocate(400);
    auto b = alloc.allocate(200);
    auto c = alloc.allocate(400);
    ASSERT_TRUE(a && b && c);
    alloc.free(*a);
    alloc.free(*c);
    alloc.free(*b); // coalesces with both neighbours
    EXPECT_EQ(alloc.freeBlocks(), 1u);
    EXPECT_TRUE(alloc.allocate(1000));
}

TEST(FreeListAllocator, DoubleFreePanics)
{
    FreeListAllocator alloc(1024, 1);
    auto a = alloc.allocate(64);
    ASSERT_TRUE(a);
    alloc.free(*a);
    EXPECT_THROW(alloc.free(*a), sim::SimPanic);
    EXPECT_THROW(alloc.free(999), sim::SimPanic);
}

TEST(FreeListAllocator, RandomizedInvariants)
{
    // Property test: used + free == capacity, allocations never
    // overlap, frees always succeed for live blocks.
    sim::Rng rng(123);
    FreeListAllocator alloc(1 << 20, 64);
    std::vector<std::pair<std::int64_t, std::int64_t>> live; // offset,size

    for (int iter = 0; iter < 2000; ++iter) {
        bool do_alloc = live.empty() || rng.uniformDouble() < 0.6;
        if (do_alloc) {
            std::int64_t size =
                static_cast<std::int64_t>(rng.uniformInt(8192) + 1);
            auto off = alloc.allocate(size);
            if (off) {
                for (const auto &blk : live) {
                    bool overlap = *off < blk.first + blk.second &&
                                   blk.first < *off + size;
                    ASSERT_FALSE(overlap) << "allocation overlap";
                }
                live.emplace_back(*off, size);
            }
        } else {
            std::size_t idx = rng.uniformInt(live.size());
            alloc.free(live[idx].first);
            live.erase(live.begin() + static_cast<long>(idx));
        }
        ASSERT_EQ(alloc.usedBytes() + alloc.freeBytes(), alloc.capacity());
    }
}

namespace {

/** Check no two HBM-resident symbols with overlapping lifetimes share
 *  address space. */
void
expectNoOverlap(const std::vector<Symbol> &syms, const MemoryPlan &plan)
{
    for (std::size_t i = 0; i < syms.size(); ++i) {
        if (plan.placements[i].tier != Tier::HBM)
            continue;
        for (std::size_t j = i + 1; j < syms.size(); ++j) {
            if (plan.placements[j].tier != Tier::HBM)
                continue;
            bool life_overlap = !(syms[i].lastUse < syms[j].firstUse ||
                                  syms[j].lastUse < syms[i].firstUse);
            if (!life_overlap)
                continue;
            std::int64_t ai = plan.placements[i].offset;
            std::int64_t bi = ai + syms[i].bytes;
            std::int64_t aj = plan.placements[j].offset;
            std::int64_t bj = aj + syms[j].bytes;
            ASSERT_TRUE(bi <= aj || bj <= ai)
                << syms[i].name << " overlaps " << syms[j].name;
        }
    }
}

} // namespace

TEST(StaticAllocator, ReusesAddressesAcrossDisjointLifetimes)
{
    // Two 600-byte symbols with disjoint lifetimes fit in 1000 bytes.
    std::vector<Symbol> syms = {
        {"a", 600, 0, 1, 10.0, false},
        {"b", 600, 2, 3, 10.0, false},
    };
    MemoryPlan plan = mem::planMemory(syms, 1000, 1 << 20);
    EXPECT_EQ(plan.spilledSymbols, 0);
    EXPECT_EQ(plan.hbmPeakBytes, 600);
    EXPECT_EQ(plan.placements[0].offset, plan.placements[1].offset);
    expectNoOverlap(syms, plan);
}

TEST(StaticAllocator, OverlappingLifetimesDoNotShare)
{
    std::vector<Symbol> syms = {
        {"a", 600, 0, 5, 10.0, false},
        {"b", 600, 2, 3, 10.0, false},
    };
    MemoryPlan plan = mem::planMemory(syms, 2000, 1 << 20);
    EXPECT_EQ(plan.hbmPeakBytes, 1200);
    expectNoOverlap(syms, plan);
}

TEST(StaticAllocator, SpillsLowestBandwidthSymbolsFirst)
{
    // HBM holds only 1000 bytes; the low-footprint activation spills,
    // the high-footprint weight stays (Section V-A priority).
    std::vector<Symbol> syms = {
        {"weight", 800, 0, 9, 1e9, true},
        {"activation", 800, 0, 9, 1e3, false},
    };
    MemoryPlan plan = mem::planMemory(syms, 1000, 1 << 20);
    EXPECT_EQ(plan.spilledSymbols, 1);
    EXPECT_EQ(plan.placements[0].tier, Tier::HBM);
    EXPECT_EQ(plan.placements[1].tier, Tier::DDR);
    EXPECT_DOUBLE_EQ(plan.spillTrafficBytes, 1e3);
}

TEST(StaticAllocator, FatalWhenNothingFits)
{
    std::vector<Symbol> syms = {{"huge", 4096, 0, 0, 1.0, false}};
    EXPECT_THROW(mem::planMemory(syms, 1024, 2048), sim::FatalError);
}

TEST(StaticAllocator, RandomizedLifetimePlacementIsSound)
{
    sim::Rng rng(77);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<Symbol> syms;
        int n = 30;
        for (int i = 0; i < n; ++i) {
            Symbol s;
            s.name = "s" + std::to_string(i);
            s.bytes = static_cast<std::int64_t>(rng.uniformInt(1000) + 1);
            s.firstUse = static_cast<int>(rng.uniformInt(20));
            s.lastUse = s.firstUse + static_cast<int>(rng.uniformInt(10));
            s.transferFootprint = rng.uniformDouble() * 1e6;
            syms.push_back(s);
        }
        MemoryPlan plan = mem::planMemory(syms, 8000, 1 << 20);
        expectNoOverlap(syms, plan);
        EXPECT_LE(plan.hbmPeakBytes, 8000);
        // Reuse never exceeds the no-reuse upper bound.
        EXPECT_LE(plan.hbmPeakBytes, plan.hbmBytesNoReuse);
    }
}
