/** @file Unit tests for bandwidth channels and the DMA engine. */

#include <gtest/gtest.h>

#include "mem/bandwidth_channel.h"
#include "mem/dma_engine.h"
#include "sim/log.h"

using namespace sn40l;
using sim::EventQueue;
using sim::Tick;

TEST(BandwidthChannel, TransferTimeMatchesBandwidth)
{
    EventQueue eq;
    mem::BandwidthChannel hbm(eq, "hbm", 1e12); // 1 TB/s

    Tick done_at = -1;
    hbm.transfer(1e9, [&]() { done_at = eq.now(); }); // 1 GB
    eq.run();
    // 1 GB at 1 TB/s = 1 ms.
    EXPECT_EQ(done_at, sim::fromMs(1.0));
    EXPECT_DOUBLE_EQ(hbm.stats().get("bytes"), 1e9);
}

TEST(BandwidthChannel, EfficiencyDeratesBandwidth)
{
    EventQueue eq;
    mem::BandwidthChannel hbm(eq, "hbm", 1e12, 0.5);
    EXPECT_DOUBLE_EQ(hbm.effectiveBandwidth(), 0.5e12);

    Tick done_at = -1;
    hbm.transfer(1e9, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_EQ(done_at, sim::fromMs(2.0));
}

TEST(BandwidthChannel, TransfersSerialize)
{
    EventQueue eq;
    mem::BandwidthChannel ch(eq, "ch", 1e9); // 1 GB/s

    std::vector<Tick> done;
    ch.transfer(1e6, [&]() { done.push_back(eq.now()); }); // 1 ms
    ch.transfer(2e6, [&]() { done.push_back(eq.now()); }); // +2 ms
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], sim::fromMs(1.0));
    EXPECT_EQ(done[1], sim::fromMs(3.0));
    EXPECT_GT(ch.stats().get("queue_ticks"), 0.0);
}

TEST(BandwidthChannel, LatencyAddsToCompletion)
{
    EventQueue eq;
    mem::BandwidthChannel ch(eq, "ch", 1e9, 1.0, sim::fromUs(5));
    Tick done_at = -1;
    ch.transfer(1e6, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_EQ(done_at, sim::fromMs(1.0) + sim::fromUs(5));
}

TEST(BandwidthChannel, RejectsBadConfig)
{
    EventQueue eq;
    EXPECT_THROW(mem::BandwidthChannel(eq, "x", -1.0), sim::FatalError);
    EXPECT_THROW(mem::BandwidthChannel(eq, "x", 1e9, 1.5), sim::FatalError);
    mem::BandwidthChannel ok(eq, "ok", 1e9);
    EXPECT_THROW(ok.setEfficiency(0.0), sim::FatalError);
}

TEST(BandwidthChannel, FireAndForgetTransferStillAccountsTime)
{
    EventQueue eq;
    mem::BandwidthChannel ch(eq, "ch", 1e9);
    ch.transfer(1e6, nullptr);
    EXPECT_EQ(ch.busyUntil(), sim::fromMs(1.0));
    Tick done_at = -1;
    ch.transfer(1e6, [&]() { done_at = eq.now(); });
    eq.run();
    EXPECT_EQ(done_at, sim::fromMs(2.0));
}

TEST(DmaEngine, CompletionGatedBySlowerSide)
{
    EventQueue eq;
    mem::BandwidthChannel ddr(eq, "ddr", 100e9);  // 100 GB/s
    mem::BandwidthChannel hbm(eq, "hbm", 1600e9); // 1.6 TB/s
    mem::DmaEngine dma(eq, "dma");

    Tick done_at = -1;
    dma.copy(ddr, hbm, 10e9, [&]() { done_at = eq.now(); }); // 10 GB
    eq.run();
    // Slower side: 10 GB at 100 GB/s = 100 ms.
    EXPECT_EQ(done_at, sim::fromMs(100.0));
    EXPECT_EQ(mem::DmaEngine::estimate(ddr, hbm, 10e9), sim::fromMs(100.0));
    EXPECT_DOUBLE_EQ(dma.stats().get("bytes"), 10e9);
}

TEST(DmaEngine, ConcurrentCopiesShareChannel)
{
    EventQueue eq;
    mem::BandwidthChannel ddr(eq, "ddr", 100e9);
    mem::BandwidthChannel hbm(eq, "hbm", 1600e9);
    mem::DmaEngine dma(eq, "dma");

    std::vector<Tick> done;
    dma.copy(ddr, hbm, 10e9, [&]() { done.push_back(eq.now()); });
    dma.copy(ddr, hbm, 10e9, [&]() { done.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // The second copy waits for DDR to free up.
    EXPECT_EQ(done[1], sim::fromMs(200.0));
}
