/**
 * @file
 * Tests for the multi-node CoE serving cluster: the 1-node
 * full-replication anchor against the single-node EventDriven
 * goldens, fixed-seed determinism (repeats and sweep -j N),
 * placement/dispatch policies, consistent-hash homing, drain/rejoin
 * with zero lost requests, heterogeneous nodes, the diurnal arrival
 * ramp, and the replicate-hot placement win on Zipf traffic.
 */

#include <gtest/gtest.h>

#include <set>

#include "coe/cluster.h"
#include "coe/sweep.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ClusterConfig
clusterConfig(int nodes)
{
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.node.mode = ServingMode::EventDriven;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = 400;
    cfg.node.routing = RoutingDistribution::Zipf;
    cfg.node.zipfS = 1.0;
    cfg.node.arrivalRatePerSec = 16.0 * nodes;
    cfg.node.seed = 11;
    return cfg;
}

void
expectStreamEq(const StreamMetrics &a, const StreamMetrics &b)
{
    EXPECT_DOUBLE_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_DOUBLE_EQ(a.maxLatencySeconds, b.maxLatencySeconds);
    EXPECT_DOUBLE_EQ(a.throughputRequestsPerSec,
                     b.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.throughputTokensPerSec, b.throughputTokensPerSec);
    EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_DOUBLE_EQ(a.meanBatchOccupancy, b.meanBatchOccupancy);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.meanSwitchStallSeconds, b.meanSwitchStallSeconds);
    EXPECT_DOUBLE_EQ(a.p95SwitchStallSeconds, b.p95SwitchStallSeconds);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.prefetchHits, b.prefetchHits);
    EXPECT_EQ(a.prefetchesCancelled, b.prefetchesCancelled);
}

} // namespace

// ------------------------------------------------------- name tables

TEST(ClusterPolicies, NamesRoundTrip)
{
    EXPECT_EQ(dispatchPolicyFromName("round-robin"),
              DispatchPolicy::RoundRobin);
    EXPECT_EQ(dispatchPolicyFromName("least-outstanding"),
              DispatchPolicy::LeastOutstanding);
    EXPECT_EQ(dispatchPolicyFromName("expert-affinity"),
              DispatchPolicy::ExpertAffinity);
    EXPECT_THROW(dispatchPolicyFromName("random"), sim::FatalError);
    EXPECT_STREQ(dispatchPolicyName(DispatchPolicy::LeastOutstanding),
                 "least-outstanding");

    EXPECT_EQ(placementPolicyFromName("replication"),
              PlacementPolicy::FullReplication);
    EXPECT_EQ(placementPolicyFromName("replicate-hot"),
              PlacementPolicy::ReplicateHotPartitionCold);
    EXPECT_EQ(placementPolicyFromName("partition"),
              PlacementPolicy::BalancedPartition);
    EXPECT_THROW(placementPolicyFromName("scatter"), sim::FatalError);
    EXPECT_STREQ(
        placementPolicyName(PlacementPolicy::ReplicateHotPartitionCold),
        "replicate-hot");
}

// --------------------------------------------------------- placement

TEST(ExpertPlacementMap, ShapesPerPolicy)
{
    ExpertPlacement rep =
        makePlacement(PlacementPolicy::FullReplication, 10, 4, 0);
    EXPECT_EQ(rep.replicas, 40);
    for (int e = 0; e < 10; ++e)
        EXPECT_EQ(rep.hostsOfExpert[e].size(), 4u);

    ExpertPlacement part =
        makePlacement(PlacementPolicy::BalancedPartition, 10, 4, 0);
    EXPECT_EQ(part.replicas, 10);
    for (int e = 0; e < 10; ++e) {
        ASSERT_EQ(part.hostsOfExpert[e].size(), 1u);
        EXPECT_EQ(part.hostsOfExpert[e][0], e % 4);
    }

    ExpertPlacement hot = makePlacement(
        PlacementPolicy::ReplicateHotPartitionCold, 10, 4, 2);
    // 2 hot experts on all 4 nodes + 8 cold singletons.
    EXPECT_EQ(hot.replicas, 2 * 4 + 8);
    EXPECT_EQ(hot.hostsOfExpert[0].size(), 4u);
    EXPECT_EQ(hot.hostsOfExpert[1].size(), 4u);
    EXPECT_EQ(hot.hostsOfExpert[2].size(), 1u);

    // hotExperts == 0 derives experts/10 (at least 1).
    ExpertPlacement derived = makePlacement(
        PlacementPolicy::ReplicateHotPartitionCold, 10, 2, 0);
    EXPECT_EQ(derived.hostsOfExpert[0].size(), 2u);
    EXPECT_EQ(derived.hostsOfExpert[1].size(), 1u);
}

// -------------------------------------------- single-node anchoring

/**
 * The cluster must not be a second simulator: a 1-node cluster with
 * full replication is the same engine behind a trivial dispatch
 * layer, and every stream metric must match the single-node
 * ServingSimulator bit for bit. The single-node side is itself locked
 * to the PR 2 engine goldens in test_serving_scheduler.cc, so this
 * transitively anchors the cluster to the paper baseline.
 */
TEST(ClusterSimulator, OneNodeFullReplicationMatchesSingleNode)
{
    ServingConfig base;
    base.mode = ServingMode::EventDriven;
    base.batch = 8;
    base.streamRequests = 384;
    base.arrivalRatePerSec = 16.0;
    base.routing = RoutingDistribution::Zipf;
    base.zipfS = 1.2;
    base.seed = 7;

    for (SchedulerPolicy policy :
         {SchedulerPolicy::Fifo, SchedulerPolicy::ExpertAffinity}) {
        base.scheduler = policy;
        ServingResult single = ServingSimulator(base).run();

        ClusterConfig ccfg;
        ccfg.node = base;
        ccfg.nodes = 1;
        ccfg.placement = PlacementPolicy::FullReplication;
        for (DispatchPolicy dispatch :
             {DispatchPolicy::RoundRobin, DispatchPolicy::LeastOutstanding,
              DispatchPolicy::ExpertAffinity}) {
            ccfg.dispatch = dispatch;
            ClusterResult cluster = ClusterSimulator(ccfg).run();
            expectStreamEq(cluster.stream, single.stream);
            EXPECT_DOUBLE_EQ(cluster.missRate, single.missRate);
            EXPECT_DOUBLE_EQ(cluster.loadImbalance, 1.0);
        }
    }
}

/** Same anchor for the prefetch path and the closed loop. */
TEST(ClusterSimulator, OneNodeMatchesSingleNodePrefetchAndClosedLoop)
{
    {
        ServingConfig base;
        base.mode = ServingMode::EventDriven;
        base.batch = 8;
        base.streamRequests = 384;
        base.arrivalRatePerSec = 16.0;
        base.routing = RoutingDistribution::Zipf;
        base.zipfS = 1.2;
        base.seed = 7;
        base.scheduler = SchedulerPolicy::ExpertAffinity;
        base.predictivePrefetch = true;
        base.prefetchDepth = 4;

        ServingResult single = ServingSimulator(base).run();
        // Cross-check against the PR 2 golden directly, so the anchor
        // does not silently drift with the single-node simulator.
        EXPECT_DOUBLE_EQ(single.stream.p99LatencySeconds,
                         0.75591874410116133);
        EXPECT_DOUBLE_EQ(single.missRate, 0.19270833333333334);

        ClusterConfig ccfg;
        ccfg.node = base;
        ccfg.nodes = 1;
        ClusterResult cluster = ClusterSimulator(ccfg).run();
        expectStreamEq(cluster.stream, single.stream);
        EXPECT_DOUBLE_EQ(cluster.missRate, single.missRate);
    }
    {
        ServingConfig base;
        base.mode = ServingMode::EventDriven;
        base.batch = 4;
        base.streamRequests = 256;
        base.arrival = ArrivalProcess::ClosedLoop;
        base.clients = 24;
        base.thinkSeconds = 0.25;
        base.routing = RoutingDistribution::Uniform;
        base.seed = 11;
        base.scheduler = SchedulerPolicy::ExpertAffinity;

        ServingResult single = ServingSimulator(base).run();
        EXPECT_DOUBLE_EQ(single.stream.p50LatencySeconds,
                         1.0710945877325);

        ClusterConfig ccfg;
        ccfg.node = base;
        ccfg.nodes = 1;
        ClusterResult cluster = ClusterSimulator(ccfg).run();
        expectStreamEq(cluster.stream, single.stream);
        EXPECT_DOUBLE_EQ(cluster.missRate, single.missRate);
    }
}

// ------------------------------------------------------ determinism

TEST(ClusterSimulator, FixedSeedRunsAreBitIdenticalAcrossRepeats)
{
    for (PlacementPolicy placement :
         {PlacementPolicy::FullReplication,
          PlacementPolicy::ReplicateHotPartitionCold,
          PlacementPolicy::BalancedPartition}) {
        for (DispatchPolicy dispatch :
             {DispatchPolicy::RoundRobin,
              DispatchPolicy::LeastOutstanding,
              DispatchPolicy::ExpertAffinity}) {
            ClusterConfig cfg = clusterConfig(4);
            cfg.placement = placement;
            cfg.dispatch = dispatch;
            ClusterResult a = ClusterSimulator(cfg).run();
            ClusterResult b = ClusterSimulator(cfg).run();
            expectStreamEq(a.stream, b.stream);
            EXPECT_EQ(a.stream.eventsExecuted, b.stream.eventsExecuted);
            EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
            EXPECT_DOUBLE_EQ(a.loadImbalance, b.loadImbalance);
            ASSERT_EQ(a.nodes.size(), b.nodes.size());
            for (std::size_t n = 0; n < a.nodes.size(); ++n) {
                EXPECT_EQ(a.nodes[n].completed, b.nodes[n].completed);
                EXPECT_EQ(a.nodes[n].dispatched, b.nodes[n].dispatched);
                EXPECT_EQ(a.nodes[n].misses, b.nodes[n].misses);
            }
        }
    }
}

// -------------------------------------------------- dispatch policy

TEST(ClusterSimulator, ConsistentHashKeepsExpertOnHomeNodeUntilDrain)
{
    // Without a drain, every request for an expert lands on the same
    // node: dispatched counts per node must equal the sum over that
    // node's home experts.
    ClusterConfig cfg = clusterConfig(4);
    cfg.dispatch = DispatchPolicy::ExpertAffinity;
    cfg.placement = PlacementPolicy::FullReplication;

    ClusterSimulator sim(cfg);
    ClusterResult r = sim.run();

    // Re-derive each expert's home node by running the same consistent
    // hash through a fresh cluster with one request per expert
    // (round-robin routing covers every expert deterministically).
    ClusterConfig probe = cfg;
    probe.node.routing = RoutingDistribution::RoundRobin;
    probe.node.streamRequests = probe.node.numExperts;
    ClusterResult pr = ClusterSimulator(probe).run();

    // The affinity map is total: all four nodes exist, and the two
    // runs must agree that the mapping is stable — the probe's
    // per-node dispatched counts are reproducible.
    ClusterResult pr2 = ClusterSimulator(probe).run();
    std::int64_t placedTotal = 0;
    for (std::size_t n = 0; n < pr.nodes.size(); ++n) {
        EXPECT_EQ(pr.nodes[n].dispatched, pr2.nodes[n].dispatched);
        placedTotal += pr.nodes[n].dispatched;
    }
    EXPECT_EQ(placedTotal, probe.node.streamRequests);

    // In the Zipf run, a node that got zero home experts in the probe
    // must see zero dispatches (expert -> node is the same hash).
    for (std::size_t n = 0; n < r.nodes.size(); ++n) {
        if (pr.nodes[n].dispatched == 0) {
            EXPECT_EQ(r.nodes[n].dispatched, 0);
        }
    }
    EXPECT_EQ(r.stream.completed, cfg.node.streamRequests);
}

TEST(ClusterSimulator, ConsistentHashHomesSingleExpertUntilDrain)
{
    // With a single expert, the consistent hash maps every request to
    // one home node. After that node drains, every remaining request
    // moves to exactly ONE other node (the next eligible node
    // clockwise on the ring) — the rest of the cluster is untouched.
    ClusterConfig cfg = clusterConfig(4);
    cfg.dispatch = DispatchPolicy::ExpertAffinity;
    cfg.node.numExperts = 1;
    cfg.node.routing = RoutingDistribution::Uniform;
    cfg.node.streamRequests = 200;
    cfg.node.arrivalRatePerSec = 24.0;

    ClusterResult r = ClusterSimulator(cfg).run();
    int home = -1;
    for (const ClusterNodeMetrics &nm : r.nodes) {
        if (nm.dispatched == 0)
            continue;
        EXPECT_EQ(home, -1) << "expert 0 has two home nodes";
        home = nm.node;
        EXPECT_EQ(nm.dispatched, cfg.node.streamRequests);
    }
    ASSERT_GE(home, 0);

    ClusterConfig drained = cfg;
    drained.drainAtSeconds = 3.0;
    drained.drainNode = home;
    ClusterResult dr = ClusterSimulator(drained).run();
    EXPECT_EQ(dr.stream.completed, cfg.node.streamRequests);
    int successors = 0;
    std::int64_t total = 0;
    for (const ClusterNodeMetrics &nm : dr.nodes) {
        total += nm.completed;
        if (nm.node != home && nm.completed > 0)
            ++successors;
    }
    EXPECT_EQ(total, cfg.node.streamRequests);
    // Pre-drain traffic stayed home; post-drain traffic moved to one
    // successor, not scattered.
    EXPECT_GT(dr.nodes[static_cast<std::size_t>(home)].completed, 0);
    EXPECT_LT(dr.nodes[static_cast<std::size_t>(home)].completed,
              cfg.node.streamRequests);
    EXPECT_EQ(successors, 1);
}

TEST(ClusterSimulator, LeastOutstandingBalancesUniformLoad)
{
    ClusterConfig cfg = clusterConfig(4);
    cfg.node.routing = RoutingDistribution::Uniform;
    cfg.dispatch = DispatchPolicy::LeastOutstanding;
    cfg.node.streamRequests = 800;
    ClusterResult r = ClusterSimulator(cfg).run();
    // Uniform traffic through least-outstanding dispatch stays close
    // to even: no node serves more than 1.5x its fair share.
    EXPECT_LT(r.loadImbalance, 1.5);
    EXPECT_EQ(r.stream.completed, cfg.node.streamRequests);
}

// ------------------------------------------------------ drain/rejoin

TEST(ClusterSimulator, DrainMidRunLosesNothingAndRedispatches)
{
    ClusterConfig cfg = clusterConfig(4);
    cfg.dispatch = DispatchPolicy::ExpertAffinity;
    cfg.node.streamRequests = 600;
    cfg.node.arrivalRatePerSec = 96.0; // saturating: queues build
    cfg.drainAtSeconds = 2.0;
    cfg.drainNode = 1;

    ClusterResult r = ClusterSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed, cfg.node.streamRequests);
    EXPECT_TRUE(r.nodes[1].drained);
    // The drained node's queue moved somewhere else...
    EXPECT_GT(r.redispatched, 0);
    EXPECT_EQ(r.nodes[1].redispatched, r.redispatched);
    // ...and the node stopped receiving work afterwards, so the other
    // nodes absorbed the rest of the stream.
    std::int64_t others = r.nodes[0].completed + r.nodes[2].completed +
        r.nodes[3].completed;
    EXPECT_EQ(others + r.nodes[1].completed, cfg.node.streamRequests);
    EXPECT_GT(others, r.nodes[1].completed);
}

TEST(ClusterSimulator, RejoinColdServesAgainAfterDrain)
{
    ClusterConfig cfg = clusterConfig(2);
    cfg.dispatch = DispatchPolicy::RoundRobin;
    cfg.node.streamRequests = 800;
    cfg.node.arrivalRatePerSec = 48.0;
    cfg.drainAtSeconds = 2.0;
    cfg.rejoinAtSeconds = 6.0;
    cfg.drainNode = 0;

    ClusterSimulator sim(cfg);
    ClusterResult drained = sim.run();
    EXPECT_EQ(drained.stream.completed, cfg.node.streamRequests);
    EXPECT_EQ(sim.stats().get("rejoin_events"), 1.0);

    // The rejoined node serves a meaningful share of the tail.
    EXPECT_GT(drained.nodes[0].completed, 0);
    EXPECT_GT(drained.nodes[1].completed, drained.nodes[0].completed);
}

TEST(ClusterSimulator, RejectsBadClusterConfigs)
{
    ClusterConfig cfg = clusterConfig(1);
    cfg.drainAtSeconds = 1.0; // drain with nowhere to go
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.drainAtSeconds = 2.0;
    cfg.rejoinAtSeconds = 1.0; // rejoin before drain
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.rejoinAtSeconds = 1.0; // rejoin without drain
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.diurnalAmplitude = 1.5; // rate would go negative
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.node.arrival = ArrivalProcess::ClosedLoop;
    cfg.node.clients = 8;
    cfg.diurnalAmplitude = 0.5; // diurnal is open-loop only
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.overrides.push_back({5, 2, 0}); // override for missing node
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);

    cfg = clusterConfig(2);
    cfg.hotExperts = 1000; // more hot experts than experts
    EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
}

// --------------------------------------------- scenario diversity

TEST(ClusterSimulator, DiurnalRampCompletesAndShiftsTail)
{
    ClusterConfig flat = clusterConfig(2);
    flat.node.streamRequests = 600;
    flat.node.arrivalRatePerSec = 40.0;

    ClusterConfig ramp = flat;
    ramp.diurnalAmplitude = 0.9;
    ramp.diurnalPeriodSeconds = 10.0;

    ClusterResult flat_r = ClusterSimulator(flat).run();
    ClusterResult ramp_r = ClusterSimulator(ramp).run();
    EXPECT_EQ(flat_r.stream.completed, flat.node.streamRequests);
    EXPECT_EQ(ramp_r.stream.completed, ramp.node.streamRequests);
    // The ramp's peak pushes the system past the flat rate, so the
    // tail (p99) degrades relative to the flat arrival process.
    EXPECT_GT(ramp_r.stream.p99LatencySeconds,
              flat_r.stream.p99LatencySeconds);
}

TEST(ClusterSimulator, HeterogeneousNodesRespectOverrides)
{
    ClusterConfig cfg = clusterConfig(2);
    cfg.node.streamRequests = 300;
    // Node 1 gets a smaller expert region: it must show a higher miss
    // rate than its twin under the same dispatch split.
    ClusterNodeOverride o;
    o.node = 1;
    o.expertRegionBytes = static_cast<std::int64_t>(200e9);
    cfg.overrides.push_back(o);
    cfg.dispatch = DispatchPolicy::RoundRobin;
    cfg.node.routing = RoutingDistribution::Uniform;

    ClusterResult r = ClusterSimulator(cfg).run();
    EXPECT_EQ(r.stream.completed, cfg.node.streamRequests);
    EXPECT_GT(r.nodes[1].missRate, r.nodes[0].missRate);
    EXPECT_LE(r.nodes[1].peakResidentBytes,
              static_cast<std::int64_t>(200e9));
}

// ------------------------------------- placement trade-off anchor

/**
 * The CoServe-style placement result the ablation bench prints, as a
 * regression test: on a Zipf(1.0) 150-expert workload at 4 nodes,
 * replicate-hot/partition-cold beats balanced partition on p95 (hot
 * traffic spreads over all nodes) AND beats full replication on the
 * HBM the placement demands (the cold tail is not copied N times).
 */
TEST(ClusterSimulator, ReplicateHotBeatsPartitionP95AndReplicationFootprint)
{
    auto run = [](PlacementPolicy placement) {
        ClusterConfig cfg;
        cfg.nodes = 4;
        cfg.placement = placement;
        cfg.dispatch = DispatchPolicy::LeastOutstanding;
        cfg.hotExperts = 15;
        cfg.node.mode = ServingMode::EventDriven;
        cfg.node.numExperts = 150;
        cfg.node.batch = 8;
        cfg.node.streamRequests = 1200;
        cfg.node.routing = RoutingDistribution::Zipf;
        cfg.node.zipfS = 1.0;
        cfg.node.arrivalRatePerSec = 64.0;
        cfg.node.seed = 3;
        return ClusterSimulator(cfg).run();
    };

    ClusterResult replication = run(PlacementPolicy::FullReplication);
    ClusterResult hot = run(PlacementPolicy::ReplicateHotPartitionCold);
    ClusterResult partition = run(PlacementPolicy::BalancedPartition);

    // p95: partition funnels the Zipf head through single nodes.
    EXPECT_LT(hot.stream.p95LatencySeconds,
              partition.stream.p95LatencySeconds);
    // Footprint: replication copies all 150 experts to all 4 nodes.
    EXPECT_LT(hot.placedBytesTotal, replication.placedBytesTotal);
    EXPECT_LT(hot.expertReplicas, replication.expertReplicas);
    EXPECT_GT(hot.expertReplicas, partition.expertReplicas);
}
