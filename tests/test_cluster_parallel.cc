/**
 * @file
 * Tests for the parallel cluster run path (ClusterConfig::threads):
 * the conservative time-window execution must produce the same
 * metrics as the bit-exact threads==1 shared-queue path — on open
 * Poisson traffic, replayed JSONL traces, drain/rejoin schedules, and
 * controller-driven diurnal runs (including a byte-equal controller
 * decision log) — deterministically run-to-run and independent of the
 * worker count. Also covers the EventQueue window API the windows are
 * built on (peekNextTick/advanceTo, same-tick FIFO ordering, which is
 * what makes mailbox delivery order deterministic) and the config
 * validation that rejects zero-lookahead feedback loops.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "coe/cluster.h"
#include "coe/serving.h"
#include "coe/workload.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/ticks.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

/** RAII temp path that is removed on scope exit. */
struct TempFile
{
    explicit TempFile(const char *name)
        : path(std::string(::testing::TempDir()) + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

ClusterConfig
baseCluster()
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.dispatch = DispatchPolicy::ExpertAffinity;
    cfg.placement = PlacementPolicy::ReplicateHotPartitionCold;
    cfg.hotExperts = 15;
    cfg.node.mode = ServingMode::EventDriven;
    cfg.node.platform = Platform::Sn40l;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = 4000;
    cfg.node.routing = RoutingDistribution::Zipf;
    cfg.node.arrivalRatePerSec = 64.0;
    cfg.node.scheduler = SchedulerPolicy::ExpertAffinity;
    cfg.node.seed = 7;
    return cfg;
}

/**
 * Serial vs. parallel equality. Everything integer or derived from
 * per-engine accumulators is bit-identical; the two cluster-wide
 * running means are the single exception (the parallel path merges
 * per-node distributions in node order instead of recording in
 * completion order, so the double summation associates differently),
 * compared to a relative 1e-9 instead. eventsExecuted is exempt: the
 * parallel run adds one mailbox delivery event per request.
 */
void
expectClusterEqual(const ClusterResult &a, const ClusterResult &b,
                   bool exact_means)
{
    EXPECT_EQ(a.oom, b.oom);
    EXPECT_EQ(a.stream.completed, b.stream.completed);
    EXPECT_EQ(a.stream.batches, b.stream.batches);
    EXPECT_EQ(a.stream.shed, b.stream.shed);
    EXPECT_DOUBLE_EQ(a.stream.p50LatencySeconds,
                     b.stream.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p95LatencySeconds,
                     b.stream.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p99LatencySeconds,
                     b.stream.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.maxLatencySeconds,
                     b.stream.maxLatencySeconds);
    EXPECT_DOUBLE_EQ(a.stream.p95SwitchStallSeconds,
                     b.stream.p95SwitchStallSeconds);
    if (exact_means) {
        EXPECT_DOUBLE_EQ(a.stream.meanLatencySeconds,
                         b.stream.meanLatencySeconds);
        EXPECT_DOUBLE_EQ(a.stream.meanSwitchStallSeconds,
                         b.stream.meanSwitchStallSeconds);
    } else {
        EXPECT_NEAR(a.stream.meanLatencySeconds,
                    b.stream.meanLatencySeconds,
                    1e-9 * (1.0 + a.stream.meanLatencySeconds));
        EXPECT_NEAR(a.stream.meanSwitchStallSeconds,
                    b.stream.meanSwitchStallSeconds,
                    1e-9 * (1.0 + a.stream.meanSwitchStallSeconds));
    }
    EXPECT_DOUBLE_EQ(a.stream.makespanSeconds, b.stream.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.stream.throughputRequestsPerSec,
                     b.stream.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.stream.meanQueueDepth, b.stream.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.stream.maxQueueDepth, b.stream.maxQueueDepth);
    EXPECT_DOUBLE_EQ(a.stream.meanBatchOccupancy,
                     b.stream.meanBatchOccupancy);
    EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
    EXPECT_DOUBLE_EQ(a.loadImbalance, b.loadImbalance);
    EXPECT_EQ(a.expertReplicas, b.expertReplicas);
    EXPECT_DOUBLE_EQ(a.placedBytesTotal, b.placedBytesTotal);
    EXPECT_EQ(a.peakResidentBytesTotal, b.peakResidentBytesTotal);
    EXPECT_EQ(a.redispatched, b.redispatched);
    EXPECT_DOUBLE_EQ(a.nodeSecondsLive, b.nodeSecondsLive);
    EXPECT_DOUBLE_EQ(a.nodeHours, b.nodeHours);
    EXPECT_EQ(a.controllerTicks, b.controllerTicks);
    EXPECT_EQ(a.controllerActions, b.controllerActions);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
        const ClusterNodeMetrics &x = a.nodes[n];
        const ClusterNodeMetrics &y = b.nodes[n];
        EXPECT_EQ(x.drained, y.drained) << "node " << n;
        EXPECT_EQ(x.dispatched, y.dispatched) << "node " << n;
        EXPECT_EQ(x.redispatched, y.redispatched) << "node " << n;
        EXPECT_EQ(x.completed, y.completed) << "node " << n;
        EXPECT_EQ(x.batches, y.batches) << "node " << n;
        EXPECT_EQ(x.misses, y.misses) << "node " << n;
        EXPECT_EQ(x.shed, y.shed) << "node " << n;
        EXPECT_DOUBLE_EQ(x.p50LatencySeconds, y.p50LatencySeconds)
            << "node " << n;
        EXPECT_DOUBLE_EQ(x.p95LatencySeconds, y.p95LatencySeconds)
            << "node " << n;
        EXPECT_DOUBLE_EQ(x.meanQueueDepth, y.meanQueueDepth)
            << "node " << n;
        EXPECT_DOUBLE_EQ(x.maxQueueDepth, y.maxQueueDepth)
            << "node " << n;
        EXPECT_EQ(x.placedExperts, y.placedExperts) << "node " << n;
        EXPECT_DOUBLE_EQ(x.placedBytes, y.placedBytes) << "node " << n;
        EXPECT_EQ(x.peakResidentBytes, y.peakResidentBytes)
            << "node " << n;
    }
}

} // namespace

// ------------------------------------------------ window API (unit)

TEST(WindowApi, PeekReturnsNextLiveTick)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.peekNextTick(), sim::kMaxTick);

    int fired = 0;
    sim::EventQueue::Handle early =
        eq.schedule(100, [&fired]() { ++fired; }, "early");
    eq.schedule(200, [&fired]() { ++fired; }, "late");
    EXPECT_EQ(eq.peekNextTick(), 100);

    // A cancelled head is reaped, not reported.
    EXPECT_TRUE(early.cancel());
    EXPECT_EQ(eq.peekNextTick(), 200);
    EXPECT_EQ(eq.pendingCount(), 1u);
}

TEST(WindowApi, AdvanceToMovesTimeWithoutExecuting)
{
    sim::EventQueue eq;
    eq.advanceTo(500); // empty queue: free to jump
    EXPECT_EQ(eq.now(), 500);
    eq.advanceTo(100); // backwards is a no-op, not an error
    EXPECT_EQ(eq.now(), 500);

    int fired = 0;
    eq.schedule(800, [&fired]() { ++fired; }, "ev");
    eq.advanceTo(800); // exactly onto a pending event is fine
    EXPECT_EQ(eq.now(), 800);
    EXPECT_EQ(fired, 0); // advanceTo never executes
    EXPECT_THROW(eq.advanceTo(801), sim::SimPanic); // would skip it
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 1);
}

TEST(WindowApi, SameTickDeliveriesFireInScheduleOrder)
{
    // The parallel mailbox relies on this: delivery events created in
    // hub routing order at non-decreasing ticks must fire in exactly
    // that order, so the inbox cursor and the event stream agree even
    // when many requests land on one node at one tick.
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(1000, [&order, i]() { order.push_back(i); },
                    "deliver");
    eq.schedule(999, [&order]() { order.push_back(-1); }, "before");
    eq.run();
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order.front(), -1); // earlier tick first
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i + 1)], i)
            << "same-tick FIFO broke at " << i;
}

// ------------------------------------------- serial/parallel equality

TEST(ClusterParallel, OpenLoopPoissonMatchesSerialForAnyThreadCount)
{
    ClusterConfig cfg = baseCluster();
    ClusterResult serial = ClusterSimulator(cfg).run();
    for (int threads : {2, 3, 4}) {
        ClusterConfig par = cfg;
        par.threads = threads;
        ClusterResult parallel = ClusterSimulator(par).run();
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectClusterEqual(serial, parallel, /*exact_means=*/false);
    }
}

TEST(ClusterParallel, ReplayedTraceMatchesSerial)
{
    TempFile trace("parallel_replay.jsonl");
    ClusterConfig rec = baseCluster();
    rec.node.workload.traceOut = trace.path;
    ClusterSimulator(rec).run();

    ClusterConfig rep = baseCluster();
    rep.node.workload.traceIn = trace.path;
    ClusterResult serial = ClusterSimulator(rep).run();

    ClusterConfig par = rep;
    par.threads = 4;
    ClusterResult parallel = ClusterSimulator(par).run();
    expectClusterEqual(serial, parallel, /*exact_means=*/false);
}

TEST(ClusterParallel, DrainRejoinScheduleMatchesSerial)
{
    ClusterConfig cfg = baseCluster();
    cfg.dispatch = DispatchPolicy::RoundRobin;
    // Overload a bit so the drained node has queued work to move.
    cfg.node.arrivalRatePerSec = 96.0;
    ScheduledAction drain;
    drain.atSeconds = 8.0;
    drain.kind = ActionKind::Drain;
    drain.node = 1;
    ScheduledAction rejoin;
    rejoin.atSeconds = 20.0;
    rejoin.kind = ActionKind::Rejoin;
    rejoin.node = 1;
    ScheduledAction surge;
    surge.atSeconds = 25.0;
    surge.kind = ActionKind::RateOverride;
    surge.rateFactor = 1.5;
    cfg.actions = {drain, rejoin, surge};

    ClusterResult serial = ClusterSimulator(cfg).run();
    ClusterConfig par = cfg;
    par.threads = 4;
    ClusterResult parallel = ClusterSimulator(par).run();

    EXPECT_GT(serial.redispatched, 0); // the drain actually moved work
    EXPECT_TRUE(serial.nodes[1].drained);
    expectClusterEqual(serial, parallel, /*exact_means=*/false);
}

TEST(ClusterParallel, ControllerDiurnalMatchesSerialIncludingLog)
{
    TempFile serialLog("parallel_ctl_serial.jsonl");
    TempFile parallelLog("parallel_ctl_parallel.jsonl");

    ClusterConfig cfg = baseCluster();
    cfg.diurnalAmplitude = 0.6;
    cfg.diurnalPeriodSeconds = 30.0;
    cfg.controller.policy = ControllerPolicy::ReactiveThreshold;
    cfg.controller.tickSeconds = 0.5;
    cfg.controller.minNodes = 1;
    cfg.controller.scaleUpQueueDepth = 12.0;
    cfg.controller.scaleDownQueueDepth = 2.0;
    cfg.controller.cooldownTicks = 4;
    cfg.controller.logPath = serialLog.path;

    ClusterResult serial = ClusterSimulator(cfg).run();

    ClusterConfig par = cfg;
    par.threads = 4;
    par.controller.logPath = parallelLog.path;
    ClusterResult parallel = ClusterSimulator(par).run();

    EXPECT_GT(serial.controllerTicks, 0);
    EXPECT_GT(serial.controllerActions, 0); // the loop actually scaled
    expectClusterEqual(serial, parallel, /*exact_means=*/false);

    // The decision log is the strictest witness: every snapshot field
    // and every action, byte for byte.
    std::string serialText = readFile(serialLog.path);
    std::string parallelText = readFile(parallelLog.path);
    EXPECT_FALSE(serialText.empty());
    EXPECT_EQ(serialText, parallelText);
}

TEST(ClusterParallel, RunToRunDeterministicAtFixedThreadCount)
{
    TempFile logA("parallel_rr_a.jsonl");
    TempFile logB("parallel_rr_b.jsonl");
    ClusterConfig cfg = baseCluster();
    cfg.threads = 3;
    cfg.controller.policy = ControllerPolicy::TargetUtilization;
    cfg.controller.tickSeconds = 0.5;
    cfg.controller.minNodes = 1;
    cfg.controller.targetUtilization = 0.7;

    cfg.controller.logPath = logA.path;
    ClusterResult a = ClusterSimulator(cfg).run();
    cfg.controller.logPath = logB.path;
    ClusterResult b = ClusterSimulator(cfg).run();

    // Same thread count, same config: everything is bit-identical,
    // running means included (same merge order).
    expectClusterEqual(a, b, /*exact_means=*/true);
    EXPECT_EQ(a.stream.eventsExecuted, b.stream.eventsExecuted);
    EXPECT_EQ(readFile(logA.path), readFile(logB.path));
}

// --------------------------------------------------- config policing

TEST(ClusterParallel, RejectsZeroLookaheadFeedbackLoops)
{
    {
        ClusterConfig cfg = baseCluster();
        cfg.threads = 2;
        cfg.node.arrival = ArrivalProcess::ClosedLoop;
        EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    }
    {
        ClusterConfig cfg = baseCluster();
        cfg.threads = 2;
        cfg.node.workload.sessionFollowProb = 0.3;
        EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    }
    {
        ClusterConfig cfg = baseCluster();
        cfg.threads = 2;
        TenantSpec chatty;
        chatty.sessionFollowProb = 0.5;
        cfg.node.workload.tenantSpecs.push_back(chatty);
        EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    }
    {
        ClusterConfig cfg = baseCluster();
        cfg.threads = 2;
        cfg.dispatch = DispatchPolicy::LeastOutstanding;
        EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    }
    {
        ClusterConfig cfg = baseCluster();
        cfg.threads = 0;
        EXPECT_THROW(ClusterSimulator{cfg}, sim::FatalError);
    }
}

TEST(ClusterParallel, SessionsAllowedWhenReplayedFromTrace)
{
    // Record a sessionful trace serially, then replay it in parallel:
    // the follow-up turns are plain timestamped entries by then, so
    // the feedback loop is gone and the run must match serial replay.
    TempFile trace("parallel_sessions.jsonl");
    ClusterConfig rec = baseCluster();
    rec.node.workload.tenants = 3;
    rec.node.workload.sessionFollowProb = 0.4;
    rec.node.workload.sessionThinkSeconds = 0.2;
    rec.node.workload.traceOut = trace.path;
    ClusterSimulator(rec).run();

    ClusterConfig rep = baseCluster();
    rep.node.workload.tenants = 3;
    rep.node.workload.sessionFollowProb = 0.4;
    rep.node.workload.sessionThinkSeconds = 0.2;
    rep.node.workload.traceIn = trace.path;
    ClusterResult serial = ClusterSimulator(rep).run();

    ClusterConfig par = rep;
    par.threads = 4;
    ClusterResult parallel = ClusterSimulator(par).run();
    expectClusterEqual(serial, parallel, /*exact_means=*/false);
}

TEST(ClusterParallel, ClampsThreadsToNodeCount)
{
    ClusterConfig cfg = baseCluster();
    cfg.nodes = 3;
    cfg.node.streamRequests = 1200;
    ClusterResult serial = ClusterSimulator(cfg).run();

    ClusterConfig par = cfg;
    par.threads = 16; // more workers than shards: clamped, not fatal
    ClusterSimulator sim(par);
    EXPECT_EQ(sim.config().threads, 3);
    ClusterResult parallel = sim.run();
    expectClusterEqual(serial, parallel, /*exact_means=*/false);
}
