/**
 * @file
 * Tests for the CoE stack: expert zoo, router distributions, the LRU
 * expert cache with read-only skip-copyback, the serving simulator,
 * and the footprint planner.
 */

#include <gtest/gtest.h>

#include <map>

#include "coe/coe_runtime.h"
#include "coe/expert.h"
#include "coe/footprint.h"
#include "coe/router.h"
#include "coe/serving.h"
#include "sim/log.h"

using namespace sn40l;
using namespace sn40l::coe;

TEST(ExpertZoo, SambaCoeZoo)
{
    ExpertZoo zoo =
        ExpertZoo::uniform(150, models::LlmConfig::llama2_7b());
    EXPECT_EQ(zoo.size(), 150);
    // Over a trillion parameters in total (Section II).
    EXPECT_GT(zoo.totalBytes(), 2.0e12); // 1T params in BF16
    EXPECT_NEAR(zoo.expert(0).bytes, 13.48e9, 0.1e9);
    EXPECT_THROW(zoo.expert(150), sim::SimPanic);
}

TEST(Router, DeterministicPerSeed)
{
    Router a(150, RoutingDistribution::Uniform, 42);
    Router b(150, RoutingDistribution::Uniform, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.route(), b.route());
}

TEST(Router, UniformCoversExperts)
{
    Router r(16, RoutingDistribution::Uniform, 7);
    std::map<int, int> counts;
    for (int i = 0; i < 4000; ++i)
        ++counts[r.route()];
    EXPECT_EQ(counts.size(), 16u);
    for (const auto &kv : counts) {
        EXPECT_GT(kv.second, 150);
        EXPECT_LT(kv.second, 350);
    }
}

TEST(Router, ZipfSkewsTowardHotExperts)
{
    Router r(100, RoutingDistribution::Zipf, 7, 1.2);
    std::map<int, int> counts;
    for (int i = 0; i < 10000; ++i)
        ++counts[r.route()];
    // Expert 0 should dominate the tail.
    EXPECT_GT(counts[0], 10 * std::max(counts[50], 1));
}

TEST(Router, RoundRobinCycles)
{
    Router r(5, RoutingDistribution::RoundRobin);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(r.route(), i % 5);
}

namespace {

ExpertZoo
tinyZoo(int count, double bytes, double mutable_bytes = 0.0)
{
    ExpertZoo zoo;
    for (int i = 0; i < count; ++i) {
        ExpertModel e;
        e.name = "e" + std::to_string(i);
        e.config = models::LlmConfig::llama2_7b();
        e.bytes = bytes;
        e.mutableBytes = mutable_bytes;
        zoo.add(e);
    }
    return zoo;
}

} // namespace

TEST(CoeRuntime, HitsAndMisses)
{
    ExpertZoo zoo = tinyZoo(4, 100.0);
    CoeRuntime runtime(zoo, 250); // two experts fit

    auto a0 = runtime.activate(0);
    EXPECT_FALSE(a0.hit);
    EXPECT_DOUBLE_EQ(a0.bytesToLoad, 100.0);

    auto a0_again = runtime.activate(0);
    EXPECT_TRUE(a0_again.hit);
    EXPECT_DOUBLE_EQ(a0_again.bytesToLoad, 0.0);
    EXPECT_EQ(runtime.residentCount(), 1);
}

TEST(CoeRuntime, LruEvictionOrder)
{
    ExpertZoo zoo = tinyZoo(4, 100.0);
    CoeRuntime runtime(zoo, 250);

    runtime.activate(0);
    runtime.activate(1); // region full: {1, 0}
    runtime.activate(0); // refresh 0: {0, 1}
    auto a2 = runtime.activate(2); // evicts 1 (least recent)
    EXPECT_EQ(a2.evictions, 1);
    EXPECT_TRUE(runtime.resident(0));
    EXPECT_FALSE(runtime.resident(1));
    EXPECT_TRUE(runtime.resident(2));
}

TEST(CoeRuntime, ReadOnlyEvictionSkipsCopyBack)
{
    ExpertZoo ro = tinyZoo(3, 100.0, 0.0);
    CoeRuntime runtime_ro(ro, 200);
    runtime_ro.activate(0);
    runtime_ro.activate(1);
    auto act = runtime_ro.activate(2);
    EXPECT_DOUBLE_EQ(act.bytesToWriteBack, 0.0);
    EXPECT_GT(runtime_ro.stats().get("copyback_skipped"), 0.0);

    // Mutable state must be written back (Section V-B).
    ExpertZoo rw = tinyZoo(3, 100.0, 25.0);
    CoeRuntime runtime_rw(rw, 200);
    runtime_rw.activate(0);
    runtime_rw.activate(1);
    auto act_rw = runtime_rw.activate(2);
    EXPECT_DOUBLE_EQ(act_rw.bytesToWriteBack, 25.0);
}

TEST(CoeRuntime, RejectsOversizedExpert)
{
    ExpertZoo zoo = tinyZoo(1, 1000.0);
    EXPECT_THROW(CoeRuntime(zoo, 500), sim::FatalError);
}

TEST(CoeRuntime, SteadyStateMissRateMatchesCapacityRatio)
{
    // Uniform routing over N experts with a C-expert cache: the
    // steady-state hit rate approaches C/N.
    const int n = 40, cap = 10;
    ExpertZoo zoo = tinyZoo(n, 100.0);
    CoeRuntime runtime(zoo, cap * 100 + 50);
    Router router(n, RoutingDistribution::Uniform, 5);

    int misses = 0;
    const int trials = 8000;
    for (int i = 0; i < trials; ++i) {
        if (!runtime.activate(router.route()).hit)
            ++misses;
    }
    double miss_rate = static_cast<double>(misses) / trials;
    EXPECT_NEAR(miss_rate, 1.0 - static_cast<double>(cap) / n, 0.05);
}

TEST(Serving, Sn40lPhaseCostsMatchPaperAnchors)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    ServingSimulator sim(cfg);
    const PhaseCosts &c = sim.phaseCosts();

    // Expert switch: ~13.5 GB at >1 TB/s node DDR->HBM: ~13 ms.
    EXPECT_GT(c.switchSeconds, 8e-3);
    EXPECT_LT(c.switchSeconds, 20e-3);
    // Decode streams weights each token: ~1-2 ms per token on TP8.
    EXPECT_GT(c.decodeSecondsPerToken, 0.8e-3);
    EXPECT_LT(c.decodeSecondsPerToken, 2.5e-3);
}

TEST(Serving, SwitchSpeedupOverDgxMatchesPaperBand)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    double rdu = ServingSimulator(cfg).phaseCosts().switchSeconds;
    cfg.platform = Platform::DgxA100;
    double a100 = ServingSimulator(cfg).phaseCosts().switchSeconds;
    cfg.platform = Platform::DgxH100;
    double h100 = ServingSimulator(cfg).phaseCosts().switchSeconds;

    // Paper: model switching 31x vs A100, 15x vs H100.
    EXPECT_NEAR(a100 / rdu, 31.0, 4.0);
    EXPECT_NEAR(h100 / rdu, 15.5, 2.0);
}

TEST(Serving, DgxOomAboveOneHundredFiftyExperts)
{
    ServingConfig cfg;
    cfg.platform = Platform::DgxA100;
    cfg.requests = 4;

    cfg.numExperts = 150;
    EXPECT_FALSE(ServingSimulator(cfg).run().oom);
    cfg.numExperts = 160;
    EXPECT_TRUE(ServingSimulator(cfg).run().oom);

    // The SN40L node holds 850 experts (Section VI-C).
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 850;
    EXPECT_FALSE(ServingSimulator(cfg).run().oom);
}

TEST(Serving, OverallSpeedupBandsAtOneFiftyExperts)
{
    auto total = [](Platform p, int batch) {
        ServingConfig cfg;
        cfg.platform = p;
        cfg.numExperts = 150;
        cfg.batch = batch;
        cfg.outputTokens = 20;
        cfg.requests = 100;
        return ServingSimulator(cfg).run().perBatch.total();
    };

    // Paper Table V: BS=8, 20 tokens: 6.6x vs DGX A100, 3.7x vs H100.
    double rdu8 = total(Platform::Sn40l, 8);
    double a8 = total(Platform::DgxA100, 8);
    double h8 = total(Platform::DgxH100, 8);
    EXPECT_NEAR(a8 / rdu8, 6.6, 1.5);
    EXPECT_NEAR(h8 / rdu8, 3.7, 1.0);
}

TEST(Serving, SwitchShareGrowsWithExpertCount)
{
    auto share = [](int experts) {
        ServingConfig cfg;
        cfg.platform = Platform::DgxA100;
        cfg.numExperts = experts;
        cfg.requests = 100;
        return ServingSimulator(cfg).run().perBatch.switchShare();
    };
    double small = share(30);
    double big = share(140);
    EXPECT_LT(small, big);
    EXPECT_GT(big, 0.5); // switching dominates on DGX (Fig 1)
}

TEST(Serving, ZipfRoutingReducesSwitching)
{
    ServingConfig cfg;
    cfg.platform = Platform::Sn40l;
    cfg.numExperts = 150;
    cfg.requests = 200;

    cfg.routing = RoutingDistribution::Uniform;
    double uniform = ServingSimulator(cfg).run().missRate;
    cfg.routing = RoutingDistribution::Zipf;
    double zipf = ServingSimulator(cfg).run().missRate;
    EXPECT_LT(zipf, uniform * 0.8);
}

TEST(Footprint, PaperAnchors)
{
    double expert = models::LlmConfig::llama2_7b().weightBytes();
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    baseline::DgxConfig dgx = baseline::DgxConfig::dgxA100();

    // 850 experts: one SN40L node vs 19 DGX nodes (Section VI-C).
    FootprintPlan sn = sn40lFootprint(850, expert, node);
    FootprintPlan dg = dgxFootprint(850, expert, dgx);
    EXPECT_EQ(sn.nodes, 1);
    EXPECT_EQ(dg.nodes, 19);

    // Monotone non-decreasing in expert count.
    int last = 0;
    for (int n = 10; n <= 890; n += 40) {
        int nodes = dgxFootprint(n, expert, dgx).nodes;
        EXPECT_GE(nodes, last);
        last = nodes;
    }
}

TEST(Footprint, RejectsImpossiblePlans)
{
    arch::NodeConfig node = arch::NodeConfig::sn40lNode(8);
    EXPECT_THROW(sn40lFootprint(0, 1e9, node), sim::FatalError);
    EXPECT_THROW(sn40lFootprint(1, 1e15, node), sim::FatalError);
}
