/**
 * @file
 * Tests for the autoscaling control plane and the observable/actuable
 * cluster API it is built on: controller policy name tables and
 * config validation, bit-identity of the scripted-action path against
 * the legacy drain sugar and of inert controllers against plain runs,
 * actuator idempotence through begin()/finish(), windowed
 * MetricsSnapshot observation, and the reactive policy's
 * node-hours-for-same-work win on a replayed diurnal trace.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coe/cluster.h"
#include "coe/workload.h"
#include "sim/log.h"
#include "sim/ticks.h"

using namespace sn40l;
using namespace sn40l::coe;

namespace {

ClusterConfig
clusterConfig(int nodes)
{
    ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.node.mode = ServingMode::EventDriven;
    cfg.node.numExperts = 150;
    cfg.node.batch = 8;
    cfg.node.streamRequests = 400;
    cfg.node.routing = RoutingDistribution::Zipf;
    cfg.node.zipfS = 1.0;
    cfg.node.arrivalRatePerSec = 16.0 * nodes;
    cfg.node.seed = 11;
    return cfg;
}

void
expectStreamEq(const StreamMetrics &a, const StreamMetrics &b)
{
    EXPECT_DOUBLE_EQ(a.p50LatencySeconds, b.p50LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p95LatencySeconds, b.p95LatencySeconds);
    EXPECT_DOUBLE_EQ(a.p99LatencySeconds, b.p99LatencySeconds);
    EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
    EXPECT_DOUBLE_EQ(a.maxLatencySeconds, b.maxLatencySeconds);
    EXPECT_DOUBLE_EQ(a.throughputRequestsPerSec,
                     b.throughputRequestsPerSec);
    EXPECT_DOUBLE_EQ(a.meanQueueDepth, b.meanQueueDepth);
    EXPECT_DOUBLE_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.shed, b.shed);
}

/** Record a diurnal open-loop stream in memory (no file round trip). */
std::shared_ptr<const std::vector<TraceEntry>>
recordDiurnalTrace(const ServingConfig &gen)
{
    sim::EventQueue eq;
    std::unique_ptr<WorkloadModel> model = makeWorkloadModel(gen);
    auto entries = std::make_shared<std::vector<TraceEntry>>();
    model->bind(eq, [&](const TrafficRequest &r) {
        entries->push_back({r, eq.now()});
    });
    model->start();
    eq.run();
    return entries;
}

} // namespace

// ------------------------------------------------------- name tables

TEST(ControllerPolicies, NamesRoundTrip)
{
    EXPECT_EQ(controllerPolicyFromName("static"),
              ControllerPolicy::Static);
    EXPECT_EQ(controllerPolicyFromName("none"),
              ControllerPolicy::Static);
    EXPECT_EQ(controllerPolicyFromName("reactive"),
              ControllerPolicy::ReactiveThreshold);
    EXPECT_EQ(controllerPolicyFromName("reactive-threshold"),
              ControllerPolicy::ReactiveThreshold);
    EXPECT_EQ(controllerPolicyFromName("target-util"),
              ControllerPolicy::TargetUtilization);
    EXPECT_THROW(controllerPolicyFromName("magic"), sim::FatalError);
    EXPECT_STREQ(controllerPolicyName(ControllerPolicy::Static),
                 "static");
    EXPECT_STREQ(
        controllerPolicyName(ControllerPolicy::ReactiveThreshold),
        "reactive");
    EXPECT_STREQ(
        controllerPolicyName(ControllerPolicy::TargetUtilization),
        "target-util");
}

TEST(ControllerPolicies, ConfigValidation)
{
    ControllerConfig cfg;
    cfg.policy = ControllerPolicy::ReactiveThreshold;
    validateControllerConfig(cfg, 4); // defaults are valid

    ControllerConfig bad = cfg;
    bad.tickSeconds = 0.0;
    EXPECT_THROW(validateControllerConfig(bad, 4), sim::FatalError);

    bad = cfg;
    bad.minNodes = 5;
    EXPECT_THROW(validateControllerConfig(bad, 4), sim::FatalError);

    bad = cfg;
    bad.maxNodes = 5;
    EXPECT_THROW(validateControllerConfig(bad, 4), sim::FatalError);

    bad = cfg;
    bad.scaleUpQueueDepth = 0.2; // below the scale-down depth
    EXPECT_THROW(validateControllerConfig(bad, 4), sim::FatalError);

    bad = cfg;
    bad.targetUtilization = 1.5;
    EXPECT_THROW(validateControllerConfig(bad, 4), sim::FatalError);

    // Every knob is inert under Static, including bad ones.
    bad = cfg;
    bad.policy = ControllerPolicy::Static;
    bad.tickSeconds = -1.0;
    validateControllerConfig(bad, 4);
}

// ------------------------------------- scripted-action bit identity

TEST(ScheduledActions, ExplicitActionsMatchLegacyDrainSugar)
{
    ClusterConfig legacy = clusterConfig(4);
    legacy.drainAtSeconds = 3.0;
    legacy.drainNode = 1;
    legacy.rejoinAtSeconds = 8.0;

    ClusterConfig scripted = clusterConfig(4);
    ScheduledAction drain;
    drain.kind = ActionKind::Drain;
    drain.atSeconds = 3.0;
    drain.node = 1;
    ScheduledAction rejoin;
    rejoin.kind = ActionKind::Rejoin;
    rejoin.atSeconds = 8.0;
    rejoin.node = 1;
    scripted.actions = {drain, rejoin};

    ClusterResult a = ClusterSimulator(legacy).run();
    ClusterResult b = ClusterSimulator(scripted).run();
    expectStreamEq(a.stream, b.stream);
    EXPECT_EQ(a.stream.eventsExecuted, b.stream.eventsExecuted);
    EXPECT_EQ(a.redispatched, b.redispatched);
    EXPECT_DOUBLE_EQ(a.nodeSecondsLive, b.nodeSecondsLive);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
        EXPECT_EQ(a.nodes[n].dispatched, b.nodes[n].dispatched);
        EXPECT_EQ(a.nodes[n].completed, b.nodes[n].completed);
        EXPECT_EQ(a.nodes[n].drained, b.nodes[n].drained);
    }
}

TEST(ScheduledActions, StaticControllerConfigIsInert)
{
    ClusterConfig plain = clusterConfig(4);

    ClusterConfig with = clusterConfig(4);
    with.controller.policy = ControllerPolicy::Static;
    with.controller.tickSeconds = 0.25; // inert under Static
    with.controller.minNodes = 2;

    ClusterResult a = ClusterSimulator(plain).run();
    ClusterResult b = ClusterSimulator(with).run();
    expectStreamEq(a.stream, b.stream);
    EXPECT_EQ(a.stream.eventsExecuted, b.stream.eventsExecuted);
    EXPECT_EQ(b.controllerTicks, 0);
    EXPECT_EQ(b.controllerActions, 0);
}

TEST(ScheduledActions, UnityRateOverrideOnlyAddsItsEvent)
{
    ClusterConfig plain = clusterConfig(4);

    ClusterConfig with = clusterConfig(4);
    ScheduledAction rate;
    rate.kind = ActionKind::RateOverride;
    rate.atSeconds = 2.0;
    rate.rateFactor = 1.0; // multiplies the gaps exactly
    with.actions = {rate};

    ClusterResult a = ClusterSimulator(plain).run();
    ClusterResult b = ClusterSimulator(with).run();
    expectStreamEq(a.stream, b.stream);
    EXPECT_EQ(a.stream.eventsExecuted + 1, b.stream.eventsExecuted);
}

TEST(ScheduledActions, HalvedRateStretchesTheRun)
{
    ClusterConfig plain = clusterConfig(2);

    ClusterConfig with = clusterConfig(2);
    ScheduledAction rate;
    rate.kind = ActionKind::RateOverride;
    rate.atSeconds = 1.0;
    rate.rateFactor = 0.5;
    with.actions = {rate};

    ClusterResult a = ClusterSimulator(plain).run();
    ClusterResult b = ClusterSimulator(with).run();
    EXPECT_EQ(b.stream.completed, a.stream.completed); // nothing lost
    EXPECT_GT(b.stream.makespanSeconds, a.stream.makespanSeconds);
}

// --------------------------------------------- begin/finish API

TEST(ClusterApi, ActuatorsAreIdempotentAndLossless)
{
    ClusterConfig cfg = clusterConfig(4);
    ClusterSimulator sim(cfg);
    ASSERT_TRUE(sim.begin());

    EXPECT_EQ(sim.liveNodes(), 4);
    EXPECT_TRUE(sim.drainNode(1));
    EXPECT_FALSE(sim.drainNode(1)); // already drained
    EXPECT_EQ(sim.liveNodes(), 3);
    EXPECT_TRUE(sim.rejoinNode(1));
    EXPECT_FALSE(sim.rejoinNode(1)); // already live
    EXPECT_EQ(sim.liveNodes(), 4);

    // Never drain below one live node.
    EXPECT_TRUE(sim.drainNode(3));
    EXPECT_TRUE(sim.drainNode(2));
    EXPECT_TRUE(sim.drainNode(1));
    EXPECT_FALSE(sim.drainNode(0));
    EXPECT_EQ(sim.liveNodes(), 1);
    EXPECT_TRUE(sim.rejoinNode(1));
    EXPECT_TRUE(sim.rejoinNode(2));
    EXPECT_TRUE(sim.rejoinNode(3));

    sim.eventQueue().run();
    ClusterResult r = sim.finish();
    EXPECT_FALSE(r.oom);
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              cfg.node.streamRequests);
}

TEST(ClusterApi, ReplicationAndMigrationActuators)
{
    ClusterConfig cfg = clusterConfig(4);
    cfg.placement = PlacementPolicy::BalancedPartition;
    ClusterSimulator sim(cfg);
    ASSERT_TRUE(sim.begin());

    const ExpertPlacement &p = sim.placement();
    ASSERT_EQ(static_cast<int>(p.hostsOfExpert.size()),
              cfg.node.numExperts);
    ASSERT_EQ(p.hostsOfExpert[0].size(), 1u); // partitioned
    int home = p.hostsOfExpert[0][0];

    // Replicate expert 0 everywhere, then back down to one copy.
    EXPECT_TRUE(sim.setReplication(0, 4));
    EXPECT_FALSE(sim.setReplication(0, 4)); // already there
    EXPECT_EQ(p.hostsOfExpert[0].size(), 4u);
    EXPECT_TRUE(sim.setReplication(0, 1));
    EXPECT_EQ(p.hostsOfExpert[0].size(), 1u);

    // Migrate expert 1 off its home; a no-op migration reports false.
    int from = p.hostsOfExpert[1][0];
    int to = (from + 1) % 4;
    EXPECT_TRUE(sim.migrateExpert(1, from, to));
    EXPECT_FALSE(sim.migrateExpert(1, from, to)); // not hosted there now
    EXPECT_EQ(p.hostsOfExpert[1][0], to);
    (void)home;

    sim.eventQueue().run();
    ClusterResult r = sim.finish();
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              cfg.node.streamRequests);
}

TEST(ClusterApi, SnapshotWindowsAdvance)
{
    ClusterConfig cfg = clusterConfig(4);
    ClusterSimulator sim(cfg);
    ASSERT_TRUE(sim.begin());

    MetricsSnapshot s1, s2;
    sim.eventQueue().scheduleIn(
        sim::fromSeconds(1.0), [&]() { s1 = sim.snapshot(); },
        "test.probe1");
    sim.eventQueue().scheduleIn(
        sim::fromSeconds(2.5), [&]() { s2 = sim.snapshot(); },
        "test.probe2");
    sim.eventQueue().run();
    ClusterResult r = sim.finish();

    EXPECT_NEAR(s1.atSeconds, 1.0, 1e-9);
    EXPECT_NEAR(s1.windowSeconds, 1.0, 1e-9);
    EXPECT_EQ(s1.liveNodes, 4);
    EXPECT_GT(s1.arrivalRatePerSec, 0.0); // 64 req/s offered
    EXPECT_NEAR(s2.atSeconds, 2.5, 1e-9);
    EXPECT_NEAR(s2.windowSeconds, 1.5, 1e-9); // since the previous one
    EXPECT_EQ(static_cast<int>(s2.expertHits.size()),
              cfg.node.numExperts);
    EXPECT_NEAR(s1.nodeSecondsLive, 4.0, 1e-9); // 4 nodes, 1 s in
    EXPECT_EQ(r.stream.completed + r.stream.shed,
              cfg.node.streamRequests);
}

// -------------------------------------------------- control loop

TEST(Controller, ReactiveSavesNodeHoursOnDiurnalTrace)
{
    ServingConfig gen;
    gen.mode = ServingMode::EventDriven;
    gen.numExperts = 150;
    gen.batch = 8;
    gen.streamRequests = 3000;
    gen.arrivalRatePerSec = 24.0;
    gen.routing = RoutingDistribution::Zipf;
    gen.zipfS = 1.0;
    gen.seed = 7;
    gen.workload.shape.diurnalAmplitude = 0.75;
    gen.workload.shape.diurnalPeriodSeconds = 3000.0 / 24.0 / 3.0;

    ClusterConfig base = clusterConfig(4);
    base.node = gen;
    base.node.workload.shape = RateShape{};
    base.node.workload.traceEntries = recordDiurnalTrace(gen);

    ClusterConfig reactive = base;
    reactive.controller.policy = ControllerPolicy::ReactiveThreshold;
    reactive.controller.minNodes = 1;
    reactive.controller.scaleUpQueueDepth = 2.0;
    reactive.controller.scaleDownQueueDepth = 0.25;

    ClusterResult st = ClusterSimulator(base).run();
    ClusterResult re = ClusterSimulator(reactive).run();

    ASSERT_FALSE(st.oom);
    ASSERT_FALSE(re.oom);
    EXPECT_EQ(st.stream.completed + st.stream.shed, 3000);
    EXPECT_EQ(re.stream.completed + re.stream.shed, 3000);
    EXPECT_GT(re.controllerTicks, 0);
    EXPECT_GT(re.controllerActions, 0);
    EXPECT_EQ(st.controllerTicks, 0);
    EXPECT_LT(re.nodeHours, st.nodeHours);
}

TEST(Controller, TargetUtilizationRunCompletes)
{
    ClusterConfig cfg = clusterConfig(4);
    cfg.node.streamRequests = 1500;
    cfg.controller.policy = ControllerPolicy::TargetUtilization;
    cfg.controller.minNodes = 1;
    cfg.controller.targetUtilization = 0.7;

    ClusterResult r = ClusterSimulator(cfg).run();
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.stream.completed + r.stream.shed, 1500);
    EXPECT_GT(r.controllerTicks, 0);
    EXPECT_GT(r.nodeSecondsLive, 0.0);
}

TEST(Controller, HotExpertTrackingReplicatesAndCompletes)
{
    ClusterConfig cfg = clusterConfig(4);
    cfg.placement = PlacementPolicy::BalancedPartition;
    cfg.node.streamRequests = 1500;
    cfg.controller.policy = ControllerPolicy::ReactiveThreshold;
    cfg.controller.minNodes = 4; // isolate the hot-expert actuator
    cfg.controller.hotExpertTrack = 5;

    ClusterSimulator sim(cfg);
    ClusterResult tracked = sim.run();
    ASSERT_FALSE(tracked.oom);
    EXPECT_EQ(tracked.stream.completed + tracked.stream.shed, 1500);
    EXPECT_GT(tracked.controllerActions, 0);
    // The tracker boosted hot experts mid-run (and reverted them as
    // they cooled — the final placement returning to baseline is the
    // revert path working, so count the changes, not the end state).
    EXPECT_GT(sim.stats().get("replication_changes"), 0.0);
}

TEST(Controller, DeterministicAcrossRepeats)
{
    ClusterConfig cfg = clusterConfig(4);
    cfg.node.streamRequests = 1000;
    cfg.controller.policy = ControllerPolicy::ReactiveThreshold;
    cfg.controller.minNodes = 1;

    ClusterResult a = ClusterSimulator(cfg).run();
    ClusterResult b = ClusterSimulator(cfg).run();
    expectStreamEq(a.stream, b.stream);
    EXPECT_EQ(a.stream.eventsExecuted, b.stream.eventsExecuted);
    EXPECT_EQ(a.controllerTicks, b.controllerTicks);
    EXPECT_EQ(a.controllerActions, b.controllerActions);
    EXPECT_DOUBLE_EQ(a.nodeSecondsLive, b.nodeSecondsLive);
}
