/** @file Unit tests for the discrete-event simulation core. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/log.h"

using namespace sn40l;
using sim::EventQueue;
using sim::Tick;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() {
        ++fired;
        eq.scheduleIn(5, [&]() {
            ++fired;
            EXPECT_EQ(eq.now(), 15);
        });
    });
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, []() {}), sim::SimPanic);
    EXPECT_THROW(eq.scheduleIn(-1, []() {}), sim::SimPanic);
}

TEST(EventQueue, EmptyCallbackPanics)
{
    EventQueue eq;
    EXPECT_THROW(eq.schedule(1, EventQueue::Callback()), sim::SimPanic);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });

    // Events at exactly the limit still run.
    EXPECT_EQ(eq.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20);
    EXPECT_FALSE(eq.empty());

    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    auto handle = eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });

    EXPECT_TRUE(handle.pending());
    EXPECT_TRUE(handle.cancel());
    EXPECT_FALSE(handle.pending());
    EXPECT_FALSE(handle.cancel()); // double cancel is a no-op

    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 20);
}

TEST(EventQueue, CancelledEventAtLimitBoundaryDoesNotLeakLaterEvent)
{
    EventQueue eq;
    int fired = 0;
    auto handle = eq.schedule(10, [&]() { ++fired; });
    eq.schedule(50, [&]() { ++fired; });
    handle.cancel();

    // The cancelled tick-10 event must not let the tick-50 event run
    // under a limit of 20.
    EXPECT_EQ(eq.run(20), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(10, []() {});
    eq.schedule(20, []() {});
    eq.run(10);
    eq.reset();
    EXPECT_EQ(eq.now(), 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&]() { ++fired; });
    eq.schedule(2, [&]() { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsInert)
{
    EventQueue eq;
    int fired_a = 0, fired_b = 0;
    auto stale = eq.schedule(10, [&]() { ++fired_a; });
    eq.run();
    EXPECT_EQ(fired_a, 1);
    EXPECT_FALSE(stale.pending());

    // The slot is recycled by the next event; the stale handle's
    // generation no longer matches, so cancelling it must be a no-op
    // that leaves the new occupant untouched.
    eq.schedule(20, [&]() { ++fired_b; });
    EXPECT_FALSE(stale.cancel());
    EXPECT_FALSE(stale.pending());
    eq.run();
    EXPECT_EQ(fired_b, 1);
}

TEST(EventQueue, StaleHandleAfterCancelledSlotReuseIsInert)
{
    EventQueue eq;
    int fired = 0;
    auto stale = eq.schedule(10, [&]() { ++fired; });
    EXPECT_TRUE(stale.cancel());
    eq.run(); // reaps the cancelled entry, freeing the slot

    eq.schedule(20, [&]() { ++fired; });
    EXPECT_FALSE(stale.cancel());
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, SameTickFifoSurvivesSlotRecycling)
{
    // Scramble the free list with interleaved schedule/cancel/run
    // cycles, then check that a burst of same-tick events still fires
    // in scheduling order even though their pooled slots are reused
    // out of order.
    EventQueue eq;
    std::vector<EventQueue::Handle> handles;
    for (int i = 0; i < 32; ++i)
        handles.push_back(eq.schedule(5, []() {}));
    for (int i = 0; i < 32; i += 2)
        handles[i].cancel();
    eq.run();

    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        eq.schedule(100, [&order, i]() { order.push_back(i); });
    eq.run();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SlotRecyclingKeepsSlabBounded)
{
    // 10k sequential schedule/fire cycles with at most 4 events
    // pending must not grow the slab past the concurrent working set.
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int i = 0; i < 10'000; ++i) {
        for (int j = 0; j < 4; ++j)
            eq.scheduleIn(j + 1, [&]() { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 40'000u);
    EXPECT_LE(eq.slabSlots(), 8u);
}

TEST(EventQueue, CancelReleasesCallbackResources)
{
    // A cancelled event's callback is destroyed at cancel time, not
    // when the tombstone is reaped from the heap.
    EventQueue eq;
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    auto handle = eq.schedule(10, [token]() {});
    token.reset();
    EXPECT_FALSE(watch.expired());
    EXPECT_TRUE(handle.cancel());
    EXPECT_TRUE(watch.expired());
    eq.schedule(20, []() {});
    eq.run();
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventQueue::Handle h;
    EXPECT_FALSE(h.pending());
    EXPECT_FALSE(h.cancel());
}

TEST(Ticks, UnitConversionsRoundTrip)
{
    EXPECT_EQ(sim::fromUs(1.0), 1'000'000);
    EXPECT_EQ(sim::fromMs(1.0), 1'000'000'000LL);
    EXPECT_DOUBLE_EQ(sim::toMs(sim::fromMs(12.5)), 12.5);
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::kTicksPerSec), 1.0);
}

TEST(Ticks, TransferTicksRoundsUpAndHandlesZero)
{
    EXPECT_EQ(sim::transferTicks(0.0, 1e9), 0);
    EXPECT_EQ(sim::transferTicks(1e9, 1e9), sim::kTicksPerSec);
    // One byte at huge bandwidth still takes at least one tick.
    EXPECT_GE(sim::transferTicks(1.0, 1e15), 1);
}
