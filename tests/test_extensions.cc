/**
 * @file
 * Tests for the extension features: predictive expert prefetching and
 * compiled-program invariants that the rest of the stack relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "coe/serving.h"
#include "compiler/compiler.h"
#include "models/transformer_builder.h"

using namespace sn40l;

TEST(Prefetch, HidesSwitchingBehindRouterAndExecution)
{
    auto serve = [](int batch, bool prefetch) {
        coe::ServingConfig cfg;
        cfg.platform = coe::Platform::Sn40l;
        cfg.numExperts = 150;
        cfg.batch = batch;
        cfg.requests = 100;
        cfg.predictivePrefetch = prefetch;
        return coe::ServingSimulator(cfg).run();
    };

    // Prefetch never hurts and strictly helps when there are misses.
    for (int batch : {1, 8}) {
        coe::ServingResult off = serve(batch, false);
        coe::ServingResult on = serve(batch, true);
        EXPECT_GT(off.missRate, 0.0);
        EXPECT_LE(on.perBatch.switchSeconds,
                  off.perBatch.switchSeconds);
        EXPECT_LT(on.perBatch.total(), off.perBatch.total());
        // Routing and execution are unchanged by prefetching.
        EXPECT_DOUBLE_EQ(on.perBatch.routerSeconds,
                         off.perBatch.routerSeconds);
        EXPECT_DOUBLE_EQ(on.perBatch.execSeconds,
                         off.perBatch.execSeconds);
    }

    // At BS=8, expert execution (tens of ms) dwarfs a 13 ms copy, so
    // practically all switching after the first prompt hides.
    coe::ServingResult on8 = serve(8, true);
    coe::ServingResult off8 = serve(8, false);
    EXPECT_LT(on8.perBatch.switchSeconds,
              off8.perBatch.switchSeconds * 0.2);
}

TEST(Program, KernelScheduleIsTopologicallyConsistent)
{
    // Within the kernel order, every tensor's producing kernel comes
    // no later than any consuming kernel.
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::mistral7b();
    spec.phase = models::Phase::Prefill;
    spec.seqLen = 1024;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    compiler::CompileOptions options;
    options.fusion.tensorParallel = 8;
    compiler::Program prog = compiler::compile(g, chip, options);

    std::vector<int> kernel_of(g.numOps(), -1);
    for (std::size_t ki = 0; ki < prog.kernels.size(); ++ki) {
        for (graph::OpId id : prog.kernels[ki].kernel.ops)
            kernel_of[id] = static_cast<int>(ki);
    }
    for (const auto &op : g.ops()) {
        for (graph::TensorId in : op.inputs) {
            const graph::Tensor &t = g.tensor(in);
            if (t.producer == graph::kInvalidOp ||
                t.kind == graph::TensorKind::KvCache) {
                continue;
            }
            EXPECT_LE(kernel_of[t.producer], kernel_of[op.id])
                << "tensor " << t.name;
        }
    }
}

TEST(Program, CostsAreFiniteAndPositive)
{
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Train;
    spec.seqLen = 1024;
    spec.batch = 2;
    spec.tensorParallel = 8;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    compiler::CompileOptions options;
    options.fusion.tensorParallel = 8;
    compiler::Program prog = compiler::compile(g, chip, options);

    EXPECT_GT(prog.execSeconds(), 0.0);
    for (const auto &ke : prog.kernels) {
        EXPECT_GE(ke.cost.totalSeconds(), 0.0);
        EXPECT_TRUE(std::isfinite(ke.cost.totalSeconds()));
        EXPECT_GE(ke.kernel.launches, 1);
    }
    // Launch overhead strictly orders the two orchestration modes.
    EXPECT_GT(prog.estimatedSeconds(25e-6),
              prog.estimatedSeconds(0.25e-6));
}

TEST(Program, TrainingSpillsToDdrWhenActivationsExceedHbm)
{
    // Long-sequence large-batch training holds every forward
    // activation for the backward pass; on a single socket (64 GiB of
    // HBM) the planner must spill (Section V-A).
    models::WorkloadSpec spec;
    spec.model = models::LlmConfig::llama2_7b();
    spec.phase = models::Phase::Train;
    spec.seqLen = 4096;
    spec.batch = 16;
    spec.tensorParallel = 1;
    graph::DataflowGraph g = models::buildTransformer(spec);

    arch::ChipConfig chip = arch::ChipConfig::sn40l();
    compiler::CompileOptions options;
    options.fusion.tensorParallel = 1;
    compiler::Program prog = compiler::compile(g, chip, options);

    EXPECT_GT(prog.spilledSymbols, 0);
    EXPECT_GT(prog.ddrResidentBytes, 0.0);
    // Weights stay resident: spill traffic is activations.
    EXPECT_LE(prog.hbmResidentBytes,
              static_cast<double>(chip.hbmBytes));
}
